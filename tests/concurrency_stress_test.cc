// Multi-threaded stress tests for every component with a lock. These are
// most valuable under -DTKLUS_SANITIZE=thread: TSan then certifies at
// runtime what the Clang thread-safety annotations (src/common/mutex.h)
// check statically — no data races in the query-vs-append path, the DFS,
// the fault injector, the MapReduce counters or the log sink.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "core/engine.h"
#include "datagen/tweet_generator.h"
#include "dfs/dfs.h"
#include "mapreduce/counters.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

GeneratedCorpus MakeCorpus(size_t tweets) {
  TweetGenerator::Options opts;
  opts.num_users = 120;
  opts.num_tweets = tweets;
  opts.num_cities = 2;
  return TweetGenerator::Generate(opts);
}

// Split a dataset into [0, cut) and [cut, n) by position (sids ascend).
std::pair<Dataset, Dataset> Split(const Dataset& all, size_t cut) {
  Dataset first, second;
  for (size_t i = 0; i < all.size(); ++i) {
    (i < cut ? first : second).Add(all.posts()[i]);
  }
  return {std::move(first), std::move(second)};
}

// ------------------------------------------------------ engine

// Queries hammer the engine from several threads while another thread
// appends fresh batches: the engine-wide lock must serialize them with no
// torn index state, no lost appends and (under TSan) no races.
TEST(ConcurrencyStressTest, EngineQueryVsAppend) {
  const GeneratedCorpus corpus = MakeCorpus(3000);
  auto [seed, rest] = Split(corpus.dataset, 1500);
  // Three follow-up batches, appended while queries are in flight.
  std::vector<Dataset> batches;
  {
    auto [b0, tail] = Split(rest, 500);
    auto [b1, b2] = Split(tail, 500);
    batches.push_back(std::move(b0));
    batches.push_back(std::move(b1));
    batches.push_back(std::move(b2));
  }

  TkLusEngine::Options options;
  options.mapreduce_workers = 2;
  auto engine = TkLusEngine::Build(seed, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  TkLusQuery query;
  query.location = corpus.city_centers[0];
  query.radius_km = 25.0;
  query.keywords = {"hotel", "restaurant"};
  query.k = 10;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      TkLusQuery q = query;
      q.ranking = (t % 2 == 0) ? Ranking::kSum : Ranking::kMax;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto result = (*engine)->Query(q);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        queries_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread appender([&] {
    for (const Dataset& batch : batches) {
      const Status st = (*engine)->AppendBatch(batch);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  appender.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(queries_ok.load(), 0u);

  // Every appended post is now visible: a quiescent engine built from the
  // full dataset in one shot ranks identically.
  auto oracle = TkLusEngine::Build(corpus.dataset, options);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  const auto got = (*engine)->Query(query);
  const auto want = (*oracle)->Query(query);
  ASSERT_TRUE(got.ok() && want.ok());
  ASSERT_EQ(got->users.size(), want->users.size());
  for (size_t i = 0; i < want->users.size(); ++i) {
    EXPECT_EQ(got->users[i].uid, want->users[i].uid) << "rank " << i;
    EXPECT_NEAR(got->users[i].score, want->users[i].score, 1e-9);
  }
}

// ------------------------------------------------------ DFS

TEST(ConcurrencyStressTest, DfsConcurrentAppendAndRead) {
  SimulatedDfs::Options opts;
  opts.block_size = 256;
  SimulatedDfs dfs(opts);
  ASSERT_TRUE(dfs.Append("shared", std::string(4096, 's')).ok());

  constexpr int kWriters = 3;
  constexpr int kAppendsPerWriter = 50;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&dfs, w] {
      const std::string path = "file-" + std::to_string(w);
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        ASSERT_TRUE(dfs.Append(path, std::string(100, 'a' + w)).ok());
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::string out;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(dfs.ReadAt("shared", 0, 4096, &out).ok());
      (void)dfs.List();
      (void)dfs.total_bytes();
      (void)dfs.node_stats();
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  for (int w = 0; w < kWriters; ++w) {
    auto size = dfs.FileSize("file-" + std::to_string(w));
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, static_cast<uint64_t>(kAppendsPerWriter) * 100);
  }
}

// ------------------------------------------------------ fault injector

TEST(ConcurrencyStressTest, FaultInjectorConcurrentRulesAndChecks) {
  FaultInjector injector(/*seed=*/42);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector, t] {
      const std::string site = "site-" + std::to_string(t % 2);
      char buffer[16] = {0};
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch (i % 4) {
          case 0:
            injector.SetFaultRate(site, FaultKind::kTransient, 0.5);
            break;
          case 1:
            injector.MaybeFail(site, "stress").IgnoreError();
            break;
          case 2:
            (void)injector.MaybeCorrupt(site, buffer, sizeof(buffer));
            break;
          default:
            (void)injector.injected(site);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(injector.total_injected(), injector.injected("site-0"));
}

// ------------------------------------------------------ counters

TEST(ConcurrencyStressTest, CountersConcurrentIncrementsSumExactly) {
  Counters counters;
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counters.Increment("shared");
        if (i % 16 == 0) (void)counters.Snapshot();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counters.Get("shared"),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

// ------------------------------------------------------ logging

TEST(ConcurrencyStressTest, ConcurrentLoggingDoesNotRace) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // exercise the level check, mute output
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        TKLUS_LOG(Info) << "thread " << t << " message " << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SetLogLevel(saved);
}

}  // namespace
}  // namespace tklus
