#include "model/gazetteer.h"

namespace tklus {

void Gazetteer::Add(std::string_view name, const GeoPoint& location) {
  const auto terms = tokenizer_.Tokenize(name);
  if (terms.empty()) return;
  places_[terms.front()] = location;
}

std::optional<GeoPoint> Gazetteer::Lookup(std::string_view term) const {
  const auto it = places_.find(std::string(term));
  if (it == places_.end()) return std::nullopt;
  return it->second;
}

LocationInferenceStats InferLocations(Dataset* dataset,
                                      const Gazetteer& gazetteer) {
  LocationInferenceStats stats;
  for (Post& post : dataset->mutable_posts()) {
    if (post.geo_source != GeoSource::kNone) continue;
    ++stats.untagged;
    for (const std::string& term : gazetteer.tokenizer().Tokenize(post.text)) {
      const std::optional<GeoPoint> place = gazetteer.Lookup(term);
      if (place.has_value()) {
        post.location = *place;
        post.geo_source = GeoSource::kInferred;
        ++stats.inferred;
        break;
      }
    }
  }
  return stats;
}

}  // namespace tklus
