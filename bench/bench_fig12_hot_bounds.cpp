// Figure 12: effect of the hot-keyword-specific popularity bounds on
// Max-score query processing, vs the global bound, for AND and OR
// semantics. Paper: the specific bounds speed up both semantics, with the
// gain growing with the query radius ("those hot keywords help rule out
// irrelevant tweets when computing tweet threads").
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 12 — hot-keyword bound vs global bound (Max score)",
                "specific bounds prune more thread constructions than the "
                "global bound; gains grow with the radius");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  auto engine = bench::MakeEngine(corpus.dataset);
  const auto workload = MakeQueryWorkload(corpus, datagen::WorkloadOptions{});

  for (const Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    std::printf("%s semantic (hot bound = %s over query keywords):\n",
                sem == Semantics::kAnd ? "AND" : "OR",
                sem == Semantics::kAnd ? "min" : "max");
    std::printf("%-10s %-11s %-11s %-14s %-14s %-11s %-11s %-10s\n",
                "radius km", "global ms", "hot ms", "global pruned",
                "hot pruned", "global IO", "hot IO", "IO gain %");
    for (const double r : {5.0, 10.0, 20.0, 50.0}) {
      const auto queries =
          bench::With(workload, r, 5, sem, Ranking::kMax);
      auto& opts = engine->processor().mutable_options();
      opts.use_hot_bounds = false;
      const auto global_stats = bench::RunQueries(*engine, queries);
      opts.use_hot_bounds = true;
      const auto hot_stats = bench::RunQueries(*engine, queries);
      const double io_gain =
          global_stats.mean_db_reads > 0
              ? 100.0 *
                    (global_stats.mean_db_reads - hot_stats.mean_db_reads) /
                    global_stats.mean_db_reads
              : 0.0;
      std::printf(
          "%-10.0f %-11.2f %-11.2f %-14.1f %-14.1f %-11.1f %-11.1f %-10.1f\n",
          r, global_stats.mean_ms, hot_stats.mean_ms,
          global_stats.mean_threads_pruned, hot_stats.mean_threads_pruned,
          global_stats.mean_db_reads, hot_stats.mean_db_reads, io_gain);
    }
    std::printf("\n");
  }
  return 0;
}
