#include "core/sharded_engine.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/serde.h"
#include "core/cover.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace tklus {

namespace {

constexpr uint64_t kRouterMagic = 0x7274527375754b54ULL;  // "TkLusRtr"
constexpr char kRouterFile[] = "/router.bin";

std::string MakeTempShardedDir() {
  static std::atomic<uint64_t> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tklus_sharded_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir.string();
}

// Merges tid-sorted candidate streams into the exact global candidate
// sequence. The streams are disjoint (every post has one owning cell,
// hence one owning shard), so this reproduces what one global combine
// would have produced — no dedup step needed.
std::vector<ResolvedCandidate> MergeCandidateStreams(
    std::vector<std::vector<ResolvedCandidate>> streams) {
  if (streams.size() == 1) return std::move(streams[0]);
  size_t total = 0;
  for (const auto& s : streams) total += s.size();
  std::vector<ResolvedCandidate> merged;
  merged.reserve(total);
  std::vector<size_t> next(streams.size(), 0);
  while (merged.size() < total) {
    int best = -1;
    for (size_t s = 0; s < streams.size(); ++s) {
      if (next[s] >= streams[s].size()) continue;
      if (best < 0 || streams[s][next[s]].posting.tid <
                          streams[best][next[best]].posting.tid) {
        best = static_cast<int>(s);
      }
    }
    merged.push_back(std::move(streams[best][next[best]]));
    ++next[best];
  }
  return merged;
}

struct ShardedMetricFamilies {
  Counter* queries;
  Counter* shard_failures;

  static const ShardedMetricFamilies& Get() {
    static const ShardedMetricFamilies* families = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      auto* f = new ShardedMetricFamilies();
      f->queries = reg.GetCounter(
          "tklus_sharded_queries_total",
          "Scatter-gather queries answered by a ShardedEngine.");
      f->shard_failures = reg.GetCounter(
          "tklus_shard_failures_total",
          "Per-shard fetch failures during sharded queries (degraded or "
          "failed results).");
      return f;
    }();
    return *families;
  }
};

}  // namespace

std::string ShardedEngine::ShardDir(int shard) const {
  return options_.working_dir + "/shard_" + std::to_string(shard);
}

void ShardedEngine::AppendPlaneChildren(TweetId sid,
                                        std::vector<TweetId>* out) const {
  const auto it = children_.find(sid);
  if (it == children_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

void ShardedEngine::AbsorbPostLocked(const Post& post,
                                     const Tokenizer& tokenizer) {
  const std::vector<std::string> terms = tokenizer.Tokenize(post.text);
  tracker_.AddPost(post, terms);
  for (const std::string& term : terms) {
    vocabulary_.Add(term);
  }
  if (post.IsReplyOrForward()) {
    // Same ordering discipline as SocialGraph::AddPost: appends arrive in
    // ascending sid order, out-of-order inserts fall back to sorted
    // insertion.
    auto& kids = children_[post.rsid];
    if (kids.empty() || kids.back() < post.sid) {
      kids.push_back(post.sid);
    } else {
      kids.insert(std::upper_bound(kids.begin(), kids.end(), post.sid),
                  post.sid);
    }
  }
  if (post.HasLocation()) {
    user_locations_[post.uid].push_back(post.location);
  }
  max_sid_ = std::max(max_sid_, post.sid);
}

void ShardedEngine::FinishConstruction() {
  QueryProcessor::Options proc_options;
  proc_options.scoring = options_.shard.scoring;
  proc_options.thread_depth = options_.shard.thread_depth;
  // Null index/db: the plane never fetches — it only ranks candidate
  // streams the shards fetched. Thread descents run over children_.
  processor_ = std::make_unique<QueryProcessor>(
      nullptr, nullptr, &bounds_, &user_locations_,
      Tokenizer(options_.shard.tokenizer), proc_options);
  if (options_.shard.popularity_cache_entries > 0) {
    popularity_cache_ = std::make_unique<PopularityCache>(
        PopularityCache::Options{options_.shard.popularity_cache_entries});
    processor_->set_popularity_cache(popularity_cache_.get());
  }
  processor_->set_extra_children_source(
      [this](TweetId sid, std::vector<TweetId>* out) {
        AppendPlaneChildren(sid, out);
      });
  const ShardedMetricFamilies& families = ShardedMetricFamilies::Get();
  sharded_queries_total_ = families.queries;
  shard_failures_total_ = families.shard_failures;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Build(
    const Dataset& dataset, Options options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  auto engine = std::unique_ptr<ShardedEngine>(new ShardedEngine());
  if (options.working_dir.empty()) {
    options.working_dir = MakeTempShardedDir();
    engine->owns_working_dir_ = true;
  } else {
    std::filesystem::create_directories(options.working_dir);
  }
  engine->options_ = options;
  engine->router_ = ShardRouter(options.num_shards);

  // Plane first (same construction order as TkLusEngine::Build): corpus
  // vocabulary, hot stems, thread tracker fed in sid order, Def. 9
  // profiles, exact bounds. Vocabulary frequencies come from
  // BuildVocabulary here, so the build loop must not Add() terms again.
  const Tokenizer tokenizer(options.shard.tokenizer);
  {
    WriterMutexLock lock(&engine->plane_mu_);
    engine->vocabulary_ = dataset.BuildVocabulary(tokenizer);
    engine->tracker_ = ThreadTracker(ThreadTracker::Options{
        options.shard.thread_depth, options.shard.scoring.epsilon});
    std::vector<std::string> hot_stems;
    for (const auto& [term, freq] :
         engine->vocabulary_.TopTerms(options.shard.num_hot_keywords)) {
      hot_stems.push_back(term);
    }
    engine->tracker_.SetHotTerms(hot_stems);
    std::vector<const Post*> ordered;
    ordered.reserve(dataset.size());
    for (const Post& p : dataset.posts()) ordered.push_back(&p);
    std::sort(ordered.begin(), ordered.end(),
              [](const Post* a, const Post* b) { return a->sid < b->sid; });
    for (const Post* p : ordered) {
      engine->tracker_.AddPost(*p, tokenizer.Tokenize(p->text));
      if (p->IsReplyOrForward()) {
        engine->children_[p->rsid].push_back(p->sid);  // sid order: sorted
      }
      if (p->HasLocation()) {
        engine->user_locations_[p->uid].push_back(p->location);
      }
      engine->max_sid_ = std::max(engine->max_sid_, p->sid);
    }
    engine->bounds_ = UpperBoundRegistry::FromParts(
        engine->tracker_.global_bound(), engine->tracker_.HotBounds());
  }

  // Shards: each one a complete TkLusEngine over its owned slice.
  const std::vector<Dataset> parts =
      engine->router_.PartitionPosts(dataset, options.shard.geohash_length);
  engine->shards_.reserve(options.num_shards);
  for (int s = 0; s < options.num_shards; ++s) {
    TkLusEngine::Options shard_options = options.shard;
    shard_options.working_dir = engine->ShardDir(s);
    shard_options.auto_checkpoint = false;
    if (options.shard_options_hook) {
      options.shard_options_hook(s, &shard_options);
    }
    auto shard = TkLusEngine::Build(parts[s], shard_options);
    if (!shard.ok()) return shard.status();
    engine->shards_.push_back(std::move(*shard));
  }
  // The index may normalize options (Open does the same below).
  engine->options_.shard.geohash_length =
      engine->shards_[0]->options().geohash_length;
  {
    WriterMutexLock lock(&engine->plane_mu_);
    engine->FinishConstruction();
  }
  return engine;
}

ShardedEngine::~ShardedEngine() {
  shards_.clear();  // release shard WAL/DB handles before removal
  if (owns_working_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(options_.working_dir, ec);
    if (ec) {
      TKLUS_LOG(Warning) << "failed to remove sharded working dir "
                         << options_.working_dir << ": " << ec.message();
    }
  }
}

Status ShardedEngine::AppendBatch(const Dataset& batch) {
  if (batch.size() == 0) return Status::Ok();
  MutexLock ingest_lock(&ingest_mu_);
  {
    ReaderMutexLock lock(&plane_mu_);
    int64_t previous = max_sid_;
    for (const Post& p : batch.posts()) {
      if (p.sid <= previous) {
        return Status::InvalidArgument(
            "batch posts must be sorted with sids greater than all indexed "
            "posts (sid " + std::to_string(p.sid) + " after " +
            std::to_string(previous) + ")");
      }
      previous = p.sid;
    }
  }
  // The whole absorb — plane first, then every owning shard — runs under
  // the exclusive plane lock. Queries hold it shared across their entire
  // scatter-gather, so a batch becomes visible atomically: no reader can
  // observe shard 0 with the batch and shard 1 without it (the prefix-
  // consistency oracle in the concurrency stress test pins this). Within
  // the window, the plane absorbs BEFORE any shard: bounds/φ state must
  // lead candidate visibility so Alg. 5 pruning stays admissible even in
  // the failed-batch case below, where the window ends with the plane
  // ahead of some shards (bounds larger than needed — safe). The cost
  // relative to the single engine is that readers do not overlap the
  // shard WAL fsyncs; the ack barrier is unchanged (every owning shard's
  // fsync before OK).
  const Tokenizer tokenizer(options_.shard.tokenizer);
  WriterMutexLock lock(&plane_mu_);
  if (popularity_cache_) popularity_cache_->Invalidate();
  for (const Post& p : batch.posts()) {
    AbsorbPostLocked(p, tokenizer);
  }
  bounds_ = UpperBoundRegistry::FromParts(tracker_.global_bound(),
                                          tracker_.HotBounds());
  // Scatter: each owning shard WAL-appends + fsyncs its sub-batch. An
  // error fails the batch as a whole; earlier shards keep their durable
  // sub-batches (cross-shard appends are not atomic under failure —
  // DESIGN.md §16 failure semantics).
  const std::vector<Dataset> parts =
      router_.PartitionPosts(batch, options_.shard.geohash_length);
  for (int s = 0; s < num_shards(); ++s) {
    if (parts[s].size() == 0) continue;
    const Status status = shards_[s]->AppendBatch(parts[s]);
    if (!status.ok()) {
      TKLUS_LOG(Warning) << "shard " << s
                         << " append failed: " << status.ToString();
      return status;
    }
  }
  return Status::Ok();
}

Status ShardedEngine::SerializePlane(std::string* payload) const {
  ReaderMutexLock lock(&plane_mu_);
  std::ostringstream out(std::ios::binary);
  serde::WriteU64(out, kRouterMagic);
  serde::WriteU64(out, static_cast<uint64_t>(options_.num_shards));
  serde::WriteDouble(out, options_.shard.scoring.alpha);
  serde::WriteDouble(out, options_.shard.scoring.n_norm);
  serde::WriteDouble(out, options_.shard.scoring.epsilon);
  serde::WriteU64(out, static_cast<uint64_t>(options_.shard.thread_depth));
  serde::WriteDouble(out, bounds_.global_bound());
  serde::WriteU64(out, bounds_.hot_bounds().size());
  for (const auto& [term, bound] : bounds_.hot_bounds()) {
    serde::WriteString(out, term);
    serde::WriteDouble(out, bound);
  }
  serde::WriteU64(out, user_locations_.size());
  for (const auto& [uid, locations] : user_locations_) {
    serde::WriteI64(out, uid);
    serde::WriteU64(out, locations.size());
    for (const GeoPoint& p : locations) {
      serde::WriteDouble(out, p.lat);
      serde::WriteDouble(out, p.lon);
    }
  }
  serde::WriteU64(out, vocabulary_.size());
  for (Vocabulary::TermId id = 0; id < vocabulary_.size(); ++id) {
    serde::WriteString(out, vocabulary_.term(id));
    serde::WriteU64(out, vocabulary_.frequency(id));
  }
  serde::WriteI64(out, max_sid_);
  tracker_.Save(out);
  serde::WriteU64(out, children_.size());
  for (const auto& [parent, kids] : children_) {
    serde::WriteI64(out, parent);
    serde::WriteU64(out, kids.size());
    for (const TweetId kid : kids) serde::WriteI64(out, kid);
  }
  if (!out) return Status::IoError("short write saving router.bin");
  *payload = out.str();
  return Status::Ok();
}

Status ShardedEngine::Save() {
  MutexLock ingest_lock(&ingest_mu_);
  // Plane image first: its watermark M must cover every WAL record the
  // shard checkpoints below are about to truncate. A crash between the
  // two steps leaves shard WALs intact (shards run auto_checkpoint=off),
  // so Open re-absorbs everything past M from the shard deltas.
  std::string payload;
  TKLUS_RETURN_IF_ERROR(SerializePlane(&payload));
  TKLUS_RETURN_IF_ERROR(fileio::WriteFileAtomic(
      options_.working_dir + kRouterFile, payload,
      options_.shard.fault_injector));
  for (int s = 0; s < num_shards(); ++s) {
    TKLUS_RETURN_IF_ERROR(shards_[s]->Save(ShardDir(s)));
  }
  return Status::Ok();
}

Status ShardedEngine::MergeAllNow() {
  for (int s = 0; s < num_shards(); ++s) {
    TKLUS_RETURN_IF_ERROR(shards_[s]->MergeNow());
  }
  return Status::Ok();
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& dir, Options options) {
  auto engine = std::unique_ptr<ShardedEngine>(new ShardedEngine());
  options.working_dir = dir;
  engine->owns_working_dir_ = false;

  Result<std::string> payload = fileio::ReadFileVerified(dir + kRouterFile);
  if (!payload.ok()) return payload.status();
  std::istringstream in(std::move(*payload), std::ios::binary);
  {
    WriterMutexLock lock(&engine->plane_mu_);
    uint64_t magic = 0;
    if (!serde::ReadU64(in, &magic) || magic != kRouterMagic) {
      return Status::Corruption("not a sharded router image");
    }
    uint64_t num_shards = 0, depth = 0;
    if (!serde::ReadU64(in, &num_shards) ||
        !serde::ReadDouble(in, &options.shard.scoring.alpha) ||
        !serde::ReadDouble(in, &options.shard.scoring.n_norm) ||
        !serde::ReadDouble(in, &options.shard.scoring.epsilon) ||
        !serde::ReadU64(in, &depth)) {
      return Status::Corruption("truncated router image header");
    }
    if (num_shards < 1) {
      return Status::Corruption("router image has no shards");
    }
    options.num_shards = static_cast<int>(num_shards);
    options.shard.thread_depth = static_cast<int>(depth);
    double global_bound = 0;
    uint64_t hot_count = 0;
    if (!serde::ReadDouble(in, &global_bound) ||
        !serde::ReadU64(in, &hot_count)) {
      return Status::Corruption("truncated router image bounds");
    }
    std::unordered_map<std::string, double> hot_bounds;
    for (uint64_t i = 0; i < hot_count; ++i) {
      std::string term;
      double bound = 0;
      if (!serde::ReadString(in, &term) || !serde::ReadDouble(in, &bound)) {
        return Status::Corruption("truncated router image hot bound");
      }
      hot_bounds.emplace(std::move(term), bound);
    }
    engine->bounds_ =
        UpperBoundRegistry::FromParts(global_bound, std::move(hot_bounds));
    uint64_t user_count = 0;
    if (!serde::ReadU64(in, &user_count)) {
      return Status::Corruption("truncated router image profiles");
    }
    for (uint64_t u = 0; u < user_count; ++u) {
      int64_t uid = 0;
      uint64_t n = 0;
      if (!serde::ReadI64(in, &uid) || !serde::ReadU64(in, &n)) {
        return Status::Corruption("truncated router image profile");
      }
      auto& locations = engine->user_locations_[uid];
      locations.resize(n);
      for (uint64_t i = 0; i < n; ++i) {
        if (!serde::ReadDouble(in, &locations[i].lat) ||
            !serde::ReadDouble(in, &locations[i].lon)) {
          return Status::Corruption("truncated router image location");
        }
      }
    }
    uint64_t vocab_count = 0;
    if (!serde::ReadU64(in, &vocab_count)) {
      return Status::Corruption("truncated router image vocabulary");
    }
    for (uint64_t i = 0; i < vocab_count; ++i) {
      std::string term;
      uint64_t freq = 0;
      if (!serde::ReadString(in, &term) || !serde::ReadU64(in, &freq)) {
        return Status::Corruption("truncated router image vocabulary entry");
      }
      engine->vocabulary_.Add(term, freq);
    }
    if (!serde::ReadI64(in, &engine->max_sid_)) {
      return Status::Corruption("truncated router image watermark");
    }
    TKLUS_RETURN_IF_ERROR(engine->tracker_.Load(in));
    uint64_t parent_count = 0;
    if (!serde::ReadU64(in, &parent_count)) {
      return Status::Corruption("truncated router image children");
    }
    for (uint64_t p = 0; p < parent_count; ++p) {
      int64_t parent = 0;
      uint64_t n = 0;
      if (!serde::ReadI64(in, &parent) || !serde::ReadU64(in, &n)) {
        return Status::Corruption("truncated router image children entry");
      }
      auto& kids = engine->children_[parent];
      kids.resize(n);
      for (uint64_t i = 0; i < n; ++i) {
        if (!serde::ReadI64(in, &kids[i])) {
          return Status::Corruption("truncated router image child sid");
        }
      }
    }
  }
  engine->options_ = options;
  engine->router_ = ShardRouter(options.num_shards);

  // Shards recover independently: each Open restores its checkpoint and
  // replays its own WAL tail into its delta.
  engine->shards_.reserve(options.num_shards);
  for (int s = 0; s < options.num_shards; ++s) {
    TkLusEngine::Options shard_options = options.shard;
    shard_options.working_dir = engine->ShardDir(s);
    shard_options.auto_checkpoint = false;
    if (options.shard_options_hook) {
      options.shard_options_hook(s, &shard_options);
    }
    auto shard = TkLusEngine::Open(engine->ShardDir(s), shard_options);
    if (!shard.ok()) return shard.status();
    engine->shards_.push_back(std::move(*shard));
  }
  engine->options_.shard.geohash_length =
      engine->shards_[0]->options().geohash_length;

  // Plane catch-up: every shard delta post past the plane watermark was
  // appended after the last Save — re-absorb them in global sid order,
  // exactly the order the original appends fed the tracker. (A shard
  // fold without checkpoint leaves its posts in the replayed WAL tail,
  // so they reappear in the delta here; nothing is lost between M and
  // the crash.)
  {
    int64_t watermark;
    {
      ReaderMutexLock lock(&engine->plane_mu_);
      watermark = engine->max_sid_;
    }
    Dataset pending;
    for (int s = 0; s < options.num_shards; ++s) {
      const Dataset snapshot = engine->shards_[s]->delta_index().Snapshot();
      for (const Post& p : snapshot.posts()) {
        if (p.sid > watermark) pending.Add(p);
      }
    }
    pending.SortBySid();
    const Tokenizer tokenizer(engine->options_.shard.tokenizer);
    WriterMutexLock lock(&engine->plane_mu_);
    for (const Post& p : pending.posts()) {
      engine->AbsorbPostLocked(p, tokenizer);
    }
    if (pending.size() > 0) {
      engine->bounds_ = UpperBoundRegistry::FromParts(
          engine->tracker_.global_bound(), engine->tracker_.HotBounds());
    }
    engine->FinishConstruction();
  }
  return engine;
}

Result<ShardedQueryResult> ShardedEngine::Query(const TkLusQuery& query) {
  TKLUS_RETURN_IF_ERROR(
      QueryProcessor::ValidateQuery(query, /*tweet_query=*/false));
  Stopwatch timer;
  ShardedQueryResult result;
  result.stats.Reset();
  std::shared_ptr<Trace> trace;
  if (query.trace) trace = std::make_shared<Trace>();
  Tracer tracer(trace.get());
  ReaderMutexLock lock(&plane_mu_);
  Tracer::Span root = tracer.StartSpan(stage::kQuery);

  // Cover once, at the router — the identical ComputeCover the shard
  // processors use, so fan-out and data placement can never drift.
  Tracer::Span cover = tracer.StartSpan(stage::kCover);
  const std::vector<std::string> cells =
      ComputeCover(query, options_.shard.geohash_length);
  result.stats.cover_cells = cells.size();
  cover.AddCounter("cover_cells", cells.size());
  const std::vector<std::string> terms =
      processor_->NormalizeKeywords(query.keywords);
  cover.End();
  if (terms.empty()) {
    root.End();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    result.stats.trace = std::move(trace);
    sharded_queries_total_->Increment();
    return result;
  }

  // Scatter: only shards owning cover cells are touched.
  const std::vector<std::vector<std::string>> shard_cells =
      router_.PartitionCells(cells);
  std::vector<std::vector<ResolvedCandidate>> streams;
  size_t touched = 0;
  Status first_failure = Status::Ok();
  for (int s = 0; s < num_shards(); ++s) {
    if (shard_cells[s].empty()) continue;
    ++touched;
    Tracer::Span span = tracer.StartSpan(stage::kShardFetch);
    span.AddCounter("shard", static_cast<uint64_t>(s));
    Result<std::vector<ResolvedCandidate>> fetched =
        shards_[s]->FetchCandidates(query, terms, shard_cells[s],
                                    /*count_postings_lists=*/true, &tracer,
                                    &result.stats);
    span.End();
    ShardOutcome outcome;
    outcome.shard = s;
    if (fetched.ok()) {
      streams.push_back(std::move(*fetched));
    } else {
      outcome.status = fetched.status();
      shard_failures_total_->Increment();
      if (first_failure.ok()) first_failure = fetched.status();
      if (options_.strict) return fetched.status();
      result.degraded = true;
    }
    result.outcomes.push_back(std::move(outcome));
  }
  if (touched > 0 && streams.empty()) {
    return Status::Unavailable("all " + std::to_string(touched) +
                               " touched shards failed: " +
                               first_failure.ToString());
  }

  // Gather: tid-ordered merge of disjoint streams == the single engine's
  // combined candidate sequence (over the surviving shards).
  Tracer::Span merge = tracer.StartSpan(stage::kShardMerge);
  const std::vector<ResolvedCandidate> candidates =
      MergeCandidateStreams(std::move(streams));
  merge.AddCounter("candidates", candidates.size());
  merge.End();

  // Rank at the plane with the single engine's own loop, driven by the
  // global bounds/tracker/profiles.
  TKLUS_RETURN_IF_ERROR(processor_->RankUsers(
      query, terms, candidates, tracer, &result.users, &result.stats));
  root.End();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  result.stats.trace = std::move(trace);
  sharded_queries_total_->Increment();
  return result;
}

Result<ShardedTweetQueryResult> ShardedEngine::QueryTweets(
    const TkLusQuery& query) {
  TKLUS_RETURN_IF_ERROR(
      QueryProcessor::ValidateQuery(query, /*tweet_query=*/true));
  Stopwatch timer;
  ShardedTweetQueryResult result;
  result.stats.Reset();
  std::shared_ptr<Trace> trace;
  if (query.trace) trace = std::make_shared<Trace>();
  Tracer tracer(trace.get());
  ReaderMutexLock lock(&plane_mu_);
  Tracer::Span root = tracer.StartSpan(stage::kQuery);

  Tracer::Span cover = tracer.StartSpan(stage::kCover);
  const std::vector<std::string> cells =
      ComputeCover(query, options_.shard.geohash_length);
  result.stats.cover_cells = cells.size();
  cover.AddCounter("cover_cells", cells.size());
  const std::vector<std::string> terms =
      processor_->NormalizeKeywords(query.keywords);
  cover.End();
  if (terms.empty()) {
    root.End();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    result.stats.trace = std::move(trace);
    sharded_queries_total_->Increment();
    return result;
  }

  const std::vector<std::vector<std::string>> shard_cells =
      router_.PartitionCells(cells);
  std::vector<std::vector<ResolvedCandidate>> streams;
  size_t touched = 0;
  Status first_failure = Status::Ok();
  for (int s = 0; s < num_shards(); ++s) {
    if (shard_cells[s].empty()) continue;
    ++touched;
    Tracer::Span span = tracer.StartSpan(stage::kShardFetch);
    span.AddCounter("shard", static_cast<uint64_t>(s));
    Result<std::vector<ResolvedCandidate>> fetched =
        shards_[s]->FetchCandidates(query, terms, shard_cells[s],
                                    /*count_postings_lists=*/false, &tracer,
                                    &result.stats);
    span.End();
    ShardOutcome outcome;
    outcome.shard = s;
    if (fetched.ok()) {
      streams.push_back(std::move(*fetched));
    } else {
      outcome.status = fetched.status();
      shard_failures_total_->Increment();
      if (first_failure.ok()) first_failure = fetched.status();
      if (options_.strict) return fetched.status();
      result.degraded = true;
    }
    result.outcomes.push_back(std::move(outcome));
  }
  if (touched > 0 && streams.empty()) {
    return Status::Unavailable("all " + std::to_string(touched) +
                               " touched shards failed: " +
                               first_failure.ToString());
  }

  Tracer::Span merge = tracer.StartSpan(stage::kShardMerge);
  const std::vector<ResolvedCandidate> candidates =
      MergeCandidateStreams(std::move(streams));
  merge.AddCounter("candidates", candidates.size());
  merge.End();

  TKLUS_RETURN_IF_ERROR(processor_->RankTweets(query, candidates, tracer,
                                               &result.tweets, &result.stats));
  root.End();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  result.stats.trace = std::move(trace);
  sharded_queries_total_->Increment();
  return result;
}

}  // namespace tklus
