#include "index/postings_ops.h"

#include <algorithm>

namespace tklus {

std::vector<Posting> IntersectPostings(
    const std::vector<std::vector<Posting>>& lists) {
  if (lists.empty()) return {};
  if (lists.size() == 1) return lists[0];
  // Galloping-free k-way: iterate the shortest list, probe the others.
  size_t shortest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[shortest].size()) shortest = i;
  }
  std::vector<Posting> out;
  std::vector<size_t> cursors(lists.size(), 0);
  for (const Posting& candidate : lists[shortest]) {
    uint32_t tf_sum = candidate.tf;
    bool in_all = true;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (i == shortest) continue;
      const std::vector<Posting>& list = lists[i];
      size_t& cur = cursors[i];
      while (cur < list.size() && list[cur].tid < candidate.tid) ++cur;
      if (cur >= list.size() || list[cur].tid != candidate.tid) {
        in_all = false;
        break;
      }
      tf_sum += list[cur].tf;
    }
    if (in_all) out.push_back(Posting{candidate.tid, tf_sum});
  }
  return out;
}

std::vector<Posting> UnionPostings(
    const std::vector<std::vector<Posting>>& lists) {
  std::vector<Posting> out;
  std::vector<size_t> cursors(lists.size(), 0);
  while (true) {
    // Find the smallest current tid across lists.
    TweetId min_tid = 0;
    bool any = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i].size()) continue;
      const TweetId tid = lists[i][cursors[i]].tid;
      if (!any || tid < min_tid) {
        min_tid = tid;
        any = true;
      }
    }
    if (!any) break;
    uint32_t tf_sum = 0;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] < lists[i].size() &&
          lists[i][cursors[i]].tid == min_tid) {
        tf_sum += lists[i][cursors[i]].tf;
        ++cursors[i];
      }
    }
    out.push_back(Posting{min_tid, tf_sum});
  }
  return out;
}

std::vector<Posting> MergeDisjoint(const std::vector<Posting>& a,
                                   const std::vector<Posting>& b) {
  std::vector<Posting> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             [](const Posting& x, const Posting& y) { return x.tid < y.tid; });
  return out;
}

}  // namespace tklus
