// Figure 11: variant Kendall tau between Sum and Max rankings for
// multi-keyword queries under AND and OR semantics. Paper: AND stays above
// 0.95 at every radius; OR dips to just below 0.8 but remains consistent.
#include <cstdio>

#include "bench_util.h"
#include "core/kendall.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 11 — Kendall tau, Sum vs Max, multi-keyword",
                "AND semantic: tau > 0.95; OR semantic: tau >= ~0.8");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  auto engine = bench::MakeEngine(corpus.dataset);
  const auto workload = MakeQueryWorkload(corpus, datagen::WorkloadOptions{});

  for (const Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    std::printf("%s semantic:\n", sem == Semantics::kAnd ? "AND" : "OR");
    std::printf("%-6s %-10s %-10s\n", "|W|", "radius km", "tau top-10");
    for (size_t kw = 2; kw <= 3; ++kw) {
      const auto group = datagen::FilterByKeywordCount(workload, kw);
      for (const double r : {5.0, 10.0, 20.0, 50.0}) {
        double tau = 0;
        int counted = 0;
        for (TkLusQuery q : group) {
          q.radius_km = r;
          q.k = 10;
          q.semantics = sem;
          q.ranking = Ranking::kSum;
          auto sum_result = engine->Query(q);
          q.ranking = Ranking::kMax;
          auto max_result = engine->Query(q);
          if (!sum_result.ok() || !max_result.ok()) return 1;
          if (sum_result->users.empty() && max_result->users.empty()) {
            continue;
          }
          tau += KendallTauVariant(sum_result->UserIds(),
                                   max_result->UserIds());
          ++counted;
        }
        std::printf("%-6zu %-10.0f %-10.3f\n", kw, r,
                    counted ? tau / counted : 1.0);
      }
    }
    std::printf("\n");
  }
  return 0;
}
