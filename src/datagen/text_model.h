#ifndef TKLUS_DATAGEN_TEXT_MODEL_H_
#define TKLUS_DATAGEN_TEXT_MODEL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tklus {
namespace datagen {

// The 30 "meaningful keywords" of §VI-B1. The first ten are exactly the
// paper's Table II hot keywords, in the paper's frequency-rank order; the
// generator draws topics Zipf-distributed over this list so the corpus
// reproduces that ranking.
const std::vector<std::string>& TopicWords();

// Modifier words that co-occur with topics (cuisines, genres, styles) —
// the second keyword of AOL-style phrases like "restaurant seafood".
const std::vector<std::string>& ModifierWords();

// Generic filler vocabulary (content words that survive stop-word
// removal but carry no query meaning).
const std::vector<std::string>& FillerWords();

// Modifiers that plausibly attach to a topic (e.g. cuisine words for
// "restaurant", genres for "film"). Used by both the tweet composer and
// the multi-keyword query workload so AND queries are satisfiable.
std::vector<std::string> ModifiersForTopic(std::string_view topic);

}  // namespace datagen
}  // namespace tklus

#endif  // TKLUS_DATAGEN_TEXT_MODEL_H_
