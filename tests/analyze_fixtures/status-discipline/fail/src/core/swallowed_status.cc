// Fixture: fallible locals that are never consumed must trip
// `status-discipline`.
namespace tklus {

Status Flaky();
Result<int> Answer();

void SwallowStatus() {
  Status st = Flaky();  // never consumed: must fire
}

void SwallowResult() {
  Result<int> answer = Answer();  // never consumed: must fire
}

}  // namespace tklus
