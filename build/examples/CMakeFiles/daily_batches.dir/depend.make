# Empty dependencies file for daily_batches.
# This may be replaced when dependencies are built.
