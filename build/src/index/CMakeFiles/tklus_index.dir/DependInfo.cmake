
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/hybrid_index.cc" "src/index/CMakeFiles/tklus_index.dir/hybrid_index.cc.o" "gcc" "src/index/CMakeFiles/tklus_index.dir/hybrid_index.cc.o.d"
  "/root/repo/src/index/posting.cc" "src/index/CMakeFiles/tklus_index.dir/posting.cc.o" "gcc" "src/index/CMakeFiles/tklus_index.dir/posting.cc.o.d"
  "/root/repo/src/index/postings_ops.cc" "src/index/CMakeFiles/tklus_index.dir/postings_ops.cc.o" "gcc" "src/index/CMakeFiles/tklus_index.dir/postings_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tklus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tklus_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tklus_text.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tklus_model.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/tklus_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
