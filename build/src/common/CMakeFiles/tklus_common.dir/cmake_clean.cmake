file(REMOVE_RECURSE
  "CMakeFiles/tklus_common.dir/logging.cc.o"
  "CMakeFiles/tklus_common.dir/logging.cc.o.d"
  "CMakeFiles/tklus_common.dir/status.cc.o"
  "CMakeFiles/tklus_common.dir/status.cc.o.d"
  "CMakeFiles/tklus_common.dir/string_util.cc.o"
  "CMakeFiles/tklus_common.dir/string_util.cc.o.d"
  "libtklus_common.a"
  "libtklus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
