#include "common/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace tklus {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace tklus
