#ifndef TKLUS_CORE_THREAD_TRACKER_H_
#define TKLUS_CORE_THREAD_TRACKER_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "model/post.h"

namespace tklus {

// Incrementally maintains the Def. 4 thread popularity of *every* post
// (any keyword-matching tweet — root or reply — can become a query
// candidate whose thread Alg. 1 constructs) and the §V-B upper bounds
// (exact global + per-hot-keyword maxima) as posts arrive in timestamp
// order. A new reply contributes 1/(d+1) to the subtree score of each
// ancestor at hop distance d < max_depth, so appending a post costs
// O(max_depth) — replacing the offline full-corpus pass when a new batch
// arrives (the paper's periodic batch setting).
//
// Invariants: parents must be tracked before their replies (guaranteed by
// sid = timestamp ordering), and the hot-keyword set is fixed once (the
// paper likewise precomputes its Table-II hot keywords offline).
class ThreadTracker {
 public:
  struct Options {
    int max_depth = 6;     // Alg. 1 depth cap d
    double epsilon = 0.1;  // Def. 4 singleton smoothing
  };

  explicit ThreadTracker(Options options) : options_(options) {}
  ThreadTracker() : ThreadTracker(Options{}) {}

  // Fixes the hot-keyword set (normalized stems, at most 16). Call before
  // AddPost.
  void SetHotTerms(const std::vector<std::string>& stems);

  // Tracks one post. `terms` are its normalized index terms. Replies whose
  // parent was never tracked are treated as thread roots of their own.
  void AddPost(const Post& post, const std::vector<std::string>& terms);

  // Current Def. 4 popularity of the thread rooted at `sid` (epsilon if it
  // has no replies or is unknown).
  double Popularity(TweetId sid) const;

  // Exact maxima (the UpperBoundRegistry inputs).
  double global_bound() const { return global_bound_; }
  std::unordered_map<std::string, double> HotBounds() const;

  size_t tracked_posts() const { return entries_.size(); }
  const Options& options() const { return options_; }

  // Persistence (engine Save/Open path).
  void Save(std::ostream& out) const;
  Status Load(std::istream& in);

 private:
  struct Entry {
    TweetId parent = kNoId;
    uint16_t hot_mask = 0;
    uint32_t replies = 0;      // contributing replies in this subtree
    double reply_score = 0.0;  // sum of 1/level over them (Def. 4)
  };

  void BumpBounds(const Entry& entry);

  Options options_;
  std::vector<std::string> hot_terms_;              // bit index -> stem
  std::unordered_map<std::string, int> hot_index_;  // stem -> bit index
  std::unordered_map<TweetId, Entry> entries_;
  std::vector<double> hot_bounds_;  // aligned with hot_terms_
  double global_bound_ = 0.0;
};

}  // namespace tklus

#endif  // TKLUS_CORE_THREAD_TRACKER_H_
