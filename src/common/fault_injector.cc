#include "common/fault_injector.h"

#include <algorithm>

namespace tklus {

void FaultInjector::SetFaultRate(const std::string& site, FaultKind kind,
                                 double probability) {
  MutexLock lock(&mu_);
  rules_[site].rate[static_cast<int>(kind)] =
      std::clamp(probability, 0.0, 1.0);
}

void FaultInjector::FailNext(const std::string& site, FaultKind kind,
                             int count) {
  MutexLock lock(&mu_);
  SiteRules& rules = rules_[site];
  if (kind == FaultKind::kCorruption) {
    rules.scheduled_corrupt += count;
    return;
  }
  if (kind == FaultKind::kTornWrite) {
    rules.scheduled_torn += count;
    return;
  }
  rules.scheduled_fail.insert(rules.scheduled_fail.end(),
                              static_cast<size_t>(std::max(count, 0)), kind);
}

void FaultInjector::Clear() {
  MutexLock lock(&mu_);
  rules_.clear();
}

void FaultInjector::ClearSite(const std::string& site) {
  MutexLock lock(&mu_);
  rules_.erase(site);
}

Status FaultInjector::MaybeFail(const std::string& site,
                                const std::string& detail) {
  MutexLock lock(&mu_);
  const auto it = rules_.find(site);
  if (it == rules_.end()) return Status::Ok();
  SiteRules& rules = it->second;
  FaultKind kind;
  if (!rules.scheduled_fail.empty()) {
    kind = rules.scheduled_fail.front();
    rules.scheduled_fail.erase(rules.scheduled_fail.begin());
  } else {
    const double transient = rules.rate[static_cast<int>(FaultKind::kTransient)];
    const double permanent = rules.rate[static_cast<int>(FaultKind::kPermanent)];
    if (transient <= 0 && permanent <= 0) return Status::Ok();
    const double u = rng_.NextDouble();
    if (u < transient) {
      kind = FaultKind::kTransient;
    } else if (u < transient + permanent) {
      kind = FaultKind::kPermanent;
    } else {
      return Status::Ok();
    }
  }
  ++injected_[site];
  if (kind == FaultKind::kTransient) {
    return Status::Unavailable("injected transient fault at " + site + ": " +
                               detail);
  }
  return Status::IoError("injected permanent fault at " + site + ": " +
                         detail);
}

bool FaultInjector::MaybeCorrupt(const std::string& site, char* data,
                                 size_t len) {
  if (data == nullptr || len == 0) return false;
  MutexLock lock(&mu_);
  const auto it = rules_.find(site);
  if (it == rules_.end()) return false;
  SiteRules& rules = it->second;
  if (rules.scheduled_corrupt > 0) {
    --rules.scheduled_corrupt;
  } else {
    const double rate = rules.rate[static_cast<int>(FaultKind::kCorruption)];
    if (rate <= 0 || !rng_.Bernoulli(rate)) return false;
  }
  ++injected_[site];
  const size_t index = rng_.UniformInt(static_cast<uint64_t>(len));
  data[index] ^= static_cast<char>(1 + rng_.UniformInt(uint64_t{255}));
  return true;
}

std::optional<size_t> FaultInjector::MaybeTornWrite(const std::string& site,
                                                    size_t len) {
  if (len == 0) return std::nullopt;
  MutexLock lock(&mu_);
  const auto it = rules_.find(site);
  if (it == rules_.end()) return std::nullopt;
  SiteRules& rules = it->second;
  if (rules.scheduled_torn > 0) {
    --rules.scheduled_torn;
  } else {
    const double rate = rules.rate[static_cast<int>(FaultKind::kTornWrite)];
    if (rate <= 0 || !rng_.Bernoulli(rate)) return std::nullopt;
  }
  ++injected_[site];
  // A strict prefix: UniformInt(len) is in [0, len), so the full buffer
  // never lands — a torn write always leaves an unparseable tail.
  return static_cast<size_t>(rng_.UniformInt(static_cast<uint64_t>(len)));
}

uint64_t FaultInjector::injected(const std::string& site) const {
  MutexLock lock(&mu_);
  const auto it = injected_.find(site);
  return it == injected_.end() ? 0 : it->second;
}

uint64_t FaultInjector::total_injected() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [site, count] : injected_) total += count;
  return total;
}

}  // namespace tklus
