#ifndef TKLUS_COMMON_FILE_IO_H_
#define TKLUS_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/fault_injector.h"
#include "common/status.h"

namespace tklus {
namespace fileio {

// Crash-safe, corruption-evident whole-file persistence for saved engine
// artifacts (index image, DFS image, engine state).
//
// On-disk layout:   [payload bytes][16-byte footer]
// Footer layout:    [u32 version][u32 crc32(payload)][u64 magic]
// (magic last, so a reader can locate the footer from the end of any file
// regardless of payload length; all fields little-endian).
//
// WriteFileAtomic writes payload + footer to `path + ".tmp"`, fsyncs, then
// renames over `path` — a crash mid-save leaves either the old file or the
// new one, never a torn mix. ReadFileVerified re-derives the CRC and
// returns kCorruption on any byte-level damage (bad magic, bad version,
// truncated footer, CRC mismatch), kNotFound when the file is absent.
//
// `faults` (optional) drives deterministic crash simulation: site
// faults::kFileWrite is consulted before the temp-file write (fail or torn
// write — a torn write persists a prefix of the temp file and fails, the
// destination name is never touched) and faults::kFileRename before the
// rename (the completed temp file is left behind, exactly the state a
// crash between write and rename leaves on disk).

Status WriteFileAtomic(const std::string& path, std::string_view payload,
                       FaultInjector* faults = nullptr);

// Same atomic temp-write + fsync + rename protocol, but without the
// checksum footer — for plain-format exports (e.g. TSV) that other tools
// read. Same fault sites as WriteFileAtomic.
Status WriteFilePlain(const std::string& path, std::string_view payload,
                      FaultInjector* faults = nullptr);

Result<std::string> ReadFileVerified(const std::string& path);

// Whole-file read with no footer expectation (live DB files, plain
// exports). kNotFound when absent.
Result<std::string> ReadFileRaw(const std::string& path);

}  // namespace fileio
}  // namespace tklus

#endif  // TKLUS_COMMON_FILE_IO_H_
