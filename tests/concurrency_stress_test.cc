// Multi-threaded stress tests for every component with a lock. These are
// most valuable under -DTKLUS_SANITIZE=thread: TSan then certifies at
// runtime what the Clang thread-safety annotations (src/common/mutex.h)
// check statically — no data races in the query-vs-append path, the DFS,
// the fault injector, the MapReduce counters or the log sink.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/tweet_generator.h"
#include "dfs/dfs.h"
#include "mapreduce/counters.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page_guard.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

GeneratedCorpus MakeCorpus(size_t tweets) {
  TweetGenerator::Options opts;
  opts.num_users = 120;
  opts.num_tweets = tweets;
  opts.num_cities = 2;
  return TweetGenerator::Generate(opts);
}

// Split a dataset into [0, cut) and [cut, n) by position (sids ascend).
std::pair<Dataset, Dataset> Split(const Dataset& all, size_t cut) {
  Dataset first, second;
  for (size_t i = 0; i < all.size(); ++i) {
    (i < cut ? first : second).Add(all.posts()[i]);
  }
  return {std::move(first), std::move(second)};
}

// ------------------------------------------------------ engine

// Queries hammer the engine from several threads while another thread
// appends fresh batches: the engine-wide lock must serialize them with no
// torn index state, no lost appends and (under TSan) no races.
TEST(ConcurrencyStressTest, EngineQueryVsAppend) {
  const GeneratedCorpus corpus = MakeCorpus(3000);
  auto [seed, rest] = Split(corpus.dataset, 1500);
  // Three follow-up batches, appended while queries are in flight.
  std::vector<Dataset> batches;
  {
    auto [b0, tail] = Split(rest, 500);
    auto [b1, b2] = Split(tail, 500);
    batches.push_back(std::move(b0));
    batches.push_back(std::move(b1));
    batches.push_back(std::move(b2));
  }

  TkLusEngine::Options options;
  options.mapreduce_workers = 2;
  auto engine = TkLusEngine::Build(seed, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  TkLusQuery query;
  query.location = corpus.city_centers[0];
  query.radius_km = 25.0;
  query.keywords = {"hotel", "restaurant"};
  query.k = 10;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      TkLusQuery q = query;
      q.ranking = (t % 2 == 0) ? Ranking::kSum : Ranking::kMax;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto result = (*engine)->Query(q);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        queries_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread appender([&] {
    for (const Dataset& batch : batches) {
      const Status st = (*engine)->AppendBatch(batch);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  appender.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(queries_ok.load(), 0u);

  // Every appended post is now visible: a quiescent engine built from the
  // full dataset in one shot ranks identically.
  auto oracle = TkLusEngine::Build(corpus.dataset, options);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  const auto got = (*engine)->Query(query);
  const auto want = (*oracle)->Query(query);
  ASSERT_TRUE(got.ok() && want.ok());
  ASSERT_EQ(got->users.size(), want->users.size());
  for (size_t i = 0; i < want->users.size(); ++i) {
    EXPECT_EQ(got->users[i].uid, want->users[i].uid) << "rank " << i;
    EXPECT_NEAR(got->users[i].score, want->users[i].score, 1e-9);
  }
}

// Readers mix Query and QueryTweets while a writer appends batches.
// Because appends take the engine lock exclusively, every result a reader
// observes must correspond to a *complete* dataset prefix — never a torn
// half-applied batch. We enumerate the serial oracle for each of the four
// prefixes up front and require every mid-flight observation to equal one
// of them (and the final state to equal the full-dataset oracle).
TEST(ConcurrencyStressTest, MixedReadersSeeOnlyPrefixStates) {
  const GeneratedCorpus corpus = MakeCorpus(2400);
  constexpr size_t kSeedSize = 1200;
  constexpr size_t kBatchSize = 400;
  auto [seed, rest] = Split(corpus.dataset, kSeedSize);
  std::vector<Dataset> batches;
  {
    auto [b0, tail] = Split(rest, kBatchSize);
    auto [b1, b2] = Split(tail, kBatchSize);
    batches.push_back(std::move(b0));
    batches.push_back(std::move(b1));
    batches.push_back(std::move(b2));
  }

  TkLusEngine::Options options;
  options.mapreduce_workers = 2;

  TkLusQuery user_query;
  user_query.location = corpus.city_centers[0];
  user_query.radius_km = 25.0;
  user_query.keywords = {"hotel", "restaurant"};
  user_query.k = 10;
  TkLusQuery tweet_query = user_query;
  tweet_query.ranking = Ranking::kMax;

  // Serial oracles: a fresh engine per prefix (seed plus 0..3 batches).
  std::vector<QueryResult> user_oracles;
  std::vector<TweetQueryResult> tweet_oracles;
  for (size_t prefix = 0; prefix <= batches.size(); ++prefix) {
    auto [head, dropped] =
        Split(corpus.dataset, kSeedSize + prefix * kBatchSize);
    (void)dropped;
    auto oracle = TkLusEngine::Build(head, options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto users = (*oracle)->Query(user_query);
    auto tweets = (*oracle)->QueryTweets(tweet_query);
    ASSERT_TRUE(users.ok() && tweets.ok());
    user_oracles.push_back(std::move(*users));
    tweet_oracles.push_back(std::move(*tweets));
  }

  const auto matches_users = [&](const QueryResult& got) {
    for (const QueryResult& want : user_oracles) {
      if (got.users.size() != want.users.size()) continue;
      bool same = true;
      for (size_t i = 0; i < want.users.size() && same; ++i) {
        same = got.users[i].uid == want.users[i].uid &&
               std::abs(got.users[i].score - want.users[i].score) < 1e-9;
      }
      if (same) return true;
    }
    return false;
  };
  const auto matches_tweets = [&](const TweetQueryResult& got) {
    for (const TweetQueryResult& want : tweet_oracles) {
      if (got.tweets.size() != want.tweets.size()) continue;
      bool same = true;
      for (size_t i = 0; i < want.tweets.size() && same; ++i) {
        same = got.tweets[i].sid == want.tweets[i].sid &&
               got.tweets[i].uid == want.tweets[i].uid &&
               std::abs(got.tweets[i].score - want.tweets[i].score) < 1e-9;
      }
      if (same) return true;
    }
    return false;
  };

  auto engine = TkLusEngine::Build(seed, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (t % 2 == 0) {
          const auto got = (*engine)->Query(user_query);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_TRUE(matches_users(*got)) << "non-prefix user ranking";
        } else {
          const auto got = (*engine)->QueryTweets(tweet_query);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_TRUE(matches_tweets(*got)) << "non-prefix tweet ranking";
        }
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread appender([&] {
    for (const Dataset& batch : batches) {
      const Status st = (*engine)->AppendBatch(batch);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  appender.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(observations.load(), 0u);

  // Final state is the full-dataset oracle; no reader leaked a pin.
  const auto final_users = (*engine)->Query(user_query);
  ASSERT_TRUE(final_users.ok());
  ASSERT_EQ(final_users->users.size(), user_oracles.back().users.size());
  for (size_t i = 0; i < final_users->users.size(); ++i) {
    EXPECT_EQ(final_users->users[i].uid, user_oracles.back().users[i].uid);
    EXPECT_NEAR(final_users->users[i].score,
                user_oracles.back().users[i].score, 1e-9);
  }
  EXPECT_EQ((*engine)->metadata_db().buffer_pool().pinned_page_count(), 0u);
}

// The durable streaming path under concurrency: a writer streams batches
// through WAL-acked AppendBatch while the *background merge* folds the
// delta into the hybrid index and re-checkpoints (truncating the WAL)
// mid-stream. Readers must still only ever observe complete batch
// prefixes — a fold moving posts from delta to base must be invisible to
// queries — and reader latency is sampled so a fold that stalls the read
// path shows up as a p99 cliff in the logged numbers.
TEST(ConcurrencyStressTest, ReadersStayPrefixConsistentDuringDeltaStreaming) {
  const GeneratedCorpus corpus = MakeCorpus(2400);
  constexpr size_t kSeedSize = 1200;
  constexpr size_t kBatchSize = 200;
  constexpr size_t kNumBatches = 6;
  auto [seed, rest] = Split(corpus.dataset, kSeedSize);
  std::vector<Dataset> batches;
  Dataset tail = std::move(rest);
  for (size_t b = 0; b + 1 < kNumBatches; ++b) {
    auto [head, next] = Split(tail, kBatchSize);
    batches.push_back(std::move(head));
    tail = std::move(next);
  }
  batches.push_back(std::move(tail));

  TkLusEngine::Options options;
  options.mapreduce_workers = 2;
  // Fold eagerly: with 200-post batches a 256-post threshold has the
  // background merge (and, once Save establishes the checkpoint, the WAL
  // truncation) racing the readers repeatedly during the stream.
  options.delta_merge_posts = 256;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tklus_stream_stress_" + std::to_string(::getpid()));
  options.working_dir = dir.string();

  TkLusQuery query;
  query.location = corpus.city_centers[0];
  query.radius_km = 25.0;
  query.keywords = {"hotel", "restaurant"};
  query.k = 10;

  // Serial per-prefix oracles (merging plays no part in a quiescent
  // build, so plain engines suffice).
  std::vector<QueryResult> oracles;
  for (size_t prefix = 0; prefix <= kNumBatches; ++prefix) {
    auto [head, dropped] =
        Split(corpus.dataset, kSeedSize + prefix * kBatchSize);
    (void)dropped;
    TkLusEngine::Options oracle_options;
    oracle_options.mapreduce_workers = 2;
    auto oracle = TkLusEngine::Build(head, oracle_options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto result = (*oracle)->Query(query);
    ASSERT_TRUE(result.ok());
    oracles.push_back(std::move(*result));
  }
  const auto matches_prefix = [&](const QueryResult& got) {
    for (const QueryResult& want : oracles) {
      if (got.users.size() != want.users.size()) continue;
      bool same = true;
      for (size_t i = 0; i < want.users.size() && same; ++i) {
        same = got.users[i].uid == want.users[i].uid &&
               std::abs(got.users[i].score - want.users[i].score) < 1e-9;
      }
      if (same) return true;
    }
    return false;
  };

  auto engine = TkLusEngine::Build(seed, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Checkpoint into the working dir so the merges also truncate the WAL
  // while the readers run.
  ASSERT_TRUE((*engine)->Save(dir.string()).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<std::vector<uint64_t>> latencies_ns(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto start = std::chrono::steady_clock::now();
        const auto got = (*engine)->Query(query);
        const auto elapsed = std::chrono::steady_clock::now() - start;
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ASSERT_TRUE(matches_prefix(*got))
            << "reader observed a non-prefix state mid-stream";
        latencies_ns[t].push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
      }
    });
  }
  std::thread appender([&] {
    for (const Dataset& batch : batches) {
      const Status st = (*engine)->AppendBatch(batch);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  appender.join();
  for (std::thread& t : readers) t.join();

  // Quiesce: fold whatever delta remains, then the final ranking must be
  // the full-dataset oracle whether served from base, delta, or both.
  ASSERT_TRUE((*engine)->MergeNow().ok());
  EXPECT_TRUE((*engine)->delta_index().empty());
  EXPECT_EQ((*engine)->wal().record_count(), 0u);  // checkpoint truncated
  const auto final_result = (*engine)->Query(query);
  ASSERT_TRUE(final_result.ok());
  ASSERT_EQ(final_result->users.size(), oracles.back().users.size());
  for (size_t i = 0; i < final_result->users.size(); ++i) {
    EXPECT_EQ(final_result->users[i].uid, oracles.back().users[i].uid);
    EXPECT_NEAR(final_result->users[i].score, oracles.back().users[i].score,
                1e-9);
  }
  EXPECT_EQ((*engine)->metadata_db().buffer_pool().pinned_page_count(), 0u);

  std::vector<uint64_t> all;
  for (const auto& per_thread : latencies_ns) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  ASSERT_GT(all.size(), 0u);
  std::sort(all.begin(), all.end());
  const uint64_t p50 = all[all.size() / 2];
  const uint64_t p99 = all[all.size() * 99 / 100];
  TKLUS_LOG(Info) << "delta-streaming readers: " << all.size()
                  << " queries, p50 " << p50 / 1000 << "us, p99 "
                  << p99 / 1000 << "us during "
                  << kNumBatches * kBatchSize << " streamed posts";

  engine->reset();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ sharded engine

// Cross-shard queries race an appender streaming batches through the
// scatter-gather router. Appends hold the plane lock exclusively across
// the whole shard fan-out while queries hold it shared, so every observed
// ranking must equal one of the serial per-prefix oracles — a reader that
// catches shard 0 with a batch and shard 1 without it would produce a
// non-prefix ranking and fail here. TSan runs certify the ingest/plane/
// shard lock discipline on top.
TEST(ConcurrencyStressTest, ShardedQueriesStayPrefixConsistentUnderAppends) {
  const GeneratedCorpus corpus = MakeCorpus(2400);
  constexpr size_t kSeedSize = 1200;
  constexpr size_t kBatchSize = 400;
  auto [seed, rest] = Split(corpus.dataset, kSeedSize);
  std::vector<Dataset> batches;
  {
    auto [b0, tail] = Split(rest, kBatchSize);
    auto [b1, b2] = Split(tail, kBatchSize);
    batches.push_back(std::move(b0));
    batches.push_back(std::move(b1));
    batches.push_back(std::move(b2));
  }

  TkLusQuery query;
  query.location = corpus.city_centers[0];
  query.radius_km = 25.0;
  query.keywords = {"hotel", "restaurant"};
  query.k = 10;

  // Serial per-prefix oracles from single engines (ShardedEngine == one
  // TkLusEngine is pinned by the differential oracle suite).
  TkLusEngine::Options oracle_options;
  oracle_options.mapreduce_workers = 2;
  std::vector<QueryResult> oracles;
  for (size_t prefix = 0; prefix <= batches.size(); ++prefix) {
    auto [head, dropped] =
        Split(corpus.dataset, kSeedSize + prefix * kBatchSize);
    (void)dropped;
    auto oracle = TkLusEngine::Build(head, oracle_options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto result = (*oracle)->Query(query);
    ASSERT_TRUE(result.ok());
    oracles.push_back(std::move(*result));
  }
  const auto matches_prefix = [&](const std::vector<RankedUser>& got) {
    for (const QueryResult& want : oracles) {
      if (got.size() != want.users.size()) continue;
      bool same = true;
      for (size_t i = 0; i < want.users.size() && same; ++i) {
        same = got[i].uid == want.users[i].uid &&
               std::abs(got[i].score - want.users[i].score) < 1e-9;
      }
      if (same) return true;
    }
    return false;
  };

  ShardedEngine::Options options;
  options.num_shards = 4;
  options.shard.mapreduce_workers = 2;
  auto engine = ShardedEngine::Build(seed, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      TkLusQuery q = query;
      q.ranking = (t % 2 == 0) ? Ranking::kSum : Ranking::kMax;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto got = (*engine)->Query(q);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ASSERT_FALSE(got->degraded);
        if (q.ranking == Ranking::kSum) {
          ASSERT_TRUE(matches_prefix(got->users))
              << "sharded reader observed a torn cross-shard state";
        }
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread appender([&] {
    for (const Dataset& batch : batches) {
      const Status st = (*engine)->AppendBatch(batch);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  appender.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(observations.load(), 0u);

  // Quiesce + fold: the final ranking equals the full-dataset oracle
  // whether candidates serve from shard bases or shard deltas.
  ASSERT_TRUE((*engine)->MergeAllNow().ok());
  const auto final_result = (*engine)->Query(query);
  ASSERT_TRUE(final_result.ok());
  ASSERT_TRUE(matches_prefix(final_result->users));
  ASSERT_EQ(final_result->users.size(), oracles.back().users.size());
  for (size_t i = 0; i < final_result->users.size(); ++i) {
    EXPECT_EQ(final_result->users[i].uid, oracles.back().users[i].uid);
  }
}

// ------------------------------------------------------ buffer pool

// Raw pool-level stress: readers hammer overlapping pages through a pool
// far smaller than the page set, forcing concurrent misses, evictions and
// pin/unpin races. Every read must see the page's stamped content and no
// pin may leak.
TEST(ConcurrencyStressTest, BufferPoolConcurrentReaders) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tklus_pool_stress_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    Result<DiskManager> dm = DiskManager::Open((dir / "db").string());
    ASSERT_TRUE(dm.ok());
    constexpr int kPages = 256;
    BufferPool pool(&*dm, 32);  // 8x more pages than frames
    for (int i = 0; i < kPages; ++i) {
      Result<PageGuard> page = PageGuard::New(&pool);
      ASSERT_TRUE(page.ok());
      const int64_t stamp = page->page_id() * 2654435761LL;
      std::memcpy((*page)->data(), &stamp, sizeof(stamp));
    }
    ASSERT_TRUE(pool.FlushAll().ok());

    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&pool, &failed, t] {
        uint64_t state = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(t + 1);
        for (int i = 0; i < 4000 && !failed.load(std::memory_order_relaxed);
             ++i) {
          state = state * 6364136223846793005ULL + 1442695040888963407ULL;
          const PageId pid = static_cast<PageId>((state >> 24) % kPages);
          Result<PageGuard> page = PageGuard::Fetch(&pool, pid);
          if (!page.ok()) {
            failed.store(true);
            break;
          }
          int64_t stamp = 0;
          std::memcpy(&stamp, (*page)->data(), sizeof(stamp));
          if (stamp != pid * 2654435761LL) {
            failed.store(true);
            break;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_FALSE(failed.load()) << "fetch failure or torn page content";
    EXPECT_EQ(pool.pinned_page_count(), 0u);
    EXPECT_GT(pool.stats().evictions, 0u);
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ DFS

TEST(ConcurrencyStressTest, DfsConcurrentAppendAndRead) {
  SimulatedDfs::Options opts;
  opts.block_size = 256;
  SimulatedDfs dfs(opts);
  ASSERT_TRUE(dfs.Append("shared", std::string(4096, 's')).ok());

  constexpr int kWriters = 3;
  constexpr int kAppendsPerWriter = 50;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&dfs, w] {
      const std::string path = "file-" + std::to_string(w);
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        ASSERT_TRUE(dfs.Append(path, std::string(100, 'a' + w)).ok());
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::string out;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(dfs.ReadAt("shared", 0, 4096, &out).ok());
      (void)dfs.List();
      (void)dfs.total_bytes();
      (void)dfs.node_stats();
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  for (int w = 0; w < kWriters; ++w) {
    auto size = dfs.FileSize("file-" + std::to_string(w));
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, static_cast<uint64_t>(kAppendsPerWriter) * 100);
  }
}

// ------------------------------------------------------ fault injector

TEST(ConcurrencyStressTest, FaultInjectorConcurrentRulesAndChecks) {
  FaultInjector injector(/*seed=*/42);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector, t] {
      const std::string site = "site-" + std::to_string(t % 2);
      char buffer[16] = {0};
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch (i % 4) {
          case 0:
            injector.SetFaultRate(site, FaultKind::kTransient, 0.5);
            break;
          case 1:
            injector.MaybeFail(site, "stress").IgnoreError();
            break;
          case 2:
            (void)injector.MaybeCorrupt(site, buffer, sizeof(buffer));
            break;
          default:
            (void)injector.injected(site);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(injector.total_injected(), injector.injected("site-0"));
}

// ------------------------------------------------------ counters

TEST(ConcurrencyStressTest, CountersConcurrentIncrementsSumExactly) {
  Counters counters;
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counters.Increment("shared");
        if (i % 16 == 0) (void)counters.Snapshot();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counters.Get("shared"),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

// ------------------------------------------------------ metrics registry

// Hammers one private MetricsRegistry from many threads: racing first-use
// registration (all threads ask for the same names), sharded counter
// bumps, histogram observes, and concurrent Expose() readers. TSan runs
// certify the registry mutex + relaxed shard atomics; the final values
// prove no increment was lost.
TEST(ConcurrencyStressTest, MetricsRegistryConcurrentUseSumsExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Re-Get every iteration: registration must be race-free and
        // return the same stable pointer to every thread.
        registry.GetCounter("tklus_stress_total", "stress counter")
            ->Increment();
        registry.GetGauge("tklus_stress_gauge", "stress gauge")->Add(1);
        registry
            .GetHistogram("tklus_stress_ms", "stress histogram",
                          {1.0, 10.0, 100.0})
            ->Observe(static_cast<double>(i % 200));
        if (i % 64 == 0) {
          const std::string text = registry.Expose();
          EXPECT_FALSE(text.empty());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(registry.GetCounter("tklus_stress_total", "")->Value(), kTotal);
  EXPECT_EQ(registry.GetGauge("tklus_stress_gauge", "")->Value(),
            static_cast<int64_t>(kTotal));
  Histogram* h =
      registry.GetHistogram("tklus_stress_ms", "", {1.0, 10.0, 100.0});
  EXPECT_EQ(h->Count(), kTotal);
  // +Inf cumulative equals the total; the sum is an exact integer series
  // (each thread observes 0..199 ten times), so even the CAS-looped
  // double accumulation must land exactly.
  EXPECT_EQ(h->CumulativeCount(h->bounds().size()), kTotal);
  const double per_thread_sum = (199.0 * 200.0 / 2.0) * (kOpsPerThread / 200);
  EXPECT_DOUBLE_EQ(h->Sum(), per_thread_sum * kThreads);
}

// Shared FakeClock advanced by one thread while others read it through
// Stopwatches: the atomic clock plus per-thread tracers must be clean
// under TSan (Tracer itself is documented single-thread, one per query).
TEST(ConcurrencyStressTest, FakeClockSharedAcrossThreads) {
  FakeClock clock;
  std::atomic<bool> stop{false};
  std::thread advancer([&] {
    while (!stop.load(std::memory_order_relaxed)) clock.AdvanceNanos(10);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&clock] {
      Stopwatch sw(&clock);
      uint64_t last = 0;
      for (int i = 0; i < 5000; ++i) {
        const uint64_t now = sw.ElapsedNanos();
        EXPECT_GE(now, last);  // monotone per reader
        last = now;
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  advancer.join();
}

// ------------------------------------------------------ logging

TEST(ConcurrencyStressTest, ConcurrentLoggingDoesNotRace) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // exercise the level check, mute output
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        TKLUS_LOG(Info) << "thread " << t << " message " << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SetLogLevel(saved);
}

}  // namespace
}  // namespace tklus
