// Fixture: IgnoreError() is the sanctioned discard; a C-style `(void)`
// parameter list is not a discard and must not fire either.
namespace tklus {

Status Flaky();
int TakesNoArgs(void);

void Discard() { Flaky().IgnoreError(); }

}  // namespace tklus
