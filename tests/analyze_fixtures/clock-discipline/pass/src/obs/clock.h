// Fixture stand-in for the real obs/clock.h: the obs module is the one
// place the std::chrono clocks may appear, so nothing may fire here.
#ifndef FIXTURE_OBS_CLOCK_H_
#define FIXTURE_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace tklus {

class MonotonicClock {
 public:
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace tklus

#endif  // FIXTURE_OBS_CLOCK_H_
