// Fixture stand-in for the wrapper header: this is the one place a
// std::mutex may appear, so nothing may fire here.
#ifndef FIXTURE_MUTEX_H_
#define FIXTURE_MUTEX_H_

#include <mutex>

namespace tklus {

class Mutex {
 private:
  std::mutex mu_;  // exempt: the wrapper's own member
};

}  // namespace tklus

#endif  // FIXTURE_MUTEX_H_
