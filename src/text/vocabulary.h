#ifndef TKLUS_TEXT_VOCABULARY_H_
#define TKLUS_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tklus {

// Bidirectional term <-> id dictionary with corpus frequencies. Backs the
// Table II "top-10 frequent keywords" statistic and the hot-keyword bound
// registry.
class Vocabulary {
 public:
  using TermId = uint32_t;
  static constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

  Vocabulary() = default;

  // Returns the id for `term`, interning it on first sight, and bumps its
  // frequency by `count`.
  TermId Add(std::string_view term, uint64_t count = 1);

  // kInvalidTerm if absent. Does not intern.
  TermId Lookup(std::string_view term) const;

  // Precondition: id < size().
  const std::string& term(TermId id) const { return terms_[id]; }
  uint64_t frequency(TermId id) const { return freqs_[id]; }

  size_t size() const { return terms_.size(); }
  uint64_t total_occurrences() const { return total_; }

  // Terms sorted by descending frequency (ties: lexicographic), at most
  // `top_n` of them. This is Table II's "frequency rank".
  std::vector<std::pair<std::string, uint64_t>> TopTerms(size_t top_n) const;

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
  std::vector<uint64_t> freqs_;
  uint64_t total_ = 0;
};

}  // namespace tklus

#endif  // TKLUS_TEXT_VOCABULARY_H_
