#include "analyze/summaries.h"

#include <deque>
#include <optional>

#include "analyze/callgraph.h"

namespace tklus::analyze {

namespace {

// Witness call chains stay readable: beyond this depth the tail is
// elided (the site file:line in the diagnostic still pins the end).
constexpr size_t kMaxWitness = 8;

std::string DisplayOf(const ProgramFunction& fn) {
  return !fn.qualified.empty()
             ? fn.qualified
             : fn.path + ":" + std::to_string(fn.line);
}

// The caller-side view of a callee's transitive acquire: same lock and
// site, witness chain extended with the caller.
TransitiveAcquire Lift(const ProgramFunction& caller,
                       const TransitiveAcquire& acquire) {
  TransitiveAcquire lifted = acquire;
  if (lifted.path.size() < kMaxWitness) {
    lifted.path.insert(lifted.path.begin(), DisplayOf(caller));
  }
  return lifted;
}

// Folds every callee summary of `fn` into `fn`'s own; true if anything
// new was learned.
bool FoldCallees(ProgramModel* program, int fn_id) {
  ProgramFunction& fn = program->functions[fn_id];
  bool changed = false;
  for (const CallEdge& edge : fn.callees) {
    if (edge.callee == fn_id) continue;  // direct recursion adds nothing
    // Snapshot by index, not reference: callee == some other SCC member
    // whose summary this same sweep grows is fine, the next sweep picks
    // it up.
    const size_t count =
        program->functions[edge.callee].summary.acquires.size();
    for (size_t i = 0; i < count; ++i) {
      const TransitiveAcquire acquire =
          program->functions[edge.callee].summary.acquires[i];
      changed |= fn.summary.AddAcquire(Lift(fn, acquire));
    }
  }
  return changed;
}

// The entry-held greatest fixpoint: starting from "unknown = everything"
// for functions with same-class callers, repeatedly replace each
// function's entry set with REQUIRES ∪ ⋂ over same-class caller edges of
// (caller's entry set ∪ locks held at the call site). Monotonically
// decreasing, so it terminates; the result can only *add* held locks to
// what guard-discipline sees at an access, so propagation is strictly
// false-positive-safe. Cross-class edges are excluded on purpose: lock
// member names alias across classes (every class calls its mutex `mu_`),
// and an edge from another class holding *its* `mu_` must not vouch for
// ours.
void PropagateEntryHeld(ProgramModel* program) {
  const int n = static_cast<int>(program->functions.size());
  // caller_edges[f]: (caller id, held-at-site) for same-class callers.
  std::vector<std::vector<std::pair<int, const std::vector<std::string>*>>>
      caller_edges(n);
  for (int caller = 0; caller < n; ++caller) {
    const ProgramFunction& from = program->functions[caller];
    if (from.class_name.empty()) continue;
    for (const CallEdge& edge : from.callees) {
      if (edge.callee == caller) continue;
      if (program->functions[edge.callee].class_name != from.class_name) {
        continue;
      }
      caller_edges[edge.callee].emplace_back(caller, &edge.held);
    }
  }
  for (int f = 0; f < n; ++f) {
    ProgramFunction& fn = program->functions[f];
    fn.entry_held = fn.requires_locks;
    fn.entry_held_universal = !caller_edges[f].empty();
  }
  bool changed = true;
  int sweeps = 0;
  while (changed && sweeps++ < n + 2) {
    changed = false;
    for (int f = 0; f < n; ++f) {
      if (caller_edges[f].empty()) continue;
      ProgramFunction& fn = program->functions[f];
      // nullopt = the universal set (all edges still unknown).
      std::optional<std::set<std::string>> meet;
      for (const auto& [caller, held] : caller_edges[f]) {
        const ProgramFunction& from = program->functions[caller];
        if (from.entry_held_universal) continue;  // Universe term
        std::set<std::string> term = from.entry_held;
        term.insert(held->begin(), held->end());
        if (!meet.has_value()) {
          meet = std::move(term);
          continue;
        }
        for (auto it = meet->begin(); it != meet->end();) {
          it = term.count(*it) > 0 ? std::next(it) : meet->erase(it);
        }
      }
      if (!meet.has_value()) continue;  // still universal
      meet->insert(fn.requires_locks.begin(), fn.requires_locks.end());
      if (fn.entry_held_universal || *meet != fn.entry_held) {
        fn.entry_held_universal = false;
        fn.entry_held = std::move(*meet);
        changed = true;
      }
    }
  }
}

}  // namespace

void ComputeSummaries(ProgramModel* program) {
  // Bottom-up over SCCs: singleton components fold their callees once;
  // cyclic components iterate until no member learns a new acquire. The
  // (lock, site_path) dedup in AddAcquire bounds every summary, so the
  // inner loop terminates.
  for (const std::vector<int>& scc : program->SccOrder()) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const int fn_id : scc) {
        changed |= FoldCallees(program, fn_id);
      }
      if (scc.size() == 1) break;
    }
  }
  PropagateEntryHeld(program);
}

void ComputeHotPaths(const HotPathConfig& config, ProgramModel* program) {
  if (!config.loaded) return;
  std::deque<int> queue;
  const auto mark_root = [&](int id) {
    ProgramFunction& fn = program->functions[id];
    if (fn.hot) return;
    fn.hot = true;
    fn.hot_path = {DisplayOf(fn)};
    queue.push_back(id);
  };
  for (const std::string& root : config.roots) {
    // A root may be spelled qualified or plain; every body matching the
    // spelling is a root (roots are declared, not resolved — flagging
    // both overloads of a declared hot entry point is the safe reading).
    const auto q = program->by_qualified.find(root);
    if (q != program->by_qualified.end()) {
      for (const int id : q->second) mark_root(id);
      continue;
    }
    const auto n = program->by_name.find(root);
    if (n != program->by_name.end()) {
      for (const int id : n->second) mark_root(id);
    }
  }
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    // Copy the witness — marking callees may reallocate functions? No:
    // marking only mutates existing entries, but the vector reference
    // stays valid; copy anyway so `hot_path` reads stay coherent while
    // the callee's own path is being assembled.
    const std::vector<std::string> witness = program->functions[v].hot_path;
    for (const CallEdge& edge : program->functions[v].callees) {
      ProgramFunction& callee = program->functions[edge.callee];
      if (callee.hot) continue;
      if (config.IsAllowed(callee.qualified, callee.last_name)) continue;
      callee.hot = true;
      callee.hot_path = witness;
      if (callee.hot_path.size() < kMaxWitness) {
        callee.hot_path.push_back(DisplayOf(callee));
      }
      queue.push_back(edge.callee);
    }
  }
}

}  // namespace tklus::analyze
