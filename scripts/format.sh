#!/usr/bin/env bash
# clang-format wrapper over every C++ file in the tree (.clang-format is
# Google-style, matching the existing code).
#
# Usage:
#   scripts/format.sh          rewrite files in place
#   scripts/format.sh --check  exit 1 if any file needs reformatting (CI)
set -u

cd "$(dirname "$0")/.." || exit 2

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format: clang-format not found on PATH; skipping (install LLVM to run)"
  # Missing tool is not a style violation: CI installs clang-format, local
  # toolchains may not have it.
  exit 0
fi

mode="-i"
if [ "${1:-}" = "--check" ]; then
  mode="--dry-run -Werror"
fi

# shellcheck disable=SC2086  # $mode intentionally splits into flags
find src tests bench examples -name '*.h' -o -name '*.cc' -o -name '*.cpp' \
  | grep -v 'tests/analyze_fixtures/' \
  | xargs clang-format $mode
rc=$?
if [ $rc -ne 0 ]; then
  echo "format: files need reformatting (run scripts/format.sh)"
fi
exit $rc
