#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "core/engine.h"
#include "datagen/tweet_generator.h"
#include "dfs/dfs.h"

namespace tklus {
namespace {

using datagen::TweetGenerator;

// End-to-end fault injection through the whole engine stack: a shared
// seeded FaultInjector is wired into the DFS read path at Build time and
// driven per test. Fault rules are cleared after every test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TweetGenerator::Options gen;
    gen.num_users = 200;
    gen.num_tweets = 5000;
    gen.num_cities = 3;
    corpus_ = new datagen::GeneratedCorpus(TweetGenerator::Generate(gen));
    injector_ = new FaultInjector(/*seed=*/42);
    TkLusEngine::Options options;
    options.fault_injector = injector_;
    auto engine = TkLusEngine::Build(corpus_->dataset, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = engine->release();
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete injector_;
    delete corpus_;
    engine_ = nullptr;
    injector_ = nullptr;
    corpus_ = nullptr;
  }

  void TearDown() override {
    injector_->Clear();
    for (int n = 0; n < engine_->dfs().options().num_data_nodes; ++n) {
      ASSERT_TRUE(engine_->dfs().SetNodeDown(n, false).ok());
    }
  }

  static TkLusQuery HotelQuery() {
    TkLusQuery q;
    q.location = corpus_->city_centers[0];
    q.radius_km = 12.0;
    q.keywords = {"hotel"};
    q.k = 5;
    return q;
  }

  static datagen::GeneratedCorpus* corpus_;
  static FaultInjector* injector_;
  static TkLusEngine* engine_;
};

datagen::GeneratedCorpus* FaultInjectionTest::corpus_ = nullptr;
FaultInjector* FaultInjectionTest::injector_ = nullptr;
TkLusEngine* FaultInjectionTest::engine_ = nullptr;

TEST_F(FaultInjectionTest, PermanentDfsFaultSurfacesAsIoError) {
  // Sanity: the query works.
  auto ok_result = engine_->Query(HotelQuery());
  ASSERT_TRUE(ok_result.ok());
  ASSERT_FALSE(ok_result->users.empty());

  // A permanent fault fails the postings fetch; retry does not mask it and
  // the error propagates as a Status, not a crash or a silent empty
  // result.
  injector_->FailNext(faults::kDfsRead, FaultKind::kPermanent, 1);
  auto faulty = engine_->Query(HotelQuery());
  ASSERT_FALSE(faulty.ok());
  EXPECT_EQ(faulty.status().code(), StatusCode::kIoError);

  // The fault was one-shot: the same query succeeds again with the same
  // answer.
  auto recovered = engine_->Query(HotelQuery());
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->users.size(), ok_result->users.size());
  for (size_t i = 0; i < recovered->users.size(); ++i) {
    EXPECT_EQ(recovered->users[i].uid, ok_result->users[i].uid);
  }
}

TEST_F(FaultInjectionTest, TransientFaultsAreRetriedAway) {
  auto baseline = engine_->Query(HotelQuery());
  ASSERT_TRUE(baseline.ok());

  // Two consecutive transient faults on the first postings read: both are
  // absorbed by the bounded retry (default budget 4 attempts) and the
  // query still succeeds, with the retries visible in the stats.
  injector_->FailNext(faults::kDfsRead, FaultKind::kTransient, 2);
  auto retried = engine_->Query(HotelQuery());
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_GE(retried->stats.dfs_read_retries, 2u);
  EXPECT_GE(retried->stats.injected_faults, 2u);
  ASSERT_EQ(retried->users.size(), baseline->users.size());
  for (size_t i = 0; i < retried->users.size(); ++i) {
    EXPECT_EQ(retried->users[i].uid, baseline->users[i].uid);
  }
}

TEST_F(FaultInjectionTest, SeededTransientWorkloadCompletesWithoutFailures) {
  // The acceptance workload: a 5% transient fault rate on every DFS read.
  // With a 4-attempt retry budget the chance a fetch exhausts its retries
  // is 0.05^4; across this whole workload no query may fail.
  injector_->SetFaultRate(faults::kDfsRead, FaultKind::kTransient, 0.05);
  const std::vector<std::string> keywords = {"hotel", "pizza", "coffee",
                                             "music", "game"};
  int failed = 0;
  uint64_t retries = 0;
  for (const GeoPoint& city : corpus_->city_centers) {
    for (const std::string& keyword : keywords) {
      TkLusQuery q;
      q.location = city;
      q.radius_km = 12.0;
      q.keywords = {keyword};
      q.k = 5;
      auto result = engine_->Query(q);
      if (!result.ok()) {
        ++failed;
      } else {
        retries += result->stats.dfs_read_retries;
      }
    }
  }
  EXPECT_EQ(failed, 0);
  // The workload is large enough that some faults must have fired (and
  // been retried) — otherwise this test would not be exercising anything.
  EXPECT_GT(injector_->injected(faults::kDfsRead), 0u);
  EXPECT_GT(retries, 0u);
}

TEST_F(FaultInjectionTest, SustainedPermanentFaultsFailEveryQuery) {
  injector_->SetFaultRate(faults::kDfsRead, FaultKind::kPermanent, 1.0);
  for (int i = 0; i < 3; ++i) {
    auto result = engine_->Query(HotelQuery());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
  injector_->Clear();
  EXPECT_TRUE(engine_->Query(HotelQuery()).ok());
}

TEST_F(FaultInjectionTest, DeadNodeYieldsUnavailableAndRecovers) {
  // Take down every data node: whatever node holds the postings, the fetch
  // sees kUnavailable. Retry cannot mask a node that stays down, so the
  // query fails with kUnavailable (the signal federation degrades on).
  for (int n = 0; n < engine_->dfs().options().num_data_nodes; ++n) {
    ASSERT_TRUE(engine_->dfs().SetNodeDown(n, true).ok());
  }
  auto down = engine_->Query(HotelQuery());
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);

  // Nodes recover: the query works again.
  for (int n = 0; n < engine_->dfs().options().num_data_nodes; ++n) {
    ASSERT_TRUE(engine_->dfs().SetNodeDown(n, false).ok());
  }
  EXPECT_TRUE(engine_->Query(HotelQuery()).ok());
}

TEST_F(FaultInjectionTest, AtRestCorruptionSurfacesAsCorruption) {
  // Corruption is at-rest (the stored block bytes are flipped), so this
  // test builds its own throwaway engine instead of poisoning the shared
  // one.
  FaultInjector injector(/*seed=*/7);
  TkLusEngine::Options options;
  options.fault_injector = &injector;
  auto engine = TkLusEngine::Build(corpus_->dataset, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Corrupt the bytes of the next postings read: the DFS block checksum
  // must catch the flip and fail with kCorruption, never decode garbage.
  injector.FailNext(faults::kDfsRead, FaultKind::kCorruption, 1);
  auto corrupted = (*engine)->Query(HotelQuery());
  ASSERT_FALSE(corrupted.ok());
  EXPECT_EQ(corrupted.status().code(), StatusCode::kCorruption);
}

TEST_F(FaultInjectionTest, NoBufferPoolPinLeaksAcrossQueries) {
  // Every metadata page pinned during query processing must be unpinned,
  // including on error paths.
  for (int i = 0; i < 5; ++i) {
    (void)engine_->Query(HotelQuery());
    EXPECT_EQ(engine_->metadata_db().buffer_pool().pinned_page_count(), 0u);
  }
  injector_->FailNext(faults::kDfsRead, FaultKind::kPermanent, 1);
  (void)engine_->Query(HotelQuery());
  EXPECT_EQ(engine_->metadata_db().buffer_pool().pinned_page_count(), 0u);
}

TEST_F(FaultInjectionTest, TweetSearchAlsoPropagatesFaults) {
  injector_->FailNext(faults::kDfsRead, FaultKind::kPermanent, 1);
  auto result = engine_->QueryTweets(HotelQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_TRUE(engine_->QueryTweets(HotelQuery()).ok());
}

}  // namespace
}  // namespace tklus
