file(REMOVE_RECURSE
  "libtklus_common.a"
)
