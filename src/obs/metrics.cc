#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

namespace tklus {

namespace {

size_t DefaultShardCount() {
  // One shard per hardware thread, rounded up to a power of two so the
  // index is a mask, clamped to keep the footprint bounded on huge hosts.
  size_t n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  size_t shards = 1;
  while (shards < n && shards < 64) shards <<= 1;
  return shards;
}

std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

Counter::Counter(size_t shards)
    : num_shards_(shards == 0 ? DefaultShardCount() : RoundUpPow2(shards)),
      shards_(std::make_unique<Shard[]>(num_shards_)) {}

size_t Counter::ShardIndex() const {
  // Hashed thread id, cached per thread: shard choice is stable for a
  // thread's lifetime, so a thread always bumps the same cache line.
  static thread_local const size_t hashed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return hashed & (num_shards_ - 1);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    total += shards_[i].value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  // First bound >= value; everything past the last bound lands in +Inf.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::CumulativeCount(size_t i) const {
  uint64_t total = 0;
  for (size_t b = 0; b <= i && b <= bounds_.size(); ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(&mu_);
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = Type::kCounter;
    it->second.help = help;
    it->second.counter = std::make_unique<Counter>();
  }
  if (it->second.type != Type::kCounter) {
    static Counter* mismatch_dummy = new Counter(1);  // never exposed
    return mismatch_dummy;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(&mu_);
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = Type::kGauge;
    it->second.help = help;
    it->second.gauge = std::make_unique<Gauge>();
  }
  if (it->second.type != Type::kGauge) {
    static Gauge* mismatch_dummy = new Gauge();  // never exposed
    return mismatch_dummy;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bucket_bounds) {
  MutexLock lock(&mu_);
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = Type::kHistogram;
    it->second.help = help;
    it->second.histogram =
        std::make_unique<Histogram>(std::move(bucket_bounds));
  }
  if (it->second.type != Type::kHistogram) {
    static Histogram* mismatch_dummy =
        new Histogram(std::vector<double>{1.0});  // never exposed
    return mismatch_dummy;
  }
  return it->second.histogram.get();
}

std::string MetricsRegistry::Expose() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + EscapeHelp(family.help) + "\n";
    switch (family.type) {
      case Type::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(family.counter->Value()) + "\n";
        break;
      case Type::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(family.gauge->Value()) + "\n";
        break;
      case Type::kHistogram: {
        const Histogram& h = *family.histogram;
        out += "# TYPE " + name + " histogram\n";
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out += name + "_bucket{le=\"" + FormatDouble(h.bounds()[i]) +
                 "\"} " + std::to_string(h.CumulativeCount(i)) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.Count()) +
               "\n";
        out += name + "_sum " + FormatDouble(h.Sum()) + "\n";
        out += name + "_count " + std::to_string(h.Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace tklus
