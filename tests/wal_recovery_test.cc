// Crash-recovery harness for the durable ingestion path (WAL + delta
// index + checkpoint). The tests simulate crashes by copying the working
// directory while the engine is still alive — the copy holds exactly the
// bytes a kill at that instant would leave — then reopening the copy and
// comparing query-visible state against a naive oracle engine built from
// precisely the *acked* appends. The contract under test:
//
//   zero acked loss:  every batch whose AppendBatch returned OK is fully
//                     visible after recovery;
//   no phantoms:      no post from a batch whose AppendBatch failed is
//                     visible after recovery;
//   graceful tails:   torn/bit-flipped WAL tails and half-written
//                     checkpoints truncate/roll back, never fail Open.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/tweet_generator.h"
#include "obs/metrics.h"
#include "storage/wal.h"

namespace tklus {
namespace {

namespace fs = std::filesystem;
using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

fs::path TempDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("tklus_walrec_" + tag + "_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  fs::create_directories(dir);
  return dir;
}

void CopyDir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void FlipByte(const fs::path& path, int64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(0, std::ios::end);
  const int64_t size = static_cast<int64_t>(f.tellg());
  const int64_t pos = offset >= 0 ? offset : size + offset;
  ASSERT_GE(pos, 0);
  ASSERT_LT(pos, size);
  f.seekg(pos);
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(pos);
  f.write(&byte, 1);
}

// ------------------------------------------------------------- WAL unit

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = TempDir("wal"); }
  void TearDown() override { fs::remove_all(dir_); }
  std::string LogPath() const { return (dir_ / "wal.log").string(); }

  fs::path dir_;
};

TEST_F(WalTest, AppendReopenRoundTrip) {
  const std::vector<std::string> payloads = {"alpha", "", "gamma gamma"};
  {
    auto wal = Wal::Open(LogPath(), Wal::Options{});
    ASSERT_TRUE(wal.ok());
    for (const std::string& p : payloads) {
      ASSERT_TRUE((*wal)->Append(p).ok());
    }
    EXPECT_EQ((*wal)->record_count(), payloads.size());
  }
  auto wal = Wal::Open(LogPath(), Wal::Options{});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->recovery_info().records, payloads.size());
  EXPECT_EQ((*wal)->recovery_info().truncated_bytes, 0u);
  EXPECT_EQ((*wal)->TakeRecoveredRecords(), payloads);
  EXPECT_TRUE((*wal)->TakeRecoveredRecords().empty());  // moved out once
}

TEST_F(WalTest, TruncateEmptiesTheLog) {
  auto wal = Wal::Open(LogPath(), Wal::Options{});
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("one").ok());
  ASSERT_TRUE((*wal)->Append("two").ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ((*wal)->record_count(), 0u);
  ASSERT_TRUE((*wal)->Append("three").ok());
  wal->reset();
  auto reopened = Wal::Open(LogPath(), Wal::Options{});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->TakeRecoveredRecords(),
            std::vector<std::string>{"three"});
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  {
    auto wal = Wal::Open(LogPath(), Wal::Options{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first").ok());
    ASSERT_TRUE((*wal)->Append("second").ok());
  }
  // A crash mid-append leaves a partial frame; recovery must drop exactly
  // the tail and keep every intact record.
  const uintmax_t intact = fs::file_size(LogPath());
  {
    std::ofstream out(LogPath(), std::ios::binary | std::ios::app);
    out.write("\x2a\x00\x00\x00junk", 8);  // half a frame
  }
  auto wal = Wal::Open(LogPath(), Wal::Options{});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->recovery_info().records, 2u);
  EXPECT_EQ((*wal)->recovery_info().truncated_bytes, 8u);
  EXPECT_EQ(fs::file_size(LogPath()), intact);  // tail physically dropped
  const auto records = (*wal)->TakeRecoveredRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "second");
}

TEST_F(WalTest, BitFlipEndsTheDurablePrefix) {
  {
    auto wal = Wal::Open(LogPath(), Wal::Options{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("record-one").ok());
    ASSERT_TRUE((*wal)->Append("record-two").ok());
    ASSERT_TRUE((*wal)->Append("record-three").ok());
  }
  // Flip a payload byte of the *second* record: recovery keeps record one
  // only — a record after a damaged one is unreachable by design.
  const uint64_t header = 12, frame = 8;
  FlipByte(LogPath(),
           static_cast<int64_t>(header + frame + strlen("record-one") + frame +
                                2));
  auto wal = Wal::Open(LogPath(), Wal::Options{});
  ASSERT_TRUE(wal.ok());
  const auto records = (*wal)->TakeRecoveredRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "record-one");
  EXPECT_GT((*wal)->recovery_info().truncated_bytes, 0u);
}

TEST_F(WalTest, DamagedHeaderIsFatal) {
  { ASSERT_TRUE(Wal::Open(LogPath(), Wal::Options{}).ok()); }
  FlipByte(LogPath(), 3);
  auto wal = Wal::Open(LogPath(), Wal::Options{});
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, FailedAppendAndFsyncLeaveNoPhantom) {
  FaultInjector faults(7);
  Wal::Options options;
  options.fault_injector = &faults;
  auto wal = Wal::Open(LogPath(), options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("durable").ok());
  faults.FailNext(faults::kWalAppend, FaultKind::kPermanent, 1);
  EXPECT_FALSE((*wal)->Append("lost-before-write").ok());
  faults.FailNext(faults::kWalFsync, FaultKind::kPermanent, 1);
  EXPECT_FALSE((*wal)->Append("lost-before-sync").ok());
  EXPECT_EQ((*wal)->record_count(), 1u);
  wal->reset();
  auto reopened = Wal::Open(LogPath(), Wal::Options{});
  ASSERT_TRUE(reopened.ok());
  // Neither failed append may ever be replayed.
  EXPECT_EQ((*reopened)->TakeRecoveredRecords(),
            std::vector<std::string>{"durable"});
  EXPECT_EQ((*reopened)->recovery_info().truncated_bytes, 0u);
}

TEST_F(WalTest, TornAppendHealsAndNeverResurfaces) {
  FaultInjector faults(11);
  Wal::Options options;
  options.fault_injector = &faults;
  auto wal = Wal::Open(LogPath(), options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("acked-one").ok());
  faults.FailNext(faults::kWalAppend, FaultKind::kTornWrite, 1);
  EXPECT_FALSE((*wal)->Append("torn-and-lost").ok());
  // Crash image taken right now: the partial frame is on disk.
  const fs::path crash = dir_ / "crash.log";
  fs::copy_file(LogPath(), crash);
  {
    auto recovered = Wal::Open(crash.string(), Wal::Options{});
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ((*recovered)->TakeRecoveredRecords(),
              std::vector<std::string>{"acked-one"});
  }
  // The live WAL heals the dirty tail on the next append.
  ASSERT_TRUE((*wal)->Append("acked-two").ok());
  wal->reset();
  auto reopened = Wal::Open(LogPath(), Wal::Options{});
  ASSERT_TRUE(reopened.ok());
  const auto records = (*reopened)->TakeRecoveredRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "acked-one");
  EXPECT_EQ(records[1], "acked-two");
  EXPECT_EQ((*reopened)->recovery_info().truncated_bytes, 0u);
}

// ------------------------------------------------- engine crash harness

GeneratedCorpus MakeCorpus(size_t tweets = 2400) {
  TweetGenerator::Options opts;
  opts.num_users = 150;
  opts.num_tweets = tweets;
  opts.num_cities = 2;
  return TweetGenerator::Generate(opts);
}

Dataset Slice(const Dataset& all, size_t begin, size_t end) {
  Dataset out;
  for (size_t i = begin; i < end && i < all.size(); ++i) {
    out.Add(all.posts()[i]);
  }
  return out;
}

Dataset Concat(const Dataset& a, const Dataset& b) {
  Dataset out = a;
  for (const Post& p : b.posts()) out.Add(p);
  return out;
}

// Query-visible equality against a freshly built oracle: same top-k uids
// and scores for a spread of keywords and both rankings. Pruning is
// disabled on both sides — the hot-term sets were frozen at different
// times, and pruning must anyway never change results.
void ExpectMatchesOracle(TkLusEngine& got, const Dataset& acked,
                         const GeoPoint& center, const std::string& context) {
  auto oracle = TkLusEngine::Build(acked);
  ASSERT_TRUE(oracle.ok()) << context;
  EXPECT_NEAR(got.bounds().global_bound(), (*oracle)->bounds().global_bound(),
              1e-9)
      << context;
  got.processor().mutable_options().enable_pruning = false;
  (*oracle)->processor().mutable_options().enable_pruning = false;
  for (const char* kw : {"hotel", "restaurant", "cafe"}) {
    for (const Ranking ranking : {Ranking::kSum, Ranking::kMax}) {
      TkLusQuery q;
      q.location = center;
      q.radius_km = 15.0;
      q.keywords = {kw};
      q.k = 10;
      q.ranking = ranking;
      auto want = (*oracle)->Query(q);
      auto have = got.Query(q);
      ASSERT_TRUE(want.ok()) << context;
      ASSERT_TRUE(have.ok()) << context;
      ASSERT_EQ(have->users.size(), want->users.size())
          << context << " kw=" << kw;
      for (size_t i = 0; i < want->users.size(); ++i) {
        EXPECT_EQ(have->users[i].uid, want->users[i].uid)
            << context << " kw=" << kw << " rank " << i;
        EXPECT_NEAR(have->users[i].score, want->users[i].score, 1e-9)
            << context << " kw=" << kw << " rank " << i;
      }
    }
  }
}

// No post of an unacked batch may be visible anywhere after recovery.
void ExpectNoPhantoms(TkLusEngine& engine, const Dataset& unacked,
                      const std::string& context) {
  for (const Post& p : unacked.posts()) {
    auto row = engine.metadata_db().SelectBySid(p.sid);
    ASSERT_TRUE(row.ok()) << context;
    EXPECT_FALSE(row->has_value()) << context << " phantom sid " << p.sid;
    EXPECT_EQ(engine.delta_index().FindBySid(p.sid), nullptr)
        << context << " phantom delta sid " << p.sid;
  }
}

class EngineRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = MakeCorpus();
    seed_ = Slice(corpus_.dataset, 0, 1800);
    for (size_t b = 0; b < kBatches; ++b) {
      batches_[b] = Slice(corpus_.dataset, 1800 + b * 150, 1800 + (b + 1) * 150);
    }
  }

  TkLusEngine::Options DurableOptions(const fs::path& dir,
                                      FaultInjector* faults) {
    TkLusEngine::Options opts;
    opts.working_dir = dir.string();
    opts.fault_injector = faults;
    opts.delta_merge_posts = 0;  // merges only where the test asks
    return opts;
  }

  static constexpr size_t kBatches = 4;
  GeneratedCorpus corpus_;
  Dataset seed_;
  Dataset batches_[kBatches];
};

TEST_F(EngineRecoveryTest, AckedAppendsSurviveKillWithoutCheckpoint) {
  const fs::path dir = TempDir("nockpt");
  const fs::path crash = TempDir("nockpt_crash");
  Dataset acked = seed_;
  {
    auto engine = TkLusEngine::Build(seed_, DurableOptions(dir, nullptr));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());  // establish checkpoint
    for (size_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE((*engine)->AppendBatch(batches_[b]).ok());
      acked = Concat(acked, batches_[b]);
    }
    // Kill: copy the directory while the engine is alive — nothing that
    // only lives in memory (delta, buffer pool) makes it into the image.
    CopyDir(dir, crash);
  }
  auto reopened = TkLusEngine::Open(crash.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->delta_index().post_count(), kBatches * 150);
  ExpectMatchesOracle(**reopened, acked, corpus_.city_centers[0], "kill");
  // And the recovered engine can keep ingesting + folding.
  ASSERT_TRUE((*reopened)->MergeNow().ok());
  EXPECT_TRUE((*reopened)->delta_index().empty());
  ExpectMatchesOracle(**reopened, acked, corpus_.city_centers[0],
                      "kill+merge");
  fs::remove_all(dir);
  fs::remove_all(crash);
}

// The kill-point sweep: a deterministic fault fires at every WAL and
// checkpoint I/O site, mid-run; the crash image must recover to exactly
// the acked prefix, with nothing from the failed batch.
struct KillPoint {
  const char* site;
  FaultKind kind;
  const char* label;
};

class KillPointSweepTest : public EngineRecoveryTest,
                           public ::testing::WithParamInterface<KillPoint> {};

TEST_P(KillPointSweepTest, RecoversToAckedPrefix) {
  const KillPoint kp = GetParam();
  FaultInjector faults(42);
  const fs::path dir = TempDir(std::string("kp_") + kp.label);
  const fs::path crash = TempDir(std::string("kp_crash_") + kp.label);
  Dataset acked = seed_;
  Dataset unacked;
  {
    auto engine = TkLusEngine::Build(seed_, DurableOptions(dir, &faults));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
    ASSERT_TRUE((*engine)->AppendBatch(batches_[0]).ok());
    acked = Concat(acked, batches_[0]);

    // Arm the kill point; it fires inside the next append or merge.
    faults.FailNext(kp.site, kp.kind, 1);
    const Status append_status = (*engine)->AppendBatch(batches_[1]);
    if (append_status.ok()) {
      acked = Concat(acked, batches_[1]);
    } else {
      unacked = Concat(unacked, batches_[1]);
    }
    const Status merge_status = (*engine)->MergeNow();
    // Whether or not the merge survived, later appends must still ack
    // durably on the healed WAL tail.
    const Status tail_status = (*engine)->AppendBatch(batches_[2]);
    if (tail_status.ok()) {
      acked = Concat(acked, batches_[2]);
    } else {
      unacked = Concat(unacked, batches_[2]);
    }
    EXPECT_TRUE(append_status.ok() || !unacked.posts().empty());
    (void)merge_status;  // any outcome is legal; recovery decides below
    CopyDir(dir, crash);
  }
  auto reopened = TkLusEngine::Open(crash.string());
  ASSERT_TRUE(reopened.ok())
      << kp.label << ": " << reopened.status().ToString();
  ExpectMatchesOracle(**reopened, acked, corpus_.city_centers[0], kp.label);
  ExpectNoPhantoms(**reopened, unacked, kp.label);
  fs::remove_all(dir);
  fs::remove_all(crash);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, KillPointSweepTest,
    ::testing::Values(
        KillPoint{faults::kWalAppend, FaultKind::kPermanent, "wal_append"},
        KillPoint{faults::kWalAppend, FaultKind::kTornWrite, "wal_torn"},
        KillPoint{faults::kWalFsync, FaultKind::kPermanent, "wal_fsync"},
        KillPoint{faults::kWalTruncate, FaultKind::kPermanent,
                  "wal_truncate"},
        KillPoint{faults::kFileWrite, FaultKind::kPermanent, "file_write"},
        KillPoint{faults::kFileWrite, FaultKind::kTornWrite, "file_torn"},
        KillPoint{faults::kFileRename, FaultKind::kPermanent, "file_rename"},
        KillPoint{faults::kDiskWrite, FaultKind::kPermanent, "disk_write"},
        KillPoint{faults::kDiskWrite, FaultKind::kTornWrite, "disk_torn"},
        // Crash exactly between index.bin and sid_store.bin: the image
        // holds a folded DB but a stale sid store, which Open's lockstep
        // check must catch and rebuild.
        KillPoint{faults::kSidStoreWrite, FaultKind::kPermanent,
                  "sid_store_write"}),
    [](const ::testing::TestParamInfo<KillPoint>& info) {
      return info.param.label;
    });

// Every inter-artifact crash window of the checkpoint protocol, built
// deterministically: artifacts are written in the fixed order meta.db ->
// dfs.bin -> index.bin -> sid_store.bin -> engine.bin -> WAL truncate,
// so a crash image with the first j artifacts new, the rest old, and the
// pre-truncate WAL is exactly "the crash hit after artifact j".
TEST_F(EngineRecoveryTest, EveryCheckpointCrashWindowRecovers) {
  const fs::path dir = TempDir("ckptwin");
  Dataset acked = seed_;
  {
    auto engine = TkLusEngine::Build(seed_, DurableOptions(dir, nullptr));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
    for (size_t b = 0; b < 2; ++b) {
      ASSERT_TRUE((*engine)->AppendBatch(batches_[b]).ok());
      acked = Concat(acked, batches_[b]);
    }
    const fs::path before = TempDir("ckptwin_before");
    CopyDir(dir, before);  // old artifacts + WAL holding both batches
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
    const fs::path after = TempDir("ckptwin_after");
    CopyDir(dir, after);  // new artifacts + truncated WAL

    const char* artifacts[] = {"meta.db", "dfs.bin", "index.bin",
                               "sid_store.bin", "engine.bin"};
    for (size_t j = 0; j <= 5; ++j) {
      const fs::path window = TempDir("ckptwin_" + std::to_string(j));
      CopyDir(before, window);  // start from the pre-checkpoint state
      for (size_t i = 0; i < j; ++i) {
        fs::copy_file(after / artifacts[i], window / artifacts[i],
                      fs::copy_options::overwrite_existing);
      }
      auto reopened = TkLusEngine::Open(window.string());
      ASSERT_TRUE(reopened.ok())
          << "window " << j << ": " << reopened.status().ToString();
      ExpectMatchesOracle(**reopened, acked, corpus_.city_centers[0],
                          "ckpt window " + std::to_string(j));
      reopened->reset();
      fs::remove_all(window);
    }
    fs::remove_all(before);
    fs::remove_all(after);
  }
  fs::remove_all(dir);
}

// The sid-store checkpoint artifact is derived data: byte damage in its
// payload or footer — and outright deletion — must fall back to a full
// rebuild from the B+-tree inside Open. Never fatal, never stale rows.
TEST_F(EngineRecoveryTest, DamagedSidStoreArtifactFallsBackToRebuild) {
  Counter* rebuilds = MetricsRegistry::Global().GetCounter(
      "tklus_sid_store_rebuilds_total",
      "Full sid-store rebuilds from the metadata DB "
      "(missing/torn/stale checkpoint artifact).");
  const fs::path dir = TempDir("sidstore");
  Dataset acked = seed_;
  {
    auto engine = TkLusEngine::Build(seed_, DurableOptions(dir, nullptr));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
    for (size_t b = 0; b < 2; ++b) {
      ASSERT_TRUE((*engine)->AppendBatch(batches_[b]).ok());
      acked = Concat(acked, batches_[b]);
    }
    // Fold + re-checkpoint so sid_store.bin covers the appended batches
    // and the WAL is empty — recovery below rides on the artifact alone.
    ASSERT_TRUE((*engine)->MergeNow().ok());
  }
  for (const std::string damage : {"flip_payload", "flip_footer", "delete"}) {
    const fs::path crash = TempDir("sidstore_" + damage);
    CopyDir(dir, crash);
    if (damage == "flip_payload") {
      FlipByte(crash / "sid_store.bin", 64);  // an entry byte: CRC mismatch
    } else if (damage == "flip_footer") {
      FlipByte(crash / "sid_store.bin", -4);  // footer magic: not an artifact
    } else {
      fs::remove(crash / "sid_store.bin");  // kNotFound
    }
    const uint64_t rebuilds_before = rebuilds->Value();
    auto reopened = TkLusEngine::Open(crash.string());
    ASSERT_TRUE(reopened.ok())
        << damage << ": " << reopened.status().ToString();
    EXPECT_EQ(rebuilds->Value() - rebuilds_before, 1u) << damage;
    EXPECT_EQ((*reopened)->sid_store().entry_count(),
              (*reopened)->metadata_db().row_count())
        << damage;
    ExpectMatchesOracle(**reopened, acked, corpus_.city_centers[0], damage);
    // The rebuilt store serves the whole candidate set: no B+-tree
    // fallback rows on a steady-state query.
    TkLusQuery q;
    q.location = corpus_.city_centers[0];
    q.radius_km = 15.0;
    q.keywords = {"hotel"};
    q.k = 10;
    auto result = (*reopened)->Query(q);
    ASSERT_TRUE(result.ok()) << damage;
    EXPECT_GT(result->stats.sid_store_hits, 0u) << damage;
    EXPECT_EQ(result->stats.sid_store_fallback_rows, 0u) << damage;
    reopened->reset();
    fs::remove_all(crash);
  }
  fs::remove_all(dir);
}

// Cut the WAL at every record boundary (and ragged offsets around them):
// recovery must always succeed and always yield an exact *prefix* of the
// appended batches.
TEST_F(EngineRecoveryTest, RecordBoundaryCutsRecoverPrefixes) {
  const fs::path dir = TempDir("cuts");
  Dataset with_batches[kBatches + 1];
  with_batches[0] = seed_;
  {
    auto engine = TkLusEngine::Build(seed_, DurableOptions(dir, nullptr));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
    for (size_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE((*engine)->AppendBatch(batches_[b]).ok());
      with_batches[b + 1] = Concat(with_batches[b], batches_[b]);
    }
    // Parse the frame boundaries out of the log (header 12, frame 8+len).
    const std::string log = ReadAll(dir / "wal.log");
    std::vector<uint64_t> boundaries = {12};
    uint64_t pos = 12;
    while (pos + 8 <= log.size()) {
      uint32_t len = 0;
      std::memcpy(&len, log.data() + pos, 4);
      pos += 8 + len;
      boundaries.push_back(pos);
    }
    ASSERT_EQ(boundaries.size(), kBatches + 1);  // one record per batch
    ASSERT_EQ(pos, log.size());

    for (size_t b = 0; b < boundaries.size(); ++b) {
      for (const int64_t ragged : {int64_t{0}, int64_t{-3}, int64_t{5}}) {
        const int64_t cut = static_cast<int64_t>(boundaries[b]) + ragged;
        if (cut < 12 || cut > static_cast<int64_t>(log.size())) continue;
        // A ragged cut past a boundary keeps only whole records before it;
        // cutting *into* record b's frame keeps b-1 batches.
        const size_t expect_batches =
            (ragged <= 0) ? (b == 0 ? 0 : b - (ragged < 0 ? 1 : 0)) : b;
        const fs::path crash = TempDir("cut_" + std::to_string(b) + "_" +
                                       std::to_string(ragged + 3));
        CopyDir(dir, crash);
        fs::resize_file(crash / "wal.log", static_cast<uintmax_t>(cut));
        auto reopened = TkLusEngine::Open(crash.string());
        ASSERT_TRUE(reopened.ok())
            << "cut@" << cut << ": " << reopened.status().ToString();
        EXPECT_EQ((*reopened)->delta_index().post_count(),
                  expect_batches * 150)
            << "cut@" << cut;
        ExpectMatchesOracle(**reopened, with_batches[expect_batches],
                            corpus_.city_centers[0],
                            "cut@" + std::to_string(cut));
        reopened->reset();
        fs::remove_all(crash);
      }
    }
  }
  fs::remove_all(dir);
}

TEST_F(EngineRecoveryTest, BitFlippedWalTailDropsOnlyTheTail) {
  const fs::path dir = TempDir("flip");
  const fs::path crash = TempDir("flip_crash");
  Dataset first_two = Concat(Concat(seed_, batches_[0]), batches_[1]);
  {
    auto engine = TkLusEngine::Build(seed_, DurableOptions(dir, nullptr));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
    for (size_t b = 0; b < 3; ++b) {
      ASSERT_TRUE((*engine)->AppendBatch(batches_[b]).ok());
    }
    CopyDir(dir, crash);
  }
  // Silent media damage in the last record: recovery keeps the first two
  // batches and reports (not fails on) the loss of the third.
  FlipByte(crash / "wal.log", -64);
  auto reopened = TkLusEngine::Open(crash.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->delta_index().post_count(), 2u * 150);
  ExpectMatchesOracle(**reopened, first_two, corpus_.city_centers[0], "flip");
  fs::remove_all(dir);
  fs::remove_all(crash);
}

// --------------------------------------------- sharded engine recovery

// Same query-visible oracle as ExpectMatchesOracle, against the sharded
// scatter-gather path (pruning off at the router's plane).
void ExpectShardedMatchesOracle(ShardedEngine& got, const Dataset& acked,
                                const GeoPoint& center,
                                const std::string& context) {
  auto oracle = TkLusEngine::Build(acked);
  ASSERT_TRUE(oracle.ok()) << context;
  EXPECT_NEAR(got.bounds().global_bound(), (*oracle)->bounds().global_bound(),
              1e-9)
      << context;
  got.plane_processor().mutable_options().enable_pruning = false;
  (*oracle)->processor().mutable_options().enable_pruning = false;
  for (const char* kw : {"hotel", "restaurant", "cafe"}) {
    for (const Ranking ranking : {Ranking::kSum, Ranking::kMax}) {
      TkLusQuery q;
      q.location = center;
      q.radius_km = 15.0;
      q.keywords = {kw};
      q.k = 10;
      q.ranking = ranking;
      auto want = (*oracle)->Query(q);
      auto have = got.Query(q);
      ASSERT_TRUE(want.ok()) << context;
      ASSERT_TRUE(have.ok()) << context << ": " << have.status().ToString();
      ASSERT_FALSE(have->degraded) << context;
      ASSERT_EQ(have->users.size(), want->users.size())
          << context << " kw=" << kw;
      for (size_t i = 0; i < want->users.size(); ++i) {
        EXPECT_EQ(have->users[i].uid, want->users[i].uid)
            << context << " kw=" << kw << " rank " << i;
        EXPECT_NEAR(have->users[i].score, want->users[i].score, 1e-9)
            << context << " kw=" << kw << " rank " << i;
      }
    }
  }
}

ShardedEngine::Options ShardedDurableOptions(const fs::path& dir) {
  ShardedEngine::Options options;
  options.num_shards = 4;
  options.working_dir = dir.string();
  options.shard.delta_merge_posts = 0;  // merges only where the test asks
  return options;
}

// Kill after acked appends, before any checkpoint: every shard replays
// its own WAL independently and Open re-absorbs the recovered deltas
// into the plane past the router.bin watermark.
TEST_F(EngineRecoveryTest, ShardedAckedBatchesSurviveKill) {
  const fs::path dir = TempDir("shard");
  const fs::path crash = TempDir("shard_crash");
  Dataset acked = seed_;
  {
    auto engine = ShardedEngine::Build(seed_, ShardedDurableOptions(dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->Save().ok());  // establish router.bin + shards
    for (size_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE((*engine)->AppendBatch(batches_[b]).ok());
      acked = Concat(acked, batches_[b]);
    }
    CopyDir(dir, crash);  // kill: the batches live only in per-shard WALs
  }
  auto reopened = ShardedEngine::Open(crash.string(), ShardedEngine::Options{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_shards(), 4);
  // No shard lost its slice: the deltas partition the appended batches.
  size_t delta_posts = 0;
  for (int s = 0; s < 4; ++s) {
    delta_posts += (*reopened)->shard(s).delta_index().post_count();
  }
  EXPECT_EQ(delta_posts, kBatches * 150);
  ExpectShardedMatchesOracle(**reopened, acked, corpus_.city_centers[0],
                             "sharded kill");
  ASSERT_TRUE((*reopened)->MergeAllNow().ok());
  ExpectShardedMatchesOracle(**reopened, acked, corpus_.city_centers[0],
                             "sharded kill+merge");
  fs::remove_all(dir);
  fs::remove_all(crash);
}

// Kill points inside ONE shard's WAL during a cross-shard append. The
// batch as a whole is not acked; shards ordered before the victim keep
// their durable sub-batches (the documented cross-shard non-atomicity),
// the victim holds no phantom, and the healed tail acks later batches.
// Recovery yields exactly the durable posts — nothing more, nothing less.
TEST_F(EngineRecoveryTest, ShardedWalKillPointsRecoverDurableSubBatches) {
  constexpr int kVictim = 1;
  const KillPoint kill_points[] = {
      {faults::kWalAppend, FaultKind::kPermanent, "wal_append"},
      {faults::kWalAppend, FaultKind::kTornWrite, "wal_torn"},
      {faults::kWalFsync, FaultKind::kPermanent, "wal_fsync"},
  };
  for (const KillPoint& kp : kill_points) {
    FaultInjector faults(42);
    const fs::path dir = TempDir(std::string("shardkp_") + kp.label);
    const fs::path crash = TempDir(std::string("shardkp_crash_") + kp.label);
    Dataset acked = seed_;
    Dataset unacked_victim;
    {
      ShardedEngine::Options options = ShardedDurableOptions(dir);
      options.shard_options_hook = [&faults](int shard,
                                             TkLusEngine::Options* o) {
        if (shard == kVictim) o->fault_injector = &faults;
      };
      auto engine = ShardedEngine::Build(seed_, options);
      ASSERT_TRUE(engine.ok()) << kp.label;
      ASSERT_TRUE((*engine)->Save().ok()) << kp.label;
      ASSERT_TRUE((*engine)->AppendBatch(batches_[0]).ok()) << kp.label;
      acked = Concat(acked, batches_[0]);

      // The fan-out routes sub-batches to shards in shard order and fails
      // fast: exactly the shards before the victim land theirs durably.
      const std::vector<Dataset> parts = (*engine)->router().PartitionPosts(
          batches_[1], (*engine)->options().shard.geohash_length);
      ASSERT_FALSE(parts[kVictim].posts().empty()) << kp.label;

      faults.FailNext(kp.site, kp.kind, 1);
      ASSERT_FALSE((*engine)->AppendBatch(batches_[1]).ok()) << kp.label;
      for (int s = 0; s < kVictim; ++s) acked = Concat(acked, parts[s]);
      unacked_victim = parts[kVictim];

      // The victim's WAL tail heals on the next append; the batch acks.
      ASSERT_TRUE((*engine)->AppendBatch(batches_[2]).ok()) << kp.label;
      acked = Concat(acked, batches_[2]);
      CopyDir(dir, crash);
    }
    auto reopened =
        ShardedEngine::Open(crash.string(), ShardedEngine::Options{});
    ASSERT_TRUE(reopened.ok())
        << kp.label << ": " << reopened.status().ToString();
    ExpectShardedMatchesOracle(**reopened, acked, corpus_.city_centers[0],
                               kp.label);
    // The victim shard holds nothing from the sub-batch that died on it.
    TkLusEngine& victim = (*reopened)->shard(kVictim);
    for (const Post& p : unacked_victim.posts()) {
      auto row = victim.metadata_db().SelectBySid(p.sid);
      ASSERT_TRUE(row.ok()) << kp.label;
      EXPECT_FALSE(row->has_value()) << kp.label << " phantom sid " << p.sid;
      EXPECT_EQ(victim.delta_index().FindBySid(p.sid), nullptr)
          << kp.label << " phantom delta sid " << p.sid;
    }
    fs::remove_all(dir);
    fs::remove_all(crash);
  }
}

// A checkpoint sweep dying on one shard splits the fleet: shards before
// the victim truncated their WALs (their batches now live only in their
// checkpoints) while the victim and later shards still carry theirs.
// router.bin was written *first*, so its watermark covers everything the
// early shards truncated, and Open stitches both halves back together.
TEST_F(EngineRecoveryTest, ShardedSaveFailingMidSweepStillRecovers) {
  constexpr int kVictim = 2;
  FaultInjector faults(7);
  const fs::path dir = TempDir("shardsave");
  const fs::path crash = TempDir("shardsave_crash");
  Dataset acked = seed_;
  {
    ShardedEngine::Options options = ShardedDurableOptions(dir);
    options.shard_options_hook = [&faults](int shard, TkLusEngine::Options* o) {
      if (shard == kVictim) o->fault_injector = &faults;
    };
    auto engine = ShardedEngine::Build(seed_, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->Save().ok());
    for (size_t b = 0; b < 2; ++b) {
      ASSERT_TRUE((*engine)->AppendBatch(batches_[b]).ok());
      acked = Concat(acked, batches_[b]);
    }
    faults.FailNext(faults::kFileWrite, FaultKind::kPermanent, 1);
    EXPECT_FALSE((*engine)->Save().ok());
    // Shards before the victim are checkpointed + truncated.
    for (int s = 0; s < kVictim; ++s) {
      EXPECT_EQ((*engine)->shard(s).wal().record_count(), 0u) << "shard " << s;
    }
    EXPECT_GT((*engine)->shard(kVictim).wal().record_count(), 0u);
    CopyDir(dir, crash);
  }
  auto reopened = ShardedEngine::Open(crash.string(), ShardedEngine::Options{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectShardedMatchesOracle(**reopened, acked, corpus_.city_centers[0],
                             "mid-sweep save");
  fs::remove_all(dir);
  fs::remove_all(crash);
}

TEST_F(EngineRecoveryTest, RecoveryMetricsAndBackgroundMergeCheckpoint) {
  Counter* recovered = MetricsRegistry::Global().GetCounter(
      "tklus_wal_recovered_records_total",
      "Intact WAL records read back during engine recovery.");
  const uint64_t recovered_before = recovered->Value();
  const fs::path dir = TempDir("metrics");
  Dataset acked = seed_;
  {
    auto engine = TkLusEngine::Build(seed_, DurableOptions(dir, nullptr));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
    for (size_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE((*engine)->AppendBatch(batches_[b]).ok());
      acked = Concat(acked, batches_[b]);
    }
    EXPECT_EQ((*engine)->wal().record_count(), kBatches);
  }
  auto reopened = TkLusEngine::Open(dir.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(recovered->Value() - recovered_before, kBatches);
  // MergeNow on an opened engine re-checkpoints and truncates the WAL; a
  // second Open replays nothing and still matches the oracle.
  ASSERT_TRUE((*reopened)->MergeNow().ok());
  EXPECT_EQ((*reopened)->wal().record_count(), 0u);
  EXPECT_TRUE((*reopened)->delta_index().empty());
  reopened->reset();
  auto again = TkLusEngine::Open(dir.string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(recovered->Value() - recovered_before, kBatches);  // unchanged
  ExpectMatchesOracle(**again, acked, corpus_.city_centers[0], "post-merge");
  again->reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tklus
