# Empty compiler generated dependencies file for spatial_decision.
# This may be replaced when dependencies are built.
