# Empty compiler generated dependencies file for tklus_common.
# This may be replaced when dependencies are built.
