#ifndef TKLUS_COMMON_RETRY_H_
#define TKLUS_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace tklus {

// Bounded retry with exponential backoff and deterministic jitter, used
// wherever a transient (kUnavailable) failure is worth absorbing — most
// importantly the random DFS reads of a postings fetch, the paper's stated
// query-path bottleneck (§VI-B1). Only kUnavailable is retried: kIoError
// and kCorruption are permanent by contract and surface immediately.
struct RetryPolicy {
  // Total tries including the first one; <= 1 disables retrying.
  int max_attempts = 4;
  double base_backoff_ms = 0.2;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 8.0;
  // Fraction of the backoff randomized away (0 = full, deterministic
  // backoff). The jitter is a pure function of (seed, op_key, retry), so a
  // fixed seed replays the exact same schedule.
  double jitter_fraction = 0.5;
  uint64_t jitter_seed = 0x7461694c656b7254ULL;

  // Backoff before retry number `retry` (1-based) of the operation
  // identified by `op_key`. Deterministic.
  double BackoffMs(int retry, uint64_t op_key) const;
};

// Outcome accounting for one retried operation.
struct RetryStats {
  int attempts = 0;       // tries performed (>= 1 once run)
  int transient_faults = 0;  // kUnavailable results absorbed or surfaced

  void Merge(const RetryStats& other) {
    attempts += other.attempts;
    transient_faults += other.transient_faults;
  }
};

// Runs `fn` (a callable returning Status) up to policy.max_attempts times,
// sleeping BackoffMs between attempts, while it keeps returning
// kUnavailable. Any other status — OK or a permanent error — is returned
// as soon as it appears; if every attempt is transient, the last
// kUnavailable is returned.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, uint64_t op_key, Fn&& fn,
                      RetryStats* stats = nullptr) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = fn();
    if (stats != nullptr) ++stats->attempts;
    if (status.code() != StatusCode::kUnavailable) return status;
    if (stats != nullptr) ++stats->transient_faults;
    if (attempt >= max_attempts) return status;
    const double backoff = policy.BackoffMs(attempt, op_key);
    if (backoff > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff));
    }
  }
}

}  // namespace tklus

#endif  // TKLUS_COMMON_RETRY_H_
