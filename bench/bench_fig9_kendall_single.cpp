// Figure 9: variant Kendall tau between the Sum-score and Max-score
// rankings for single-keyword queries, top-5 and top-10, radius 5..100 km.
// The paper reports tau >= 0.863 everywhere: the two rankings are highly
// consistent.
#include <cstdio>

#include "bench_util.h"
#include "core/kendall.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 9 — Kendall tau, Sum vs Max, single keyword",
                "rankings highly consistent (paper: tau >= 0.863 at every "
                "radius, top-5 and top-10)");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  auto engine = bench::MakeEngine(corpus.dataset);
  const auto workload = datagen::FilterByKeywordCount(
      MakeQueryWorkload(corpus, datagen::WorkloadOptions{}), 1);

  std::printf("%-10s %-12s %-12s\n", "radius km", "tau top-5", "tau top-10");
  for (const double r : {5.0, 10.0, 20.0, 50.0, 100.0}) {
    double tau[2] = {0, 0};
    const int ks[2] = {5, 10};
    for (int i = 0; i < 2; ++i) {
      int counted = 0;
      for (TkLusQuery q : workload) {
        q.radius_km = r;
        q.k = ks[i];
        q.ranking = Ranking::kSum;
        auto sum_result = engine->Query(q);
        q.ranking = Ranking::kMax;
        auto max_result = engine->Query(q);
        if (!sum_result.ok() || !max_result.ok()) return 1;
        if (sum_result->users.empty() && max_result->users.empty()) continue;
        tau[i] += KendallTauVariant(sum_result->UserIds(),
                                    max_result->UserIds());
        ++counted;
      }
      tau[i] = counted > 0 ? tau[i] / counted : 1.0;
    }
    std::printf("%-10.0f %-12.3f %-12.3f\n", r, tau[0], tau[1]);
  }
  return 0;
}
