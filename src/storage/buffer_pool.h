#ifndef TKLUS_STORAGE_BUFFER_POOL_H_
#define TKLUS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace tklus {

// A fixed-capacity LRU buffer pool over a DiskManager. Pages are pinned
// while in use; unpinned pages are eviction candidates in LRU order.
// Single-threaded by design (the query processors are single-threaded; the
// MapReduce side uses its own files, not this pool).
//
// FetchPage/NewPage/UnpinPage are the raw pin primitives; storage-layer
// code must go through the RAII PageGuard (storage/page_guard.h) instead —
// `tklus_analyze` enforces this (rule `pin-discipline`).
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  BufferPool(DiskManager* disk, size_t pool_size);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins and returns the page, reading it from disk on a miss. Returns an
  // error if every frame is pinned.
  Result<Page*> FetchPage(PageId page_id);

  // Allocates a new page on disk and pins an empty frame for it.
  Result<Page*> NewPage();

  // Unpins; `dirty` marks the frame for write-back on eviction/flush.
  Status UnpinPage(PageId page_id, bool dirty);

  Status FlushPage(PageId page_id);
  Status FlushAll();

  size_t pool_size() const { return frames_.size(); }
  // Frames currently pinned — must return to 0 between operations; a
  // non-zero steady-state value is a pin leak. Tests assert this drops
  // back to zero at teardown.
  size_t pinned_page_count() const {
    size_t pinned = 0;
    for (const auto& frame : frames_) {
      if (frame->pin_count() > 0) ++pinned;
    }
    return pinned;
  }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  DiskManager* disk() { return disk_; }

 private:
  // Returns a free frame, evicting the LRU unpinned page if needed.
  Result<size_t> GetVictimFrame();
  void Touch(size_t frame);

  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> page_table_;   // page id -> frame
  std::list<size_t> lru_;                           // front = least recent
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::vector<size_t> free_frames_;
  Stats stats_;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_BUFFER_POOL_H_
