// Fixture: acquisition chains that follow the declared order
// (append_mu_ -> merge_mu_ -> mu_); nothing fires.
namespace tklus {

class Engine {
 public:
  void Save() {
    MutexLock append(&append_mu_);
    MutexLock merge(&merge_mu_);
    WriterMutexLock lock(&mu_);
  }

  // Skipping a middle rank is fine: the declared order is transitive.
  void Absorb() {
    MutexLock append(&append_mu_);
    WriterMutexLock lock(&mu_);
  }

  // Scoped release: the reader guard closes before the writer opens, so
  // no chain (and no recursion) is observed.
  void Fold() {
    MutexLock merge(&merge_mu_);
    {
      ReaderMutexLock read(&mu_);
    }
    WriterMutexLock write(&mu_);
  }

 private:
  Mutex append_mu_;
  Mutex merge_mu_;
  SharedMutex mu_;
};

}  // namespace tklus
