// Fixture: a std::scoped_lock must trip `naked-lock`.
namespace tklus {

void Locked(Mutex& mu) {
  std::scoped_lock lock(mu);  // must fire
}

}  // namespace tklus
