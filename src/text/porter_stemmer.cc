#include "text/porter_stemmer.h"

#include <cstring>

namespace tklus {
namespace {

// A direct transcription of Porter's reference algorithm operating on a
// mutable buffer b[0..k].
class Impl {
 public:
  explicit Impl(std::string word)
      : b_(std::move(word)), k_(static_cast<long>(b_.size()) - 1) {}

  std::string Run() {
    if (b_.size() < 3) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, k_ + 1);
  }

 private:
  std::string b_;
  long k_ = 0;  // index of last character of the current stem
  long j_ = 0;  // index set by Ends(): last char before the suffix

  bool IsConsonant(long i) const {
    switch (b_[i]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure m of b[0..j_]: the number of VC sequences.
  int Measure() const {
    int n = 0;
    long i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if b[0..j_] contains a vowel.
  bool VowelInStem() const {
    for (long i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // True if b[i-1..i] is a double consonant.
  bool DoubleConsonant(long i) const {
    if (i < 1) return false;
    if (b_[i] != b_[i - 1]) return false;
    return IsConsonant(i);
  }

  // True if b[i-2..i] is consonant-vowel-consonant and the final consonant
  // is not w, x, or y — the *o condition of Step 1b.
  bool Cvc(long i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) ||
        !IsConsonant(i - 2)) {
      return false;
    }
    const char ch = b_[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True if b[0..k_] ends with `s`; sets j_ to the char before the suffix.
  bool Ends(const char* s) {
    const long len = static_cast<long>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (b_.compare(k_ + 1 - len, len, s) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  // Replaces the suffix (b[j_+1..k_]) with `s`.
  void SetTo(const char* s) {
    const long len = static_cast<long>(std::strlen(s));
    b_.replace(j_ + 1, k_ - j_, s, len);
    k_ = j_ + len;
  }

  void ReplaceIfM0(const char* s) {
    if (Measure() > 0) SetTo(s);
  }

  void Step1ab() {
    if (b_[k_] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[k_ - 1] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        const char ch = b_[k_];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[k_] = 'i';
  }

  void Step2() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("ational")) { ReplaceIfM0("ate"); break; }
        if (Ends("tional")) { ReplaceIfM0("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfM0("ence"); break; }
        if (Ends("anci")) { ReplaceIfM0("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfM0("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfM0("ble"); break; }
        if (Ends("alli")) { ReplaceIfM0("al"); break; }
        if (Ends("entli")) { ReplaceIfM0("ent"); break; }
        if (Ends("eli")) { ReplaceIfM0("e"); break; }
        if (Ends("ousli")) { ReplaceIfM0("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfM0("ize"); break; }
        if (Ends("ation")) { ReplaceIfM0("ate"); break; }
        if (Ends("ator")) { ReplaceIfM0("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfM0("al"); break; }
        if (Ends("iveness")) { ReplaceIfM0("ive"); break; }
        if (Ends("fulness")) { ReplaceIfM0("ful"); break; }
        if (Ends("ousness")) { ReplaceIfM0("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfM0("al"); break; }
        if (Ends("iviti")) { ReplaceIfM0("ive"); break; }
        if (Ends("biliti")) { ReplaceIfM0("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfM0("log"); break; }
        break;
    }
  }

  void Step3() {
    switch (b_[k_]) {
      case 'e':
        if (Ends("icate")) { ReplaceIfM0("ic"); break; }
        if (Ends("ative")) { ReplaceIfM0(""); break; }
        if (Ends("alize")) { ReplaceIfM0("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfM0("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfM0("ic"); break; }
        if (Ends("ful")) { ReplaceIfM0(""); break; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfM0(""); break; }
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (b_[j_] == 's' || b_[j_] == 't')) {
          break;
        }
        if (Ends("ou")) break;
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  void Step5() {
    j_ = k_;
    if (b_[k_] == 'e') {
      const int m = Measure();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[k_] == 'l' && DoubleConsonant(k_) && Measure() > 1) --k_;
  }
};

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  for (char c : word) {
    if (c < 'a' || c > 'z') return std::string(word);  // non-ASCII-lower
  }
  return Impl(std::string(word)).Run();
}

}  // namespace tklus
