// Unit tests for the tklus_analyze internals grown in DESIGN.md §13: the
// splice/raw-string-aware lexer, the flow-aware lock model, the
// lock-order manifest loader, the two lock rules, and the JSON/SARIF
// emitters. The end-to-end gates (clean tree, fixture selftest) live in
// ctest's analyze_clean_tree / analyze_selftest; these tests pin the
// pieces those gates are built from.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.h"
#include "analyze/output.h"
#include "analyze/rules.h"
#include "analyze/source_model.h"

namespace tklus::analyze {
namespace {

namespace fs = std::filesystem;

bool HasIdent(const SourceFile& f, const std::string& text) {
  return std::any_of(f.tokens.begin(), f.tokens.end(), [&](const Token& t) {
    return t.kind == Token::Kind::kIdent && t.text == text;
  });
}

const Token* FindIdent(const SourceFile& f, const std::string& text) {
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kIdent && t.text == text) return &t;
  }
  return nullptr;
}

// ------------------------------------------------------------------- lexer

TEST(LexerRawString, CollapsesToSingleToken) {
  const SourceFile f = LexFile(
      "src/core/x.cc",
      "const char* s = R\"(std::mutex \"quoted\" // not a comment)\";\n"
      "int after = 1;\n");
  // Nothing inside the raw string may leak out as a token...
  EXPECT_FALSE(HasIdent(f, "mutex"));
  EXPECT_FALSE(HasIdent(f, "quoted"));
  // ...and lexing must resynchronize cleanly after it.
  const Token* after = FindIdent(f, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 2);
}

TEST(LexerRawString, EncodingPrefixes) {
  for (const char* prefix : {"u8", "u", "U", "L"}) {
    const std::string code = std::string("auto s = ") + prefix +
                             "R\"(steady_clock)\";\nint tail = 0;\n";
    const SourceFile f = LexFile("src/core/x.cc", code);
    EXPECT_FALSE(HasIdent(f, "steady_clock")) << "prefix " << prefix;
    EXPECT_TRUE(HasIdent(f, "tail")) << "prefix " << prefix;
  }
}

TEST(LexerRawString, DCharDelimiters) {
  // The plain )" inside must NOT close an R"xy(...)xy" literal.
  const SourceFile f = LexFile(
      "src/core/x.cc",
      "auto s = R\"xy(contains )\" inside)xy\";\nint tail = 0;\n");
  EXPECT_FALSE(HasIdent(f, "contains"));
  EXPECT_FALSE(HasIdent(f, "inside"));
  EXPECT_TRUE(HasIdent(f, "tail"));
}

TEST(LexerRawString, UpperRSuffixIdentIsNotAPrefix) {
  // An identifier merely *ending* in R (not a literal prefix) followed
  // by a string is an ordinary ident + string pair.
  const SourceFile f =
      LexFile("src/core/x.cc", "auto x = MACRO_R\"(text)\";\n");
  EXPECT_TRUE(HasIdent(f, "MACRO_R"));
}

TEST(LexerSplice, JoinsIdentifierAcrossContinuation) {
  const SourceFile f = LexFile("src/core/x.cc", "int ab\\\ncd = 1;\n");
  EXPECT_TRUE(HasIdent(f, "abcd"));
  EXPECT_FALSE(HasIdent(f, "ab"));
  EXPECT_FALSE(HasIdent(f, "cd"));
}

TEST(LexerSplice, LineCommentContinuationSwallowsNextLine) {
  // Phase-2 splicing makes the second line part of the comment — exactly
  // what the preprocessor does; the old lexer tokenized `hidden`.
  const SourceFile f = LexFile("src/core/x.cc",
                               "// comment \\\nint hidden = 1;\n"
                               "int visible = 2;\n");
  EXPECT_FALSE(HasIdent(f, "hidden"));
  const Token* visible = FindIdent(f, "visible");
  ASSERT_NE(visible, nullptr);
  EXPECT_EQ(visible->line, 3);
}

TEST(LexerSplice, LineNumbersSurviveSplices) {
  const SourceFile f =
      LexFile("src/core/x.cc", "int a;\nint b\\\n2;\nint c;\n");
  const Token* a = FindIdent(f, "a");
  const Token* b2 = FindIdent(f, "b2");
  const Token* c = FindIdent(f, "c");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b2, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(a->line, 1);
  EXPECT_EQ(b2->line, 2);
  EXPECT_EQ(c->line, 4);
}

// -------------------------------------------------------------- lock model

SourceFile LexWithModel(const std::string& path, const std::string& code) {
  SourceFile f = LexFile(path, code);
  f.functions = BuildLockModel(f);
  return f;
}

TEST(LockModel, TracksNestedAcquisitionsAndCalls) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "namespace tklus {\n"
                                    "class Engine {\n"
                                    " public:\n"
                                    "  void Save() {\n"
                                    "    MutexLock a(&append_mu_);\n"
                                    "    MutexLock m(&merge_mu_);\n"
                                    "    Flush();\n"
                                    "  }\n"
                                    "};\n"
                                    "}  // namespace tklus\n");
  ASSERT_EQ(f.functions.size(), 1u);
  const FunctionLockModel& fn = f.functions[0];
  EXPECT_EQ(fn.name, "Save");
  ASSERT_EQ(fn.acquisitions.size(), 2u);
  EXPECT_EQ(fn.acquisitions[0].guard.member, "append_mu_");
  EXPECT_TRUE(fn.acquisitions[0].held.empty());
  EXPECT_EQ(fn.acquisitions[1].guard.member, "merge_mu_");
  ASSERT_EQ(fn.acquisitions[1].held.size(), 1u);
  EXPECT_EQ(fn.acquisitions[1].held[0].member, "append_mu_");
  ASSERT_EQ(fn.calls.size(), 1u);
  EXPECT_EQ(fn.calls[0].callee, "Flush");
  EXPECT_EQ(fn.calls[0].held.size(), 2u);
}

TEST(LockModel, ScopedReleasePopsGuard) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Fold() {\n"
                                    "  MutexLock m(&merge_mu_);\n"
                                    "  {\n"
                                    "    ReaderMutexLock r(&mu_);\n"
                                    "  }\n"
                                    "  WriterMutexLock w(&mu_);\n"
                                    "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  const FunctionLockModel& fn = f.functions[0];
  ASSERT_EQ(fn.acquisitions.size(), 3u);
  EXPECT_FALSE(fn.acquisitions[1].guard.exclusive);  // the reader
  // The writer at the end sees only merge_mu_: the reader guard died
  // with its block.
  const GuardAcquire& writer = fn.acquisitions[2];
  EXPECT_EQ(writer.guard.member, "mu_");
  ASSERT_EQ(writer.held.size(), 1u);
  EXPECT_EQ(writer.held[0].member, "merge_mu_");
}

TEST(LockModel, ResolvesMemberThroughArrow) {
  const SourceFile f = LexWithModel(
      "src/core/engine.cc",
      "void Open(Engine* engine) {\n"
      "  WriterMutexLock lock(&engine->mu_);\n"
      "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  ASSERT_EQ(f.functions[0].acquisitions.size(), 1u);
  EXPECT_EQ(f.functions[0].acquisitions[0].guard.member, "mu_");
}

TEST(LockModel, QualifiedOutOfClassName) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Engine::Save() {\n"
                                    "  MutexLock a(&append_mu_);\n"
                                    "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  EXPECT_EQ(f.functions[0].name, "Engine::Save");
}

// ----------------------------------------------------------- conf loading

std::string WriteTempConf(const std::string& name, const std::string& body) {
  const fs::path path = fs::path(testing::TempDir()) / name;
  std::ofstream out(path);
  out << body;
  out.close();
  return path.string();
}

TEST(LockOrderConf, TransitiveClosureAndIoLists) {
  const std::string path = WriteTempConf("ok.conf",
                                         "# comment\n"
                                         "lock a core/engine.cc\n"
                                         "lock b\n"
                                         "lock c\n"
                                         "order a b c\n"
                                         "io-lock c\n"
                                         "io-symbol fsync Append\n");
  Result<LockOrderConfig> cfg = LoadLockOrderConfig(path);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_TRUE(cfg->CanPrecede("a", "b"));
  EXPECT_TRUE(cfg->CanPrecede("a", "c"));  // transitive
  EXPECT_TRUE(cfg->CanPrecede("b", "c"));
  EXPECT_FALSE(cfg->CanPrecede("c", "a"));
  EXPECT_FALSE(cfg->CanPrecede("b", "a"));
  EXPECT_TRUE(cfg->IsDeclared("a", "src/core/engine.cc"));
  EXPECT_FALSE(cfg->IsDeclared("a", "src/index/hybrid_index.cc"));
  EXPECT_TRUE(cfg->IsDeclared("b", "src/index/hybrid_index.cc"));
  EXPECT_EQ(cfg->io_locks.count("c"), 1u);
  EXPECT_EQ(cfg->io_symbols.count("fsync"), 1u);
  EXPECT_EQ(cfg->io_symbols.count("Append"), 1u);
}

TEST(LockOrderConf, RejectsCycle) {
  const std::string path = WriteTempConf("cycle.conf",
                                         "lock a\nlock b\n"
                                         "order a b\norder b a\n");
  Result<LockOrderConfig> cfg = LoadLockOrderConfig(path);
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().ToString().find("cycle"), std::string::npos);
}

TEST(LockOrderConf, RejectsUndeclaredOrderName) {
  const std::string path =
      WriteTempConf("undeclared.conf", "lock a\norder a ghost\n");
  Result<LockOrderConfig> cfg = LoadLockOrderConfig(path);
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().ToString().find("undeclared"), std::string::npos);
}

TEST(LockOrderConf, RejectsDuplicateLock) {
  const std::string path =
      WriteTempConf("dup.conf", "lock a\nlock a scope.cc\n");
  ASSERT_FALSE(LoadLockOrderConfig(path).ok());
}

// ------------------------------------------------------------------- rules

std::vector<Diagnostic> RunRule(const std::string& rule_name,
                                const SourceFile& file,
                                const AnalyzerContext& ctx) {
  std::vector<Diagnostic> out;
  for (const auto& rule : BuildRuleSet()) {
    if (rule->name() == rule_name) rule->Check(file, ctx, &out);
  }
  return out;
}

AnalyzerContext EngineLockContext() {
  AnalyzerContext ctx;
  ctx.lockorder.loaded = true;
  ctx.lockorder.locks = {{"append_mu_", ""}, {"merge_mu_", ""}, {"mu_", ""}};
  ctx.lockorder.can_precede["append_mu_"] = {"merge_mu_", "mu_"};
  ctx.lockorder.can_precede["merge_mu_"] = {"mu_"};
  ctx.lockorder.io_locks = {"mu_"};
  ctx.lockorder.io_symbols = {"fsync", "Append"};
  return ctx;
}

TEST(LockOrderRule, FlagsInversion) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Bad() {\n"
                                    "  MutexLock m(&merge_mu_);\n"
                                    "  MutexLock a(&append_mu_);\n"
                                    "}\n");
  const std::vector<Diagnostic> diags =
      RunRule("lock-order", f, EngineLockContext());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("inversion"), std::string::npos);
}

TEST(LockOrderRule, AcceptsDeclaredChain) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Good() {\n"
                                    "  MutexLock a(&append_mu_);\n"
                                    "  MutexLock m(&merge_mu_);\n"
                                    "  WriterMutexLock w(&mu_);\n"
                                    "}\n");
  EXPECT_TRUE(RunRule("lock-order", f, EngineLockContext()).empty());
}

TEST(LockOrderRule, FlagsRecursiveSharedAcquisition) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Bad() {\n"
                                    "  ReaderMutexLock r1(&mu_);\n"
                                    "  ReaderMutexLock r2(&mu_);\n"
                                    "}\n");
  const std::vector<Diagnostic> diags =
      RunRule("lock-order", f, EngineLockContext());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("recursive"), std::string::npos);
}

TEST(LockOrderRule, MissingManifestFlagsNesting) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Nest() {\n"
                                    "  MutexLock a(&x_mu_);\n"
                                    "  MutexLock b(&y_mu_);\n"
                                    "}\n");
  AnalyzerContext ctx;  // no lockorder.conf
  const std::vector<Diagnostic> diags = RunRule("lock-order", f, ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("lockorder.conf"), std::string::npos);
}

TEST(IoUnderLockRule, FlagsBlockingCallUnderIoLock) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Bad() {\n"
                                    "  WriterMutexLock w(&mu_);\n"
                                    "  fsync(fd);\n"
                                    "}\n");
  const std::vector<Diagnostic> diags =
      RunRule("io-under-lock", f, EngineLockContext());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("fsync"), std::string::npos);
}

TEST(IoUnderLockRule, AllowsIoUnderNonIoLock) {
  const SourceFile f = LexWithModel("src/core/engine.cc",
                                    "void Good() {\n"
                                    "  MutexLock a(&append_mu_);\n"
                                    "  wal_->Append(rec);\n"
                                    "}\n");
  EXPECT_TRUE(RunRule("io-under-lock", f, EngineLockContext()).empty());
}

// ------------------------------------------------------------------ output

TEST(Output, JsonEscapesSpecials) {
  const std::vector<Diagnostic> diags = {
      {"rule-x", "src/a.cc", 3, "say \"hi\"\nback\\slash"}};
  const std::string json = DiagnosticsToJson(diags);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
}

TEST(Output, SarifCarriesCatalogAndResults) {
  const std::vector<RuleInfo> rules = {{"lock-order", "order rule"},
                                       {"io-under-lock", "io rule"}};
  const std::vector<Diagnostic> diags = {
      {"lock-order", "src/core/engine.cc", 12, "inversion"}};
  const std::string sarif = DiagnosticsToSarif(diags, rules);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"tklus_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"io-under-lock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 0"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("src/core/engine.cc"), std::string::npos);
}

// ------------------------------------------------------- parallel analysis

TEST(RunAnalysis, DeterministicAcrossJobCounts) {
  const fs::path root = fs::path(testing::TempDir()) / "analyze_jobs_tree";
  fs::create_directories(root / "src" / "core");
  for (int i = 0; i < 6; ++i) {
    std::ofstream out(root / "src" / "core" /
                      ("f" + std::to_string(i) + ".cc"));
    // Nested guards + no lockorder.conf in this root -> one
    // missing-manifest diagnostic per file, on every scan.
    out << "void Nest" << i << "() {\n"
        << "  MutexLock a(&x_mu_);\n"
        << "  MutexLock b(&y_mu_);\n"
        << "}\n";
  }
  std::vector<std::vector<Diagnostic>> runs;
  for (const unsigned jobs : {1u, 4u}) {
    AnalyzerOptions opts;
    opts.root = root.string();
    opts.jobs = jobs;
    Result<std::vector<Diagnostic>> diags = RunAnalysis(opts);
    ASSERT_TRUE(diags.ok()) << diags.status().ToString();
    EXPECT_EQ(diags->size(), 6u) << "jobs=" << jobs;
    runs.push_back(*diags);
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].path, runs[1][i].path);
    EXPECT_EQ(runs[0][i].line, runs[1][i].line);
    EXPECT_EQ(runs[0][i].rule, runs[1][i].rule);
    EXPECT_EQ(runs[0][i].message, runs[1][i].message);
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace tklus::analyze
