#include "analyze/callgraph.h"

#include <algorithm>

namespace tklus::analyze {

namespace {

// One id if the candidate list has exactly one entry, else -1.
int UniqueOf(const std::vector<int>& candidates) {
  return candidates.size() == 1 ? candidates[0] : -1;
}

}  // namespace

void ProgramModel::Build(const std::vector<SourceFile>& files) {
  functions.clear();
  by_file.clear();
  by_qualified.clear();
  by_name.clear();
  field_guards.clear();

  // Annotations first: a header's TKLUS_REQUIRES on the declaration must
  // reach the .cc definition, so they merge program-wide by
  // (class, method) before functions are interned.
  std::map<std::pair<std::string, std::string>, MethodAnnotation> annotations;
  for (const SourceFile& file : files) {
    for (const FieldGuard& guard : file.guarded_fields) {
      field_guards.emplace(std::make_pair(guard.class_name, guard.field),
                           guard);
    }
    for (const MethodAnnotation& anno : file.method_annotations) {
      const auto key = std::make_pair(anno.class_name, anno.method);
      auto [it, inserted] = annotations.emplace(key, anno);
      if (!inserted) {
        it->second.requires_locks.insert(anno.requires_locks.begin(),
                                         anno.requires_locks.end());
        it->second.no_thread_safety |= anno.no_thread_safety;
      }
    }
  }

  for (const SourceFile& file : files) {
    std::vector<int>& ids = by_file[file.path];
    for (size_t fi = 0; fi < file.functions.size(); ++fi) {
      const FunctionLockModel& fn = file.functions[fi];
      ProgramFunction pf;
      pf.path = file.path;
      pf.fn_index = static_cast<int>(fi);
      pf.class_name = fn.class_name;
      pf.line = fn.line;
      pf.is_ctor_or_dtor = fn.is_ctor_or_dtor;
      const size_t sep = fn.name.rfind("::");
      pf.last_name =
          sep == std::string::npos ? fn.name : fn.name.substr(sep + 2);
      pf.qualified = pf.class_name.empty()
                         ? pf.last_name
                         : pf.class_name + "::" + pf.last_name;
      const auto anno = annotations.find(
          std::make_pair(pf.class_name, pf.last_name));
      if (anno != annotations.end()) {
        pf.requires_locks = anno->second.requires_locks;
        pf.no_thread_safety = anno->second.no_thread_safety;
      }
      // Seed the summary with the function's own RAII acquisitions; the
      // fixpoint (ComputeSummaries) folds callee summaries in on top.
      const std::string display =
          !pf.qualified.empty()
              ? pf.qualified
              : file.path + ":" + std::to_string(pf.line);
      for (const GuardAcquire& acq : fn.acquisitions) {
        pf.summary.AddAcquire(TransitiveAcquire{
            acq.guard.member, file.path, acq.guard.line,
            acq.guard.exclusive, {display}});
      }
      const int id = static_cast<int>(functions.size());
      ids.push_back(id);
      if (!pf.last_name.empty()) {
        by_name[pf.last_name].push_back(id);
        by_qualified[pf.qualified].push_back(id);
      }
      functions.push_back(std::move(pf));
    }
  }

  // Edges, now that every body is interned. Held-lock names dedup in
  // acquisition order; self-edges are kept (direct recursion is a real
  // cycle the SCC pass must see).
  for (const SourceFile& file : files) {
    const std::vector<int>& ids = by_file[file.path];
    for (size_t fi = 0; fi < file.functions.size(); ++fi) {
      ProgramFunction& caller = functions[ids[fi]];
      for (const CallSite& call : file.functions[fi].call_sites) {
        // Lambda-body calls execute on an unknowable schedule (thread
        // entries, deferred callbacks); attributing them to the
        // enclosing function would fabricate chains it never runs.
        if (call.in_lambda) continue;
        const int callee = Resolve(caller, call);
        if (callee < 0) continue;
        CallEdge edge;
        edge.callee = callee;
        edge.line = call.line;
        for (const HeldGuard& h : call.held) {
          if (std::find(edge.held.begin(), edge.held.end(), h.member) ==
              edge.held.end()) {
            edge.held.push_back(h.member);
          }
        }
        caller.callees.push_back(std::move(edge));
      }
    }
  }
}

int ProgramModel::IdOf(std::string_view path, size_t fn_index) const {
  const auto it = by_file.find(std::string(path));
  if (it == by_file.end() || fn_index >= it->second.size()) return -1;
  return it->second[fn_index];
}

const FieldGuard* ProgramModel::FindFieldGuard(
    const std::string& class_name, const std::string& field) const {
  const auto it = field_guards.find(std::make_pair(class_name, field));
  return it == field_guards.end() ? nullptr : &it->second;
}

int ProgramModel::Resolve(const ProgramFunction& caller,
                          const CallSite& call) const {
  const auto named = by_name.find(call.callee);
  const auto unique_qualified = [&](const std::string& q) {
    const auto it = by_qualified.find(q);
    return it == by_qualified.end() ? -1 : UniqueOf(it->second);
  };
  switch (call.form) {
    case CallSite::Form::kUnqualified:
    case CallSite::Form::kThis: {
      if (!caller.class_name.empty()) {
        const int id =
            unique_qualified(caller.class_name + "::" + call.callee);
        if (id >= 0) return id;
      }
      if (named == by_name.end()) return -1;
      // Unqualified calls prefer a unique same-file target — the
      // anonymous-namespace-helper case, where the same helper name in
      // two TUs must never cross-resolve.
      int same_file = -1;
      int same_file_count = 0;
      for (const int id : named->second) {
        if (functions[id].path == caller.path) {
          same_file = id;
          ++same_file_count;
        }
      }
      if (same_file_count == 1) return same_file;
      if (same_file_count > 1) return -1;
      return UniqueOf(named->second);
    }
    case CallSite::Form::kQualified: {
      if (!call.qualifier.empty()) {
        const int id = unique_qualified(call.qualifier + "::" + call.callee);
        if (id >= 0) return id;
      }
      return named == by_name.end() ? -1 : UniqueOf(named->second);
    }
    case CallSite::Form::kMember:
      // The token model cannot type the receiver; resolve only when the
      // whole program has exactly one function of this name.
      return named == by_name.end() ? -1 : UniqueOf(named->second);
  }
  return -1;
}

std::vector<std::vector<int>> ProgramModel::SccOrder() const {
  // Iterative Tarjan. Components are emitted when their root finishes,
  // i.e. after every component reachable from them — exactly the
  // bottom-up (callees-first) order the summary fixpoint wants.
  const int n = static_cast<int>(functions.size());
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;

  struct Frame {
    int node;
    size_t edge;
  };
  std::vector<Frame> work;
  for (int start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    work.push_back(Frame{start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = 1;
    while (!work.empty()) {
      Frame& frame = work.back();
      const int v = frame.node;
      if (frame.edge < functions[v].callees.size()) {
        const int w = functions[v].callees[frame.edge++].callee;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          work.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<int> scc;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc.push_back(w);
        } while (w != v);
        sccs.push_back(std::move(scc));
      }
      work.pop_back();
      if (!work.empty()) {
        const int parent = work.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return sccs;
}

}  // namespace tklus::analyze
