#include "server/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/serde.h"

namespace tklus::server {
namespace {

Status Errno(const char* op) {
  return Status::IoError(std::string(op) + ": " + std::strerror(errno));
}

Status SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::Ok();
}

// Reads exactly n bytes. *clean_eof is set only when EOF arrives before
// the first byte — EOF mid-buffer is a truncated frame, an error.
Status RecvAll(int fd, char* data, size_t n, bool* clean_eof) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::Ok();
      }
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeRequest(const WireRequest& request) {
  std::ostringstream out;
  serde::WriteU32(out, static_cast<uint32_t>(request.kind));
  const TkLusQuery& q = request.query;
  serde::WriteDouble(out, q.location.lat);
  serde::WriteDouble(out, q.location.lon);
  serde::WriteDouble(out, q.radius_km);
  serde::WriteU32(out, static_cast<uint32_t>(q.k));
  serde::WriteU32(out, static_cast<uint32_t>(q.semantics));
  serde::WriteU32(out, static_cast<uint32_t>(q.ranking));
  serde::WriteU32(out, static_cast<uint32_t>(q.keywords.size()));
  for (const std::string& kw : q.keywords) serde::WriteString(out, kw);
  return out.str();
}

Status DecodeRequest(const std::string& payload, WireRequest* request) {
  std::istringstream in(payload);
  uint32_t kind = 0, k = 0, semantics = 0, ranking = 0, num_keywords = 0;
  TkLusQuery q;
  if (!serde::ReadU32(in, &kind) || !serde::ReadDouble(in, &q.location.lat) ||
      !serde::ReadDouble(in, &q.location.lon) ||
      !serde::ReadDouble(in, &q.radius_km) || !serde::ReadU32(in, &k) ||
      !serde::ReadU32(in, &semantics) || !serde::ReadU32(in, &ranking) ||
      !serde::ReadU32(in, &num_keywords)) {
    return Status::InvalidArgument("truncated request payload");
  }
  if (kind != static_cast<uint32_t>(RequestKind::kUserQuery) &&
      kind != static_cast<uint32_t>(RequestKind::kTweetQuery)) {
    return Status::InvalidArgument("unknown request kind " +
                                   std::to_string(kind));
  }
  if (semantics > static_cast<uint32_t>(Semantics::kOr) ||
      ranking > static_cast<uint32_t>(Ranking::kMax)) {
    return Status::InvalidArgument("request enum out of range");
  }
  if (num_keywords > payload.size()) {  // each keyword costs >= 8 bytes
    return Status::InvalidArgument("keyword count exceeds payload");
  }
  q.k = static_cast<int>(k);
  q.semantics = static_cast<Semantics>(semantics);
  q.ranking = static_cast<Ranking>(ranking);
  q.keywords.reserve(num_keywords);
  for (uint32_t i = 0; i < num_keywords; ++i) {
    std::string kw;
    if (!serde::ReadString(in, &kw)) {
      return Status::InvalidArgument("truncated request keyword");
    }
    q.keywords.push_back(std::move(kw));
  }
  request->kind = static_cast<RequestKind>(kind);
  request->query = std::move(q);
  return Status::Ok();
}

std::string EncodeResponse(const WireResponse& response) {
  std::ostringstream out;
  serde::WriteU32(out, static_cast<uint32_t>(response.code));
  serde::WriteString(out, response.message);
  serde::WriteU32(out, response.degraded ? 1 : 0);
  serde::WriteU32(out, static_cast<uint32_t>(response.users.size()));
  for (const WireUser& u : response.users) {
    serde::WriteI64(out, u.uid);
    serde::WriteDouble(out, u.score);
  }
  serde::WriteU32(out, static_cast<uint32_t>(response.tweets.size()));
  for (const WireTweet& t : response.tweets) {
    serde::WriteI64(out, t.sid);
    serde::WriteI64(out, t.uid);
    serde::WriteDouble(out, t.score);
    serde::WriteDouble(out, t.distance_km);
  }
  serde::WriteDouble(out, response.server_ms);
  return out.str();
}

Status DecodeResponse(const std::string& payload, WireResponse* response) {
  std::istringstream in(payload);
  WireResponse r;
  uint32_t code = 0, degraded = 0, num_users = 0, num_tweets = 0;
  if (!serde::ReadU32(in, &code) || !serde::ReadString(in, &r.message) ||
      !serde::ReadU32(in, &degraded) || !serde::ReadU32(in, &num_users)) {
    return Status::Corruption("truncated response payload");
  }
  if (num_users > payload.size()) {
    return Status::Corruption("user count exceeds payload");
  }
  r.code = static_cast<int32_t>(code);
  r.degraded = degraded != 0;
  r.users.reserve(num_users);
  for (uint32_t i = 0; i < num_users; ++i) {
    WireUser u;
    if (!serde::ReadI64(in, &u.uid) || !serde::ReadDouble(in, &u.score)) {
      return Status::Corruption("truncated response user");
    }
    r.users.push_back(u);
  }
  if (!serde::ReadU32(in, &num_tweets) || num_tweets > payload.size()) {
    return Status::Corruption("truncated response payload");
  }
  r.tweets.reserve(num_tweets);
  for (uint32_t i = 0; i < num_tweets; ++i) {
    WireTweet t;
    if (!serde::ReadI64(in, &t.sid) || !serde::ReadI64(in, &t.uid) ||
        !serde::ReadDouble(in, &t.score) ||
        !serde::ReadDouble(in, &t.distance_km)) {
      return Status::Corruption("truncated response tweet");
    }
    r.tweets.push_back(t);
  }
  if (!serde::ReadDouble(in, &r.server_ms)) {
    return Status::Corruption("truncated response payload");
  }
  *response = std::move(r);
  return Status::Ok();
}

Status WriteFrame(int fd, const std::string& payload) {
  char prefix[4];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(prefix, &len, 4);
  TKLUS_RETURN_IF_ERROR(SendAll(fd, prefix, 4));
  return SendAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, uint64_t max_frame_bytes, std::string* payload,
                 bool* eof) {
  payload->clear();
  *eof = false;
  char prefix[4];
  TKLUS_RETURN_IF_ERROR(RecvAll(fd, prefix, 4, eof));
  if (*eof) return Status::Ok();
  uint32_t len = 0;
  std::memcpy(&len, prefix, 4);
  if (len > max_frame_bytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds limit of " +
                                   std::to_string(max_frame_bytes));
  }
  payload->resize(len);
  return RecvAll(fd, payload->data(), len, nullptr);
}

Result<int> Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  return fd;
}

Result<WireResponse> Call(int fd, const WireRequest& request) {
  TKLUS_RETURN_IF_ERROR(WriteFrame(fd, EncodeRequest(request)));
  std::string payload;
  bool eof = false;
  TKLUS_RETURN_IF_ERROR(ReadFrame(fd, UINT32_MAX, &payload, &eof));
  if (eof) return Status::IoError("server closed before responding");
  WireResponse response;
  TKLUS_RETURN_IF_ERROR(DecodeResponse(payload, &response));
  return response;
}

}  // namespace tklus::server
