#ifndef TKLUS_COMMON_FAULT_INJECTOR_H_
#define TKLUS_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"

namespace tklus {

// What an injected fault does at the instrumented call site.
enum class FaultKind {
  // The operation fails with kUnavailable ("data node momentarily down");
  // a later attempt may succeed. Retry policies absorb these.
  kTransient,
  // The operation fails with kIoError ("disk gone"); retrying is useless.
  kPermanent,
  // The bytes the operation touches are silently flipped at rest; checksum
  // verification must turn this into kCorruption.
  kCorruption,
  // The write is torn: only a strict prefix of the buffer reaches the
  // medium before the operation "crashes" (kIoError). Consulted by
  // MaybeTornWrite, never by MaybeFail — the caller must persist the
  // prefix itself so recovery code sees a genuinely partial record.
  kTornWrite,
};

// Well-known instrumentation sites. Components check the injector at these
// names so one injector can drive faults across the whole stack.
namespace faults {
inline constexpr char kDfsRead[] = "dfs.read";
inline constexpr char kDiskRead[] = "disk.read";
inline constexpr char kDiskWrite[] = "disk.write";
inline constexpr char kMapTask[] = "mapreduce.map";
inline constexpr char kReduceTask[] = "mapreduce.reduce";
inline constexpr char kWalAppend[] = "wal.append";
inline constexpr char kWalFsync[] = "wal.fsync";
inline constexpr char kWalTruncate[] = "wal.truncate";
inline constexpr char kFileWrite[] = "file.write";
inline constexpr char kFileRename[] = "file.rename";
// Consulted by the engine immediately before the sid_store.bin artifact
// write, so the recovery sweep can kill exactly that checkpoint window
// (kFileWrite would fire on the first artifact instead).
inline constexpr char kSidStoreWrite[] = "sid_store.write";
}  // namespace faults

// A seeded, deterministic fault injector shared by every layer that does
// I/O (DiskManager pages, SimulatedDfs blocks, MapReduce tasks). Faults are
// either probabilistic (each operation at a site fails with probability p,
// drawn from the injector's own PRNG so runs replay exactly under a fixed
// seed) or scheduled (the next N operations at a site fail). Components
// hold a non-owning pointer and treat nullptr as "no faults"; the injector
// must outlive everything it is wired into. Thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Every future operation at `site` fails with probability `probability`
  // (replacing any previous rate of the same kind at that site; 0 removes
  // it).
  void SetFaultRate(const std::string& site, FaultKind kind,
                    double probability);

  // The next `count` operations at `site` fail deterministically, before
  // any probabilistic rule is consulted.
  void FailNext(const std::string& site, FaultKind kind, int count);

  // Removes every rule; counters are kept.
  void Clear();
  void ClearSite(const std::string& site);

  // Called by an instrumented operation. Returns kUnavailable (transient)
  // or kIoError (permanent) when a fault fires, OK otherwise. Corruption
  // rules never fire here — they are consulted by MaybeCorrupt.
  Status MaybeFail(const std::string& site, const std::string& detail);

  // Consults corruption rules for `site`; when one fires, flips one
  // deterministic-but-arbitrary byte of [data, data+len). Returns true if
  // the buffer was corrupted. No-op on empty buffers.
  bool MaybeCorrupt(const std::string& site, char* data, size_t len);

  // Consults torn-write rules for `site` before a `len`-byte write. When
  // one fires, returns the number of bytes (a strict prefix, possibly 0)
  // the caller must persist before failing the operation with kIoError —
  // simulating a crash mid-write. Returns nullopt when no rule fires.
  std::optional<size_t> MaybeTornWrite(const std::string& site, size_t len);

  // Faults injected so far (all kinds) at one site / across all sites.
  uint64_t injected(const std::string& site) const;
  uint64_t total_injected() const;

 private:
  struct SiteRules {
    // Probabilistic rates, one slot per FaultKind.
    double rate[4] = {0, 0, 0, 0};
    // Scheduled failing operations (kTransient/kPermanent), consumed front
    // to back by MaybeFail; scheduled corruptions consumed by MaybeCorrupt;
    // scheduled torn writes consumed by MaybeTornWrite.
    std::vector<FaultKind> scheduled_fail;
    int scheduled_corrupt = 0;
    int scheduled_torn = 0;
  };

  mutable Mutex mu_;
  Rng rng_ TKLUS_GUARDED_BY(mu_);
  std::map<std::string, SiteRules> rules_ TKLUS_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> injected_ TKLUS_GUARDED_BY(mu_);
};

}  // namespace tklus

#endif  // TKLUS_COMMON_FAULT_INJECTOR_H_
