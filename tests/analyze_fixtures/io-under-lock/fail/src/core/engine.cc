// Fixture: fsync while holding the engine lock stalls every concurrent
// query behind one disk flush and must trip `io-under-lock`.
namespace tklus {

class Engine {
 public:
  void Checkpoint() {
    WriterMutexLock lock(&mu_);
    fsync(fd_);  // must fire: blocking syscall under the engine lock
  }

 private:
  SharedMutex mu_;
  int fd_ = 0;
};

}  // namespace tklus
