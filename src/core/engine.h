#ifndef TKLUS_CORE_ENGINE_H_
#define TKLUS_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/bounds.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/thread_tracker.h"
#include "dfs/dfs.h"
#include "index/hybrid_index.h"
#include "model/dataset.h"
#include "obs/slow_query_log.h"
#include "social/popularity_cache.h"
#include "social/social_graph.h"
#include "storage/metadata_db.h"
#include "text/vocabulary.h"

namespace tklus {

// The public entry point of the library: builds the whole Figure-3 stack
// from a dataset (metadata DB with B+-trees, MapReduce-constructed hybrid
// index in the simulated DFS, social graph, upper-bound registry) and
// answers TkLUS queries.
//
//   Dataset tweets = ...;
//   auto engine = TkLusEngine::Build(tweets, TkLusEngine::Options{});
//   TkLusQuery q{.location = {43.68, -79.37}, .radius_km = 10,
//                .keywords = {"hotel"}, .k = 5};
//   auto result = (*engine)->Query(q);
//
// Concurrency contract: Query and QueryTweets take the engine lock in
// shared mode and may run concurrently with each other from any number
// of threads; AppendBatch and Save take it exclusively and serialize
// against everything. This is sound because the whole read path is
// re-entrant under a quiescent writer: the metadata DB's buffer pool is
// internally latched (page table / LRU / pins under its own mutex), page
// *contents* are read-only between appends (Insert — the only mutator —
// runs under the exclusive writer lock), the hybrid index snapshots its
// forward-index state under its own lock, and the popularity cache is
// sharded-lock thread-safe with generation-based invalidation on append.
// The component accessors (index(), metadata_db(), dfs(), ...) bypass
// the lock and are for benchmarks/tests on a quiescent engine only.
class TkLusEngine {
 public:
  struct Options {
    // Directory for the metadata DB file. Empty -> unique temp directory
    // (removed when the engine is destroyed).
    std::string working_dir;
    int geohash_length = 4;       // §VI-B2's choice
    int mapreduce_workers = 3;    // Table III cluster
    int reduce_tasks = 8;
    size_t buffer_pool_pages = 1024;
    int thread_depth = 6;         // d in Alg. 1
    size_t num_hot_keywords = 10; // Table II
    ScoringParams scoring;
    SimulatedDfs::Options dfs;
    TokenizerOptions tokenizer;
    // Fault tolerance. The injector (optional, must outlive the engine) is
    // wired into every I/O layer: DFS block reads, metadata-DB page I/O
    // and MapReduce tasks. Transient DFS faults during postings fetches
    // are absorbed by `dfs_retry`; failed MapReduce task attempts are
    // re-run up to `max_task_attempts` times.
    FaultInjector* fault_injector = nullptr;
    RetryPolicy dfs_retry;
    int max_task_attempts = 4;
    // Capacity (entries) of the engine-owned φ(p) memo shared across
    // queries; AppendBatch invalidates it wholesale via a generation
    // bump. 0 disables the cache (every query rebuilds every thread).
    size_t popularity_cache_entries = 1 << 16;
    // Observability: queries slower than `slow_query_ms` land in the
    // engine's slow-query ring (slow_query_log()); <= 0 disables it.
    double slow_query_ms = 250.0;
    size_t slow_query_log_entries = 128;
  };

  // Builds every subsystem from `dataset`. The dataset is not retained.
  static Result<std::unique_ptr<TkLusEngine>> Build(const Dataset& dataset,
                                                    Options options);
  static Result<std::unique_ptr<TkLusEngine>> Build(const Dataset& dataset) {
    return Build(dataset, Options{});
  }

  // Appends a new batch of posts — the paper's periodic-batch setting
  // (§IV-A): metadata rows, a new index generation, the social graph,
  // user profiles, vocabulary and the exact score bounds are all updated
  // incrementally. Batch sids must be sorted and strictly greater than
  // everything already indexed (sids are timestamps).
  Status AppendBatch(const Dataset& batch) TKLUS_EXCLUDES(mu_);

  // Persists every artifact (metadata DB, DFS image with the inverted
  // index, forward index, score bounds, user location profiles,
  // vocabulary) into `dir`, from which Open can restore the engine without
  // the original dataset. Each artifact is written crash-safely (temp file
  // + fsync + rename) with a CRC32 footer; a crash mid-save never leaves a
  // half-written artifact under its final name.
  Status Save(const std::string& dir) TKLUS_EXCLUDES(mu_);

  // Restores an engine saved with Save. Every artifact is checksum-
  // verified before deserialization: byte-level damage yields kCorruption,
  // never garbage state. The social graph is not persisted
  // (queries never consult it — bounds are persisted separately);
  // social_graph() returns an empty graph on an opened engine.
  static Result<std::unique_ptr<TkLusEngine>> Open(const std::string& dir,
                                                   Options options);
  static Result<std::unique_ptr<TkLusEngine>> Open(const std::string& dir) {
    return Open(dir, Options{});
  }

  ~TkLusEngine();
  TkLusEngine(const TkLusEngine&) = delete;
  TkLusEngine& operator=(const TkLusEngine&) = delete;

  // Answers one TkLUS query with its selected semantics/ranking.
  Result<QueryResult> Query(const TkLusQuery& query) TKLUS_EXCLUDES(mu_);

  // Tweet-level top-k spatial-keyword search (the intro's "directly
  // retrieve tweets" alternative): ranks tweets, not users.
  Result<TweetQueryResult> QueryTweets(const TkLusQuery& query)
      TKLUS_EXCLUDES(mu_);

  // Component access for benchmarks, ablations and tests. These bypass
  // mu_ (hence the analysis opt-outs): callers must ensure no concurrent
  // AppendBatch/Query is in flight.
  const HybridIndex& index() const { return *index_; }
  MetadataDb& metadata_db() { return *db_; }
  const SocialGraph& social_graph() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return graph_;
  }
  const UpperBoundRegistry& bounds() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return bounds_;
  }
  const Vocabulary& vocabulary() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return vocabulary_;
  }
  SimulatedDfs& dfs() { return *dfs_; }
  QueryProcessor& processor() { return *processor_; }
  // Slow-query ring buffer (internally thread-safe; always constructed,
  // disabled when Options::slow_query_ms <= 0).
  const SlowQueryLog& slow_query_log() const { return *slow_log_; }
  // Offline per-user location profile (all post locations per user),
  // backing the Def. 9 user distance score.
  const std::unordered_map<UserId, std::vector<GeoPoint>>& user_locations()
      const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return user_locations_;
  }
  const Options& options() const { return options_; }

 private:
  TkLusEngine() = default;

  // Post-query accounting (process metrics + slow-query log); called
  // outside mu_ — the log and registry are internally thread-safe.
  void RecordQueryObservability(const char* kind, const TkLusQuery& query,
                                const QueryStats& stats) const;

  Options options_;
  bool owns_working_dir_ = false;
  // Engine-wide reader-writer lock: Query/QueryTweets hold it shared,
  // AppendBatch/Save exclusive (see the class comment). The unique_ptr
  // components below are wired once during Build/Open and never
  // reseated, so the pointers themselves need no guard; their pointees
  // are protected by the shared/exclusive discipline of the public
  // entry points.
  mutable SharedMutex mu_;
  std::unique_ptr<SimulatedDfs> dfs_;
  std::unique_ptr<MetadataDb> db_;
  std::unique_ptr<HybridIndex> index_;
  SocialGraph graph_ TKLUS_GUARDED_BY(mu_);
  UpperBoundRegistry bounds_ TKLUS_GUARDED_BY(mu_);
  Vocabulary vocabulary_ TKLUS_GUARDED_BY(mu_);
  ThreadTracker tracker_ TKLUS_GUARDED_BY(mu_);
  int64_t max_sid_ TKLUS_GUARDED_BY(mu_) = INT64_MIN;
  std::unordered_map<UserId, std::vector<GeoPoint>> user_locations_
      TKLUS_GUARDED_BY(mu_);
  // φ(p) memo shared by all concurrent queries; internally thread-safe
  // (sharded locks), invalidated by AppendBatch's generation bump.
  // Null when Options::popularity_cache_entries == 0.
  std::unique_ptr<PopularityCache> popularity_cache_;
  std::unique_ptr<QueryProcessor> processor_;
  // Internally mutexed; recorded to outside mu_ after each query.
  std::unique_ptr<SlowQueryLog> slow_log_;
};

}  // namespace tklus

#endif  // TKLUS_CORE_ENGINE_H_
