// Fixture: the same call shape as the fail tree, but the chain follows
// the declared order — a_mu_ held, callee acquires b_mu_.
namespace tklus {

class Engine {
 public:
  void Inner() { MutexLock lock(&b_mu_); }

  void Outer() {
    MutexLock lock(&a_mu_);
    Inner();  // ok: a_mu_ -> b_mu_ is the declared order
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
};

}  // namespace tklus
