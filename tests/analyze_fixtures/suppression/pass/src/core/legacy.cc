// Fixture: a well-formed suppression actually silencing a live finding
// (naked-mutex fires on the annotated line when the marker is removed).
// The pass tree must come out completely clean: the finding is
// suppressed and the suppression is not stale.
namespace tklus {

std::mutex legacy_mu;  // NOLINT(tklus-naked-mutex): fixture exercising a sanctioned suppression

}  // namespace tklus
