#include "index/hybrid_index.h"

#include <algorithm>
#include <functional>

#include "common/serde.h"
#include "geo/geohash.h"
#include "index/postings_ops.h"
#include "mapreduce/job.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"

namespace tklus {

namespace {

using IndexKey = std::pair<std::string, std::string>;  // (geohash, term)

// Partition by geohash only: "data indexed by geohash will have all points
// for a given rectangular area in one computer" (§IV-B.1), so every term
// of one cell lands in one reduce partition / part file.
int GeohashPartitioner(const IndexKey& key, int num_partitions) {
  return static_cast<int>(std::hash<std::string>{}(key.first) %
                          static_cast<size_t>(num_partitions));
}

}  // namespace

Result<std::unique_ptr<HybridIndex>> HybridIndex::Build(
    const Dataset& dataset, SimulatedDfs* dfs, Options options) {
  if (options.geohash_length < 1 ||
      options.geohash_length > geohash::kMaxLength) {
    return Status::InvalidArgument("geohash length out of range");
  }
  auto index =
      std::unique_ptr<HybridIndex>(new HybridIndex(dfs, options));
  TKLUS_RETURN_IF_ERROR(index->AppendBatch(dataset));
  return index;
}

Status HybridIndex::AppendBatch(const Dataset& batch) {
  Result<PreparedAppend> prepared = PrepareAppend(batch);
  if (!prepared.ok()) return prepared.status();
  CommitAppend(*std::move(prepared));
  return Status::Ok();
}

Result<HybridIndex::PreparedAppend> HybridIndex::PrepareAppend(
    const Dataset& dataset) {
  const Options& options = options_;
  const Tokenizer tokenizer(options.tokenizer);
  const int length = options.geohash_length;

  // ---- Algorithm 2: map. Tokenize + stem, count term frequencies, and
  // emit ((geohash, term), (timestamp, tf)).
  using Job = MapReduceJob<const Post*, IndexKey, Posting, IndexKey,
                           std::string>;
  Job::MapFn map_fn = [&tokenizer, length](const Post* const& post,
                                           const Job::Emit& emit) {
    if (!post->HasLocation()) return;  // invisible to the spatial index
    const auto term_freqs = tokenizer.TermFrequencies(post->text);
    if (term_freqs.empty()) return;
    const std::string cell = geohash::Encode(post->location, length);
    for (const auto& [term, tf] : term_freqs) {
      emit(IndexKey{cell, term},
           Posting{post->sid, static_cast<uint32_t>(tf)});
    }
  };

  // ---- Algorithm 3: reduce. Append postings, sort by timestamp, emit the
  // encoded list.
  Job::ReduceFn reduce_fn = [](const IndexKey& key,
                               std::vector<Posting>& postings,
                               const Job::OutEmit& emit) {
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) { return a.tid < b.tid; });
    emit(key, EncodePostings(postings));
  };

  Job::Options job_options;
  job_options.num_workers = options.mapreduce_workers;
  job_options.num_reduce_tasks = options.reduce_tasks;
  job_options.max_task_attempts = options.max_task_attempts;
  job_options.fault_injector = options.fault_injector;
  Job job(std::move(map_fn), std::move(reduce_fn), job_options);
  job.set_partitioner(GeohashPartitioner);

  std::vector<const Post*> inputs;
  inputs.reserve(dataset.size());
  for (const Post& p : dataset.posts()) inputs.push_back(&p);

  auto partitions = job.Run(inputs);
  if (!partitions.ok()) return partitions.status();

  PreparedAppend prepared;
  prepared.stats_delta.map_seconds = job.stats().map_seconds;
  prepared.stats_delta.shuffle_seconds = job.stats().shuffle_seconds;
  prepared.stats_delta.reduce_seconds = job.stats().reduce_seconds;

  // Reserve this batch's generation number; the write pass below runs
  // unlocked (the DFS has its own mutex, and nothing can fetch from the
  // new part files until CommitAppend publishes their locations).
  uint32_t generation = 0;
  {
    MutexLock lock(&mu_);
    generation = generation_++;
  }

  // ---- Write each partition as one DFS part file in sorted key order and
  // record every list's position for the forward index (the "posting
  // forward index" second MapReduce job of §IV-B.2, folded into the write
  // pass since our DFS exposes offsets directly).
  Stopwatch write_timer;
  char name[48];
  for (size_t p = 0; p < partitions->size(); ++p) {
    std::snprintf(name, sizeof(name), "gen-%04u/part-%05zu", generation, p);
    const std::string file = options.dfs_prefix + name;
    uint64_t offset = 0;
    for (auto& [key, encoded] : (*partitions)[p]) {
      TKLUS_RETURN_IF_ERROR(dfs_->Append(file, encoded));
      // Decode-free doc count: first varint of the encoding.
      uint64_t doc_count = 0;
      size_t pos = 0;
      if (!GetVarint64(encoded, &pos, &doc_count)) {
        return Status::Internal("unreadable encoded postings");
      }
      prepared.entries.push_back(PreparedAppend::Entry{
          key.first, key.second,
          PostingsLocation{file, offset, encoded.size(),
                           static_cast<uint32_t>(doc_count)}});
      offset += encoded.size();
      prepared.stats_delta.postings_entries += doc_count;
      prepared.stats_delta.inverted_bytes += encoded.size();
      ++prepared.stats_delta.postings_lists;
    }
  }
  prepared.stats_delta.write_seconds = write_timer.ElapsedSeconds();
  return prepared;
}

void HybridIndex::CommitAppend(PreparedAppend prepared) {
  MutexLock lock(&mu_);
  for (PreparedAppend::Entry& entry : prepared.entries) {
    forward_.Add(entry.cell, entry.term, std::move(entry.location));
  }
  stats_.map_seconds += prepared.stats_delta.map_seconds;
  stats_.shuffle_seconds += prepared.stats_delta.shuffle_seconds;
  stats_.reduce_seconds += prepared.stats_delta.reduce_seconds;
  stats_.write_seconds += prepared.stats_delta.write_seconds;
  stats_.postings_lists += prepared.stats_delta.postings_lists;
  stats_.postings_entries += prepared.stats_delta.postings_entries;
  stats_.inverted_bytes += prepared.stats_delta.inverted_bytes;
  stats_.forward_bytes = forward_.ApproxBytes();
}

namespace {
constexpr uint64_t kIndexMagic = 0x78646979685354ULL;
}  // namespace

Status HybridIndex::Save(std::ostream& out) const {
  MutexLock lock(&mu_);
  serde::WriteU64(out, kIndexMagic);
  serde::WriteU64(out, static_cast<uint64_t>(options_.geohash_length));
  serde::WriteU64(out, generation_);
  serde::WriteString(out, options_.dfs_prefix);
  serde::WriteU64(out, stats_.postings_lists);
  serde::WriteU64(out, stats_.postings_entries);
  serde::WriteU64(out, stats_.inverted_bytes);
  serde::WriteU64(out, stats_.forward_bytes);
  forward_.Save(out);
  if (!out) return Status::IoError("short write saving index");
  return Status::Ok();
}

Result<std::unique_ptr<HybridIndex>> HybridIndex::Open(SimulatedDfs* dfs,
                                                       std::istream& in,
                                                       Options base) {
  uint64_t magic = 0, length = 0;
  if (!serde::ReadU64(in, &magic) || magic != kIndexMagic) {
    return Status::Corruption("not a hybrid index image");
  }
  Options options = std::move(base);  // keep runtime-only settings
  std::string prefix;
  uint64_t generation = 0;
  if (!serde::ReadU64(in, &length) || !serde::ReadU64(in, &generation) ||
      !serde::ReadString(in, &prefix)) {
    return Status::Corruption("truncated hybrid index header");
  }
  options.geohash_length = static_cast<int>(length);
  options.dfs_prefix = std::move(prefix);
  auto index = std::unique_ptr<HybridIndex>(
      new HybridIndex(dfs, std::move(options)));
  // Not yet published; the lock is uncontended but keeps the annotated
  // fields' discipline intact.
  MutexLock lock(&index->mu_);
  index->generation_ = static_cast<uint32_t>(generation);
  if (!serde::ReadU64(in, &index->stats_.postings_lists) ||
      !serde::ReadU64(in, &index->stats_.postings_entries) ||
      !serde::ReadU64(in, &index->stats_.inverted_bytes) ||
      !serde::ReadU64(in, &index->stats_.forward_bytes)) {
    return Status::Corruption("truncated hybrid index stats");
  }
  TKLUS_RETURN_IF_ERROR(index->forward_.Load(in));
  return index;
}

Result<std::vector<Posting>> HybridIndex::FetchPostings(
    const std::string& geohash, const std::string& term) const {
  // Snapshot the location list under the lock, then fetch from the DFS
  // unlocked: a concurrent AppendBatch may add a new generation, but
  // existing part files are immutable, so the snapshot stays valid.
  std::vector<PostingsLocation> locations;
  {
    MutexLock lock(&mu_);
    const std::vector<PostingsLocation>* found =
        forward_.Lookup(geohash, term);
    if (found == nullptr) return std::vector<Posting>{};
    locations = *found;
  }
  std::vector<Posting> merged;
  std::string encoded;
  for (const PostingsLocation& loc : locations) {
    // Retry transient DFS faults; permanent errors and corruption
    // propagate immediately. The op key makes the backoff jitter stable
    // for a given postings list, so fault runs replay deterministically.
    const uint64_t op_key =
        loc.offset ^ (std::hash<std::string>{}(loc.file) * 0x9e3779b97f4a7c15ULL);
    RetryStats retry_stats;
    const Status read = RetryTransient(
        options_.retry, op_key,
        [&] { return dfs_->ReadAt(loc.file, loc.offset, loc.length, &encoded); },
        &retry_stats);
    if (retry_stats.attempts > 1) {
      fetch_retries_.fetch_add(
          static_cast<uint64_t>(retry_stats.attempts - 1),
          std::memory_order_relaxed);
      MetricsRegistry::Global()
          .GetCounter("tklus_index_fetch_retries_total",
                      "Postings fetches re-issued after transient DFS faults.")
          ->Increment(static_cast<uint64_t>(retry_stats.attempts - 1));
    }
    TKLUS_RETURN_IF_ERROR(read);
    Result<std::vector<Posting>> postings = DecodePostings(encoded);
    if (!postings.ok()) return postings.status();
    if (merged.empty()) {
      merged = std::move(*postings);
    } else if (merged.back().tid < postings->front().tid) {
      // Time-ordered batches: plain concatenation.
      merged.insert(merged.end(), postings->begin(), postings->end());
    } else {
      merged = MergeDisjoint(merged, *postings);
    }
  }
  return merged;
}

Result<std::vector<Posting>> HybridIndex::FetchTermPostings(
    const std::vector<std::string>& cover_cells,
    const std::string& term) const {
  std::vector<Posting> merged;
  for (const std::string& cell : cover_cells) {
    Result<std::vector<Posting>> postings = FetchPostings(cell, term);
    if (!postings.ok()) return postings.status();
    if (postings->empty()) continue;
    merged = merged.empty() ? std::move(*postings)
                            : MergeDisjoint(merged, *postings);
  }
  return merged;
}

}  // namespace tklus
