#include "storage/metadata_db.h"

#include <cstring>
#include <unordered_map>

#include "storage/page_guard.h"

namespace tklus {

namespace {
// Header page (page 0) layout.
constexpr uint64_t kDbMagic = 0x62646174656d6b54ULL;  // "Tkmetadb"
constexpr size_t kMagicOff = 0;
constexpr size_t kSidRootOff = 8;
constexpr size_t kRsidRootOff = 16;
constexpr size_t kHeapFirstOff = 24;
constexpr size_t kHeapLastOff = 32;
constexpr size_t kRowCountOff = 40;
}  // namespace

Result<std::unique_ptr<MetadataDb>> MetadataDb::Create(
    const std::string& path, Options options) {
  auto db = std::unique_ptr<MetadataDb>(new MetadataDb());
  Result<DiskManager> disk = DiskManager::Open(path, /*truncate=*/true);
  if (!disk.ok()) return disk.status();
  db->disk_ = std::make_unique<DiskManager>(std::move(*disk));
  db->disk_->set_fault_injector(options.fault_injector);
  db->pool_ =
      std::make_unique<BufferPool>(db->disk_.get(), options.buffer_pool_pages);

  // Page 0: the database header, filled in by FlushAll.
  Result<PageGuard> header = PageGuard::New(db->pool_.get());
  if (!header.ok()) return header.status();
  (*header)->WriteAt<uint64_t>(kMagicOff, kDbMagic);

  Result<TableHeap> heap = TableHeap::Create(db->pool_.get(),
                                             sizeof(TweetMeta));
  if (!heap.ok()) return heap.status();
  db->heap_ = std::make_unique<TableHeap>(std::move(*heap));

  Result<BPlusTree> sid_index = BPlusTree::Create(db->pool_.get());
  if (!sid_index.ok()) return sid_index.status();
  db->sid_index_ = std::make_unique<BPlusTree>(std::move(*sid_index));

  Result<BPlusTree> rsid_index = BPlusTree::Create(db->pool_.get());
  if (!rsid_index.ok()) return rsid_index.status();
  db->rsid_index_ = std::make_unique<BPlusTree>(std::move(*rsid_index));

  return db;
}

Result<std::unique_ptr<MetadataDb>> MetadataDb::Open(const std::string& path,
                                                     Options options) {
  auto db = std::unique_ptr<MetadataDb>(new MetadataDb());
  Result<DiskManager> disk = DiskManager::Open(path, /*truncate=*/false);
  if (!disk.ok()) return disk.status();
  if (disk->num_pages() == 0) {
    return Status::Corruption("empty database file: " + path);
  }
  db->disk_ = std::make_unique<DiskManager>(std::move(*disk));
  db->disk_->set_fault_injector(options.fault_injector);
  db->pool_ =
      std::make_unique<BufferPool>(db->disk_.get(), options.buffer_pool_pages);
  Result<PageGuard> header = PageGuard::Fetch(db->pool_.get(), 0);
  if (!header.ok()) return header.status();
  Page* h = header->get();
  if (h->ReadAt<uint64_t>(kMagicOff) != kDbMagic) {
    return Status::Corruption("bad database magic: " + path);
  }
  const PageId sid_root = h->ReadAt<int64_t>(kSidRootOff);
  const PageId rsid_root = h->ReadAt<int64_t>(kRsidRootOff);
  const PageId heap_first = h->ReadAt<int64_t>(kHeapFirstOff);
  const PageId heap_last = h->ReadAt<int64_t>(kHeapLastOff);
  const uint64_t rows = h->ReadAt<uint64_t>(kRowCountOff);
  db->heap_ = std::make_unique<TableHeap>(TableHeap::Open(
      db->pool_.get(), sizeof(TweetMeta), heap_first, heap_last, rows));
  db->sid_index_ = std::make_unique<BPlusTree>(
      BPlusTree::Open(db->pool_.get(), sid_root));
  db->rsid_index_ = std::make_unique<BPlusTree>(
      BPlusTree::Open(db->pool_.get(), rsid_root));
  return db;
}

Status MetadataDb::FlushAll() {
  {
    Result<PageGuard> header = PageGuard::Fetch(pool_.get(), 0);
    if (!header.ok()) return header.status();
    Page* h = header->get();
    h->WriteAt<uint64_t>(kMagicOff, kDbMagic);
    h->WriteAt<int64_t>(kSidRootOff, sid_index_->root());
    h->WriteAt<int64_t>(kRsidRootOff, rsid_index_->root());
    h->WriteAt<int64_t>(kHeapFirstOff, heap_->first_page());
    h->WriteAt<int64_t>(kHeapLastOff, heap_->last_page());
    h->WriteAt<uint64_t>(kRowCountOff, heap_->record_count());
    header->MarkDirty();
    // The header pin must drop before FlushAll: pinned pages are skipped
    // by eviction, but FlushAll writes them regardless — unpin first so
    // the pool is quiescent (pinned_page_count() == 0) when it runs.
  }
  TKLUS_RETURN_IF_ERROR(pool_->FlushAll());
  // Persist the page-checksum sidecar alongside the flushed pages so a
  // reopen verifies exactly what was written.
  return disk_->Sync();
}

Status MetadataDb::Insert(const TweetMeta& row) {
  char buf[sizeof(TweetMeta)];
  std::memcpy(buf, &row, sizeof(TweetMeta));
  Result<Rid> rid = heap_->Insert(buf);
  if (!rid.ok()) return rid.status();
  TKLUS_RETURN_IF_ERROR(sid_index_->Insert(row.sid, rid->Pack()));
  if (row.rsid != TweetMeta::kNone) {
    TKLUS_RETURN_IF_ERROR(rsid_index_->Insert(row.rsid, rid->Pack()));
  }
  max_fanout_cache_.reset();
  return Status::Ok();
}

Result<std::optional<TweetMeta>> MetadataDb::SelectBySid(int64_t sid) {
  Result<std::optional<uint64_t>> packed = sid_index_->Get(sid);
  if (!packed.ok()) return packed.status();
  if (!packed->has_value()) return std::optional<TweetMeta>{};
  TweetMeta row;
  char buf[sizeof(TweetMeta)];
  TKLUS_RETURN_IF_ERROR(heap_->Get(Rid::Unpack(packed->value()), buf));
  std::memcpy(&row, buf, sizeof(TweetMeta));
  return std::optional<TweetMeta>{row};
}

Result<std::vector<std::optional<TweetMeta>>> MetadataDb::SelectBySidBatch(
    std::span<const int64_t> sids) {
  Result<std::vector<std::optional<uint64_t>>> packed =
      sid_index_->GetBatch(std::vector<int64_t>(sids.begin(), sids.end()));
  if (!packed.ok()) return packed.status();
  std::vector<std::optional<TweetMeta>> rows(sids.size());
  char buf[sizeof(TweetMeta)];
  for (size_t i = 0; i < packed->size(); ++i) {
    if (!(*packed)[i].has_value()) continue;
    TKLUS_RETURN_IF_ERROR(heap_->Get(Rid::Unpack((*packed)[i].value()), buf));
    TweetMeta row;
    std::memcpy(&row, buf, sizeof(TweetMeta));
    rows[i] = row;
  }
  return rows;
}

Result<std::vector<TweetMeta>> MetadataDb::SelectByRsid(int64_t rsid) {
  Result<std::vector<uint64_t>> packed = rsid_index_->GetAll(rsid);
  if (!packed.ok()) return packed.status();
  std::vector<TweetMeta> rows;
  rows.reserve(packed->size());
  char buf[sizeof(TweetMeta)];
  for (const uint64_t v : *packed) {
    TKLUS_RETURN_IF_ERROR(heap_->Get(Rid::Unpack(v), buf));
    TweetMeta row;
    std::memcpy(&row, buf, sizeof(TweetMeta));
    rows.push_back(row);
  }
  return rows;
}

Status MetadataDb::ScanRows(const std::function<void(const TweetMeta&)>& fn) {
  return heap_->Scan([&fn](Rid, const char* rec) {
    TweetMeta row;
    std::memcpy(&row, rec, sizeof(TweetMeta));
    fn(row);
  });
}

Result<int64_t> MetadataDb::MaxReplyFanout() {
  if (max_fanout_cache_.has_value()) return *max_fanout_cache_;
  std::unordered_map<int64_t, int64_t> fanout;
  Status st = heap_->Scan([&fanout](Rid, const char* rec) {
    TweetMeta row;
    std::memcpy(&row, rec, sizeof(TweetMeta));
    if (row.rsid != TweetMeta::kNone) ++fanout[row.rsid];
  });
  TKLUS_RETURN_IF_ERROR(st);
  int64_t max_fanout = 0;
  for (const auto& [sid, n] : fanout) {
    if (n > max_fanout) max_fanout = n;
  }
  max_fanout_cache_ = max_fanout;
  return max_fanout;
}

}  // namespace tklus
