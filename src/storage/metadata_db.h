#ifndef TKLUS_STORAGE_METADATA_DB_H_
#define TKLUS_STORAGE_METADATA_DB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table_heap.h"

namespace tklus {

// One row of the paper's centralized tweet-metadata relation (§IV-A):
// (sid, uid, lat, lon, ruid, rsid). sid is the tweet id (timestamp);
// ruid/rsid identify the replied-to/forwarded user and tweet
// (kNone when the tweet is an original post).
struct TweetMeta {
  static constexpr int64_t kNone = -1;

  int64_t sid = 0;
  int64_t uid = 0;
  double lat = 0.0;
  double lon = 0.0;
  int64_t ruid = kNone;
  int64_t rsid = kNone;
};
static_assert(sizeof(TweetMeta) == 48, "TweetMeta must be fixed-size POD");

// The centralized metadata database of Figure 3: a heap table of TweetMeta
// rows, a unique B+-tree on sid (primary key) and a duplicate B+-tree on
// rsid ("another B+-tree is built on attribute rsid"). Thread construction
// (Alg. 1, line 7) runs `SelectByRsid`, and its cost in page I/Os is the
// quantity the paper's pruning optimizations attack.
//
// Concurrency: the read entry points (SelectBySid, SelectBySidBatch,
// SelectByRsid) are safe for concurrent callers *between appends*. The
// invariant making that true: Insert is the only mutator of the B+-trees
// and the heap, and the engine runs every Insert under its exclusive
// writer lock, so during concurrent reads both index structures and all
// row pages are read-only — the BufferPool's internal latch then suffices
// to make the page traffic (pins, LRU, evictions, miss I/O) race-free.
// Insert/FlushAll/MaxReplyFanout are NOT safe to run concurrently with
// anything; callers must hold an exclusive lock (the engine does).
class MetadataDb {
 public:
  struct Options {
    size_t buffer_pool_pages = 1024;  // 4 MiB default
    // Optional shared fault injector wired into the page I/O path (sites
    // faults::kDiskRead / faults::kDiskWrite). Must outlive the database.
    FaultInjector* fault_injector = nullptr;
  };

  // Creates an empty database backed by `path` (truncated).
  static Result<std::unique_ptr<MetadataDb>> Create(const std::string& path,
                                                    Options options);
  static Result<std::unique_ptr<MetadataDb>> Create(const std::string& path) {
    return Create(path, Options{});
  }

  // Reopens an existing database file written by Create + FlushAll. Page 0
  // is the database header (magic, index roots, heap extent, row count).
  static Result<std::unique_ptr<MetadataDb>> Open(const std::string& path,
                                                  Options options);
  static Result<std::unique_ptr<MetadataDb>> Open(const std::string& path) {
    return Open(path, Options{});
  }

  MetadataDb(const MetadataDb&) = delete;
  MetadataDb& operator=(const MetadataDb&) = delete;

  // Inserts one tweet row and maintains both indexes.
  Status Insert(const TweetMeta& row);

  // Point lookup on the primary key.
  Result<std::optional<TweetMeta>> SelectBySid(int64_t sid);

  // Batched point lookups: one entry per requested sid, in request order
  // (nullopt where absent). Pass sids sorted ascending — the sid B+-tree
  // is then descended once per run and its leaf chain walked forward,
  // replacing N independent root-to-leaf descents (the dominant metadata
  // I/O of Alg. 4/5's candidate loops). Unsorted input stays correct but
  // loses the batching win.
  Result<std::vector<std::optional<TweetMeta>>> SelectBySidBatch(
      std::span<const int64_t> sids);

  // "select all where rsid equals to Id" — all direct replies/forwards of
  // tweet `rsid`.
  Result<std::vector<TweetMeta>> SelectByRsid(int64_t rsid);

  // Full heap scan, one callback per committed row (heap order). Backs
  // offline derivations from the source of truth — notably the SidStore
  // rebuild path. NOT safe concurrently with Insert/FlushAll; callers
  // hold an exclusive lock like every other scan.
  Status ScanRows(const std::function<void(const TweetMeta&)>& fn);

  // The largest reply fan-out over all tweets: the paper's t_m used by the
  // global upper-bound popularity (Def. 11). O(n) scan; computed once
  // offline and cached.
  Result<int64_t> MaxReplyFanout();

  uint64_t row_count() const { return heap_->record_count(); }

  BufferPool& buffer_pool() { return *pool_; }
  DiskManager& disk() { return *disk_; }

  // Writes the header (current index roots, heap extent, row count) and
  // flushes every dirty page; required before Open can see the data.
  Status FlushAll();

 private:
  MetadataDb() = default;

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TableHeap> heap_;
  std::unique_ptr<BPlusTree> sid_index_;
  std::unique_ptr<BPlusTree> rsid_index_;
  std::optional<int64_t> max_fanout_cache_;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_METADATA_DB_H_
