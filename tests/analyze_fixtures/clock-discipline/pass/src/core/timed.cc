// Fixture: core code times work through the injected clock abstraction.
// The words steady_clock / system_clock in this comment prove comment
// immunity — only identifier tokens may fire.
namespace tklus {

class Stopwatch;

double ElapsedMs(const Stopwatch&);

}  // namespace tklus
