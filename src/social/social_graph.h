#ifndef TKLUS_SOCIAL_SOCIAL_GRAPH_H_
#define TKLUS_SOCIAL_SOCIAL_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/dataset.h"
#include "model/post.h"

namespace tklus {

// The social network G = (U, E_reply, l_reply, E_forward, l_forward) of
// Definition 2, derived from the post set: an edge <u1, u2> exists in
// E_reply when u1 replied to u2 in at least one post, and l_reply(u1, u2)
// returns those posts; likewise for forwards.
class SocialGraph {
 public:
  struct EdgeKey {
    UserId from;
    UserId to;
    friend bool operator==(const EdgeKey& a, const EdgeKey& b) {
      return a.from == b.from && a.to == b.to;
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& e) const {
      return std::hash<int64_t>{}(e.from) * 1000003u ^
             std::hash<int64_t>{}(e.to);
    }
  };

  // Builds the graph from a dataset (posts carry ruid and is_forward).
  static SocialGraph Build(const Dataset& dataset);

  // Incrementally adds one post (engine batch appends).
  void AddPost(const Post& post);

  // Posts (sids) in which `from` replied to `to` — l_reply(u1, u2).
  const std::vector<TweetId>& ReplyPosts(UserId from, UserId to) const;
  // Posts (sids) of `to` forwarded by `from` — l_forward(u1, u2).
  const std::vector<TweetId>& ForwardPosts(UserId from, UserId to) const;

  bool HasReplyEdge(UserId from, UserId to) const;
  bool HasForwardEdge(UserId from, UserId to) const;

  size_t user_count() const { return users_.size(); }
  size_t reply_edge_count() const { return reply_edges_.size(); }
  size_t forward_edge_count() const { return forward_edges_.size(); }

  const std::unordered_set<UserId>& users() const { return users_; }

  // Users u2 that `from` replied to (out-neighbours in E_reply).
  std::vector<UserId> ReplyNeighbors(UserId from) const;

  // Children map: parent tweet sid -> direct reply/forward tweet sids, in
  // sid order. This is the in-memory counterpart of the rsid index, used
  // by exact offline bound computation and as a test oracle for Alg. 1.
  const std::unordered_map<TweetId, std::vector<TweetId>>& children() const {
    return children_;
  }

 private:
  std::unordered_set<UserId> users_;
  std::unordered_map<EdgeKey, std::vector<TweetId>, EdgeKeyHash> reply_edges_;
  std::unordered_map<EdgeKey, std::vector<TweetId>, EdgeKeyHash>
      forward_edges_;
  std::unordered_map<TweetId, std::vector<TweetId>> children_;
};

}  // namespace tklus

#endif  // TKLUS_SOCIAL_SOCIAL_GRAPH_H_
