// Fixture: the seeded tklus::Rng is the sanctioned source. This comment
// mentions rand() and time(NULL) to prove comment immunity.
namespace tklus {

uint64_t Draw(Rng& rng) { return rng.Next(); }

}  // namespace tklus
