# Empty compiler generated dependencies file for tklus_cli.
# This may be replaced when dependencies are built.
