#ifndef TKLUS_MAPREDUCE_JOB_H_
#define TKLUS_MAPREDUCE_JOB_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/mutex.h"
#include "common/status.h"
#include "mapreduce/counters.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"

namespace tklus {

// Process-wide task-attempt counters aggregated over every MapReduceJob
// instantiation (per-job numbers stay on counters()). Non-template so all
// K/V instantiations feed the same families.
struct MapReduceMetrics {
  Counter* task_attempts;
  Counter* task_retries;
  Counter* task_failures;

  static const MapReduceMetrics& Get() {
    static const MapReduceMetrics* metrics = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      auto* m = new MapReduceMetrics();
      m->task_attempts = reg.GetCounter(
          "tklus_mapreduce_task_attempts_total",
          "Map and reduce task attempts started (first tries + retries).");
      m->task_retries = reg.GetCounter(
          "tklus_mapreduce_task_retries_total",
          "Task attempts re-run after a failed earlier attempt.");
      m->task_failures = reg.GetCounter(
          "tklus_mapreduce_task_failures_total",
          "Tasks that exhausted every permitted attempt.");
      return m;
    }();
    return *metrics;
  }
};

// An in-process multi-threaded MapReduce framework modelling the Hadoop
// pipeline the paper builds its index with (§IV-B.2): input splits ->
// parallel map -> (optional per-worker combine) -> partition -> sort-by-key
// shuffle -> parallel reduce. Worker threads play the role of cluster
// nodes; Options::num_workers = 3 reproduces the Table III cluster.
//
// K must be hashable via the Partitioner (default std::hash) and totally
// ordered via operator< (the shuffle sorts each partition by key — the
// property the paper relies on for contiguous geohash-prefix placement).
//
// Fault tolerance mirrors Hadoop's task-attempt model: each map split and
// each reduce partition is a *task* executed in an attempt loop. A task
// attempt fails when the user function throws or an attached FaultInjector
// fires (sites faults::kMapTask / faults::kReduceTask); its partial output
// is discarded and the task re-executes, up to Options::max_task_attempts
// total tries. Only then does the whole job fail, cleanly, with the task's
// last error. Retries require V (and the inputs) to be copyable, since a
// reduce attempt that may be retried cannot consume its values
// destructively. Counters (counter_names::*) record retried/failed tasks.
template <typename Input, typename K, typename V, typename OutK = K,
          typename OutV = V>
class MapReduceJob {
 public:
  using Emit = std::function<void(K, V)>;
  using OutEmit = std::function<void(OutK, OutV)>;
  // Map(input, emit): Alg. 2's map function.
  using MapFn = std::function<void(const Input&, const Emit&)>;
  // Reduce(key, values, emit): Alg. 3's reduce function. `values` is
  // mutable so reducers can sort/steal from it.
  using ReduceFn =
      std::function<void(const K&, std::vector<V>&, const OutEmit&)>;
  // Optional combiner with reducer signature but emitting (K, V).
  using CombineFn = std::function<void(const K&, std::vector<V>&, const Emit&)>;
  // partition(key, num_partitions) -> [0, num_partitions).
  using Partitioner = std::function<int(const K&, int)>;

  struct Options {
    int num_workers = 3;
    int num_reduce_tasks = 8;
    // Inputs per map task (split granularity).
    size_t split_size = 4096;
    // Total tries per task before the job fails (Hadoop's
    // mapreduce.map.maxattempts, default 4). <= 1 disables retry.
    int max_task_attempts = 4;
    // Optional shared fault injector consulted once per task attempt.
    FaultInjector* fault_injector = nullptr;
  };

  struct Stats {
    double map_seconds = 0;
    double shuffle_seconds = 0;
    double reduce_seconds = 0;
    uint64_t map_input_records = 0;
    uint64_t map_output_records = 0;
    uint64_t combine_output_records = 0;
    uint64_t reduce_groups = 0;
    uint64_t output_records = 0;
    double TotalSeconds() const {
      return map_seconds + shuffle_seconds + reduce_seconds;
    }
  };

  MapReduceJob(MapFn map_fn, ReduceFn reduce_fn, Options options = Options{})
      : map_fn_(std::move(map_fn)),
        reduce_fn_(std::move(reduce_fn)),
        options_(options) {
    if (options_.num_workers < 1) options_.num_workers = 1;
    if (options_.num_reduce_tasks < 1) options_.num_reduce_tasks = 1;
    if (options_.split_size == 0) options_.split_size = 1;
    // Keys without a std::hash specialization (e.g. composite pairs) must
    // provide a partitioner via set_partitioner before Run.
    if constexpr (requires(const K& k) { std::hash<K>{}(k); }) {
      partitioner_ = [](const K& key, int n) {
        return static_cast<int>(std::hash<K>{}(key) %
                                static_cast<size_t>(n));
      };
    }
  }

  void set_combiner(CombineFn combiner) { combiner_ = std::move(combiner); }
  void set_partitioner(Partitioner partitioner) {
    partitioner_ = std::move(partitioner);
  }

  // Runs the job. Returns one output vector per reduce partition, each
  // sorted by key (stable within equal keys in emit order).
  Result<std::vector<std::vector<std::pair<OutK, OutV>>>> Run(
      const std::vector<Input>& inputs) {
    if (!partitioner_) {
      return Status::InvalidArgument(
          "key type has no std::hash; call set_partitioner first");
    }
    const int R = options_.num_reduce_tasks;
    const int W = options_.num_workers;
    const int max_attempts = std::max(1, options_.max_task_attempts);
    stats_ = Stats{};
    Stopwatch phase;

    // Job abort machinery: the first task to exhaust its attempts records
    // its error and flips `abort`; every worker then drains out.
    std::atomic<bool> abort{false};
    Status first_error;
    Mutex error_mu;
    const auto record_error = [&](Status status) {
      MutexLock lock(&error_mu);
      if (first_error.ok()) first_error = std::move(status);
      abort.store(true, std::memory_order_relaxed);
    };

    // ---- Map phase: workers pull splits (= map tasks). Each task buffers
    // its emits locally and only merges them into the worker's partitions
    // on success, so a failed attempt leaves no partial output behind.
    std::vector<std::vector<std::vector<std::pair<K, V>>>> worker_parts(
        W, std::vector<std::vector<std::pair<K, V>>>(R));
    const size_t num_splits =
        (inputs.size() + options_.split_size - 1) / options_.split_size;
    std::atomic<size_t> next_split{0};
    std::atomic<uint64_t> map_in{0}, map_out{0};
    {
      std::vector<std::thread> workers;
      workers.reserve(W);
      for (int w = 0; w < W; ++w) {
        workers.emplace_back([&, w] {
          auto& parts = worker_parts[w];
          std::vector<std::vector<std::pair<K, V>>> task_parts(R);
          const Emit emit = [&](K key, V value) {
            const int p = partitioner_(key, R);
            task_parts[p].emplace_back(std::move(key), std::move(value));
          };
          while (!abort.load(std::memory_order_relaxed)) {
            const size_t split = next_split.fetch_add(1);
            if (split >= num_splits) break;
            const size_t begin = split * options_.split_size;
            const size_t end =
                std::min(inputs.size(), begin + options_.split_size);
            bool done = false;
            for (int attempt = 1; attempt <= max_attempts; ++attempt) {
              MapReduceMetrics::Get().task_attempts->Increment();
              if (attempt > 1) {
                counters_.Increment(counter_names::kMapTaskRetries);
                MapReduceMetrics::Get().task_retries->Increment();
              }
              for (auto& part : task_parts) part.clear();
              Status status = RunMapAttempt(inputs, begin, end, split, emit);
              if (status.ok()) {
                done = true;
                break;
              }
              if (attempt == max_attempts) {
                counters_.Increment(counter_names::kTasksFailed);
                MapReduceMetrics::Get().task_failures->Increment();
                record_error(Status(
                    status.code(),
                    "map task " + std::to_string(split) + " failed after " +
                        std::to_string(max_attempts) + " attempts: " +
                        status.message()));
              }
            }
            if (!done) break;
            for (int p = 0; p < R; ++p) {
              auto& chunk = task_parts[p];
              map_out.fetch_add(chunk.size(), std::memory_order_relaxed);
              std::move(chunk.begin(), chunk.end(),
                        std::back_inserter(parts[p]));
              chunk.clear();
            }
            map_in.fetch_add(end - begin, std::memory_order_relaxed);
          }
          if (combiner_ && !abort.load(std::memory_order_relaxed)) {
            RunCombiner(&parts);
          }
        });
      }
      for (std::thread& t : workers) t.join();
    }
    if (abort.load()) return first_error;
    stats_.map_input_records = map_in.load();
    stats_.map_output_records = map_out.load();
    stats_.map_seconds = phase.ElapsedSeconds();

    // ---- Shuffle: merge worker outputs per partition and sort by key.
    phase.Restart();
    std::vector<std::vector<std::pair<K, V>>> partitions(R);
    {
      std::atomic<int> next_part{0};
      std::vector<std::thread> workers;
      workers.reserve(W);
      for (int w = 0; w < W; ++w) {
        workers.emplace_back([&] {
          while (true) {
            const int p = next_part.fetch_add(1);
            if (p >= R) break;
            size_t total = 0;
            for (int src = 0; src < W; ++src) {
              total += worker_parts[src][p].size();
            }
            auto& part = partitions[p];
            part.reserve(total);
            for (int src = 0; src < W; ++src) {
              auto& chunk = worker_parts[src][p];
              std::move(chunk.begin(), chunk.end(), std::back_inserter(part));
              chunk.clear();
              chunk.shrink_to_fit();
            }
            std::stable_sort(part.begin(), part.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             });
          }
        });
      }
      for (std::thread& t : workers) t.join();
    }
    stats_.shuffle_seconds = phase.ElapsedSeconds();

    // ---- Reduce phase: one task per partition, with the same attempt
    // loop. A retried attempt starts from cleared output and re-copies its
    // values; only an attempt that cannot be retried (the last permitted
    // one) is allowed to move values destructively.
    phase.Restart();
    std::vector<std::vector<std::pair<OutK, OutV>>> outputs(R);
    {
      std::atomic<int> next_part{0};
      std::atomic<uint64_t> groups{0}, out_records{0};
      std::vector<std::thread> workers;
      workers.reserve(W);
      for (int w = 0; w < W; ++w) {
        workers.emplace_back([&] {
          while (!abort.load(std::memory_order_relaxed)) {
            const int p = next_part.fetch_add(1);
            if (p >= R) break;
            auto& part = partitions[p];
            auto& out = outputs[p];
            uint64_t task_groups = 0;
            bool done = false;
            for (int attempt = 1; attempt <= max_attempts; ++attempt) {
              MapReduceMetrics::Get().task_attempts->Increment();
              if (attempt > 1) {
                counters_.Increment(counter_names::kReduceTaskRetries);
                MapReduceMetrics::Get().task_retries->Increment();
              }
              out.clear();
              task_groups = 0;
              Status status = RunReduceAttempt(
                  part, p, /*may_retry=*/attempt < max_attempts, &out,
                  &task_groups);
              if (status.ok()) {
                done = true;
                break;
              }
              if (attempt == max_attempts) {
                counters_.Increment(counter_names::kTasksFailed);
                MapReduceMetrics::Get().task_failures->Increment();
                record_error(Status(
                    status.code(),
                    "reduce task " + std::to_string(p) + " failed after " +
                        std::to_string(max_attempts) + " attempts: " +
                        status.message()));
              }
            }
            if (!done) break;
            groups.fetch_add(task_groups, std::memory_order_relaxed);
            out_records.fetch_add(out.size(), std::memory_order_relaxed);
            part.clear();
            part.shrink_to_fit();
          }
        });
      }
      for (std::thread& t : workers) t.join();
      stats_.reduce_groups = groups.load();
      stats_.output_records = out_records.load();
    }
    if (abort.load()) return first_error;
    stats_.reduce_seconds = phase.ElapsedSeconds();
    return outputs;
  }

  const Stats& stats() const { return stats_; }
  Counters& counters() { return counters_; }
  const Options& options() const { return options_; }

 private:
  // One attempt of the map task covering inputs [begin, end). Failures
  // come from the fault injector (simulated node loss) or from the user
  // map function throwing; either way the caller discards this attempt's
  // buffered emits and decides whether to retry.
  Status RunMapAttempt(const std::vector<Input>& inputs, size_t begin,
                       size_t end, size_t split, const Emit& emit) {
    if (options_.fault_injector != nullptr) {
      TKLUS_RETURN_IF_ERROR(options_.fault_injector->MaybeFail(
          faults::kMapTask, "split " + std::to_string(split)));
    }
    try {
      for (size_t i = begin; i < end; ++i) {
        map_fn_(inputs[i], emit);
      }
    } catch (const std::exception& e) {
      return Status::Internal(std::string("map function threw: ") + e.what());
    }
    return Status::Ok();
  }

  // One attempt of the reduce task for partition `p`: group consecutive
  // equal keys and reduce each group into `out`. While the task may still
  // be retried the values are copied out of `part`, so a failed attempt
  // leaves the partition intact for the next one.
  Status RunReduceAttempt(std::vector<std::pair<K, V>>& part, int p,
                          bool may_retry,
                          std::vector<std::pair<OutK, OutV>>* out,
                          uint64_t* task_groups) {
    if (options_.fault_injector != nullptr) {
      TKLUS_RETURN_IF_ERROR(options_.fault_injector->MaybeFail(
          faults::kReduceTask, "partition " + std::to_string(p)));
    }
    const OutEmit emit = [out](OutK key, OutV value) {
      out->emplace_back(std::move(key), std::move(value));
    };
    try {
      size_t i = 0;
      std::vector<V> values;
      while (i < part.size()) {
        size_t j = i + 1;
        while (j < part.size() && !(part[i].first < part[j].first)) {
          ++j;
        }
        values.clear();
        values.reserve(j - i);
        for (size_t v = i; v < j; ++v) {
          if (may_retry) {
            values.push_back(part[v].second);
          } else {
            values.push_back(std::move(part[v].second));
          }
        }
        reduce_fn_(part[i].first, values, emit);
        ++*task_groups;
        i = j;
      }
    } catch (const std::exception& e) {
      return Status::Internal(std::string("reduce function threw: ") +
                              e.what());
    }
    return Status::Ok();
  }

  // Sort each partition buffer and collapse equal keys through the
  // combiner (per worker, mirroring Hadoop's per-map-task combine).
  void RunCombiner(std::vector<std::vector<std::pair<K, V>>>* parts) {
    uint64_t combined = 0;
    for (auto& part : *parts) {
      std::stable_sort(
          part.begin(), part.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<std::pair<K, V>> out;
      const Emit emit = [&](K key, V value) {
        out.emplace_back(std::move(key), std::move(value));
        ++combined;
      };
      size_t i = 0;
      std::vector<V> values;
      while (i < part.size()) {
        size_t j = i + 1;
        while (j < part.size() && !(part[i].first < part[j].first)) ++j;
        values.clear();
        for (size_t v = i; v < j; ++v) {
          values.push_back(std::move(part[v].second));
        }
        combiner_(part[i].first, values, emit);
        i = j;
      }
      part = std::move(out);
    }
    MutexLock lock(&stats_combine_mu_);
    stats_.combine_output_records += combined;
  }

  MapFn map_fn_;
  ReduceFn reduce_fn_;
  CombineFn combiner_;
  Partitioner partitioner_;
  Options options_;
  // `stats_` is phase-structured: between thread barriers only the job
  // driver thread writes it, so it is not guarded as a whole.
  // `stats_combine_mu_` serializes the one field concurrent combiner
  // workers touch (combine_output_records).
  Stats stats_;
  Mutex stats_combine_mu_;
  Counters counters_;
};

}  // namespace tklus

#endif  // TKLUS_MAPREDUCE_JOB_H_
