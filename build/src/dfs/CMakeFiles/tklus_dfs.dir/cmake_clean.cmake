file(REMOVE_RECURSE
  "CMakeFiles/tklus_dfs.dir/dfs.cc.o"
  "CMakeFiles/tklus_dfs.dir/dfs.cc.o.d"
  "libtklus_dfs.a"
  "libtklus_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
