// Extensions bench (§VIII future-work features, not a paper figure):
//  * temporal windows — the period filter applies to postings before any
//    metadata I/O, so narrow windows cut candidate work proportionally;
//  * recency-weighted ranking — how far the ranking drifts from the
//    timeless one as the half-life shrinks;
//  * implicit-location inference — how much coverage gazetteer inference
//    recovers on a corpus where a third of the posts lack geo-tags.
#include <cstdio>

#include "bench_util.h"
#include "core/kendall.h"
#include "datagen/cities.h"
#include "model/gazetteer.h"

int main() {
  using namespace tklus;
  bench::Banner("Extensions — temporal TkLUS and implicit locations",
                "paper §VIII future work, implemented and measured");
  const auto scale = bench::ScaleFromEnv();
  auto corpus = bench::MakeCorpus(scale);
  const int64_t first_sid = corpus.dataset.posts().front().sid;
  const int64_t last_sid = corpus.dataset.posts().back().sid;
  auto engine = bench::MakeEngine(corpus.dataset);
  const auto workload = datagen::FilterByKeywordCount(
      MakeQueryWorkload(corpus, datagen::WorkloadOptions{}), 1);
  const auto queries =
      bench::With(workload, 15.0, 10, Semantics::kOr, Ranking::kSum);

  // ---- temporal windows.
  std::printf("temporal window sweep (radius 15 km):\n");
  std::printf("%-14s %-14s %-10s\n", "window", "candidates", "ms");
  for (const double frac : {1.0, 0.5, 0.25, 0.1}) {
    auto windowed = queries;
    for (TkLusQuery& q : windowed) {
      q.temporal.begin =
          last_sid - static_cast<int64_t>((last_sid - first_sid) * frac);
      q.temporal.end = last_sid;
    }
    double candidates = 0, ms = 0, within = 0;
    for (const TkLusQuery& q : windowed) {
      auto r = engine->Query(q);
      if (!r.ok()) return 1;
      candidates += static_cast<double>(r->stats.candidates);
      within += static_cast<double>(r->stats.within_radius);
      ms += r->stats.elapsed_ms;
    }
    std::printf("last %-3.0f%%      %-14.1f %-10.2f\n", frac * 100,
                candidates / windowed.size(), ms / windowed.size());
  }

  // ---- recency weighting.
  std::printf("\nrecency ranking drift (tau vs timeless ranking):\n");
  std::printf("%-18s %-10s\n", "half-life", "mean tau");
  std::vector<std::vector<UserId>> timeless;
  for (const TkLusQuery& q : queries) {
    auto r = engine->Query(q);
    if (!r.ok()) return 1;
    timeless.push_back(r->UserIds());
  }
  const double span = static_cast<double>(last_sid - first_sid);
  for (const double frac : {1.0, 0.25, 0.05}) {
    double tau = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      TkLusQuery q = queries[i];
      q.temporal.half_life = span * frac;
      q.temporal.reference = last_sid;
      auto r = engine->Query(q);
      if (!r.ok()) return 1;
      tau += KendallTauVariant(r->UserIds(), timeless[i]);
    }
    std::printf("%5.0f%% of corpus  %-10.3f\n", frac * 100,
                tau / queries.size());
  }

  // ---- implicit locations.
  std::printf("\nimplicit-location inference (30%% of posts untagged):\n");
  auto gen = bench::CorpusOptions(scale);
  gen.untagged_frac = 0.3;
  auto sparse = datagen::TweetGenerator::Generate(gen);
  size_t untagged = 0;
  for (const Post& p : sparse.dataset.posts()) {
    if (!p.HasLocation()) ++untagged;
  }
  auto blind = bench::MakeEngine(sparse.dataset);
  const LocationInferenceStats inference =
      InferLocations(&sparse.dataset, datagen::MakeCityGazetteer());
  auto informed = bench::MakeEngine(sparse.dataset);
  std::printf("  untagged posts: %zu of %zu; inferred: %zu (%.0f%%)\n",
              untagged, sparse.dataset.size(), inference.inferred,
              100.0 * inference.inferred / inference.untagged);
  double blind_candidates = 0, informed_candidates = 0;
  const auto sparse_queries = bench::With(
      datagen::FilterByKeywordCount(
          MakeQueryWorkload(sparse, datagen::WorkloadOptions{}), 1),
      15.0, 10, Semantics::kOr, Ranking::kSum);
  for (const TkLusQuery& q : sparse_queries) {
    auto b = blind->Query(q);
    auto i = informed->Query(q);
    if (!b.ok() || !i.ok()) return 1;
    blind_candidates += static_cast<double>(b->stats.candidates);
    informed_candidates += static_cast<double>(i->stats.candidates);
  }
  std::printf("  mean candidates per query: %.1f without inference, %.1f "
              "with (+%.0f%%)\n",
              blind_candidates / sparse_queries.size(),
              informed_candidates / sparse_queries.size(),
              100.0 * (informed_candidates - blind_candidates) /
                  blind_candidates);
  return 0;
}
