#!/usr/bin/env bash
# Thin wrapper around `tklus_analyze` (tools/analyze/), the single source
# of truth for every project lint rule. The old grep rules (naked
# mutexes/locks, (void) discards, nondeterminism, the [[nodiscard]]
# regression guard) migrated into the analyzer as token-level checks,
# alongside the domain rules (pin-discipline, layering,
# status-discipline) greps could never express.
#
# Usage:
#   scripts/lint.sh              analyze the tree; exit 1 on violations
#   scripts/lint.sh --selftest   prove every rule fires on its fixtures
#   scripts/lint.sh ARGS...      forwarded to tklus_analyze verbatim
#
# Binary resolution: $TKLUS_ANALYZE if set (ctest sets it), else the
# newest already-built copy under build*/, else a minimal direct g++
# build (no cmake, gtest or benchmark needed — CI's lint job stays lean).
set -u

cd "$(dirname "$0")/.." || exit 2

bin="${TKLUS_ANALYZE:-}"
if [ -z "$bin" ]; then
  # shellcheck disable=SC2012  # newest-first glob pick, paths are ours
  bin=$(ls -t build*/tools/analyze/tklus_analyze 2>/dev/null | head -n1)
fi
if [ -z "$bin" ] || [ ! -x "$bin" ]; then
  bin=build-analyze/tklus_analyze
  mkdir -p build-analyze
  echo "lint: building $bin"
  if ! g++ -std=c++20 -O2 -Wall -Wextra -pthread -I src -I tools \
       tools/analyze/main.cc tools/analyze/analyzer.cc \
       tools/analyze/callgraph.cc tools/analyze/output.cc \
       tools/analyze/rules.cc tools/analyze/source_model.cc \
       tools/analyze/summaries.cc \
       src/common/status.cc -o "$bin"; then
    echo "lint: failed to build tklus_analyze" >&2
    exit 2
  fi
fi

exec "$bin" --root . "$@"
