#ifndef TKLUS_MAPREDUCE_COUNTERS_H_
#define TKLUS_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"

namespace tklus {

// Canonical counter names for the fault-tolerance bookkeeping of
// MapReduceJob (in the style of Hadoop's TaskCounter namespace).
namespace counter_names {
inline constexpr char kMapTaskRetries[] = "mapreduce.map_task_retries";
inline constexpr char kReduceTaskRetries[] = "mapreduce.reduce_task_retries";
inline constexpr char kTasksFailed[] = "mapreduce.tasks_failed";
}  // namespace counter_names

// Thread-safe named counters, in the style of Hadoop job counters.
class Counters {
 public:
  void Increment(const std::string& name, uint64_t by = 1) {
    MutexLock lock(&mu_);
    counts_[name] += by;
  }

  uint64_t Get(const std::string& name) const {
    MutexLock lock(&mu_);
    const auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }

  std::map<std::string, uint64_t> Snapshot() const {
    MutexLock lock(&mu_);
    return counts_;
  }

  void Reset() {
    MutexLock lock(&mu_);
    counts_.clear();
  }

 private:
  mutable Mutex mu_;
  std::map<std::string, uint64_t> counts_ TKLUS_GUARDED_BY(mu_);
};

}  // namespace tklus

#endif  // TKLUS_MAPREDUCE_COUNTERS_H_
