// Fixture: both impurities are one call away from the declared hot root
// Engine::Score — Leaf constructs a std::string, and ResolveMeta joins
// through the banned B+-tree entry point — reachable effects the
// per-function view cannot see.
namespace tklus {

double Leaf(int n) {
  std::string label = std::to_string(n);  // must fire: string on hot path
  return label.size() > 1 ? 1.0 : 0.0;
}

double ResolveMeta(int n) {
  return SelectBySidBatch(n) > 0 ? 1.0 : 0.0;  // must fire: banned join
}

class Engine {
 public:
  double Score(int n) { return Leaf(n) + ResolveMeta(n); }
};

}  // namespace tklus
