#include "analyze/source_model.h"

#include <cctype>

namespace tklus::analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses the payload of an `#include` line starting at `pos` (just past
// the "include" keyword). Returns false if the line is malformed.
bool ParseIncludeTarget(std::string_view text, size_t pos, int line,
                        std::vector<IncludeDirective>* out) {
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  if (pos >= text.size()) return false;
  const char open = text[pos];
  const char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
  if (close == '\0') return false;
  const size_t start = pos + 1;
  const size_t end = text.find(close, start);
  if (end == std::string_view::npos) return false;
  out->push_back(IncludeDirective{std::string(text.substr(start, end - start)),
                                  /*quoted=*/open == '"', line});
  return true;
}

}  // namespace

bool PathEndsWith(std::string_view path, std::string_view suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

SourceFile LexFile(std::string rel_path, std::string_view text) {
  SourceFile file;
  file.path = std::move(rel_path);
  if (file.path.rfind("src/", 0) == 0) {
    const size_t slash = file.path.find('/', 4);
    if (slash != std::string::npos) {
      file.module = file.path.substr(4, slash - 4);
    }
  }

  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  bool at_line_start = true;  // only whitespace seen since the last newline
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Preprocessor directive at the start of a line: extract #include
    // targets (the angle-bracket form would otherwise lex as `<` tokens);
    // other directives fall through to normal tokenization.
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (text.compare(j, 7, "include") == 0) {
        ParseIncludeTarget(text, j + 7, line, &file.includes);
        while (i < n && text[i] != '\n') ++i;
        continue;
      }
    }
    at_line_start = false;
    // Raw string literal (skipped wholesale; delimiters are rare enough
    // that only the R"( ... )" form is recognized).
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim.push_back(text[j++]);
      const std::string closer = ")" + delim + "\"";
      const size_t end = text.find(closer, j);
      const size_t stop = end == std::string_view::npos ? n : end + closer.size();
      for (size_t k = i; k < stop; ++k) {
        if (text[k] == '\n') ++line;
      }
      file.tokens.push_back(Token{Token::Kind::kString, "<raw-string>", line});
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const int start_line = line;
      size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        if (text[j] == '\n') ++line;
        ++j;
      }
      file.tokens.push_back(Token{
          c == '"' ? Token::Kind::kString : Token::Kind::kChar,
          std::string(text.substr(i, j + 1 - i)), start_line});
      i = j + 1;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      file.tokens.push_back(Token{Token::Kind::kIdent,
                                  std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '.' ||
                       text[j] == '\'')) {
        ++j;
      }
      file.tokens.push_back(Token{Token::Kind::kNumber,
                                  std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Single-character punctuation; rules match multi-char operators as
    // token sequences (e.g. `::` is two `:` tokens).
    file.tokens.push_back(Token{Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return file;
}

}  // namespace tklus::analyze
