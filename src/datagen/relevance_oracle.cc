#include "datagen/relevance_oracle.h"

#include <algorithm>
#include <unordered_set>

#include "datagen/text_model.h"
#include "geo/distance.h"

namespace tklus {
namespace datagen {

RelevanceOracle::RelevanceOracle(const GeneratedCorpus* corpus,
                                 TokenizerOptions tokenizer, Options options)
    : corpus_(corpus),
      tokenizer_(tokenizer),
      options_(options),
      rng_(options.seed) {
  // Stemmed topic vocabulary.
  std::unordered_set<std::string> topic_stems;
  for (const std::string& topic : TopicWords()) {
    for (const std::string& stem : tokenizer_.Tokenize(topic)) {
      topic_stems.insert(stem);
    }
  }
  for (const Post& post : corpus_->dataset.posts()) {
    for (const std::string& term : tokenizer_.Tokenize(post.text)) {
      if (topic_stems.count(term)) {
        topic_posts_[post.uid].emplace_back(term, post.location);
      }
    }
  }
}

bool RelevanceOracle::TrulyRelevant(UserId uid,
                                    const TkLusQuery& query) const {
  const auto it = topic_posts_.find(uid);
  if (it == topic_posts_.end()) return false;
  std::vector<std::string> terms;
  for (const std::string& keyword : query.keywords) {
    for (std::string& term : tokenizer_.Tokenize(keyword)) {
      terms.push_back(std::move(term));
    }
  }
  for (const std::string& term : terms) {
    int nearby = 0;
    for (const auto& [stem, location] : it->second) {
      if (stem != term) continue;
      if (EuclideanKm(location, query.location) <= options_.locality_km) {
        if (++nearby >= options_.min_on_topic_posts) return true;
      }
    }
  }
  return false;
}

bool RelevanceOracle::JudgedRelevant(UserId uid, const TkLusQuery& query) {
  const bool truth = TrulyRelevant(uid, query);
  int votes = 0;
  for (int j = 0; j < options_.judges_per_line; ++j) {
    const bool agrees = rng_.Bernoulli(options_.judge_accuracy);
    const bool vote = agrees ? truth : !truth;
    if (vote) ++votes;
  }
  return votes >= options_.votes_required;
}

double RelevanceOracle::Precision(const std::vector<UserId>& users,
                                  const TkLusQuery& query) {
  if (users.empty()) return 0.0;
  int relevant = 0;
  for (const UserId uid : users) {
    if (JudgedRelevant(uid, query)) ++relevant;
  }
  return static_cast<double>(relevant) / users.size();
}

double RelevanceOracle::TruePrecision(const std::vector<UserId>& users,
                                      const TkLusQuery& query) const {
  if (users.empty()) return 0.0;
  int relevant = 0;
  for (const UserId uid : users) {
    if (TrulyRelevant(uid, query)) ++relevant;
  }
  return static_cast<double>(relevant) / users.size();
}

}  // namespace datagen
}  // namespace tklus
