#ifndef TKLUS_CORE_QUERY_PROCESSOR_H_
#define TKLUS_CORE_QUERY_PROCESSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/bounds.h"
#include "core/query.h"
#include "core/scoring.h"
#include "geo/point.h"
#include "index/delta_index.h"
#include "index/hybrid_index.h"
#include "social/popularity_cache.h"
#include "social/thread_builder.h"
#include "storage/metadata_db.h"
#include "storage/sid_store.h"
#include "text/tokenizer.h"

namespace tklus {

class Tracer;  // obs/trace.h

// One combined-postings candidate zipped with its resolved metadata row.
// The fetch half of the pipeline (FetchCandidates) produces these sorted
// by tid; the ranking half (RankUsers/RankTweets) consumes them — possibly
// after a cross-shard merge of several disjoint streams.
struct ResolvedCandidate {
  Posting posting;
  TweetMeta meta;
};

// Executes TkLUS queries against the hybrid index + metadata database:
// Algorithm 4 (sum-score ranking) and Algorithm 5 (max-score ranking with
// upper-bound pruning and optional hot-keyword bounds).
//
// Thread safety: Process/ProcessTweets are safe for concurrent callers as
// long as no engine mutation (AppendBatch/Save, or the test-only
// mutable_options) runs concurrently — the engine's reader-writer lock
// provides exactly that. The processor itself holds no per-query state.
class QueryProcessor {
 public:
  struct Options {
    ScoringParams scoring;
    int thread_depth = 6;          // d of Alg. 1
    bool enable_pruning = true;    // Alg. 5 lines 18-19 (kMax only)
    bool use_hot_bounds = true;    // §VI-B5 specific bounds
  };

  // All pointers must outlive the processor. `user_locations` is the
  // offline per-user location profile backing the Def. 9 user distance
  // score (the average of delta(p, q) over *all* of u's posts).
  // `index` and `db` may both be nullptr for a ranking-only processor
  // (the ShardedEngine plane): Process/ProcessTweets/FetchCandidates are
  // then off-limits, RankUsers/RankTweets fully functional with thread
  // descents served by the extra-children hook.
  QueryProcessor(const HybridIndex* index, MetadataDb* db,
                 const UpperBoundRegistry* bounds,
                 const std::unordered_map<UserId, std::vector<GeoPoint>>*
                     user_locations,
                 Tokenizer tokenizer, Options options)
      : index_(index),
        db_(db),
        bounds_(bounds),
        user_locations_(user_locations),
        tokenizer_(std::move(tokenizer)),
        options_(options) {}

  // Runs the query with the ranking method it selects.
  Result<QueryResult> Process(const TkLusQuery& query);

  // Tweet-level top-k spatial-keyword search over the same index: ranks
  // individual tweets by alpha * rho(p,q) + (1-alpha) * delta(p,q). The
  // `ranking` field of the query is ignored (there is no user
  // aggregation); semantics and temporal options apply.
  Result<TweetQueryResult> ProcessTweets(const TkLusQuery& query);

  // Parameter validation shared by Process, ProcessTweets and the sharded
  // router. `tweet_query` selects the (historically laxer) ProcessTweets
  // checks, which accept a non-positive half_life.
  static Status ValidateQuery(const TkLusQuery& query, bool tweet_query);

  // The candidate-fetch half of Process/ProcessTweets (Alg. 4/5 lines
  // 4-14 plus sid resolution): per-(cell, term) postings fetch with the
  // delta overlay, AND/OR combination, temporal-window filter, and
  // metadata resolution. Candidates come back sorted by tid. Requires a
  // processor wired with an index and a DB. `count_postings_lists` keeps
  // the Process/ProcessTweets asymmetry (only user queries count fetched
  // postings lists). With `account_io` the engine-level I/O deltas for
  // this call (db_page_reads/dfs_block_reads/retries/faults) are also
  // added into `stats` — the sharded mode, where no outer Process wraps
  // the call and accounts them.
  Result<std::vector<ResolvedCandidate>> FetchCandidates(
      const TkLusQuery& query, const std::vector<std::string>& terms,
      const std::vector<std::string>& cells, bool count_postings_lists,
      bool account_io, Tracer& tracer, QueryStats* stats);

  // The user-ranking half (Alg. 4/5 lines 16-29): distance filter, thread
  // popularity, per-user aggregation with Alg. 5 pruning, final sort and
  // top-k cut. Touches only bounds_/user_locations_/popularity cache plus
  // the thread-descent sources (DB/delta/extra hook), so a processor
  // wired with a null index and DB — the ShardedEngine's ranking plane —
  // can run it over candidates merged from many shards. Appends into
  // `users` and accumulates into `stats`.
  Status RankUsers(const TkLusQuery& query,
                   const std::vector<std::string>& terms,
                   const std::vector<ResolvedCandidate>& candidates,
                   Tracer& tracer, std::vector<RankedUser>* users,
                   QueryStats* stats);

  // Tweet-flavor ranking half: per-tweet scores, sort, top-k cut.
  Status RankTweets(const TkLusQuery& query,
                    const std::vector<ResolvedCandidate>& candidates,
                    Tracer& tracer, std::vector<RankedTweet>* tweets,
                    QueryStats* stats);

  // Normalizes raw query keywords the same way indexed text is processed
  // (lowercase, stem, drop stop words); deduplicates.
  std::vector<std::string> NormalizeKeywords(
      const std::vector<std::string>& keywords) const;

  const Options& options() const { return options_; }
  Options& mutable_options() { return options_; }

  // Attaches the engine-owned φ(p) memo (nullptr detaches: every thread is
  // rebuilt). The cache must outlive the processor.
  void set_popularity_cache(PopularityCache* cache) { popularity_cache_ = cache; }
  PopularityCache* popularity_cache() const { return popularity_cache_; }

  // Attaches the engine-owned delta index (nullptr detaches). When set,
  // queries read base ⊎ delta: per-term postings merge with the delta's
  // lists (base wins on duplicate tids), metadata-DB misses resolve
  // through delta-resident posts, and thread traversal sees delta replies.
  // The engine's shared lock covers the delta for the whole query.
  void set_delta_index(const DeltaIndex* delta) { delta_ = delta; }
  const DeltaIndex* delta_index() const { return delta_; }

  // Attaches the engine-owned denormalized sid table (nullptr detaches:
  // every candidate resolves through the metadata DB again). When set,
  // the sid_resolve stage reads SidStore first, overlays the delta on the
  // misses, and touches the B+-tree only for rows neither holds — zero DB
  // page reads on the common path.
  void set_sid_store(const SidStore* store) { sid_store_ = store; }
  const SidStore* sid_store() const { return sid_store_; }

  // Attaches an extra reply-children source consulted by thread
  // construction in addition to the metadata DB and the delta index — the
  // ShardedEngine plane's global children map. Composes with the delta
  // hook; levels are deduplicated whenever any extra source is attached.
  void set_extra_children_source(ThreadBuilder::ExtraChildrenFn fn) {
    extra_children_ = std::move(fn);
  }

 private:
  struct UserState {
    double delta_user = 0.0;  // Def. 9 user distance score (query-fixed)
    double rho_sum = 0.0;     // Def. 7 accumulator
    double rho_max = 0.0;     // Def. 8 accumulator
    size_t matched = 0;       // candidates within radius
    TweetId best_tweet = 0;   // argmax rho(p, q)
  };

  // The shared sid_resolve stage of Process/ProcessTweets: opens the
  // kSidResolve span and resolves every candidate posting to its metadata
  // row — SidStore first (O(1), no I/O), delta overlay on the misses
  // (db-wins semantics preserved: the store carries exactly the DB's
  // committed state), metadata-DB batch lookup only for rows neither
  // holds. One entry per candidate, in order (nullopt where the sid is
  // unknown everywhere). Scratch vectors are thread_local: the processor
  // stays free of per-query state under concurrent callers.
  Result<std::vector<std::optional<TweetMeta>>> ResolveCandidates(
      const std::vector<Posting>& candidates, Tracer& tracer,
      QueryStats* stats);

  // Def. 9: average distance score of all the user's posts.
  double UserDistanceScore(UserId uid, const TkLusQuery& query) const;
  double FinalScore(const UserState& state, Ranking ranking) const;

  // φ(root_sid) through the cache when attached (counting hits/misses and
  // threads_built into `stats`), else straight through `builder`.
  Result<double> Popularity(TweetId root_sid, ThreadBuilder& builder,
                            QueryStats& stats);

  // Wires every attached reply-children source (delta index, extra hook)
  // into `builder` for the ranking-half thread descents.
  void AttachChildrenSources(ThreadBuilder& builder) const;

  const HybridIndex* index_;
  MetadataDb* db_;
  const UpperBoundRegistry* bounds_;
  const std::unordered_map<UserId, std::vector<GeoPoint>>* user_locations_;
  Tokenizer tokenizer_;
  Options options_;
  PopularityCache* popularity_cache_ = nullptr;  // optional, engine-owned
  const DeltaIndex* delta_ = nullptr;            // optional, engine-owned
  const SidStore* sid_store_ = nullptr;          // optional, engine-owned
  ThreadBuilder::ExtraChildrenFn extra_children_;  // optional, owner-provided
};

}  // namespace tklus

#endif  // TKLUS_CORE_QUERY_PROCESSOR_H_
