#!/usr/bin/env bash
# Project lint: fast, dependency-free checks that keep the concurrency and
# error-handling discipline honest. Complements (does not replace) the
# compile-time layers: [[nodiscard]] Status + -Werror catches ignored
# results, Clang -Werror=thread-safety checks the lock annotations, and
# .clang-tidy runs the bugprone-*/concurrency-* suites.
#
# Usage:
#   scripts/lint.sh             lint the tree (src/ + scripts); exit 1 on hits
#   scripts/lint.sh --selftest  verify every rule fires on tests/lint_fixtures
#   scripts/lint.sh DIR...      lint specific directories (used by --selftest)
set -u

cd "$(dirname "$0")/.." || exit 2

dirs=()
selftest=0
for arg in "$@"; do
  case "$arg" in
    --selftest) selftest=1 ;;
    *) dirs+=("$arg") ;;
  esac
done
if [ ${#dirs[@]} -eq 0 ]; then
  dirs=(src)
fi

failures=0

# grep wrapper: records a failure when PATTERN matches in the linted dirs.
# Matches in src/common/mutex.h itself are exempt from the mutex rules
# (that is where the wrapper lives).
check() {
  local rule="$1" pattern="$2" exempt="${3:-}"
  local hits
  hits=$(grep -rnE --include='*.h' --include='*.cc' --include='*.cpp' \
             "$pattern" "${dirs[@]}" 2>/dev/null)
  if [ -n "$exempt" ]; then
    hits=$(printf '%s\n' "$hits" | grep -v "$exempt")
  fi
  # Comments may legitimately mention the banned spelling (e.g. "the lint
  # bans naked std::mutex"); skip pure comment lines.
  hits=$(printf '%s\n' "$hits" | grep -vE '^[^:]+:[0-9]+: *(//|\*)' | grep .)
  if [ -n "$hits" ]; then
    echo "LINT [$rule]:"
    printf '%s\n' "$hits" | sed 's/^/  /'
    failures=$((failures + 1))
  fi
}

# 1. Naked standard-library mutexes. Every lock must be a tklus::Mutex
#    (src/common/mutex.h) so Clang's thread-safety analysis and the
#    GUARDED_BY annotations can see it.
check "naked-mutex: use tklus::Mutex from common/mutex.h" \
      'std::(mutex|shared_mutex|recursive_mutex|timed_mutex)\b' \
      'common/mutex\.h'
check "naked-lock: use tklus::MutexLock from common/mutex.h" \
      'std::(lock_guard|unique_lock|scoped_lock|shared_lock)\b' \
      'common/mutex\.h'

# 2. Silently discarded fallible calls. Status/Result are [[nodiscard]], so
#    the compiler rejects plain ignores; a bare (void) cast would defeat
#    that silently. The sanctioned spelling is status.IgnoreError(), which
#    is greppable and self-documenting.
check "void-discard: use .IgnoreError() instead of (void) on fallible calls" \
      '\(void\) *[A-Za-z_][A-Za-z0-9_:]*(\.|->|\()'

# 3. Nondeterminism in deterministic code. Benchmarks, datagen and fault
#    injection are all seeded (common/rng.h); wall-clock seeds or libc
#    rand() would make runs unreproducible.
check "nondeterminism: use the seeded tklus::Rng (common/rng.h)" \
      '\b(rand|srand)\(\)|\btime\( *NULL *\)|\btime\( *nullptr *\)|\bstd::random_device\b'

# 4. Regression guards for the compile-time layers this lint leans on.
if ! grep -q 'class \[\[nodiscard\]\] Status' src/common/status.h; then
  echo "LINT [nodiscard-guard]: Status lost its [[nodiscard]] attribute"
  failures=$((failures + 1))
fi
if ! grep -q 'class \[\[nodiscard\]\] Result' src/common/status.h; then
  echo "LINT [nodiscard-guard]: Result<T> lost its [[nodiscard]] attribute"
  failures=$((failures + 1))
fi

if [ "$selftest" -eq 1 ]; then
  # Every rule must fire on the fixtures: a lint that silently stopped
  # matching is worse than no lint. Expected rule violations per fixture
  # file are counted in tests/lint_fixtures/README.md.
  out=$("$0" tests/lint_fixtures)
  rc=$?
  for rule in naked-mutex naked-lock void-discard nondeterminism; do
    if ! printf '%s' "$out" | grep -q "LINT \[$rule"; then
      echo "SELFTEST: rule '$rule' did not fire on tests/lint_fixtures"
      exit 1
    fi
  done
  if [ "$rc" -eq 0 ]; then
    echo "SELFTEST: lint exited 0 on fixtures that must fail"
    exit 1
  fi
  echo "lint selftest OK (all rules fire on fixtures)"
  exit 0
fi

if [ "$failures" -gt 0 ]; then
  echo "lint: $failures rule(s) violated"
  exit 1
fi
echo "lint OK (${dirs[*]})"
exit 0
