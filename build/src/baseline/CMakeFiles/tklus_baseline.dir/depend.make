# Empty dependencies file for tklus_baseline.
# This may be replaced when dependencies are built.
