#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/scoring.h"

namespace tklus {
namespace {

// ---------------------------------------------------- distance score sweep

struct DistanceCase {
  double distance;
  double radius;
  double expected;
};

class DistanceScoreTest : public ::testing::TestWithParam<DistanceCase> {};

TEST_P(DistanceScoreTest, Definition5) {
  const DistanceCase& c = GetParam();
  EXPECT_NEAR(DistanceScore(c.distance, c.radius), c.expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistanceScoreTest,
    ::testing::Values(DistanceCase{0, 10, 1.0}, DistanceCase{2.5, 10, 0.75},
                      DistanceCase{5, 10, 0.5}, DistanceCase{7.5, 10, 0.25},
                      DistanceCase{10, 10, 0.0}, DistanceCase{10.01, 10, 0.0},
                      DistanceCase{100, 10, 0.0}, DistanceCase{0, 100, 1.0},
                      DistanceCase{50, 100, 0.5}, DistanceCase{1, 5, 0.8},
                      DistanceCase{4, 5, 0.2}, DistanceCase{0.0, 0.0, 0.0}));

// Property: monotonically decreasing in distance, increasing in radius.
TEST(DistanceScorePropertyTest, Monotonicity) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double r = rng.Uniform(1, 100);
    const double d1 = rng.Uniform(0, r);
    const double d2 = rng.Uniform(d1, r);
    EXPECT_GE(DistanceScore(d1, r), DistanceScore(d2, r));
    EXPECT_LE(DistanceScore(d1, r), DistanceScore(d1, r * 1.5));
  }
}

TEST(DistanceScorePropertyTest, RangeZeroOne) {
  Rng rng(32);
  for (int i = 0; i < 1000; ++i) {
    const double v =
        DistanceScore(rng.Uniform(0, 200), rng.Uniform(0.1, 100));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

// ------------------------------------------------------- alpha mix sweep

class AlphaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweepTest, UserScoreIsConvexMix) {
  const double alpha = GetParam();
  ScoringParams params;
  params.alpha = alpha;
  Rng rng(33);
  for (int i = 0; i < 200; ++i) {
    const double rho = rng.Uniform(0, 5);
    const double delta = rng.Uniform(0, 1);
    const double score = UserScore(rho, delta, params);
    EXPECT_NEAR(score, alpha * rho + (1 - alpha) * delta, 1e-12);
    // Between the two components (for rho, delta >= 0).
    EXPECT_GE(score, std::min(rho, delta) * std::min(alpha, 1 - alpha) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlphaSweepTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

// ----------------------------------------------- keyword relevance sweep

class NNormSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(NNormSweepTest, KeywordRelevanceScalesInverselyWithN) {
  ScoringParams params;
  params.n_norm = GetParam();
  // Definition 6: rho = (matched / N) * phi, linear in matched and phi.
  EXPECT_NEAR(KeywordRelevance(2, 10.0, params), 20.0 / params.n_norm,
              1e-12);
  EXPECT_NEAR(KeywordRelevance(4, 10.0, params),
              2 * KeywordRelevance(2, 10.0, params), 1e-12);
  EXPECT_NEAR(KeywordRelevance(2, 20.0, params),
              2 * KeywordRelevance(2, 10.0, params), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NNormSweepTest,
                         ::testing::Values(1.0, 4.0, 8.0, 40.0, 100.0));

// ------------------------------------------------ bound dominance property

TEST(TweetUpperBoundPropertyTest, DominatesAnyAchievableScore) {
  Rng rng(34);
  for (int i = 0; i < 2000; ++i) {
    ScoringParams params;
    params.alpha = rng.Uniform(0, 1);
    params.n_norm = rng.Uniform(1, 50);
    const double bound_pop = rng.Uniform(0.1, 100);
    const uint32_t tf = 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{5}));
    // Any popularity below the bound, any distance score in [0, 1].
    const double pop = rng.Uniform(0, bound_pop);
    const double delta = rng.Uniform(0, 1);
    const double achievable =
        UserScore(KeywordRelevance(tf, pop, params), delta, params);
    EXPECT_LE(achievable, TweetUpperBoundScore(tf, bound_pop, params) + 1e-9);
  }
}

TEST(TweetUpperBoundPropertyTest, MonotoneInTfAndBound) {
  ScoringParams params;
  for (uint32_t tf = 1; tf < 6; ++tf) {
    EXPECT_LT(TweetUpperBoundScore(tf, 5.0, params),
              TweetUpperBoundScore(tf + 1, 5.0, params));
    EXPECT_LT(TweetUpperBoundScore(tf, 5.0, params),
              TweetUpperBoundScore(tf, 6.0, params));
  }
}

TEST(PaperBoundTest, GrowsWithDepthAndFanout) {
  EXPECT_LT(PaperGlobalBoundPopularity(10, 3),
            PaperGlobalBoundPopularity(10, 6));
  EXPECT_LT(PaperGlobalBoundPopularity(10, 6),
            PaperGlobalBoundPopularity(20, 6));
  // Harmonic structure: t_m * (H_n - 1).
  double h = 0;
  for (int i = 2; i <= 6; ++i) h += 1.0 / i;
  EXPECT_NEAR(PaperGlobalBoundPopularity(7, 6), 7 * h, 1e-12);
}

}  // namespace
}  // namespace tklus
