#ifndef TKLUS_DATAGEN_TWEET_GENERATOR_H_
#define TKLUS_DATAGEN_TWEET_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"
#include "model/dataset.h"

namespace tklus {
namespace datagen {

// A planted "local expert": a user who tweets heavily about one topic
// around one city. Experts are the ground truth of the user-study
// simulation (Fig. 13): a returned user is truly relevant to a query iff
// an expert's topic matches a query keyword and the query circle reaches
// their region.
struct ExpertProfile {
  UserId uid = 0;
  std::string topic;       // raw topic word (pre-stemming)
  GeoPoint center;         // city centre of their expertise
  double radius_km = 12.0;
};

struct GeneratedCorpus {
  Dataset dataset;
  std::vector<ExpertProfile> experts;
  std::vector<GeoPoint> city_centers;       // the cities actually used
  std::vector<std::string> city_names;
  // Topic word of each post (index-aligned with dataset), "" if none.
  std::vector<std::string> post_topics;
};

// Synthetic geo-tagged tweet corpus generator. Distributional targets,
// each standing in for a property of the paper's 514M-tweet crawl:
//  * spatial: mixture of city clusters (power-law city weights, Gaussian
//    spread) — drives geohash-cell skew;
//  * text: Zipf topics over the 30 §VI-B1 keywords (top-10 = Table II),
//    modifier co-occurrence so multi-keyword AND queries are satisfiable;
//  * social: preferential-attachment reply/forward cascades — heavy-tailed
//    tweet threads for Def. 4 popularity;
//  * users: Zipf activity; planted per-city topic experts.
class TweetGenerator {
 public:
  struct Options {
    uint64_t seed = 42;
    size_t num_users = 2000;
    size_t num_tweets = 100000;
    int num_cities = 10;
    size_t experts_per_city = 10;   // topics covered per city (Table II)
    size_t experts_per_topic = 6;   // planted experts per (city, topic)
    double viral_seed_prob = 0.2;   // P(expert on-topic root is a seed)
    double topic_zipf_s = 0.8;
    double activity_zipf_s = 1.0;
    double reply_prob = 0.50;       // P(new tweet is reply/forward)
    double forward_frac = 0.3;      // of those, fraction that forward
    double expert_root_boost = 80.0;  // attachment weight of viral seeds
    int max_children_boost = 12;    // base thread-size cap; hot topics
                                    // scale it up (see ThreadCap in .cc)
    double topic_repeat_prob = 0.45;  // P(topic word appears twice, tf=2)
    int max_thread_chain = 10;      // depth cap on generated chains
    double home_sigma_km = 6.0;
    double tweet_sigma_km = 2.5;
    double travel_prob = 0.05;
    // Fraction of posts that carry no geo-tag (GeoSource::kNone); 80% of
    // them mention their city by name, so gazetteer inference (§VIII
    // extension) can recover a coarse location.
    double untagged_frac = 0.0;
    int64_t start_sid = 1000000;
  };

  static GeneratedCorpus Generate(const Options& options);
};

}  // namespace datagen
}  // namespace tklus

#endif  // TKLUS_DATAGEN_TWEET_GENERATOR_H_
