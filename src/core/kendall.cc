#include "core/kendall.h"

#include <unordered_map>

namespace tklus {

double KendallTauVariant(const std::vector<UserId>& ranking_a,
                         const std::vector<UserId>& ranking_b) {
  // Ranks in each list; users absent from a list all get rank = list size
  // (the "same ordering value" tie of the paper's example).
  std::unordered_map<UserId, int> rank_a, rank_b;
  for (size_t i = 0; i < ranking_a.size(); ++i) {
    rank_a.emplace(ranking_a[i], static_cast<int>(i));
  }
  for (size_t i = 0; i < ranking_b.size(); ++i) {
    rank_b.emplace(ranking_b[i], static_cast<int>(i));
  }
  std::vector<UserId> universe;
  universe.reserve(rank_a.size() + rank_b.size());
  for (const UserId u : ranking_a) universe.push_back(u);
  for (const UserId u : ranking_b) {
    if (!rank_a.count(u)) universe.push_back(u);
  }
  const int tie_a = static_cast<int>(ranking_a.size());
  const int tie_b = static_cast<int>(ranking_b.size());
  const auto rank_in = [](const std::unordered_map<UserId, int>& ranks,
                          UserId u, int tie_rank) {
    const auto it = ranks.find(u);
    return it == ranks.end() ? tie_rank : it->second;
  };

  const size_t m = universe.size();
  if (m < 2) return 1.0;
  int64_t concordant = 0, discordant = 0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      const int da = rank_in(rank_a, universe[i], tie_a) -
                     rank_in(rank_a, universe[j], tie_a);
      const int db = rank_in(rank_b, universe[i], tie_b) -
                     rank_in(rank_b, universe[j], tie_b);
      const int sa = (da > 0) - (da < 0);
      const int sb = (db > 0) - (db < 0);
      if (sa * sb > 0 || (sa == 0 && sb == 0)) {
        ++concordant;
      } else if (sa * sb < 0) {
        ++discordant;
      }
      // One tied, one ordered: neither concordant nor discordant.
    }
  }
  const double pairs = 0.5 * static_cast<double>(m) *
                       static_cast<double>(m - 1);
  return static_cast<double>(concordant - discordant) / pairs;
}

}  // namespace tklus
