// tklus_cli — command-line front end for the library, covering the whole
// lifecycle a downstream user needs:
//
//   tklus_cli generate --tweets 50000 --out corpus.tsv
//   tklus_cli build    --corpus corpus.tsv --out /tmp/engine
//   tklus_cli query    --engine /tmp/engine --lat 43.68 --lon -79.37
//                      --radius 10 --keywords hotel,luxury --k 5 --ranking max
//   tklus_cli stats    --engine /tmp/engine
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/engine.h"
#include "datagen/tweet_generator.h"
#include "model/dataset.h"

namespace {

using tklus::Dataset;
using tklus::GeoPoint;
using tklus::TkLusEngine;
using tklus::TkLusQuery;

// name -> value for "--name value" pairs.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag, got '%s'\n", arg);
      std::exit(2);
    }
    flags[arg + 2] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& name, const std::string& fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

int Generate(const std::map<std::string, std::string>& flags) {
  tklus::datagen::TweetGenerator::Options opts;
  opts.num_tweets = std::stoull(FlagOr(flags, "tweets", "50000"));
  opts.num_users = std::stoull(
      FlagOr(flags, "users", std::to_string(opts.num_tweets / 40)));
  opts.num_cities = std::stoi(FlagOr(flags, "cities", "8"));
  opts.seed = std::stoull(FlagOr(flags, "seed", "42"));
  opts.untagged_frac = std::stod(FlagOr(flags, "untagged", "0"));
  const std::string out = FlagOr(flags, "out", "corpus.tsv");

  std::printf("generating %zu tweets / %zu users across %d cities...\n",
              opts.num_tweets, opts.num_users, opts.num_cities);
  const auto corpus = tklus::datagen::TweetGenerator::Generate(opts);
  const tklus::Status st = corpus.dataset.SaveTsv(out);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu posts to %s\n", corpus.dataset.size(), out.c_str());
  return 0;
}

int Build(const std::map<std::string, std::string>& flags) {
  const std::string corpus_path = FlagOr(flags, "corpus", "corpus.tsv");
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "build requires --out <engine dir>\n");
    return 2;
  }
  auto dataset = Dataset::LoadTsv(corpus_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  TkLusEngine::Options opts;
  opts.geohash_length = std::stoi(FlagOr(flags, "geohash-length", "4"));
  opts.scoring.n_norm = std::stod(FlagOr(flags, "n-norm", "40"));
  opts.scoring.alpha = std::stod(FlagOr(flags, "alpha", "0.5"));
  std::printf("building engine over %zu posts...\n", dataset->size());
  auto engine = TkLusEngine::Build(*dataset, opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const tklus::Status st = (*engine)->Save(out);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const auto& stats = (*engine)->index().build_stats();
  std::printf("engine saved to %s (%llu postings lists, %s inverted)\n",
              out.c_str(),
              static_cast<unsigned long long>(stats.postings_lists),
              tklus::HumanBytes(stats.inverted_bytes).c_str());
  return 0;
}

int Query(const std::map<std::string, std::string>& flags) {
  const std::string engine_dir = FlagOr(flags, "engine", "");
  if (engine_dir.empty() || !flags.count("lat") || !flags.count("lon") ||
      !flags.count("keywords")) {
    std::fprintf(stderr,
                 "query requires --engine --lat --lon --keywords a,b,...\n");
    return 2;
  }
  auto engine = TkLusEngine::Open(engine_dir);
  if (!engine.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  TkLusQuery q;
  q.location = GeoPoint{std::stod(flags.at("lat")),
                        std::stod(flags.at("lon"))};
  q.radius_km = std::stod(FlagOr(flags, "radius", "10"));
  q.k = std::stoi(FlagOr(flags, "k", "10"));
  for (const std::string& kw :
       tklus::StrSplit(flags.at("keywords"), ',')) {
    if (!kw.empty()) q.keywords.push_back(kw);
  }
  q.ranking = FlagOr(flags, "ranking", "sum") == "max"
                  ? tklus::Ranking::kMax
                  : tklus::Ranking::kSum;
  q.semantics = FlagOr(flags, "semantics", "or") == "and"
                    ? tklus::Semantics::kAnd
                    : tklus::Semantics::kOr;

  if (FlagOr(flags, "tweets", "no") == "yes") {
    auto result = (*engine)->QueryTweets(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6s %-12s %-10s %-10s %s\n", "rank", "tweet", "user",
                "score", "km");
    int rank = 1;
    for (const auto& t : result->tweets) {
      std::printf("%-6d %-12lld %-10lld %-10.4f %.2f\n", rank++,
                  static_cast<long long>(t.sid),
                  static_cast<long long>(t.uid), t.score, t.distance_km);
    }
    std::printf("(%zu candidates, %.2f ms)\n", result->stats.candidates,
                result->stats.elapsed_ms);
    return 0;
  }

  auto result = (*engine)->Query(q);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%-6s %-10s %s\n", "rank", "user", "score");
  int rank = 1;
  for (const auto& user : result->users) {
    std::printf("%-6d %-10lld %.4f\n", rank++,
                static_cast<long long>(user.uid), user.score);
  }
  std::printf(
      "(%zu cells, %zu candidates, %zu threads built, %zu pruned, "
      "%.2f ms)\n",
      result->stats.cover_cells, result->stats.candidates,
      result->stats.threads_built, result->stats.threads_pruned,
      result->stats.elapsed_ms);
  return 0;
}

int Stats(const std::map<std::string, std::string>& flags) {
  const std::string engine_dir = FlagOr(flags, "engine", "");
  if (engine_dir.empty()) {
    std::fprintf(stderr, "stats requires --engine <dir>\n");
    return 2;
  }
  auto engine = TkLusEngine::Open(engine_dir);
  if (!engine.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const auto& index_stats = (*engine)->index().build_stats();
  std::printf("metadata rows:   %llu\n",
              static_cast<unsigned long long>(
                  (*engine)->metadata_db().row_count()));
  std::printf("postings lists:  %llu (%llu postings, %s)\n",
              static_cast<unsigned long long>(index_stats.postings_lists),
              static_cast<unsigned long long>(index_stats.postings_entries),
              tklus::HumanBytes(index_stats.inverted_bytes).c_str());
  std::printf("forward index:   %zu entries (%s)\n",
              (*engine)->index().forward_index().size(),
              tklus::HumanBytes(index_stats.forward_bytes).c_str());
  std::printf("global bound:    %.3f\n", (*engine)->bounds().global_bound());
  std::printf("top terms:\n");
  for (const auto& [term, freq] : (*engine)->vocabulary().TopTerms(10)) {
    std::printf("  %-14s %llu\n", term.c_str(),
                static_cast<unsigned long long>(freq));
  }
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: tklus_cli <command> [--flag value ...]\n"
      "  generate --tweets N [--users N] [--cities N] [--seed S]\n"
      "           [--untagged F] --out corpus.tsv\n"
      "  build    --corpus corpus.tsv --out <engine dir>\n"
      "           [--geohash-length L] [--n-norm N] [--alpha A]\n"
      "  query    --engine <dir> --lat LAT --lon LON --keywords a,b\n"
      "           [--radius KM] [--k K] [--ranking sum|max]\n"
      "           [--semantics or|and] [--tweets yes]\n"
      "  stats    --engine <dir>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return Generate(flags);
  if (command == "build") return Build(flags);
  if (command == "query") return Query(flags);
  if (command == "stats") return Stats(flags);
  Usage();
  return 2;
}
