#ifndef TKLUS_COMMON_MUTEX_H_
#define TKLUS_COMMON_MUTEX_H_

#include <mutex>

// Clang thread-safety analysis (-Wthread-safety) attributes, in the style
// of absl/base/thread_annotations.h. Under GCC (which has no analysis) the
// macros expand to nothing, so annotated code compiles everywhere; under
// Clang with -DTKLUS_THREAD_SAFETY=ON the build runs with
// -Werror=thread-safety and a lock-discipline violation (touching a
// TKLUS_GUARDED_BY field without its mutex, calling a TKLUS_REQUIRES
// function unlocked, double-locking) is a compile error.
//
// The project lint (scripts/lint.sh) bans naked std::mutex outside this
// header: every lock in src/ must be a tklus::Mutex so the analysis can see
// it.
#if defined(__clang__) && !defined(SWIG)
#define TKLUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TKLUS_THREAD_ANNOTATION(x)
#endif

// Declares a type to be a lockable capability ("mutex" names the kind in
// diagnostics).
#define TKLUS_CAPABILITY(x) TKLUS_THREAD_ANNOTATION(capability(x))
// Declares an RAII type that acquires a capability in its constructor and
// releases it in its destructor.
#define TKLUS_SCOPED_CAPABILITY TKLUS_THREAD_ANNOTATION(scoped_lockable)
// The annotated field may only be read or written while holding `x`.
#define TKLUS_GUARDED_BY(x) TKLUS_THREAD_ANNOTATION(guarded_by(x))
// The annotated pointer's pointee may only be accessed while holding `x`.
#define TKLUS_PT_GUARDED_BY(x) TKLUS_THREAD_ANNOTATION(pt_guarded_by(x))
// The function may only be called while already holding the capability.
#define TKLUS_REQUIRES(...) \
  TKLUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TKLUS_REQUIRES_SHARED(...) \
  TKLUS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// The function acquires / releases the capability.
#define TKLUS_ACQUIRE(...) \
  TKLUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TKLUS_RELEASE(...) \
  TKLUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TKLUS_TRY_ACQUIRE(...) \
  TKLUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// The function must be called with the capability *not* held (deadlock
// guard for functions that lock internally).
#define TKLUS_EXCLUDES(...) TKLUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Escape hatch: the analysis skips this function entirely. Every use must
// carry a comment saying why the discipline cannot be expressed.
#define TKLUS_NO_THREAD_SAFETY_ANALYSIS \
  TKLUS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tklus {

// An annotated exclusive mutex. Identical cost to std::mutex; exists so
// every lock in the project is visible to Clang's thread-safety analysis
// and to the lint.
class TKLUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TKLUS_ACQUIRE() { mu_.lock(); }
  void Unlock() TKLUS_RELEASE() { mu_.unlock(); }
  bool TryLock() TKLUS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock, the project's replacement for std::lock_guard:
//   MutexLock lock(&mu_);
class TKLUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TKLUS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TKLUS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace tklus

#endif  // TKLUS_COMMON_MUTEX_H_
