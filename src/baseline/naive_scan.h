#ifndef TKLUS_BASELINE_NAIVE_SCAN_H_
#define TKLUS_BASELINE_NAIVE_SCAN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "core/scoring.h"
#include "model/dataset.h"
#include "social/social_graph.h"
#include "text/tokenizer.h"

namespace tklus {

// Brute-force in-memory TkLUS evaluation: scans every post, applies the
// same Definitions 4-10 as the indexed pipeline, never prunes. It is the
// correctness oracle the index-based QueryProcessor is tested against, and
// the "no index" baseline in benchmarks.
class NaiveScanner {
 public:
  struct Options {
    ScoringParams scoring;
    int thread_depth = 6;
    TokenizerOptions tokenizer;
  };

  NaiveScanner(const Dataset* dataset, Options options);
  explicit NaiveScanner(const Dataset* dataset)
      : NaiveScanner(dataset, Options{}) {}

  QueryResult Process(const TkLusQuery& query) const;

  // Exposed for sharing with the IR-tree baseline: score the given
  // candidate post indices (already keyword-matched) for a query.
  QueryResult RankCandidates(const TkLusQuery& query,
                             const std::vector<size_t>& post_indices) const;

  // Term-frequency bag of post i (tokenized once at construction).
  const std::unordered_map<std::string, int>& PostTerms(size_t i) const {
    return post_terms_[i];
  }
  const Tokenizer& tokenizer() const { return tokenizer_; }

 private:
  const Dataset* dataset_;
  Options options_;
  Tokenizer tokenizer_;
  SocialGraph graph_;
  std::vector<std::unordered_map<std::string, int>> post_terms_;
  std::unordered_map<UserId, std::vector<GeoPoint>> user_locations_;
};

}  // namespace tklus

#endif  // TKLUS_BASELINE_NAIVE_SCAN_H_
