file(REMOVE_RECURSE
  "../bench/bench_table4_geohash_example"
  "../bench/bench_table4_geohash_example.pdb"
  "CMakeFiles/bench_table4_geohash_example.dir/bench_table4_geohash_example.cpp.o"
  "CMakeFiles/bench_table4_geohash_example.dir/bench_table4_geohash_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_geohash_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
