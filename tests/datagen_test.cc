#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "datagen/cities.h"
#include "datagen/query_workload.h"
#include "datagen/relevance_oracle.h"
#include "datagen/text_model.h"
#include "datagen/tweet_generator.h"
#include "geo/distance.h"
#include "social/social_graph.h"
#include "social/thread_builder.h"
#include "text/tokenizer.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::MakeQueryWorkload;
using datagen::RelevanceOracle;
using datagen::TweetGenerator;
using datagen::WorkloadOptions;

TweetGenerator::Options SmallOptions() {
  TweetGenerator::Options opts;
  opts.num_users = 300;
  opts.num_tweets = 8000;
  opts.num_cities = 5;
  opts.experts_per_city = 10;
  return opts;
}

TEST(TextModelTest, TableIiHeadMatchesPaper) {
  const auto& topics = datagen::TopicWords();
  ASSERT_GE(topics.size(), 30u);
  const std::vector<std::string> table2 = {
      "restaurant", "game", "cafe", "shop", "hotel",
      "club",       "coffee", "film", "pizza", "mall"};
  for (size_t i = 0; i < table2.size(); ++i) {
    EXPECT_EQ(topics[i], table2[i]);
  }
}

TEST(TextModelTest, ModifiersNonEmptyForEveryTopic) {
  for (const std::string& topic : datagen::TopicWords()) {
    EXPECT_FALSE(datagen::ModifiersForTopic(topic).empty()) << topic;
  }
}

TEST(CitiesTest, TableSane) {
  const auto& cities = datagen::WorldCities();
  ASSERT_GE(cities.size(), 20u);
  for (const auto& city : cities) {
    EXPECT_GE(city.center.lat, -90.0);
    EXPECT_LE(city.center.lat, 90.0);
    EXPECT_GT(city.weight, 0.0);
  }
  EXPECT_EQ(cities[0].name, "toronto");
}

TEST(TweetGeneratorTest, Deterministic) {
  const GeneratedCorpus a = TweetGenerator::Generate(SmallOptions());
  const GeneratedCorpus b = TweetGenerator::Generate(SmallOptions());
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (size_t i = 0; i < a.dataset.size(); i += 97) {
    EXPECT_EQ(a.dataset.posts()[i].text, b.dataset.posts()[i].text);
    EXPECT_EQ(a.dataset.posts()[i].uid, b.dataset.posts()[i].uid);
    EXPECT_EQ(a.dataset.posts()[i].location, b.dataset.posts()[i].location);
  }
}

TEST(TweetGeneratorTest, SidsUniqueAndOrdered) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  const auto& posts = corpus.dataset.posts();
  for (size_t i = 1; i < posts.size(); ++i) {
    EXPECT_EQ(posts[i].sid, posts[i - 1].sid + 1);
  }
}

TEST(TweetGeneratorTest, RepliesReferenceEarlierTweets) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  const auto& posts = corpus.dataset.posts();
  std::set<TweetId> seen;
  size_t replies = 0;
  for (const Post& p : posts) {
    if (p.IsReplyOrForward()) {
      ++replies;
      EXPECT_TRUE(seen.count(p.rsid)) << "dangling rsid " << p.rsid;
      EXPECT_NE(p.ruid, kNoId);
    }
    seen.insert(p.sid);
  }
  // Roughly reply_prob of tweets should be replies.
  EXPECT_GT(replies, posts.size() / 4);
  EXPECT_LT(replies, posts.size() * 3 / 5);
}

TEST(TweetGeneratorTest, SpatialClusteringAroundCities) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  size_t near_city = 0;
  for (const Post& p : corpus.dataset.posts()) {
    for (const GeoPoint& center : corpus.city_centers) {
      if (EuclideanKm(p.location, center) < 50.0) {
        ++near_city;
        break;
      }
    }
  }
  EXPECT_GT(near_city, corpus.dataset.size() * 95 / 100);
}

TEST(TweetGeneratorTest, HeavyTailedThreads) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  const SocialGraph graph = SocialGraph::Build(corpus.dataset);
  // Some tweet must have a large direct fan-out (preferential attachment).
  size_t max_fanout = 0;
  for (const auto& [sid, kids] : graph.children()) {
    max_fanout = std::max(max_fanout, kids.size());
  }
  EXPECT_GE(max_fanout, 10u);
}

TEST(TweetGeneratorTest, TopTermsDominatedByTopics) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  const Tokenizer tokenizer;
  const Vocabulary vocab = corpus.dataset.BuildVocabulary(tokenizer);
  // Stem the topic list for comparison.
  std::set<std::string> topic_stems;
  for (const std::string& topic : datagen::TopicWords()) {
    for (const std::string& stem : tokenizer.Tokenize(topic)) {
      topic_stems.insert(stem);
    }
  }
  size_t topical = 0;
  for (const auto& [term, freq] : vocab.TopTerms(10)) {
    if (topic_stems.count(term)) ++topical;
  }
  EXPECT_GE(topical, 7u);
}

TEST(TweetGeneratorTest, ExpertsPostOnTopicNearTheirCity) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  ASSERT_FALSE(corpus.experts.empty());
  const Tokenizer tokenizer;
  std::unordered_map<UserId, const datagen::ExpertProfile*> experts;
  for (const auto& e : corpus.experts) experts[e.uid] = &e;
  std::unordered_map<UserId, int> on_topic, total;
  for (const Post& p : corpus.dataset.posts()) {
    const auto it = experts.find(p.uid);
    if (it == experts.end() || p.IsReplyOrForward()) continue;
    ++total[p.uid];
    const auto bag = tokenizer.TermFrequencies(p.text);
    const auto stems = tokenizer.Tokenize(it->second->topic);
    if (!stems.empty() && bag.count(stems[0])) ++on_topic[p.uid];
  }
  // Aggregate: experts' root tweets are mostly on their topic.
  int sum_total = 0, sum_on_topic = 0;
  for (const auto& [uid, n] : total) {
    sum_total += n;
    sum_on_topic += on_topic[uid];
  }
  ASSERT_GT(sum_total, 0);
  EXPECT_GT(static_cast<double>(sum_on_topic) / sum_total, 0.6);
}

TEST(QueryWorkloadTest, NinetyQueriesInThreeGroups) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  const auto workload = MakeQueryWorkload(corpus, WorkloadOptions{});
  ASSERT_EQ(workload.size(), 90u);
  EXPECT_EQ(datagen::FilterByKeywordCount(workload, 1).size(), 30u);
  EXPECT_EQ(datagen::FilterByKeywordCount(workload, 2).size(), 30u);
  EXPECT_EQ(datagen::FilterByKeywordCount(workload, 3).size(), 30u);
}

TEST(QueryWorkloadTest, LocationsFollowDataDistribution) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  const auto workload = MakeQueryWorkload(corpus, WorkloadOptions{});
  for (const TkLusQuery& q : workload) {
    bool near_city = false;
    for (const GeoPoint& center : corpus.city_centers) {
      if (EuclideanKm(q.location, center) < 100.0) near_city = true;
    }
    EXPECT_TRUE(near_city);
  }
}

TEST(QueryWorkloadTest, MultiKeywordAnchoredOnHotTopics) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  const auto workload = MakeQueryWorkload(corpus, WorkloadOptions{});
  const auto& topics = datagen::TopicWords();
  const std::set<std::string> hot(topics.begin(), topics.begin() + 10);
  for (const TkLusQuery& q : datagen::FilterByKeywordCount(workload, 2)) {
    EXPECT_TRUE(hot.count(q.keywords[0])) << q.keywords[0];
  }
}

TEST(RelevanceOracleTest, ExpertRelevantForMatchingQuery) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  ASSERT_FALSE(corpus.experts.empty());
  const auto& expert = corpus.experts.front();
  RelevanceOracle oracle(&corpus);
  TkLusQuery query;
  query.location = expert.center;
  query.radius_km = 5.0;
  query.keywords = {expert.topic};
  EXPECT_TRUE(oracle.TrulyRelevant(expert.uid, query));
  // Wrong topic: not relevant.
  query.keywords = {"zzzunknown"};
  EXPECT_FALSE(oracle.TrulyRelevant(expert.uid, query));
  // Too far away: not relevant.
  query.keywords = {expert.topic};
  query.location = GeoPoint{expert.center.lat + 3.0, expert.center.lon};
  EXPECT_FALSE(oracle.TrulyRelevant(expert.uid, query));
}

TEST(RelevanceOracleTest, RequiresRepeatedNearbyOnTopicPosts) {
  // Crafted corpus: user 1 posted twice about "hotel" near the origin,
  // user 2 only once, user 3 twice but far away, user 4 off-topic.
  GeneratedCorpus corpus;
  const auto add = [&corpus](TweetId sid, UserId uid, double lat, double lon,
                             const char* text) {
    Post p;
    p.sid = sid;
    p.uid = uid;
    p.location = GeoPoint{lat, lon};
    p.text = text;
    corpus.dataset.Add(std::move(p));
  };
  add(1, 1, 10.00, 10.00, "lovely hotel lobby");
  add(2, 1, 10.01, 10.00, "hotel breakfast is great");
  add(3, 2, 10.00, 10.01, "nice hotel");
  add(4, 3, 12.00, 12.00, "hotel one");
  add(5, 3, 12.00, 12.01, "hotel two");
  add(6, 4, 10.00, 10.00, "pizza pizza pizza");
  RelevanceOracle oracle(&corpus);
  TkLusQuery query;
  query.location = GeoPoint{10.0, 10.0};
  query.radius_km = 10.0;
  query.keywords = {"hotel"};
  EXPECT_TRUE(oracle.TrulyRelevant(1, query));    // two nearby on-topic
  EXPECT_FALSE(oracle.TrulyRelevant(2, query));   // only one
  EXPECT_FALSE(oracle.TrulyRelevant(3, query));   // both beyond locality
  EXPECT_FALSE(oracle.TrulyRelevant(4, query));   // wrong topic
  EXPECT_FALSE(oracle.TrulyRelevant(99, query));  // unknown user
}

TEST(RelevanceOracleTest, JudgeNoiseStaysNearTruth) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  RelevanceOracle oracle(&corpus);
  const auto& expert = corpus.experts.front();
  TkLusQuery query;
  query.location = expert.center;
  query.radius_km = 5.0;
  query.keywords = {expert.topic};
  int positive = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    if (oracle.JudgedRelevant(expert.uid, query)) ++positive;
  }
  // With accuracy 0.85 and 2-of-4 voting, a truly relevant line is judged
  // relevant ~97% of the time.
  EXPECT_GT(positive, trials * 9 / 10);
}

TEST(RelevanceOracleTest, PrecisionMetric) {
  const GeneratedCorpus corpus = TweetGenerator::Generate(SmallOptions());
  RelevanceOracle oracle(&corpus);
  const auto& expert = corpus.experts.front();
  TkLusQuery query;
  query.location = expert.center;
  query.radius_km = 5.0;
  query.keywords = {expert.topic};
  const UserId stranger = 100000;
  EXPECT_DOUBLE_EQ(oracle.TruePrecision({expert.uid}, query), 1.0);
  EXPECT_DOUBLE_EQ(oracle.TruePrecision({stranger}, query), 0.0);
  EXPECT_DOUBLE_EQ(oracle.TruePrecision({expert.uid, stranger}, query), 0.5);
  EXPECT_DOUBLE_EQ(oracle.TruePrecision({}, query), 0.0);
}

}  // namespace
}  // namespace tklus
