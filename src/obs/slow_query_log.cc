#include "obs/slow_query_log.h"

#include <cstdio>
#include <ostream>

namespace tklus {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

SlowQueryLog::SlowQueryLog(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(options_.capacity);
}

void SlowQueryLog::Record(SlowQueryRecord record) {
  if (!enabled()) return;
  MutexLock lock(&mu_);
  record.sequence = ++total_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % options_.capacity;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;  // not yet wrapped: ring order is admission order
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % options_.capacity]);
    }
  }
  return out;
}

uint64_t SlowQueryLog::total_recorded() const {
  MutexLock lock(&mu_);
  return total_;
}

void SlowQueryLog::DumpJsonLines(std::ostream& out) const {
  for (const SlowQueryRecord& r : Snapshot()) {
    std::string line = "{\"sequence\": " + std::to_string(r.sequence) +
                       ", \"summary\": ";
    AppendJsonString(&line, r.summary);
    char elapsed[64];
    std::snprintf(elapsed, sizeof(elapsed), "%.3f", r.elapsed_ms);
    line += std::string(", \"elapsed_ms\": ") + elapsed +
            ", \"db_page_reads\": " + std::to_string(r.db_page_reads) +
            ", \"dfs_block_reads\": " + std::to_string(r.dfs_block_reads) +
            ", \"candidates\": " + std::to_string(r.candidates) +
            ", \"threads_built\": " + std::to_string(r.threads_built) +
            ", \"popularity_cache_hits\": " +
            std::to_string(r.popularity_cache_hits) +
            ", \"popularity_cache_misses\": " +
            std::to_string(r.popularity_cache_misses) + "}";
    out << line << "\n";
  }
}

}  // namespace tklus
