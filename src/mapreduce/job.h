#ifndef TKLUS_MAPREDUCE_JOB_H_
#define TKLUS_MAPREDUCE_JOB_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "mapreduce/counters.h"

namespace tklus {

// An in-process multi-threaded MapReduce framework modelling the Hadoop
// pipeline the paper builds its index with (§IV-B.2): input splits ->
// parallel map -> (optional per-worker combine) -> partition -> sort-by-key
// shuffle -> parallel reduce. Worker threads play the role of cluster
// nodes; Options::num_workers = 3 reproduces the Table III cluster.
//
// K must be hashable via the Partitioner (default std::hash) and totally
// ordered via operator< (the shuffle sorts each partition by key — the
// property the paper relies on for contiguous geohash-prefix placement).
template <typename Input, typename K, typename V, typename OutK = K,
          typename OutV = V>
class MapReduceJob {
 public:
  using Emit = std::function<void(K, V)>;
  using OutEmit = std::function<void(OutK, OutV)>;
  // Map(input, emit): Alg. 2's map function.
  using MapFn = std::function<void(const Input&, const Emit&)>;
  // Reduce(key, values, emit): Alg. 3's reduce function. `values` is
  // mutable so reducers can sort/steal from it.
  using ReduceFn =
      std::function<void(const K&, std::vector<V>&, const OutEmit&)>;
  // Optional combiner with reducer signature but emitting (K, V).
  using CombineFn = std::function<void(const K&, std::vector<V>&, const Emit&)>;
  // partition(key, num_partitions) -> [0, num_partitions).
  using Partitioner = std::function<int(const K&, int)>;

  struct Options {
    int num_workers = 3;
    int num_reduce_tasks = 8;
    // Inputs per map task (split granularity).
    size_t split_size = 4096;
  };

  struct Stats {
    double map_seconds = 0;
    double shuffle_seconds = 0;
    double reduce_seconds = 0;
    uint64_t map_input_records = 0;
    uint64_t map_output_records = 0;
    uint64_t combine_output_records = 0;
    uint64_t reduce_groups = 0;
    uint64_t output_records = 0;
    double TotalSeconds() const {
      return map_seconds + shuffle_seconds + reduce_seconds;
    }
  };

  MapReduceJob(MapFn map_fn, ReduceFn reduce_fn, Options options = Options{})
      : map_fn_(std::move(map_fn)),
        reduce_fn_(std::move(reduce_fn)),
        options_(options) {
    if (options_.num_workers < 1) options_.num_workers = 1;
    if (options_.num_reduce_tasks < 1) options_.num_reduce_tasks = 1;
    if (options_.split_size == 0) options_.split_size = 1;
    // Keys without a std::hash specialization (e.g. composite pairs) must
    // provide a partitioner via set_partitioner before Run.
    if constexpr (requires(const K& k) { std::hash<K>{}(k); }) {
      partitioner_ = [](const K& key, int n) {
        return static_cast<int>(std::hash<K>{}(key) %
                                static_cast<size_t>(n));
      };
    }
  }

  void set_combiner(CombineFn combiner) { combiner_ = std::move(combiner); }
  void set_partitioner(Partitioner partitioner) {
    partitioner_ = std::move(partitioner);
  }

  // Runs the job. Returns one output vector per reduce partition, each
  // sorted by key (stable within equal keys in emit order).
  Result<std::vector<std::vector<std::pair<OutK, OutV>>>> Run(
      const std::vector<Input>& inputs) {
    if (!partitioner_) {
      return Status::InvalidArgument(
          "key type has no std::hash; call set_partitioner first");
    }
    const int R = options_.num_reduce_tasks;
    const int W = options_.num_workers;
    stats_ = Stats{};
    Stopwatch phase;

    // ---- Map phase: workers pull splits, emit into per-worker partitions.
    std::vector<std::vector<std::vector<std::pair<K, V>>>> worker_parts(
        W, std::vector<std::vector<std::pair<K, V>>>(R));
    const size_t num_splits =
        (inputs.size() + options_.split_size - 1) / options_.split_size;
    std::atomic<size_t> next_split{0};
    std::atomic<uint64_t> map_in{0}, map_out{0};
    {
      std::vector<std::thread> workers;
      workers.reserve(W);
      for (int w = 0; w < W; ++w) {
        workers.emplace_back([&, w] {
          auto& parts = worker_parts[w];
          const Emit emit = [&](K key, V value) {
            const int p = partitioner_(key, R);
            parts[p].emplace_back(std::move(key), std::move(value));
            map_out.fetch_add(1, std::memory_order_relaxed);
          };
          while (true) {
            const size_t split = next_split.fetch_add(1);
            if (split >= num_splits) break;
            const size_t begin = split * options_.split_size;
            const size_t end =
                std::min(inputs.size(), begin + options_.split_size);
            for (size_t i = begin; i < end; ++i) {
              map_fn_(inputs[i], emit);
              map_in.fetch_add(1, std::memory_order_relaxed);
            }
          }
          if (combiner_) {
            RunCombiner(&parts);
          }
        });
      }
      for (std::thread& t : workers) t.join();
    }
    stats_.map_input_records = map_in.load();
    stats_.map_output_records = map_out.load();
    stats_.map_seconds = phase.ElapsedSeconds();

    // ---- Shuffle: merge worker outputs per partition and sort by key.
    phase.Restart();
    std::vector<std::vector<std::pair<K, V>>> partitions(R);
    {
      std::atomic<int> next_part{0};
      std::vector<std::thread> workers;
      workers.reserve(W);
      for (int w = 0; w < W; ++w) {
        workers.emplace_back([&] {
          while (true) {
            const int p = next_part.fetch_add(1);
            if (p >= R) break;
            size_t total = 0;
            for (int src = 0; src < W; ++src) {
              total += worker_parts[src][p].size();
            }
            auto& part = partitions[p];
            part.reserve(total);
            for (int src = 0; src < W; ++src) {
              auto& chunk = worker_parts[src][p];
              std::move(chunk.begin(), chunk.end(), std::back_inserter(part));
              chunk.clear();
              chunk.shrink_to_fit();
            }
            std::stable_sort(part.begin(), part.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             });
          }
        });
      }
      for (std::thread& t : workers) t.join();
    }
    stats_.shuffle_seconds = phase.ElapsedSeconds();

    // ---- Reduce phase: group consecutive equal keys, reduce each group.
    phase.Restart();
    std::vector<std::vector<std::pair<OutK, OutV>>> outputs(R);
    {
      std::atomic<int> next_part{0};
      std::atomic<uint64_t> groups{0}, out_records{0};
      std::vector<std::thread> workers;
      workers.reserve(W);
      for (int w = 0; w < W; ++w) {
        workers.emplace_back([&] {
          while (true) {
            const int p = next_part.fetch_add(1);
            if (p >= R) break;
            auto& part = partitions[p];
            auto& out = outputs[p];
            const OutEmit emit = [&](OutK key, OutV value) {
              out.emplace_back(std::move(key), std::move(value));
              out_records.fetch_add(1, std::memory_order_relaxed);
            };
            size_t i = 0;
            std::vector<V> values;
            while (i < part.size()) {
              size_t j = i + 1;
              while (j < part.size() && !(part[i].first < part[j].first)) {
                ++j;
              }
              values.clear();
              values.reserve(j - i);
              for (size_t v = i; v < j; ++v) {
                values.push_back(std::move(part[v].second));
              }
              reduce_fn_(part[i].first, values, emit);
              groups.fetch_add(1, std::memory_order_relaxed);
              i = j;
            }
            part.clear();
            part.shrink_to_fit();
          }
        });
      }
      for (std::thread& t : workers) t.join();
      stats_.reduce_groups = groups.load();
      stats_.output_records = out_records.load();
    }
    stats_.reduce_seconds = phase.ElapsedSeconds();
    return outputs;
  }

  const Stats& stats() const { return stats_; }
  Counters& counters() { return counters_; }
  const Options& options() const { return options_; }

 private:
  // Sort each partition buffer and collapse equal keys through the
  // combiner (per worker, mirroring Hadoop's per-map-task combine).
  void RunCombiner(std::vector<std::vector<std::pair<K, V>>>* parts) {
    uint64_t combined = 0;
    for (auto& part : *parts) {
      std::stable_sort(
          part.begin(), part.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<std::pair<K, V>> out;
      const Emit emit = [&](K key, V value) {
        out.emplace_back(std::move(key), std::move(value));
        ++combined;
      };
      size_t i = 0;
      std::vector<V> values;
      while (i < part.size()) {
        size_t j = i + 1;
        while (j < part.size() && !(part[i].first < part[j].first)) ++j;
        values.clear();
        for (size_t v = i; v < j; ++v) {
          values.push_back(std::move(part[v].second));
        }
        combiner_(part[i].first, values, emit);
        i = j;
      }
      part = std::move(out);
    }
    stats_combine_mu_.lock();
    stats_.combine_output_records += combined;
    stats_combine_mu_.unlock();
  }

  MapFn map_fn_;
  ReduceFn reduce_fn_;
  CombineFn combiner_;
  Partitioner partitioner_;
  Options options_;
  Stats stats_;
  std::mutex stats_combine_mu_;
  Counters counters_;
};

}  // namespace tklus

#endif  // TKLUS_MAPREDUCE_JOB_H_
