// Fixture: Leaf is one call away from the declared hot root
// Engine::Score and constructs a std::string — reachable impurity the
// per-function view cannot see.
namespace tklus {

double Leaf(int n) {
  std::string label = std::to_string(n);  // must fire: string on hot path
  return label.size() > 1 ? 1.0 : 0.0;
}

class Engine {
 public:
  double Score(int n) { return Leaf(n); }
};

}  // namespace tklus
