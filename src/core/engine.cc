#include "core/engine.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <span>
#include <sstream>
#include <utility>

#include "common/file_io.h"
#include "common/serde.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tklus {

namespace {

// Process-wide query metrics, resolved once. Queries of both flavors feed
// one latency histogram; the per-flavor counters separate the mix.
struct QueryMetricFamilies {
  Counter* user_queries;
  Counter* tweet_queries;
  Counter* slow_queries;
  Counter* sid_store_hits;
  Counter* sid_store_fallback_rows;
  Histogram* latency_ms;

  static const QueryMetricFamilies& Get() {
    static const QueryMetricFamilies* families = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      auto* f = new QueryMetricFamilies();
      f->user_queries = reg.GetCounter(
          "tklus_queries_total", "TkLUS user queries answered successfully.");
      f->tweet_queries = reg.GetCounter(
          "tklus_tweet_queries_total",
          "Tweet-level queries answered successfully.");
      f->slow_queries = reg.GetCounter(
          "tklus_slow_queries_total",
          "Queries admitted to the slow-query log.");
      f->sid_store_hits = reg.GetCounter(
          "tklus_sid_store_hits_total",
          "Candidate rows resolved O(1) by the denormalized sid store.");
      f->sid_store_fallback_rows = reg.GetCounter(
          "tklus_sid_store_fallback_rows_total",
          "Candidate rows that fell back to the metadata DB B+-tree "
          "(sid store detached or stale).");
      f->latency_ms = reg.GetHistogram(
          "tklus_query_latency_ms", "End-to-end query latency (ms).",
          {0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500});
      return f;
    }();
    return *families;
  }
};

std::string SummarizeQuery(const char* kind, const TkLusQuery& query) {
  char head[128];
  std::snprintf(head, sizeof(head),
                "%s(lat=%.4f lon=%.4f r=%.1fkm k=%d %s %s W=[", kind,
                query.location.lat, query.location.lon, query.radius_km,
                query.k, query.semantics == Semantics::kAnd ? "AND" : "OR",
                query.ranking == Ranking::kSum ? "Sum" : "Max");
  std::string out = head;
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    if (i > 0) out += ' ';
    out += query.keywords[i];
  }
  out += "])";
  return out;
}

std::string MakeTempWorkingDir() {
  static std::atomic<uint64_t> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tklus_engine_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir.string();
}

bool SamePath(const std::string& a, const std::string& b) {
  return std::filesystem::absolute(a) == std::filesystem::absolute(b);
}

constexpr uint64_t kEngineMagic = 0x32656e69676e6554ULL;    // format v2
constexpr uint64_t kMetaBlobMagic = 0x62644d7375754b54ULL;  // "TkLusMdb"

// The flushed live DB + page-CRC sidecar, bundled into one atomically
// written, footer-checksummed checkpoint artifact. The live file itself is
// scratch state: Open regenerates it from this blob, so it needs no crash
// safety of its own.
constexpr char kLiveDbFile[] = "/meta.live.db";
constexpr char kDbBlobFile[] = "/meta.db";
constexpr char kSidStoreFile[] = "/sid_store.bin";
constexpr char kWalFile[] = "/wal.log";

TweetMeta ToMeta(const Post& p) {
  return TweetMeta{p.sid, p.uid, p.location.lat, p.location.lon, p.ruid,
                   p.rsid};
}

// WAL record payload: one appended batch. Framing (length + CRC32) is the
// WAL's job; this codec only needs to round-trip every Post field.
std::string EncodeBatch(const Dataset& batch) {
  std::ostringstream out(std::ios::binary);
  serde::WriteU64(out, batch.size());
  for (const Post& p : batch.posts()) {
    serde::WriteI64(out, p.sid);
    serde::WriteI64(out, p.uid);
    serde::WriteDouble(out, p.location.lat);
    serde::WriteDouble(out, p.location.lon);
    serde::WriteI64(out, p.ruid);
    serde::WriteI64(out, p.rsid);
    serde::WriteU32(out, static_cast<uint32_t>(p.is_forward ? 1 : 0) |
                             (static_cast<uint32_t>(p.geo_source) << 1));
    serde::WriteString(out, p.text);
  }
  return out.str();
}

Result<Dataset> DecodeBatch(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  uint64_t count = 0;
  if (!serde::ReadU64(in, &count)) {
    return Status::Corruption("truncated WAL batch header");
  }
  Dataset batch;
  for (uint64_t i = 0; i < count; ++i) {
    Post p;
    uint32_t flags = 0;
    if (!serde::ReadI64(in, &p.sid) || !serde::ReadI64(in, &p.uid) ||
        !serde::ReadDouble(in, &p.location.lat) ||
        !serde::ReadDouble(in, &p.location.lon) ||
        !serde::ReadI64(in, &p.ruid) || !serde::ReadI64(in, &p.rsid) ||
        !serde::ReadU32(in, &flags) || !serde::ReadString(in, &p.text)) {
      return Status::Corruption("truncated WAL batch record");
    }
    if ((flags >> 1) > static_cast<uint32_t>(GeoSource::kNone)) {
      return Status::Corruption("bad geo source in WAL batch record");
    }
    p.is_forward = (flags & 1) != 0;
    p.geo_source = static_cast<GeoSource>(flags >> 1);
    batch.Add(std::move(p));
  }
  return batch;
}

}  // namespace

Result<std::unique_ptr<TkLusEngine>> TkLusEngine::Build(
    const Dataset& dataset, Options options) {
  auto engine = std::unique_ptr<TkLusEngine>(new TkLusEngine());
  if (options.working_dir.empty()) {
    options.working_dir = MakeTempWorkingDir();
    engine->owns_working_dir_ = true;
  } else {
    std::filesystem::create_directories(options.working_dir);
  }
  engine->options_ = options;
  engine->slow_log_ = std::make_unique<SlowQueryLog>(SlowQueryLog::Options{
      options.slow_query_ms, options.slow_query_log_entries});

  // Centralized metadata DB (Figure 3): one row per tweet, B+-trees on sid
  // and rsid.
  MetadataDb::Options db_options;
  db_options.buffer_pool_pages = options.buffer_pool_pages;
  db_options.fault_injector = options.fault_injector;
  auto db =
      MetadataDb::Create(options.working_dir + kLiveDbFile, db_options);
  if (!db.ok()) return db.status();
  engine->db_ = std::move(*db);
  // The denormalized sid table is populated in lockstep with the DB from
  // the start: every committed row lands in both.
  engine->sid_store_ = std::make_unique<SidStore>();
  for (const Post& p : dataset.posts()) {
    const TweetMeta row = ToMeta(p);
    TKLUS_RETURN_IF_ERROR(engine->db_->Insert(row));
    engine->sid_store_->Put(row);
  }

  // Hybrid index built with MapReduce into the simulated DFS.
  engine->dfs_ = std::make_unique<SimulatedDfs>(options.dfs);
  engine->dfs_->set_fault_injector(options.fault_injector);
  HybridIndex::Options index_options;
  index_options.geohash_length = options.geohash_length;
  index_options.mapreduce_workers = options.mapreduce_workers;
  index_options.reduce_tasks = options.reduce_tasks;
  index_options.tokenizer = options.tokenizer;
  index_options.retry = options.dfs_retry;
  index_options.max_task_attempts = options.max_task_attempts;
  index_options.fault_injector = options.fault_injector;
  auto index = HybridIndex::Build(dataset, engine->dfs_.get(), index_options);
  if (!index.ok()) return index.status();
  engine->index_ = std::move(*index);

  // Fresh WAL: a stale wal.log in a reused working dir belongs to a
  // previous engine whose checkpoint this Build replaces.
  {
    std::error_code ec;
    std::filesystem::remove(options.working_dir + kWalFile, ec);
  }
  Wal::Options wal_options;
  wal_options.fault_injector = options.fault_injector;
  auto wal = Wal::Open(options.working_dir + kWalFile, wal_options);
  if (!wal.ok()) return wal.status();
  engine->wal_ = std::move(*wal);

  // Offline artifacts: social graph, corpus vocabulary, exact upper
  // bounds (maintained incrementally by the thread tracker so later
  // AppendBatch calls stay O(1) per post), per-user location profiles
  // (Def. 9). The engine is not yet published, but the fields are
  // lock-annotated, so initialize them under the (uncontended) lock.
  WriterMutexLock lock(&engine->mu_);
  const Tokenizer tokenizer(options.tokenizer);
  engine->delta_ = std::make_unique<DeltaIndex>(
      DeltaIndex::Options{options.geohash_length, options.tokenizer});
  engine->graph_ = SocialGraph::Build(dataset);
  engine->vocabulary_ = dataset.BuildVocabulary(tokenizer);
  engine->tracker_ = ThreadTracker(ThreadTracker::Options{
      options.thread_depth, options.scoring.epsilon});
  std::vector<std::string> hot_stems;
  for (const auto& [term, freq] :
       engine->vocabulary_.TopTerms(options.num_hot_keywords)) {
    hot_stems.push_back(term);
  }
  engine->tracker_.SetHotTerms(hot_stems);
  // Track posts in timestamp order (parents precede replies).
  std::vector<const Post*> ordered;
  ordered.reserve(dataset.size());
  for (const Post& p : dataset.posts()) ordered.push_back(&p);
  std::sort(ordered.begin(), ordered.end(),
            [](const Post* a, const Post* b) { return a->sid < b->sid; });
  for (const Post* p : ordered) {
    engine->tracker_.AddPost(*p, tokenizer.Tokenize(p->text));
    engine->max_sid_ = std::max(engine->max_sid_, p->sid);
    // Untagged posts carry no usable location; they still count for the
    // social graph and thread popularity, but not for Def. 9.
    if (p->HasLocation()) {
      engine->user_locations_[p->uid].push_back(p->location);
    }
  }
  engine->bounds_ = UpperBoundRegistry::FromParts(
      engine->tracker_.global_bound(), engine->tracker_.HotBounds());

  engine->FinishConstruction();
  return engine;
}

TkLusEngine::~TkLusEngine() {
  StopMergeThread();
  // Release the WAL and DB file handles before removing the directory.
  wal_.reset();
  db_.reset();
  if (owns_working_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(options_.working_dir, ec);
    if (ec) {
      TKLUS_LOG(Warning) << "failed to remove working dir "
                         << options_.working_dir << ": " << ec.message();
    }
  }
}

void TkLusEngine::FinishConstruction() {
  QueryProcessor::Options proc_options;
  proc_options.scoring = options_.scoring;
  proc_options.thread_depth = options_.thread_depth;
  processor_ = std::make_unique<QueryProcessor>(
      index_.get(), db_.get(), &bounds_, &user_locations_,
      Tokenizer(options_.tokenizer), proc_options);
  if (options_.popularity_cache_entries > 0) {
    popularity_cache_ = std::make_unique<PopularityCache>(
        PopularityCache::Options{options_.popularity_cache_entries});
    processor_->set_popularity_cache(popularity_cache_.get());
  }
  processor_->set_delta_index(delta_.get());
  processor_->set_sid_store(sid_store_.get());

  MetricsRegistry& reg = MetricsRegistry::Global();
  delta_posts_gauge_ = reg.GetGauge(
      "tklus_delta_index_posts",
      "Posts resident in the in-memory delta index (awaiting a merge).");
  delta_bytes_gauge_ = reg.GetGauge(
      "tklus_delta_index_bytes",
      "Approximate heap footprint of the in-memory delta index.");
  delta_merges_total_ = reg.GetCounter(
      "tklus_delta_merges_total",
      "Delta-index folds into the hybrid index (background or explicit).");
  sid_store_entries_gauge_ = reg.GetGauge(
      "tklus_sid_store_entries",
      "Rows resident in the denormalized sid store (== committed DB rows).");
  sid_store_bytes_gauge_ = reg.GetGauge(
      "tklus_sid_store_bytes",
      "Resident bytes of the denormalized sid store's slot arrays.");
  UpdateDeltaGaugesLocked();
  StartMergeThread();
}

void TkLusEngine::ApplyPostLocked(const Post& post,
                                  const Tokenizer& tokenizer) {
  delta_->Apply(post);
  graph_.AddPost(post);
  const std::vector<std::string> terms = tokenizer.Tokenize(post.text);
  tracker_.AddPost(post, terms);
  for (const std::string& term : terms) {
    vocabulary_.Add(term);
  }
  if (post.HasLocation()) {
    user_locations_[post.uid].push_back(post.location);
  }
  max_sid_ = std::max(max_sid_, post.sid);
}

void TkLusEngine::UpdateDeltaGaugesLocked() {
  if (delta_posts_gauge_ == nullptr) return;
  delta_posts_gauge_->Set(static_cast<int64_t>(delta_->post_count()));
  delta_bytes_gauge_->Set(static_cast<int64_t>(delta_->approx_bytes()));
  sid_store_entries_gauge_->Set(
      static_cast<int64_t>(sid_store_->entry_count()));
  sid_store_bytes_gauge_->Set(static_cast<int64_t>(sid_store_->size_bytes()));
}

Status TkLusEngine::AppendBatch(const Dataset& batch) {
  if (batch.size() == 0) return Status::Ok();
  MutexLock append_lock(&append_mu_);
  {
    ReaderMutexLock lock(&mu_);
    int64_t previous = max_sid_;
    for (const Post& p : batch.posts()) {
      if (p.sid <= previous) {
        return Status::InvalidArgument(
            "batch posts must be sorted with sids greater than all indexed "
            "posts (sid " + std::to_string(p.sid) + " after " +
            std::to_string(previous) + ")");
      }
      previous = p.sid;
    }
  }
  // Ack barrier: the batch is appended + fsynced before any in-memory
  // state changes. An error return leaves the engine (and, courtesy of
  // the WAL's tail restore, the log) exactly as before — no phantoms; an
  // OK return means the batch survives a crash.
  TKLUS_RETURN_IF_ERROR(wal_->Append(EncodeBatch(batch)));
  const Tokenizer tokenizer(options_.tokenizer);
  size_t pending = 0;
  {
    WriterMutexLock lock(&mu_);
    // Bump the φ(p) memo generation before touching any state: memoized
    // popularities can span reply chains the batch extends.
    if (popularity_cache_) popularity_cache_->Invalidate();
    for (const Post& p : batch.posts()) {
      ApplyPostLocked(p, tokenizer);
    }
    bounds_ = UpperBoundRegistry::FromParts(tracker_.global_bound(),
                                            tracker_.HotBounds());
    UpdateDeltaGaugesLocked();
    pending = delta_->post_count();
  }
  if (options_.delta_merge_posts > 0 &&
      pending >= options_.delta_merge_posts && merge_thread_.joinable()) {
    MutexLock wake(&merge_wake_mu_);
    merge_requested_ = true;
    merge_wake_cv_.Signal();
  }
  return Status::Ok();
}

Status TkLusEngine::FoldDeltaLocked() {
  Dataset batch;
  TweetId watermark = kNoId;
  {
    ReaderMutexLock lock(&mu_);
    if (delta_->empty()) return Status::Ok();
    batch = delta_->Snapshot();
    watermark = delta_->max_sid();
  }
  // Rows the DB already holds must not be re-inserted: recovery re-absorbs
  // posts into the delta that an earlier fold had committed when the crash
  // hit between that fold and its checkpoint. Reading here is safe —
  // merge_mu_ excludes the only DB mutator (a fold commit).
  std::vector<int64_t> sids;
  sids.reserve(batch.size());
  for (const Post& p : batch.posts()) sids.push_back(p.sid);
  Result<std::vector<std::optional<TweetMeta>>> existing =
      db_->SelectBySidBatch(std::span<const int64_t>(sids));
  if (!existing.ok()) return existing.status();
  // MapReduce + DFS part writes run off the engine lock: the new index
  // generation is invisible until CommitAppend installs its forward
  // entries. A failure here orphans at most some DFS part files.
  Result<HybridIndex::PreparedAppend> prepared = index_->PrepareAppend(batch);
  if (!prepared.ok()) return prepared.status();
  // Brief exclusive commit. Appends that landed after the snapshot stay in
  // the delta: DropThrough only sheds posts at or below the watermark.
  WriterMutexLock lock(&mu_);
  for (size_t i = 0; i < batch.size(); ++i) {
    const TweetMeta row = ToMeta(batch.posts()[i]);
    // Unconditional: for rows the DB already holds (recovery re-absorbed
    // an already-folded batch) the Put is an idempotent overwrite with
    // identical bytes, so store == DB holds after every commit.
    sid_store_->Put(row);
    if ((*existing)[i].has_value()) continue;
    TKLUS_RETURN_IF_ERROR(db_->Insert(row));
  }
  index_->CommitAppend(*std::move(prepared));
  delta_->DropThrough(watermark);
  UpdateDeltaGaugesLocked();
  if (delta_merges_total_ != nullptr) delta_merges_total_->Increment();
  return Status::Ok();
}

Status TkLusEngine::Save(const std::string& dir) {
  MutexLock append_lock(&append_mu_);
  MutexLock merge_lock(&merge_mu_);
  return CheckpointLocked(dir);
}

Status TkLusEngine::MergeNow() {
  // Fold without the append lock: WAL appends proceed during the
  // (MapReduce-heavy) fold. The subsequent checkpoint re-folds whatever
  // trickled in meanwhile — usually a much smaller batch.
  {
    MutexLock merge_lock(&merge_mu_);
    TKLUS_RETURN_IF_ERROR(FoldDeltaLocked());
  }
  // Checkpoint coordination delegated upward (ShardedEngine::Save): a fold
  // here must never truncate WAL records the router's plane checkpoint
  // does not cover yet.
  if (!options_.auto_checkpoint) return Status::Ok();
  if (!has_checkpoint_.load(std::memory_order_acquire)) return Status::Ok();
  MutexLock append_lock(&append_mu_);
  MutexLock merge_lock(&merge_mu_);
  return CheckpointLocked(options_.working_dir);
}

Status TkLusEngine::CheckpointLocked(const std::string& dir) {
  // Fold first, so the checkpoint artifacts cover every absorbed post and
  // the WAL records become redundant.
  TKLUS_RETURN_IF_ERROR(FoldDeltaLocked());
  std::filesystem::create_directories(dir);
  {
    // Exclusive: FlushAll rewrites the header and dirty pages, which
    // would race shared readers' page traffic.
    WriterMutexLock lock(&mu_);
    TKLUS_RETURN_IF_ERROR(db_->FlushAll());
  }
  // Serialize under the shared lock (queries keep running; appends and
  // folds are excluded by the locks this function requires), write off
  // the lock entirely.
  std::string dfs_payload, index_payload, sid_store_payload, engine_payload;
  {
    ReaderMutexLock lock(&mu_);
    {
      std::ostringstream out(std::ios::binary);
      TKLUS_RETURN_IF_ERROR(dfs_->Save(out));
      dfs_payload = out.str();
    }
    {
      std::ostringstream out(std::ios::binary);
      sid_store_->Save(out);
      if (!out) return Status::IoError("short write saving sid_store.bin");
      sid_store_payload = out.str();
    }
    {
      std::ostringstream out(std::ios::binary);
      TKLUS_RETURN_IF_ERROR(index_->Save(out));
      index_payload = out.str();
    }
    std::ostringstream out(std::ios::binary);
    serde::WriteU64(out, kEngineMagic);
    serde::WriteDouble(out, options_.scoring.alpha);
    serde::WriteDouble(out, options_.scoring.n_norm);
    serde::WriteDouble(out, options_.scoring.epsilon);
    serde::WriteU64(out, static_cast<uint64_t>(options_.thread_depth));
    // Bounds.
    serde::WriteDouble(out, bounds_.global_bound());
    serde::WriteU64(out, bounds_.hot_bounds().size());
    for (const auto& [term, bound] : bounds_.hot_bounds()) {
      serde::WriteString(out, term);
      serde::WriteDouble(out, bound);
    }
    // User location profiles.
    serde::WriteU64(out, user_locations_.size());
    for (const auto& [uid, locations] : user_locations_) {
      serde::WriteI64(out, uid);
      serde::WriteU64(out, locations.size());
      for (const GeoPoint& p : locations) {
        serde::WriteDouble(out, p.lat);
        serde::WriteDouble(out, p.lon);
      }
    }
    // Vocabulary (term + frequency, in id order).
    serde::WriteU64(out, vocabulary_.size());
    for (Vocabulary::TermId id = 0; id < vocabulary_.size(); ++id) {
      serde::WriteString(out, vocabulary_.term(id));
      serde::WriteU64(out, vocabulary_.frequency(id));
    }
    // Thread tracker + append ordering watermark.
    serde::WriteI64(out, max_sid_);
    tracker_.Save(out);
    if (!out) return Status::IoError("short write saving engine.bin");
    engine_payload = out.str();
  }
  // Metadata DB blob: the flushed live file + its page-CRC sidecar. The
  // sidecar is stored as its verified payload (ReadFileVerified strips
  // the footer; the restore re-frames it with WriteFileAtomic).
  std::string db_blob;
  {
    Result<std::string> db_bytes =
        fileio::ReadFileRaw(options_.working_dir + kLiveDbFile);
    if (!db_bytes.ok()) return db_bytes.status();
    Result<std::string> crc_bytes = fileio::ReadFileVerified(
        options_.working_dir + kLiveDbFile + std::string(".crc"));
    if (!crc_bytes.ok()) return crc_bytes.status();
    std::ostringstream out(std::ios::binary);
    serde::WriteU64(out, kMetaBlobMagic);
    serde::WriteString(out, *db_bytes);
    serde::WriteString(out, *crc_bytes);
    db_blob = out.str();
  }
  // Fixed artifact order — meta.db, dfs.bin, index.bin, sid_store.bin,
  // engine.bin — so every crash window is recoverable: the watermark
  // (engine.bin) only advances once everything it refers to is in place,
  // the forward index (index.bin) only once the DFS blocks it points at
  // are, and a stale watermark merely makes recovery re-absorb posts the
  // newer artifacts already hold, which the base-wins merge rules
  // deduplicate. The sid store is derived data: a crash leaving it stale
  // relative to meta.db is caught by Open's entry-count lockstep check
  // and repaired by a rebuild, never trusted.
  FaultInjector* faults = options_.fault_injector;
  TKLUS_RETURN_IF_ERROR(
      fileio::WriteFileAtomic(dir + kDbBlobFile, db_blob, faults));
  TKLUS_RETURN_IF_ERROR(
      fileio::WriteFileAtomic(dir + "/dfs.bin", dfs_payload, faults));
  TKLUS_RETURN_IF_ERROR(
      fileio::WriteFileAtomic(dir + "/index.bin", index_payload, faults));
  // Dedicated kill point: lets the recovery sweep crash exactly between
  // index.bin and sid_store.bin (site kFileWrite would fire on meta.db).
  if (faults != nullptr) {
    TKLUS_RETURN_IF_ERROR(
        faults->MaybeFail(faults::kSidStoreWrite, dir + kSidStoreFile));
  }
  TKLUS_RETURN_IF_ERROR(fileio::WriteFileAtomic(dir + kSidStoreFile,
                                                sid_store_payload, faults));
  TKLUS_RETURN_IF_ERROR(
      fileio::WriteFileAtomic(dir + "/engine.bin", engine_payload, faults));
  if (SamePath(dir, options_.working_dir)) {
    // Only now are the WAL records redundant. Truncating a WAL whose
    // checkpoint went to a *different* directory would erase acked
    // batches the working directory's own (older) checkpoint lacks.
    TKLUS_RETURN_IF_ERROR(wal_->Truncate());
    has_checkpoint_.store(true, std::memory_order_release);
  }
  return Status::Ok();
}

Result<std::unique_ptr<TkLusEngine>> TkLusEngine::Open(const std::string& dir,
                                                       Options options) {
  auto engine = std::unique_ptr<TkLusEngine>(new TkLusEngine());
  options.working_dir = dir;
  engine->options_ = options;
  engine->owns_working_dir_ = false;
  engine->slow_log_ = std::make_unique<SlowQueryLog>(SlowQueryLog::Options{
      options.slow_query_ms, options.slow_query_log_entries});

  // Regenerate the live metadata DB (+ page-CRC sidecar) from the
  // checkpoint blob. The blob's footer CRC covers both, so byte damage
  // anywhere inside surfaces as kCorruption here.
  {
    Result<std::string> blob = fileio::ReadFileVerified(dir + kDbBlobFile);
    if (!blob.ok()) return blob.status();
    std::istringstream in(std::move(*blob), std::ios::binary);
    uint64_t magic = 0;
    std::string db_bytes, crc_bytes;
    if (!serde::ReadU64(in, &magic) || magic != kMetaBlobMagic) {
      return Status::Corruption("not a metadata DB checkpoint blob");
    }
    if (!serde::ReadString(in, &db_bytes) ||
        !serde::ReadString(in, &crc_bytes)) {
      return Status::Corruption("truncated metadata DB checkpoint blob");
    }
    TKLUS_RETURN_IF_ERROR(
        fileio::WriteFilePlain(dir + kLiveDbFile, db_bytes));
    TKLUS_RETURN_IF_ERROR(fileio::WriteFileAtomic(
        dir + kLiveDbFile + std::string(".crc"), crc_bytes));
  }
  MetadataDb::Options db_options;
  db_options.buffer_pool_pages = options.buffer_pool_pages;
  db_options.fault_injector = options.fault_injector;
  auto db = MetadataDb::Open(dir + kLiveDbFile, db_options);
  if (!db.ok()) return db.status();
  engine->db_ = std::move(*db);

  // Denormalized sid table: trust the checkpoint artifact only when it is
  // intact AND in lockstep with the restored DB (entry count == row count
  // — counts grow monotonically with content a function of the count, so
  // equality implies identity). Anything else — absent (a pre-SidStore
  // checkpoint), torn, corrupt, or stale from a crash window between
  // artifact writes — falls back to a full rebuild from the B+-tree.
  // Never fatal: the store is derived data.
  {
    Result<SidStore> store = SidStore::LoadFromFile(dir + kSidStoreFile);
    if (store.ok() && store->entry_count() == engine->db_->row_count()) {
      engine->sid_store_ = std::make_unique<SidStore>(std::move(store).value());
    } else {
      const std::string reason =
          store.ok() ? "stale (entry count != DB row count)"
                     : store.status().ToString();
      TKLUS_LOG(Warning) << "sid store artifact unusable: " << reason
                         << "; rebuilding from the metadata DB";
      Result<SidStore> rebuilt = SidStore::RebuildFromDb(engine->db_.get());
      if (!rebuilt.ok()) return rebuilt.status();
      engine->sid_store_ = std::make_unique<SidStore>(std::move(rebuilt).value());
      MetricsRegistry::Global()
          .GetCounter("tklus_sid_store_rebuilds_total",
                      "Full sid-store rebuilds from the metadata DB "
                      "(missing/torn/stale checkpoint artifact).")
          ->Increment();
    }
  }

  engine->dfs_ = std::make_unique<SimulatedDfs>(options.dfs);
  engine->dfs_->set_fault_injector(options.fault_injector);
  {
    Result<std::string> payload = fileio::ReadFileVerified(dir + "/dfs.bin");
    if (!payload.ok()) return payload.status();
    std::istringstream in(std::move(*payload), std::ios::binary);
    TKLUS_RETURN_IF_ERROR(engine->dfs_->Load(in));
  }
  {
    Result<std::string> payload = fileio::ReadFileVerified(dir + "/index.bin");
    if (!payload.ok()) return payload.status();
    std::istringstream in(std::move(*payload), std::ios::binary);
    HybridIndex::Options index_base;
    index_base.tokenizer = options.tokenizer;
    index_base.mapreduce_workers = options.mapreduce_workers;
    index_base.reduce_tasks = options.reduce_tasks;
    index_base.retry = options.dfs_retry;
    index_base.max_task_attempts = options.max_task_attempts;
    index_base.fault_injector = options.fault_injector;
    auto index = HybridIndex::Open(engine->dfs_.get(), in, index_base);
    if (!index.ok()) return index.status();
    engine->index_ = std::move(*index);
    engine->options_.geohash_length = engine->index_->geohash_length();
  }
  Result<std::string> payload = fileio::ReadFileVerified(dir + "/engine.bin");
  if (!payload.ok()) return payload.status();
  std::istringstream in(std::move(*payload), std::ios::binary);
  // As in Build: the engine is private to this function, but the fields
  // deserialized below are lock-annotated, so hold the (uncontended) lock.
  WriterMutexLock lock(&engine->mu_);
  uint64_t magic = 0;
  if (!serde::ReadU64(in, &magic) || magic != kEngineMagic) {
    return Status::Corruption("not an engine image");
  }
  uint64_t depth = 0;
  if (!serde::ReadDouble(in, &engine->options_.scoring.alpha) ||
      !serde::ReadDouble(in, &engine->options_.scoring.n_norm) ||
      !serde::ReadDouble(in, &engine->options_.scoring.epsilon) ||
      !serde::ReadU64(in, &depth)) {
    return Status::Corruption("truncated engine image header");
  }
  engine->options_.thread_depth = static_cast<int>(depth);
  double global_bound = 0;
  uint64_t hot_count = 0;
  if (!serde::ReadDouble(in, &global_bound) ||
      !serde::ReadU64(in, &hot_count)) {
    return Status::Corruption("truncated engine image bounds");
  }
  std::unordered_map<std::string, double> hot_bounds;
  for (uint64_t i = 0; i < hot_count; ++i) {
    std::string term;
    double bound = 0;
    if (!serde::ReadString(in, &term) || !serde::ReadDouble(in, &bound)) {
      return Status::Corruption("truncated engine image hot bound");
    }
    hot_bounds.emplace(std::move(term), bound);
  }
  engine->bounds_ =
      UpperBoundRegistry::FromParts(global_bound, std::move(hot_bounds));
  uint64_t user_count = 0;
  if (!serde::ReadU64(in, &user_count)) {
    return Status::Corruption("truncated engine image profiles");
  }
  for (uint64_t u = 0; u < user_count; ++u) {
    int64_t uid = 0;
    uint64_t n = 0;
    if (!serde::ReadI64(in, &uid) || !serde::ReadU64(in, &n)) {
      return Status::Corruption("truncated engine image profile");
    }
    auto& locations = engine->user_locations_[uid];
    locations.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!serde::ReadDouble(in, &locations[i].lat) ||
          !serde::ReadDouble(in, &locations[i].lon)) {
        return Status::Corruption("truncated engine image location");
      }
    }
  }
  uint64_t vocab_count = 0;
  if (!serde::ReadU64(in, &vocab_count)) {
    return Status::Corruption("truncated engine image vocabulary");
  }
  for (uint64_t i = 0; i < vocab_count; ++i) {
    std::string term;
    uint64_t freq = 0;
    if (!serde::ReadString(in, &term) || !serde::ReadU64(in, &freq)) {
      return Status::Corruption("truncated engine image vocabulary entry");
    }
    engine->vocabulary_.Add(term, freq);
  }
  if (!serde::ReadI64(in, &engine->max_sid_)) {
    return Status::Corruption("truncated engine image watermark");
  }
  TKLUS_RETURN_IF_ERROR(engine->tracker_.Load(in));

  // WAL recovery: re-absorb every intact record past the checkpoint
  // watermark. Posts at or below the watermark are inside the checkpoint
  // already (the crash hit between a fold/checkpoint step and the WAL
  // truncation); re-applying only the newer ones keeps replay idempotent.
  const Tokenizer tokenizer(engine->options_.tokenizer);
  engine->delta_ = std::make_unique<DeltaIndex>(DeltaIndex::Options{
      engine->options_.geohash_length, engine->options_.tokenizer});
  Wal::Options wal_options;
  wal_options.fault_injector = options.fault_injector;
  auto wal = Wal::Open(dir + kWalFile, wal_options);
  if (!wal.ok()) return wal.status();
  engine->wal_ = std::move(*wal);
  uint64_t replayed_posts = 0;
  uint64_t skipped_posts = 0;
  for (const std::string& record : engine->wal_->TakeRecoveredRecords()) {
    Result<Dataset> batch = DecodeBatch(record);
    if (!batch.ok()) return batch.status();
    for (const Post& p : batch->posts()) {
      if (p.sid <= engine->max_sid_) {
        ++skipped_posts;
        continue;
      }
      engine->ApplyPostLocked(p, tokenizer);
      ++replayed_posts;
    }
  }
  if (replayed_posts > 0) {
    engine->bounds_ = UpperBoundRegistry::FromParts(
        engine->tracker_.global_bound(), engine->tracker_.HotBounds());
  }
  const Wal::RecoveryInfo& info = engine->wal_->recovery_info();
  MetricsRegistry::Global()
      .GetCounter("tklus_wal_recovered_records_total",
                  "Intact WAL records read back during engine recovery.")
      ->Increment(info.records);
  TKLUS_LOG(Info) << "recovery: wal held " << info.records << " record(s) ("
                  << info.bytes << " byte(s)), replayed " << replayed_posts
                  << " post(s) past watermark, skipped " << skipped_posts
                  << " already-checkpointed post(s), dropped "
                  << info.truncated_bytes << " torn tail byte(s)";

  engine->has_checkpoint_.store(true, std::memory_order_release);
  engine->FinishConstruction();
  return engine;
}

void TkLusEngine::StartMergeThread() {
  if (options_.delta_merge_posts == 0) return;
  merge_thread_ = std::thread([this] { MergeLoop(); });
}

void TkLusEngine::StopMergeThread() {
  if (!merge_thread_.joinable()) return;
  {
    MutexLock lock(&merge_wake_mu_);
    stop_merge_ = true;
    merge_wake_cv_.SignalAll();
  }
  merge_thread_.join();
}

void TkLusEngine::MergeLoop() {
  for (;;) {
    {
      MutexLock lock(&merge_wake_mu_);
      while (!stop_merge_ && !merge_requested_) {
        merge_wake_cv_.Wait(&merge_wake_mu_);
      }
      if (stop_merge_) return;
      merge_requested_ = false;
    }
    const Status status = MergeNow();
    if (!status.ok()) {
      // Non-fatal: the delta stays resident (queries keep serving it) and
      // the next append past the threshold re-triggers the merge.
      TKLUS_LOG(Warning) << "background delta merge failed: "
                         << status.ToString();
    }
  }
}

Result<QueryResult> TkLusEngine::Query(const TkLusQuery& query) {
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    // Shared: the read path is re-entrant (internally latched buffer pool,
    // read-only page contents between folds) — see the class comment.
    ReaderMutexLock lock(&mu_);
    return processor_->Process(query);
  }();
  if (result.ok()) RecordQueryObservability("q", query, result->stats);
  return result;
}

Result<TweetQueryResult> TkLusEngine::QueryTweets(const TkLusQuery& query) {
  Result<TweetQueryResult> result = [&]() -> Result<TweetQueryResult> {
    ReaderMutexLock lock(&mu_);
    return processor_->ProcessTweets(query);
  }();
  if (result.ok()) RecordQueryObservability("qt", query, result->stats);
  return result;
}

Result<std::vector<ResolvedCandidate>> TkLusEngine::FetchCandidates(
    const TkLusQuery& query, const std::vector<std::string>& terms,
    const std::vector<std::string>& cells, bool count_postings_lists,
    Tracer* tracer, QueryStats* stats) {
  ReaderMutexLock lock(&mu_);
  Tracer disabled(nullptr);
  return processor_->FetchCandidates(query, terms, cells,
                                     count_postings_lists,
                                     /*account_io=*/true,
                                     tracer != nullptr ? *tracer : disabled,
                                     stats);
}

void TkLusEngine::RecordQueryObservability(const char* kind,
                                           const TkLusQuery& query,
                                           const QueryStats& stats) const {
  const QueryMetricFamilies& metrics = QueryMetricFamilies::Get();
  (kind[1] == 't' ? metrics.tweet_queries : metrics.user_queries)->Increment();
  if (stats.sid_store_hits > 0) {
    metrics.sid_store_hits->Increment(stats.sid_store_hits);
  }
  if (stats.sid_store_fallback_rows > 0) {
    metrics.sid_store_fallback_rows->Increment(stats.sid_store_fallback_rows);
  }
  metrics.latency_ms->Observe(stats.elapsed_ms);
  if (slow_log_->ShouldRecord(stats.elapsed_ms)) {
    metrics.slow_queries->Increment();
    SlowQueryRecord record;
    record.summary = SummarizeQuery(kind, query);
    record.elapsed_ms = stats.elapsed_ms;
    record.db_page_reads = stats.db_page_reads;
    record.dfs_block_reads = stats.dfs_block_reads;
    record.candidates = stats.candidates;
    record.threads_built = stats.threads_built;
    record.popularity_cache_hits = stats.popularity_cache_hits;
    record.popularity_cache_misses = stats.popularity_cache_misses;
    slow_log_->Record(std::move(record));
  }
}

}  // namespace tklus
