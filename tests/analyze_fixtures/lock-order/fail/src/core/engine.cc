// Fixture: merge_mu_ acquired before append_mu_ inverts the declared
// order (append_mu_ -> merge_mu_ -> mu_) and must trip `lock-order`.
namespace tklus {

class Engine {
 public:
  void BadSave() {
    MutexLock merge(&merge_mu_);
    MutexLock append(&append_mu_);  // must fire: inversion
  }

 private:
  Mutex append_mu_;
  Mutex merge_mu_;
};

}  // namespace tklus
