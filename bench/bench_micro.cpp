// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: geohash encoding, circle cover, Porter stemming,
// tokenization, postings codec and set operations, B+-tree lookups, and
// tweet-thread construction.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/rng.h"
#include "geo/circle_cover.h"
#include "geo/geohash.h"
#include "index/posting.h"
#include "index/postings_ops.h"
#include "social/thread_builder.h"
#include "storage/metadata_db.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace tklus {
namespace {

void BM_GeohashEncode(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  Rng rng(1);
  const GeoPoint p{rng.Uniform(-80, 80), rng.Uniform(-170, 170)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geohash::Encode(p, length));
  }
}
BENCHMARK(BM_GeohashEncode)->Arg(2)->Arg(4)->Arg(8);

void BM_GeohashDecode(benchmark::State& state) {
  const std::string hash = geohash::Encode(GeoPoint{43.68, -79.37},
                                           static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geohash::DecodeBox(hash));
  }
}
BENCHMARK(BM_GeohashDecode)->Arg(4)->Arg(8);

void BM_CircleCover(benchmark::State& state) {
  const double radius = static_cast<double>(state.range(0));
  const GeoPoint q{43.68, -79.37};
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeohashCircleCover(q, radius, 4));
  }
}
BENCHMARK(BM_CircleCover)->Arg(5)->Arg(20)->Arg(100);

void BM_PorterStem(benchmark::State& state) {
  const PorterStemmer stemmer;
  const char* words[] = {"restaurants", "relational", "hopefulness",
                         "babysitters", "configuration", "troubles"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stemmer.Stem(words[i++ % 6]));
  }
}
BENCHMARK(BM_PorterStem);

void BM_Tokenize(benchmark::State& state) {
  const Tokenizer tokenizer;
  const std::string tweet =
      "Saturday night #fashion #style @friend at the amazing rooftop "
      "restaurant downtown http://t.co/abc123 highly recommended!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(tweet));
  }
}
BENCHMARK(BM_Tokenize);

std::vector<Posting> MakePostings(size_t n, uint64_t seed, int stride) {
  Rng rng(seed);
  std::vector<Posting> out;
  out.reserve(n);
  TweetId tid = 1000000;
  for (size_t i = 0; i < n; ++i) {
    tid += 1 + static_cast<TweetId>(
        rng.UniformInt(static_cast<uint64_t>(stride)));
    out.push_back({tid, 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{3}))});
  }
  return out;
}

void BM_PostingsEncode(benchmark::State& state) {
  const auto postings = MakePostings(state.range(0), 2, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodePostings(postings));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PostingsEncode)->Arg(100)->Arg(10000);

void BM_PostingsDecode(benchmark::State& state) {
  const std::string encoded = EncodePostings(MakePostings(state.range(0), 2, 50));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodePostings(encoded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PostingsDecode)->Arg(100)->Arg(10000);

void BM_PostingsIntersect(benchmark::State& state) {
  const std::vector<std::vector<Posting>> lists = {
      MakePostings(state.range(0), 3, 10),
      MakePostings(state.range(0), 4, 10),
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectPostings(lists));
  }
}
BENCHMARK(BM_PostingsIntersect)->Arg(1000)->Arg(50000);

void BM_PostingsUnion(benchmark::State& state) {
  const std::vector<std::vector<Posting>> lists = {
      MakePostings(state.range(0), 3, 10),
      MakePostings(state.range(0), 4, 10),
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnionPostings(lists));
  }
}
BENCHMARK(BM_PostingsUnion)->Arg(1000)->Arg(50000);

// Fixture-style benchmark: metadata DB point lookups and thread builds.
class MetadataDbBench {
 public:
  static MetadataDbBench& Instance() {
    static MetadataDbBench* bench = new MetadataDbBench();
    return *bench;
  }

  MetadataDb& db() { return *db_; }

 private:
  MetadataDbBench() {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("tklus_bench_meta_" + std::to_string(::getpid()) + ".db"))
            .string();
    auto db = MetadataDb::Create(path);
    db_ = std::move(*db);
    Rng rng(7);
    for (int64_t sid = 1; sid <= 100000; ++sid) {
      const bool reply = sid > 100 && rng.Bernoulli(0.35);
      const int64_t rsid =
          reply ? rng.UniformInt(int64_t{1}, sid - 1) : TweetMeta::kNone;
      (void)db_->Insert(TweetMeta{sid, rng.UniformInt(int64_t{1}, int64_t{2000}),
                                  rng.Uniform(-80, 80), rng.Uniform(-170, 170),
                                  reply ? int64_t{1} : TweetMeta::kNone,
                                  rsid});
    }
  }

  std::unique_ptr<MetadataDb> db_;
};

void BM_BPlusTreeLookup(benchmark::State& state) {
  auto& db = MetadataDbBench::Instance().db();
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.SelectBySid(rng.UniformInt(int64_t{1}, int64_t{100000})));
  }
}
BENCHMARK(BM_BPlusTreeLookup);

void BM_SelectByRsid(benchmark::State& state) {
  auto& db = MetadataDbBench::Instance().db();
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.SelectByRsid(rng.UniformInt(int64_t{1}, int64_t{1000})));
  }
}
BENCHMARK(BM_SelectByRsid);

void BM_ThreadConstruction(benchmark::State& state) {
  auto& db = MetadataDbBench::Instance().db();
  ThreadBuilder builder(&db,
                        ThreadBuilder::Options{static_cast<int>(state.range(0)),
                                               0.1});
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        builder.Popularity(rng.UniformInt(int64_t{1}, int64_t{1000})));
  }
}
BENCHMARK(BM_ThreadConstruction)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace tklus

BENCHMARK_MAIN();
