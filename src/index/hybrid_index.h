#ifndef TKLUS_INDEX_HYBRID_INDEX_H_
#define TKLUS_INDEX_HYBRID_INDEX_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/status.h"
#include "dfs/dfs.h"
#include "geo/point.h"
#include "index/forward_index.h"
#include "index/posting.h"
#include "model/dataset.h"
#include "text/tokenizer.h"

namespace tklus {

// Build-time statistics for Figures 5 and 6.
struct IndexBuildStats {
  double map_seconds = 0;
  double shuffle_seconds = 0;
  double reduce_seconds = 0;
  double write_seconds = 0;
  uint64_t postings_lists = 0;
  uint64_t postings_entries = 0;
  uint64_t inverted_bytes = 0;   // bytes stored in the DFS
  uint64_t forward_bytes = 0;    // in-memory forward index footprint
  double TotalSeconds() const {
    return map_seconds + shuffle_seconds + reduce_seconds + write_seconds;
  }
};

// The hybrid spatial-keyword index of §IV-B: an inverted index keyed by
// <geohash, term> whose postings lists live in the (simulated) DFS, plus
// an in-memory forward index locating each list. Query processing fetches
// postings per (cell, term) pair with random DFS reads.
class HybridIndex {
 public:
  struct Options {
    int geohash_length = 4;          // §VI-B2 settles on 4
    int mapreduce_workers = 3;       // Table III cluster size
    int reduce_tasks = 8;
    std::string dfs_prefix = "index/";
    TokenizerOptions tokenizer;
    // Transient DFS read faults during a postings fetch are absorbed by
    // bounded retry with exponential backoff (the paper's query path is
    // I/O-bound on exactly these reads, §VI-B1).
    RetryPolicy retry;
    // Task-attempt budget for the construction MapReduce job.
    int max_task_attempts = 4;
    // Optional shared fault injector, forwarded to the MapReduce job
    // (postings reads are injected at the DFS layer, not here).
    FaultInjector* fault_injector = nullptr;
  };

  // Builds the index from `dataset` into `dfs` with a MapReduce job
  // (Algorithms 2 and 3). `dfs` must outlive the returned index.
  static Result<std::unique_ptr<HybridIndex>> Build(const Dataset& dataset,
                                                    SimulatedDfs* dfs,
                                                    Options options);
  static Result<std::unique_ptr<HybridIndex>> Build(const Dataset& dataset,
                                                    SimulatedDfs* dfs) {
    return Build(dataset, dfs, Options{});
  }

  // Indexes a further batch of posts into new DFS part files (a new
  // "generation"), extending the forward index in place — the paper's
  // periodic batch architecture ("we can periodically (e.g., one day)
  // collect the spatial tweets and then build the index", §IV-A). Batches
  // should be time-ordered (later batches carry larger sids); fetches
  // merge across generations either way.
  Status AppendBatch(const Dataset& batch);

  // The two halves of AppendBatch, split so the background delta merge
  // can run the expensive part without stalling fetches or the engine's
  // commit lock. PrepareAppend reserves a generation, runs the MapReduce
  // job and writes the part files into the DFS — all invisible to fetches,
  // since nothing references the new files until CommitAppend installs
  // their forward-index entries (a quick in-memory pass under the index
  // lock). A PreparedAppend that is never committed merely leaves orphan
  // part files in the DFS; fetch results are unaffected.
  struct PreparedAppend {
    struct Entry {
      std::string cell;
      std::string term;
      PostingsLocation location;
    };
    std::vector<Entry> entries;
    IndexBuildStats stats_delta;  // what this batch adds to build_stats()
  };
  Result<PreparedAppend> PrepareAppend(const Dataset& batch);
  void CommitAppend(PreparedAppend prepared);

  // Persists the forward index + configuration (the inverted index lives
  // in the DFS, persisted separately via SimulatedDfs::Save).
  Status Save(std::ostream& out) const;

  // Re-attaches to an index whose postings are already in `dfs`. `base`
  // supplies the runtime-only options (retry policy, fault injector,
  // tokenizer); the persisted geohash length / prefix / generation
  // override whatever `base` carries.
  static Result<std::unique_ptr<HybridIndex>> Open(SimulatedDfs* dfs,
                                                   std::istream& in,
                                                   Options base);
  static Result<std::unique_ptr<HybridIndex>> Open(SimulatedDfs* dfs,
                                                   std::istream& in) {
    return Open(dfs, in, Options{});
  }

  // Postings for one (geohash cell, term) pair; empty when absent. Terms
  // must already be normalized (lowercased + stemmed), as query keywords
  // are preprocessed by the engine.
  Result<std::vector<Posting>> FetchPostings(const std::string& geohash,
                                             const std::string& term) const;

  // All postings for `term` across the cover cells, merged sorted by tid
  // (cells are disjoint). The lines 4-7 loop of Alg. 4/5.
  Result<std::vector<Posting>> FetchTermPostings(
      const std::vector<std::string>& cover_cells,
      const std::string& term) const;

  // Quiescent-state accessors for tests/benchmarks: they return references
  // into lock-guarded state without taking mu_, so callers must ensure no
  // concurrent AppendBatch is in flight.
  const ForwardIndex& forward_index() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return forward_;
  }
  const SimulatedDfs* dfs() const { return dfs_; }
  const IndexBuildStats& build_stats() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  int geohash_length() const { return options_.geohash_length; }
  const Options& options() const { return options_; }

  // Fault-tolerance accounting for the fetch path (monotonic totals;
  // QueryStats reports per-query deltas).
  uint64_t fetch_retries() const {
    return fetch_retries_.load(std::memory_order_relaxed);
  }

 private:
  HybridIndex(SimulatedDfs* dfs, Options options)
      : dfs_(dfs), options_(std::move(options)) {}

  SimulatedDfs* dfs_;
  Options options_;
  // Guards the forward index and build bookkeeping: AppendBatch installs a
  // new generation's locations while FetchPostings snapshots the location
  // list for its (cell, term) pair under the same lock, then reads the DFS
  // blocks unlocked (the DFS has its own mutex).
  mutable Mutex mu_;
  ForwardIndex forward_ TKLUS_GUARDED_BY(mu_);
  IndexBuildStats stats_ TKLUS_GUARDED_BY(mu_);
  uint32_t generation_ TKLUS_GUARDED_BY(mu_) = 0;  // next batch number
  // DFS reads re-issued after a transient fault (FetchPostings is const
  // and concurrent, hence atomic).
  mutable std::atomic<uint64_t> fetch_retries_{0};
};

}  // namespace tklus

#endif  // TKLUS_INDEX_HYBRID_INDEX_H_
