#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/crc32.h"
#include "common/logging.h"

namespace tklus {

namespace {

constexpr uint64_t kWalMagic = 0x6c61577375754b54ULL;  // "TkLusWal"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderSize = 12;  // u64 magic + u32 version
constexpr size_t kFrameOverhead = 8;  // u32 len + u32 crc

void PutU32(char* out, uint32_t v) { std::memcpy(out, &v, 4); }
void PutU64(char* out, uint64_t v) { std::memcpy(out, &v, 8); }
uint32_t GetU32(const char* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
uint64_t GetU64(const char* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

bool WriteAllAt(int fd, const char* data, size_t len, uint64_t offset) {
  while (len > 0) {
    const ssize_t n =
        ::pwrite(fd, data, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Wal::Wal(std::string path, int fd, Options options)
    : path_(std::move(path)),
      fd_(fd),
      options_(options),
      appends_total_(MetricsRegistry::Global().GetCounter(
          "tklus_wal_appends_total", "WAL records successfully appended")),
      fsyncs_total_(MetricsRegistry::Global().GetCounter(
          "tklus_wal_fsyncs_total", "WAL fsync calls that completed")) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       Options options) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  std::unique_ptr<Wal> wal(new Wal(path, fd, options));

  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IoError("cannot stat WAL " + path + ": " + ec.message());
  }

  if (file_size == 0) {
    // Fresh log: write and sync the header so the file is well-formed
    // from its first byte on disk.
    char header[kHeaderSize];
    PutU64(header, kWalMagic);
    PutU32(header + 8, kWalVersion);
    if (!WriteAllAt(fd, header, kHeaderSize, 0) || ::fsync(fd) != 0) {
      return Status::IoError("cannot initialize WAL " + path);
    }
    wal->end_offset_ = kHeaderSize;
    return wal;
  }

  if (file_size < kHeaderSize) {
    return Status::Corruption("WAL " + path + " shorter than its header");
  }
  std::string bytes(file_size, '\0');
  {
    size_t got = 0;
    while (got < bytes.size()) {
      const ssize_t n = ::pread(fd, bytes.data() + got, bytes.size() - got,
                                static_cast<off_t>(got));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("cannot read WAL " + path + ": " +
                               std::strerror(errno));
      }
      if (n == 0) break;
      got += static_cast<size_t>(n);
    }
    if (got != bytes.size()) {
      return Status::IoError("short read scanning WAL " + path);
    }
  }
  if (GetU64(bytes.data()) != kWalMagic) {
    return Status::Corruption("not a WAL file: " + path);
  }
  if (GetU32(bytes.data() + 8) != kWalVersion) {
    return Status::Corruption("unsupported WAL version in " + path);
  }

  // Scan records forward. The first frame that does not parse — short
  // frame, payload running past EOF, or CRC mismatch — ends the durable
  // prefix; everything from there on is a torn tail and is truncated.
  uint64_t pos = kHeaderSize;
  while (pos < file_size) {
    if (file_size - pos < kFrameOverhead) break;
    const uint32_t len = GetU32(bytes.data() + pos);
    const uint32_t crc = GetU32(bytes.data() + pos + 4);
    if (file_size - pos - kFrameOverhead < len) break;
    const char* payload = bytes.data() + pos + kFrameOverhead;
    if (Crc32(payload, static_cast<size_t>(len)) != crc) break;
    wal->recovered_.emplace_back(payload, len);
    pos += kFrameOverhead + len;
  }
  wal->end_offset_ = pos;
  wal->record_count_ = wal->recovered_.size();
  wal->recovery_info_.records = wal->recovered_.size();
  wal->recovery_info_.bytes = pos - kHeaderSize;
  wal->recovery_info_.truncated_bytes = file_size - pos;
  if (file_size > pos) {
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0 || ::fsync(fd) != 0) {
      return Status::IoError("cannot truncate torn WAL tail in " + path);
    }
    TKLUS_LOG(Warning) << "WAL " << path << ": dropped "
                       << (file_size - pos)
                       << " torn/corrupt tail byte(s) past record "
                       << wal->record_count_;
  }
  return wal;
}

Status Wal::RestoreTail() {
  if (::ftruncate(fd_, static_cast<off_t>(end_offset_)) != 0 ||
      ::fsync(fd_) != 0) {
    tail_dirty_ = true;
    return Status::IoError("cannot restore WAL tail in " + path_);
  }
  tail_dirty_ = false;
  return Status::Ok();
}

Status Wal::Append(std::string_view payload) {
  FaultInjector* faults = options_.fault_injector;
  if (faults != nullptr) {
    Status st = faults->MaybeFail(faults::kWalAppend, path_);
    if (!st.ok()) return st;
  }
  // A previous torn/failed append may have left bytes past the durable
  // end; heal before writing so frames stay contiguous.
  if (tail_dirty_) {
    Status st = RestoreTail();
    if (!st.ok()) return st;
  }

  std::string frame(kFrameOverhead + payload.size(), '\0');
  PutU32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutU32(frame.data() + 4, Crc32(payload.data(), payload.size()));
  std::memcpy(frame.data() + kFrameOverhead, payload.data(), payload.size());

  if (faults != nullptr) {
    const std::optional<size_t> torn =
        faults->MaybeTornWrite(faults::kWalAppend, frame.size());
    if (torn.has_value()) {
      // Persist the prefix and "crash". The torn bytes are deliberately
      // left on disk (tail_dirty_) so a crash image taken now exercises
      // the replay truncation path; the next Append heals them.
      WriteAllAt(fd_, frame.data(), *torn, end_offset_);
      ::fsync(fd_);
      tail_dirty_ = true;
      return Status::IoError("injected torn WAL append in " + path_);
    }
  }

  if (!WriteAllAt(fd_, frame.data(), frame.size(), end_offset_)) {
    tail_dirty_ = true;
    const Status restore = RestoreTail();  // best effort; dirty flag kept
    (void)restore;
    return Status::IoError("short write appending to WAL " + path_);
  }

  if (faults != nullptr) {
    Status st = faults->MaybeFail(faults::kWalFsync, path_);
    if (!st.ok()) {
      // The frame is fully on disk but was never synced/acked. Roll it
      // back immediately: an unacked record must never survive to replay
      // (no phantoms).
      tail_dirty_ = true;
      const Status restore = RestoreTail();
      (void)restore;
      return st;
    }
  }
  if (::fsync(fd_) != 0) {
    tail_dirty_ = true;
    const Status restore = RestoreTail();
    (void)restore;
    return Status::IoError("fsync failed appending to WAL " + path_);
  }

  end_offset_ += frame.size();
  ++record_count_;
  appends_total_->Increment();
  fsyncs_total_->Increment();
  return Status::Ok();
}

Status Wal::Truncate() {
  FaultInjector* faults = options_.fault_injector;
  if (faults != nullptr) {
    Status st = faults->MaybeFail(faults::kWalTruncate, path_);
    if (!st.ok()) return st;
  }
  // Atomic swap: build a fresh empty log beside the old one and rename it
  // into place, so a crash leaves either the full old log (records replay,
  // the checkpoint dedups them) or the empty new one — never a torn log.
  const std::string tmp = path_ + ".tmp";
  const int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  char header[kHeaderSize];
  PutU64(header, kWalMagic);
  PutU32(header + 8, kWalVersion);
  const bool ok =
      WriteAllAt(tmp_fd, header, kHeaderSize, 0) && ::fsync(tmp_fd) == 0;
  ::close(tmp_fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return Status::IoError("cannot initialize " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return Status::IoError("renaming " + tmp + " over " + path_ + ": " +
                           ec.message());
  }
  const int fd = ::open(path_.c_str(), O_RDWR, 0644);
  if (fd < 0) {
    return Status::IoError("cannot reopen WAL " + path_ + ": " +
                           std::strerror(errno));
  }
  ::close(fd_);
  fd_ = fd;
  end_offset_ = kHeaderSize;
  record_count_ = 0;
  tail_dirty_ = false;
  return Status::Ok();
}

std::vector<std::string> Wal::TakeRecoveredRecords() {
  return std::move(recovered_);
}

}  // namespace tklus
