#ifndef TKLUS_COMMON_MUTEX_H_
#define TKLUS_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#ifdef TKLUS_DEADLOCK_DEBUG
#include <cstdio>
#include <cstdlib>
#include <vector>
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define TKLUS_LOCKDEBUG_HAVE_BACKTRACE 1
#endif
#endif

// Clang thread-safety analysis (-Wthread-safety) attributes, in the style
// of absl/base/thread_annotations.h. Under GCC (which has no analysis) the
// macros expand to nothing, so annotated code compiles everywhere; under
// Clang with -DTKLUS_THREAD_SAFETY=ON the build runs with
// -Werror=thread-safety and a lock-discipline violation (touching a
// TKLUS_GUARDED_BY field without its mutex, calling a TKLUS_REQUIRES
// function unlocked, double-locking) is a compile error.
//
// The project lint (scripts/lint.sh) bans naked std::mutex outside this
// header: every lock in src/ must be a tklus::Mutex so the analysis can see
// it.
#if defined(__clang__) && !defined(SWIG)
#define TKLUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TKLUS_THREAD_ANNOTATION(x)
#endif

// Declares a type to be a lockable capability ("mutex" names the kind in
// diagnostics).
#define TKLUS_CAPABILITY(x) TKLUS_THREAD_ANNOTATION(capability(x))
// Declares an RAII type that acquires a capability in its constructor and
// releases it in its destructor.
#define TKLUS_SCOPED_CAPABILITY TKLUS_THREAD_ANNOTATION(scoped_lockable)
// The annotated field may only be read or written while holding `x`.
#define TKLUS_GUARDED_BY(x) TKLUS_THREAD_ANNOTATION(guarded_by(x))
// The annotated pointer's pointee may only be accessed while holding `x`.
#define TKLUS_PT_GUARDED_BY(x) TKLUS_THREAD_ANNOTATION(pt_guarded_by(x))
// The function may only be called while already holding the capability.
#define TKLUS_REQUIRES(...) \
  TKLUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TKLUS_REQUIRES_SHARED(...) \
  TKLUS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// The function acquires / releases the capability.
#define TKLUS_ACQUIRE(...) \
  TKLUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TKLUS_RELEASE(...) \
  TKLUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TKLUS_TRY_ACQUIRE(...) \
  TKLUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Shared (reader) flavor of acquire/release for SharedMutex: many holders
// of the shared capability may coexist; the exclusive flavor above still
// excludes everyone.
#define TKLUS_ACQUIRE_SHARED(...) \
  TKLUS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define TKLUS_RELEASE_SHARED(...) \
  TKLUS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// The function must be called with the capability *not* held (deadlock
// guard for functions that lock internally).
#define TKLUS_EXCLUDES(...) TKLUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Escape hatch: the analysis skips this function entirely. Every use must
// carry a comment saying why the discipline cannot be expressed.
#define TKLUS_NO_THREAD_SAFETY_ANALYSIS \
  TKLUS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tklus {

// Rank for locks that opt out of the runtime deadlock witness's ordering
// check (they are still checked for recursive acquisition). Ranked locks
// take their rank from src/core/lock_ranks.h, which mirrors the declared
// order in tools/analyze/lockorder.conf.
inline constexpr int kNoLockRank = -1;

#ifdef TKLUS_DEADLOCK_DEBUG
// Runtime deadlock witness (DESIGN.md §13). Each ranked lock records its
// rank + name; every acquisition is checked against a thread-local stack
// of locks this thread already holds. Acquiring a rank <= any held rank
// is a lock-order inversion — the witness aborts immediately with both
// lock stacks, instead of leaving a deadlock that only manifests under
// the right interleaving. Recursive acquisition of the same object is
// always fatal, ranked or not: for SharedMutex even the *shared* flavor
// self-deadlocks, because a writer queued between the two reader
// acquisitions blocks the second one forever (writer-preference).
//
// TKLUS_DEADLOCK_DEBUG must be a global compile definition (cmake option
// of the same name): this header is included everywhere, and mixing
// debug and non-debug TUs would violate the ODR (locks grow fields).
namespace lockdebug {

struct HeldEntry {
  const void* mutex;
  int rank;
  const char* name;
  bool shared;
};

// Locks currently held by this thread, outermost first.
inline std::vector<HeldEntry>& HeldStack() {
  thread_local std::vector<HeldEntry> stack;
  return stack;
}

[[noreturn]] inline void Abort(const char* kind, const HeldEntry& acquiring,
                               const HeldEntry& conflict) {
  std::fprintf(stderr,
               "tklus deadlock witness: %s: acquiring '%s' (rank %d%s) "
               "while holding '%s' (rank %d%s)\n",
               kind, acquiring.name, acquiring.rank,
               acquiring.shared ? ", shared" : "", conflict.name,
               conflict.rank, conflict.shared ? ", shared" : "");
  std::fprintf(stderr, "  locks held by this thread (outermost first):\n");
  for (const HeldEntry& e : HeldStack()) {
    std::fprintf(stderr, "    '%s' (rank %d%s)\n", e.name, e.rank,
                 e.shared ? ", shared" : "");
  }
#ifdef TKLUS_LOCKDEBUG_HAVE_BACKTRACE
  void* frames[64];
  const int n = backtrace(frames, 64);
  std::fprintf(stderr, "  acquisition backtrace:\n");
  backtrace_symbols_fd(frames, n, /*fd=*/2);
#endif
  std::abort();
}

// Checks + records an acquisition about to block. Called *before* the
// underlying lock so an inversion aborts rather than deadlocks.
inline void OnAcquire(const void* mu, int rank, const char* name,
                      bool shared) {
  std::vector<HeldEntry>& held = HeldStack();
  const HeldEntry entry{mu, rank, name, shared};
  for (const HeldEntry& e : held) {
    if (e.mutex == mu) {
      Abort(e.shared && shared ? "recursive acquisition (shared readers "
                                 "deadlock behind a queued writer)"
                               : "recursive acquisition",
            entry, e);
    }
    if (rank != kNoLockRank && e.rank != kNoLockRank && e.rank >= rank) {
      Abort("lock-order inversion", entry, e);
    }
  }
  held.push_back(entry);
}

// TryLock never blocks, so a successful try-acquisition in "wrong" order
// cannot deadlock — record it (so later acquisitions see it held) but
// skip the ordering check.
inline void OnTryAcquire(const void* mu, int rank, const char* name,
                         bool shared) {
  HeldStack().push_back(HeldEntry{mu, rank, name, shared});
}

inline void OnRelease(const void* mu) {
  std::vector<HeldEntry>& held = HeldStack();
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i].mutex == mu) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace lockdebug
#endif  // TKLUS_DEADLOCK_DEBUG

// An annotated exclusive mutex. Identical cost to std::mutex; exists so
// every lock in the project is visible to Clang's thread-safety analysis
// and to the lint. The optional (rank, name) constructor feeds the
// runtime deadlock witness in debug builds and is free otherwise.
class TKLUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank, const char* name = "") {
#ifdef TKLUS_DEADLOCK_DEBUG
    rank_ = rank;
    name_ = name;
#else
    static_cast<void>(rank);
    static_cast<void>(name);
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TKLUS_ACQUIRE() {
#ifdef TKLUS_DEADLOCK_DEBUG
    lockdebug::OnAcquire(this, rank_, name_, /*shared=*/false);
#endif
    mu_.lock();
  }
  void Unlock() TKLUS_RELEASE() {
    mu_.unlock();
#ifdef TKLUS_DEADLOCK_DEBUG
    lockdebug::OnRelease(this);
#endif
  }
  bool TryLock() TKLUS_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#ifdef TKLUS_DEADLOCK_DEBUG
    if (ok) lockdebug::OnTryAcquire(this, rank_, name_, /*shared=*/false);
#endif
    return ok;
  }

 private:
  std::mutex mu_;
#ifdef TKLUS_DEADLOCK_DEBUG
  int rank_ = kNoLockRank;
  const char* name_ = "";
#endif
};

// RAII lock, the project's replacement for std::lock_guard:
//   MutexLock lock(&mu_);
class TKLUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TKLUS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TKLUS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// A condition variable paired with tklus::Mutex (std sync primitives are
// confined to this header so the lint/analysis can account for every lock).
// Usage mirrors absl::CondVar:
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases *mu (which the caller must hold), blocks until
  // signalled, and reacquires *mu before returning. Spurious wakeups are
  // possible; callers always re-check their predicate in a loop.
  void Wait(Mutex* mu) TKLUS_REQUIRES(mu) {
    MutexAdapter adapter{mu};
    cv_.wait(adapter);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  // BasicLockable shim so condition_variable_any can release/reacquire a
  // tklus::Mutex. The analysis cannot follow the handoff through
  // condition_variable_any, hence the escape hatch on both methods.
  struct MutexAdapter {
    Mutex* mu;
    void lock() TKLUS_NO_THREAD_SAFETY_ANALYSIS { mu->Lock(); }
    void unlock() TKLUS_NO_THREAD_SAFETY_ANALYSIS { mu->Unlock(); }
  };

  std::condition_variable_any cv_;
};

// An annotated reader-writer mutex. Readers (LockShared) may overlap each
// other; a writer (Lock) excludes everyone. Same annotation contract as
// Mutex: a TKLUS_GUARDED_BY(shared_mu_) field may be *read* under either
// flavor but *written* only under the exclusive one, and Clang's analysis
// enforces exactly that split.
//
// Writer-preferring by construction (hand-rolled over mutex + condvars
// rather than std::shared_mutex, whose glibc backing is reader-preferring):
// once a writer is waiting, new readers queue behind it, so a continuous
// stream of readers — e.g. query threads hammering the engine — can never
// starve an appender. Readers already inside are drained first; the writer
// goes next; queued readers resume after it.
class TKLUS_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank, const char* name = "") {
#ifdef TKLUS_DEADLOCK_DEBUG
    rank_ = rank;
    name_ = name;
#else
    static_cast<void>(rank);
    static_cast<void>(name);
#endif
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() TKLUS_ACQUIRE() {
#ifdef TKLUS_DEADLOCK_DEBUG
    lockdebug::OnAcquire(this, rank_, name_, /*shared=*/false);
#endif
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_writers_;
    writer_cv_.wait(lock,
                    [this] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }
  void Unlock() TKLUS_RELEASE() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      writer_active_ = false;
      if (waiting_writers_ > 0) {
        writer_cv_.notify_one();
      } else {
        reader_cv_.notify_all();
      }
    }
#ifdef TKLUS_DEADLOCK_DEBUG
    lockdebug::OnRelease(this);
#endif
  }
  void LockShared() TKLUS_ACQUIRE_SHARED() {
#ifdef TKLUS_DEADLOCK_DEBUG
    lockdebug::OnAcquire(this, rank_, name_, /*shared=*/true);
#endif
    std::unique_lock<std::mutex> lock(mu_);
    reader_cv_.wait(lock,
                    [this] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }
  void UnlockShared() TKLUS_RELEASE_SHARED() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--active_readers_ == 0 && waiting_writers_ > 0) {
        writer_cv_.notify_one();
      }
    }
#ifdef TKLUS_DEADLOCK_DEBUG
    lockdebug::OnRelease(this);
#endif
  }

 private:
  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
#ifdef TKLUS_DEADLOCK_DEBUG
  int rank_ = kNoLockRank;
  const char* name_ = "";
#endif
};

// RAII exclusive (writer) lock over a SharedMutex:
//   WriterMutexLock lock(&shared_mu_);
class TKLUS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) TKLUS_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() TKLUS_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

// RAII shared (reader) lock over a SharedMutex:
//   ReaderMutexLock lock(&shared_mu_);
class TKLUS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) TKLUS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() TKLUS_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace tklus

#endif  // TKLUS_COMMON_MUTEX_H_
