// Fixture: tklus::MutexLock is the sanctioned RAII lock; nothing fires.
namespace tklus {

void Locked(Mutex* mu) { MutexLock lock(mu); }

}  // namespace tklus
