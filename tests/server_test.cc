// Request server + wire protocol: encode/decode round trips, end-to-end
// queries over a real loopback socket against the sharded engine (the
// responses must match the engine's own results exactly), pipelining,
// malformed-input handling and clean shutdown.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "core/sharded_engine.h"
#include "datagen/tweet_generator.h"
#include "server/protocol.h"
#include "server/server.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;
using server::Call;
using server::Connect;
using server::RequestKind;
using server::RequestServer;
using server::WireRequest;
using server::WireResponse;

GeneratedCorpus MakeCorpus() {
  TweetGenerator::Options opts;
  opts.num_users = 120;
  opts.num_tweets = 2000;
  opts.num_cities = 2;
  return TweetGenerator::Generate(opts);
}

TkLusQuery MakeQuery(const GeoPoint& center) {
  TkLusQuery q;
  q.location = center;
  q.radius_km = 25.0;
  q.keywords = {"hotel", "restaurant"};
  q.k = 10;
  return q;
}

TEST(ProtocolTest, RequestRoundTrips) {
  WireRequest request;
  request.kind = RequestKind::kTweetQuery;
  request.query.location = {40.75, -73.99};
  request.query.radius_km = 7.5;
  request.query.keywords = {"pizza", "", "café"};
  request.query.k = 3;
  request.query.semantics = Semantics::kAnd;
  request.query.ranking = Ranking::kMax;

  WireRequest decoded;
  ASSERT_TRUE(server::DecodeRequest(server::EncodeRequest(request), &decoded)
                  .ok());
  EXPECT_EQ(decoded.kind, request.kind);
  EXPECT_EQ(decoded.query.location, request.query.location);
  EXPECT_EQ(decoded.query.radius_km, request.query.radius_km);
  EXPECT_EQ(decoded.query.keywords, request.query.keywords);
  EXPECT_EQ(decoded.query.k, request.query.k);
  EXPECT_EQ(decoded.query.semantics, request.query.semantics);
  EXPECT_EQ(decoded.query.ranking, request.query.ranking);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  WireResponse response;
  response.code = 14;
  response.message = "shard 2 down";
  response.degraded = true;
  response.users = {{7, 3.25}, {9, 1.5}};
  response.tweets = {{101, 7, 0.5, 2.25}};
  response.server_ms = 12.5;

  WireResponse decoded;
  ASSERT_TRUE(
      server::DecodeResponse(server::EncodeResponse(response), &decoded).ok());
  EXPECT_EQ(decoded.code, response.code);
  EXPECT_EQ(decoded.message, response.message);
  EXPECT_EQ(decoded.degraded, response.degraded);
  ASSERT_EQ(decoded.users.size(), 2u);
  EXPECT_EQ(decoded.users[0].uid, 7);
  EXPECT_EQ(decoded.users[0].score, 3.25);
  ASSERT_EQ(decoded.tweets.size(), 1u);
  EXPECT_EQ(decoded.tweets[0].sid, 101);
  EXPECT_EQ(decoded.tweets[0].distance_km, 2.25);
  EXPECT_EQ(decoded.server_ms, 12.5);
}

TEST(ProtocolTest, TruncatedAndGarbagePayloadsAreErrorsNotCrashes) {
  WireRequest request;
  request.query.keywords = {"hotel"};
  const std::string good = server::EncodeRequest(request);
  WireRequest decoded;
  for (size_t cut = 0; cut < good.size(); cut += 7) {
    EXPECT_FALSE(
        server::DecodeRequest(good.substr(0, cut), &decoded).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(server::DecodeRequest("garbage-not-a-frame", &decoded).ok());
  WireResponse response;
  EXPECT_FALSE(server::DecodeResponse("junk", &response).ok());
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = MakeCorpus();
    ShardedEngine::Options options;
    options.num_shards = 2;
    auto engine = ShardedEngine::Build(corpus_.dataset, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
    RequestServer::Options server_options;
    server_options.num_workers = 3;
    auto srv = RequestServer::Start(engine_.get(), server_options);
    ASSERT_TRUE(srv.ok()) << srv.status().ToString();
    server_ = std::move(*srv);
    ASSERT_GT(server_->port(), 0);
  }

  GeneratedCorpus corpus_;
  std::unique_ptr<ShardedEngine> engine_;
  std::unique_ptr<RequestServer> server_;
};

TEST_F(ServerTest, UserQueryMatchesEngineExactly) {
  WireRequest request;
  request.query = MakeQuery(corpus_.city_centers[0]);
  const auto want = engine_->Query(request.query);
  ASSERT_TRUE(want.ok());

  auto fd = Connect(server_->port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const auto got = Call(*fd, request);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->code, 0);
  EXPECT_FALSE(got->degraded);
  EXPECT_GE(got->server_ms, 0.0);
  ASSERT_EQ(got->users.size(), want->users.size());
  for (size_t i = 0; i < want->users.size(); ++i) {
    EXPECT_EQ(got->users[i].uid, want->users[i].uid) << "rank " << i;
    EXPECT_EQ(got->users[i].score, want->users[i].score) << "rank " << i;
  }
  ::close(*fd);
}

TEST_F(ServerTest, TweetQueryMatchesEngineExactly) {
  WireRequest request;
  request.kind = RequestKind::kTweetQuery;
  request.query = MakeQuery(corpus_.city_centers[1]);
  const auto want = engine_->QueryTweets(request.query);
  ASSERT_TRUE(want.ok());

  auto fd = Connect(server_->port());
  ASSERT_TRUE(fd.ok());
  const auto got = Call(*fd, request);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->code, 0);
  ASSERT_EQ(got->tweets.size(), want->tweets.size());
  for (size_t i = 0; i < want->tweets.size(); ++i) {
    EXPECT_EQ(got->tweets[i].sid, want->tweets[i].sid) << "rank " << i;
    EXPECT_EQ(got->tweets[i].uid, want->tweets[i].uid) << "rank " << i;
    EXPECT_EQ(got->tweets[i].score, want->tweets[i].score) << "rank " << i;
  }
  ::close(*fd);
}

TEST_F(ServerTest, PipelinedRequestsComeBackInOrder) {
  auto fd = Connect(server_->port());
  ASSERT_TRUE(fd.ok());
  // Distinct k per request: the k-th response must carry at most k users,
  // which pins response ordering to request ordering.
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    WireRequest request;
    request.query = MakeQuery(corpus_.city_centers[0]);
    request.query.k = i + 1;
    ASSERT_TRUE(
        server::WriteFrame(*fd, server::EncodeRequest(request)).ok());
  }
  for (int i = 0; i < kRequests; ++i) {
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(server::ReadFrame(*fd, 1 << 20, &payload, &eof).ok());
    ASSERT_FALSE(eof);
    WireResponse response;
    ASSERT_TRUE(server::DecodeResponse(payload, &response).ok());
    EXPECT_EQ(response.code, 0);
    EXPECT_LE(response.users.size(), static_cast<size_t>(i + 1));
  }
  ::close(*fd);
}

TEST_F(ServerTest, ConcurrentClientsAllGetExactAnswers) {
  WireRequest request;
  request.query = MakeQuery(corpus_.city_centers[0]);
  const auto want = engine_->Query(request.query);
  ASSERT_TRUE(want.ok());
  const uint64_t served_before = server_->requests_served();

  constexpr int kClients = 4;
  constexpr int kCallsEach = 8;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto fd = Connect(server_->port());
      ASSERT_TRUE(fd.ok());
      for (int i = 0; i < kCallsEach; ++i) {
        const auto got = Call(*fd, request);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got->code, 0);
        ASSERT_EQ(got->users.size(), want->users.size());
        for (size_t r = 0; r < want->users.size(); ++r) {
          ASSERT_EQ(got->users[r].uid, want->users[r].uid);
        }
      }
      ::close(*fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_GE(server_->requests_served() - served_before,
            static_cast<uint64_t>(kClients * kCallsEach));
}

TEST_F(ServerTest, InvalidQueryComesBackAsErrorResponse) {
  WireRequest request;
  request.query = MakeQuery(corpus_.city_centers[0]);
  request.query.k = 0;  // rejected by ValidateQuery server-side
  auto fd = Connect(server_->port());
  ASSERT_TRUE(fd.ok());
  const auto got = Call(*fd, request);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_NE(got->code, 0);
  EXPECT_FALSE(got->message.empty());
  // The connection survives an application-level error.
  request.query.k = 5;
  const auto again = Call(*fd, request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->code, 0);
  ::close(*fd);
}

TEST_F(ServerTest, MalformedFrameGetsErrorResponse) {
  auto fd = Connect(server_->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(server::WriteFrame(*fd, "this is not a query").ok());
  std::string payload;
  bool eof = false;
  ASSERT_TRUE(server::ReadFrame(*fd, 1 << 20, &payload, &eof).ok());
  ASSERT_FALSE(eof);
  WireResponse response;
  ASSERT_TRUE(server::DecodeResponse(payload, &response).ok());
  EXPECT_NE(response.code, 0);
  ::close(*fd);
}

TEST_F(ServerTest, OversizedFrameClosesTheConnection) {
  RequestServer::Options tiny;
  tiny.num_workers = 1;
  tiny.max_frame_bytes = 64;
  auto srv = RequestServer::Start(engine_.get(), tiny);
  ASSERT_TRUE(srv.ok());
  auto fd = Connect((*srv)->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(server::WriteFrame(*fd, std::string(1024, 'x')).ok());
  std::string payload;
  bool eof = false;
  const Status read = server::ReadFrame(*fd, 1 << 20, &payload, &eof);
  // The server drops the connection without a response frame.
  EXPECT_TRUE(eof || !read.ok());
  ::close(*fd);
}

TEST_F(ServerTest, StopUnblocksWorkersParkedOnIdleConnections) {
  // Regression: a connected-but-idle client parks its worker in recv();
  // Stop() must shutdown() that socket or the worker join hangs forever.
  auto fd = Connect(server_->port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  WireRequest request;
  request.query = MakeQuery(corpus_.city_centers[0]);
  auto first = Call(*fd, request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  server_->Stop();  // must return with the connection still open

  // The server hung up our connection; the next round trip fails.
  EXPECT_FALSE(Call(*fd, request).ok());
  ::close(*fd);
}

TEST_F(ServerTest, StopIsIdempotentAndStopsServing) {
  server_->Stop();
  server_->Stop();
  auto fd = Connect(server_->port());
  if (fd.ok()) {
    // The listener is closed; at best the kernel accepted the SYN before
    // close, in which case the first round trip fails.
    EXPECT_FALSE(Call(*fd, WireRequest{}).ok());
    ::close(*fd);
  }
}

}  // namespace
}  // namespace tklus
