#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "mapreduce/counters.h"
#include "mapreduce/job.h"

namespace tklus {
namespace {

// Canonical word count over string inputs.
using WordCountJob = MapReduceJob<std::string, std::string, int>;

WordCountJob::MapFn WordCountMap() {
  return [](const std::string& line, const WordCountJob::Emit& emit) {
    size_t start = 0;
    while (start < line.size()) {
      size_t end = line.find(' ', start);
      if (end == std::string::npos) end = line.size();
      if (end > start) emit(line.substr(start, end - start), 1);
      start = end + 1;
    }
  };
}

WordCountJob::ReduceFn SumReduce() {
  return [](const std::string& key, std::vector<int>& values,
            const WordCountJob::OutEmit& emit) {
    int sum = 0;
    for (const int v : values) sum += v;
    emit(key, sum);
  };
}

std::map<std::string, int> Flatten(
    const std::vector<std::vector<std::pair<std::string, int>>>& parts) {
  std::map<std::string, int> out;
  for (const auto& part : parts) {
    for (const auto& [k, v] : part) out[k] += v;
  }
  return out;
}

TEST(MapReduceTest, WordCount) {
  WordCountJob job(WordCountMap(), SumReduce());
  auto result = job.Run({"a b c", "b c", "c"});
  ASSERT_TRUE(result.ok());
  const auto counts = Flatten(*result);
  EXPECT_EQ(counts.at("a"), 1);
  EXPECT_EQ(counts.at("b"), 2);
  EXPECT_EQ(counts.at("c"), 3);
  EXPECT_EQ(job.stats().map_input_records, 3u);
  EXPECT_EQ(job.stats().map_output_records, 6u);
  EXPECT_EQ(job.stats().reduce_groups, 3u);
}

TEST(MapReduceTest, EmptyInput) {
  WordCountJob job(WordCountMap(), SumReduce());
  auto result = job.Run({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Flatten(*result).empty());
}

TEST(MapReduceTest, PartitionOutputsSortedByKey) {
  WordCountJob::Options opts;
  opts.num_reduce_tasks = 4;
  WordCountJob job(WordCountMap(), SumReduce(), opts);
  std::vector<std::string> inputs;
  for (int i = 0; i < 100; ++i) {
    inputs.push_back("w" + std::to_string(i % 37) + " w" +
                     std::to_string((i * 7) % 37));
  }
  auto result = job.Run(inputs);
  ASSERT_TRUE(result.ok());
  for (const auto& part : *result) {
    for (size_t i = 1; i < part.size(); ++i) {
      EXPECT_LT(part[i - 1].first, part[i].first);
    }
  }
}

TEST(MapReduceTest, CombinerPreservesResult) {
  // Word count with and without a combiner must agree; the combiner must
  // cut shuffle volume.
  std::vector<std::string> inputs(200, "x y x");
  WordCountJob plain(WordCountMap(), SumReduce());
  auto without = plain.Run(inputs);
  ASSERT_TRUE(without.ok());

  WordCountJob combined(WordCountMap(), SumReduce());
  combined.set_combiner([](const std::string& key, std::vector<int>& values,
                           const WordCountJob::Emit& emit) {
    int sum = 0;
    for (const int v : values) sum += v;
    emit(key, sum);
  });
  auto with = combined.Run(inputs);
  ASSERT_TRUE(with.ok());

  EXPECT_EQ(Flatten(*without), Flatten(*with));
  EXPECT_LT(combined.stats().combine_output_records,
            combined.stats().map_output_records);
}

TEST(MapReduceTest, ManyWorkersMatchSingleWorker) {
  std::vector<std::string> inputs;
  for (int i = 0; i < 500; ++i) {
    inputs.push_back("k" + std::to_string(i % 53) + " k" +
                     std::to_string(i % 11));
  }
  WordCountJob::Options one;
  one.num_workers = 1;
  WordCountJob::Options eight;
  eight.num_workers = 8;
  eight.split_size = 16;
  WordCountJob job1(WordCountMap(), SumReduce(), one);
  WordCountJob job8(WordCountMap(), SumReduce(), eight);
  auto r1 = job1.Run(inputs);
  auto r8 = job8.Run(inputs);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r8.ok());
  EXPECT_EQ(Flatten(*r1), Flatten(*r8));
}

TEST(MapReduceTest, CustomPartitioner) {
  WordCountJob::Options opts;
  opts.num_reduce_tasks = 2;
  WordCountJob job(WordCountMap(), SumReduce(), opts);
  // Everything to partition 1.
  job.set_partitioner([](const std::string&, int) { return 1; });
  auto result = job.Run({"a b", "c"});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)[0].empty());
  EXPECT_EQ((*result)[1].size(), 3u);
}

TEST(MapReduceTest, PairKeyWithoutHashRequiresPartitioner) {
  using PairJob =
      MapReduceJob<int, std::pair<std::string, std::string>, int>;
  PairJob job([](const int& x, const PairJob::Emit& emit) {
    emit({"g", "t"}, x);
  },
              [](const std::pair<std::string, std::string>& key,
                 std::vector<int>& values, const PairJob::OutEmit& emit) {
                emit(key, static_cast<int>(values.size()));
              });
  auto bad = job.Run({1, 2, 3});
  EXPECT_FALSE(bad.ok());
  job.set_partitioner(
      [](const std::pair<std::string, std::string>&, int) { return 0; });
  auto good = job.Run({1, 2, 3});
  ASSERT_TRUE(good.ok());
  ASSERT_EQ((*good)[0].size(), 1u);
  EXPECT_EQ((*good)[0][0].second, 3);
}

TEST(MapReduceTest, ValuesArriveGrouped) {
  // The reducer must see exactly the values emitted for its key.
  using Job = MapReduceJob<int, int, int, int, std::vector<int>>;
  Job job(
      [](const int& x, const Job::Emit& emit) { emit(x % 5, x); },
      [](const int& key, std::vector<int>& values, const Job::OutEmit& emit) {
        std::sort(values.begin(), values.end());
        emit(key, values);
      });
  std::vector<int> inputs;
  for (int i = 0; i < 50; ++i) inputs.push_back(i);
  auto result = job.Run(inputs);
  ASSERT_TRUE(result.ok());
  int groups = 0;
  for (const auto& part : *result) {
    for (const auto& [key, values] : part) {
      ++groups;
      EXPECT_EQ(values.size(), 10u);
      for (const int v : values) EXPECT_EQ(v % 5, key);
    }
  }
  EXPECT_EQ(groups, 5);
}

TEST(MapReduceTest, TransientTaskFaultsAreRetriedAway) {
  // Two transient map-task faults and one reduce-task fault: every task
  // re-runs within its attempt budget and the job output is identical to a
  // fault-free run.
  std::vector<std::string> inputs(100, "x y x");
  WordCountJob clean(WordCountMap(), SumReduce());
  auto expected = clean.Run(inputs);
  ASSERT_TRUE(expected.ok());

  FaultInjector injector(/*seed=*/11);
  injector.FailNext(faults::kMapTask, FaultKind::kTransient, 2);
  injector.FailNext(faults::kReduceTask, FaultKind::kTransient, 1);
  WordCountJob::Options opts;
  opts.fault_injector = &injector;
  WordCountJob job(WordCountMap(), SumReduce(), opts);
  auto result = job.Run(inputs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Flatten(*result), Flatten(*expected));
  EXPECT_EQ(job.counters().Get(counter_names::kMapTaskRetries), 2u);
  EXPECT_EQ(job.counters().Get(counter_names::kReduceTaskRetries), 1u);
  EXPECT_EQ(job.counters().Get(counter_names::kTasksFailed), 0u);
}

TEST(MapReduceTest, ThrowingMapFunctionIsRetried) {
  // A map function that crashes on its first two calls: the task attempt
  // discards its partial output and re-executes, so no records duplicate.
  std::atomic<int> calls{0};
  WordCountJob::Options opts;
  opts.num_workers = 1;
  WordCountJob job(
      [&calls](const std::string& line, const WordCountJob::Emit& emit) {
        if (calls.fetch_add(1) < 2) {
          throw std::runtime_error("simulated worker crash");
        }
        WordCountMap()(line, emit);
      },
      SumReduce(), opts);
  auto result = job.Run({"a b", "b"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto counts = Flatten(*result);
  EXPECT_EQ(counts.at("a"), 1);
  EXPECT_EQ(counts.at("b"), 2);
  EXPECT_EQ(job.counters().Get(counter_names::kMapTaskRetries), 2u);
}

TEST(MapReduceTest, ExhaustedTaskAttemptsFailTheJobCleanly) {
  // A permanently failing map task: the job fails with the task's error
  // after max_task_attempts tries, not a crash or partial output.
  FaultInjector injector(/*seed=*/13);
  injector.SetFaultRate(faults::kMapTask, FaultKind::kPermanent, 1.0);
  WordCountJob::Options opts;
  opts.fault_injector = &injector;
  opts.max_task_attempts = 3;
  WordCountJob job(WordCountMap(), SumReduce(), opts);
  auto result = job.Run({"a b c", "b c", "c"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("failed after 3 attempts"),
            std::string::npos);
  EXPECT_GE(job.counters().Get(counter_names::kTasksFailed), 1u);
}

TEST(MapReduceTest, ExhaustedReduceAttemptsFailTheJobCleanly) {
  FaultInjector injector(/*seed=*/17);
  injector.SetFaultRate(faults::kReduceTask, FaultKind::kTransient, 1.0);
  WordCountJob::Options opts;
  opts.fault_injector = &injector;
  WordCountJob job(WordCountMap(), SumReduce(), opts);
  auto result = job.Run({"a b c"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("reduce task"), std::string::npos);
}

TEST(CountersTest, IncrementAndSnapshot) {
  Counters counters;
  counters.Increment("a");
  counters.Increment("a", 4);
  counters.Increment("b");
  EXPECT_EQ(counters.Get("a"), 5u);
  EXPECT_EQ(counters.Get("b"), 1u);
  EXPECT_EQ(counters.Get("missing"), 0u);
  const auto snapshot = counters.Snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  counters.Reset();
  EXPECT_EQ(counters.Get("a"), 0u);
}

}  // namespace
}  // namespace tklus
