// Golden differential-test corpus: a fixed generated world, a fixed
// seeded batch of queries, and a checked-in golden file of the engine's
// exact top-k output. Every corpus entry is evaluated three ways:
//
//   1. the indexed engine (the system under test),
//   2. the in-memory NaiveScanner oracle (differential check, exact), and
//   3. the checked-in golden line (regression check, byte-identical).
//
// The goldens pin the *numeric* behavior: a change that reorders ties,
// perturbs accumulation order or touches the Def. 4-10 scoring surfaces
// as a golden diff even when engine and oracle still agree with each
// other (e.g. a change applied to both sides). Queries sweep both Sum and
// Max ranking and an alpha grid, AND/OR semantics, radii, k and temporal
// windows.
//
// Regenerate after an intentional scoring change with:
//   ./tests/golden_query_test --regen
// then review the golden diff like any other code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/naive_scan.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/text_model.h"
#include "datagen/tweet_generator.h"

namespace tklus {

// Set by main() on --regen; namespace-scope (not anonymous) so the custom
// main below can reach it.
bool g_regen = false;

namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

constexpr uint64_t kWorldSeed = 6021023;
constexpr int kNumQueries = 50;
constexpr double kAlphaGrid[] = {0.3, 0.5, 0.8};

std::string GoldenPath() {
  return std::string(TKLUS_GOLDEN_DIR) + "/topk_corpus.golden";
}

// The fixed corpus behind every golden line. Built once per process.
const GeneratedCorpus& World() {
  static const GeneratedCorpus* corpus = [] {
    TweetGenerator::Options gen;
    gen.seed = kWorldSeed;
    gen.num_users = 220;
    gen.num_tweets = 5000;
    gen.num_cities = 4;
    gen.untagged_frac = 0.1;
    return new GeneratedCorpus(TweetGenerator::Generate(gen));
  }();
  return *corpus;
}

// The fixed query batch: deterministic in kWorldSeed, independent of the
// evaluation order. Temporal recency decay is included; its weights feed
// the same Def. 10 mix, so it belongs under the golden pin too.
std::vector<TkLusQuery> CorpusQueries(const Dataset& dataset) {
  std::vector<TkLusQuery> queries;
  Rng rng(kWorldSeed * 31 + 7);
  const auto& topics = datagen::TopicWords();
  const auto& modifiers = datagen::ModifierWords();
  const int64_t first_sid = dataset.posts().front().sid;
  const int64_t last_sid = dataset.posts().back().sid;
  for (int i = 0; i < kNumQueries; ++i) {
    TkLusQuery q;
    const Post& anchor = dataset.posts()[rng.UniformInt(dataset.size())];
    q.location = anchor.location;
    q.radius_km = rng.Uniform(2.0, 50.0);
    q.k = 1 + static_cast<int>(rng.UniformInt(uint64_t{15}));
    const size_t num_keywords = 1 + rng.UniformInt(uint64_t{3});
    for (size_t j = 0; j < num_keywords; ++j) {
      if (rng.Bernoulli(0.8)) {
        q.keywords.push_back(topics[rng.UniformInt(topics.size())]);
      } else {
        q.keywords.push_back(modifiers[rng.UniformInt(modifiers.size())]);
      }
    }
    q.semantics = rng.Bernoulli(0.5) ? Semantics::kAnd : Semantics::kOr;
    if (rng.Bernoulli(0.25)) {
      const int64_t a = rng.UniformInt(first_sid, last_sid);
      const int64_t b = rng.UniformInt(first_sid, last_sid);
      q.temporal.begin = std::min(a, b);
      q.temporal.end = std::max(a, b);
    }
    if (rng.Bernoulli(0.25)) {
      q.temporal.half_life = rng.Uniform(200.0, 4000.0);
      q.temporal.reference = last_sid;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

std::string FormatLine(int query_idx, Ranking ranking, double alpha,
                       const QueryResult& result) {
  char head[64];
  std::snprintf(head, sizeof(head), "q%03d rank=%s alpha=%.1f ::", query_idx,
                ranking == Ranking::kSum ? "Sum" : "Max", alpha);
  std::string line = head;
  for (const RankedUser& user : result.users) {
    char entry[64];
    std::snprintf(entry, sizeof(entry), " %lld:%.17g",
                  static_cast<long long>(user.uid), user.score);
    line += entry;
  }
  return line;
}

TEST(GoldenQueryTest, EngineMatchesOracleAndGoldens) {
  const GeneratedCorpus& corpus = World();
  auto engine = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Exact oracle equality needs pruning off (ties may reorder under the
  // pruned delta updates); pruned-vs-unpruned agreement has its own test.
  (*engine)->processor().mutable_options().enable_pruning = false;

  const std::vector<TkLusQuery> queries = CorpusQueries(corpus.dataset);

  std::vector<std::string> lines;
  lines.push_back("# tklus golden top-k corpus v1");
  lines.push_back("# world seed " + std::to_string(kWorldSeed) + ", " +
                  std::to_string(kNumQueries) +
                  " queries x {Sum,Max} x alpha grid");
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (const Ranking ranking : {Ranking::kSum, Ranking::kMax}) {
      for (const double alpha : kAlphaGrid) {
        TkLusQuery q = queries[qi];
        q.ranking = ranking;

        ScoringParams scoring;
        scoring.alpha = alpha;
        (*engine)->processor().mutable_options().scoring = scoring;
        NaiveScanner::Options oracle_options;
        oracle_options.scoring = scoring;
        const NaiveScanner oracle(&corpus.dataset, oracle_options);

        auto got = (*engine)->Query(q);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        const QueryResult want = oracle.Process(q);
        ASSERT_EQ(got->users.size(), want.users.size())
            << "query " << qi << " alpha " << alpha;
        for (size_t i = 0; i < want.users.size(); ++i) {
          ASSERT_EQ(got->users[i].uid, want.users[i].uid)
              << "query " << qi << " rank " << i << " alpha " << alpha;
          ASSERT_NEAR(got->users[i].score, want.users[i].score, 1e-9);
        }
        lines.push_back(
            FormatLine(static_cast<int>(qi), ranking, alpha, *got));
      }
    }
  }

  std::string expected_text;
  for (const std::string& line : lines) {
    expected_text += line;
    expected_text += '\n';
  }

  if (g_regen) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << GoldenPath();
    out << expected_text;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << GoldenPath() << " ("
                 << lines.size() - 2 << " corpus lines)";
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << GoldenPath()
      << "; run golden_query_test --regen and commit the result";
  std::ostringstream golden;
  golden << in.rdbuf();
  // Byte-identical: any score or ordering drift shows as a line diff.
  const std::string golden_text = golden.str();
  if (golden_text != expected_text) {
    std::istringstream got_lines(expected_text);
    std::istringstream want_lines(golden_text);
    std::string got_line, want_line;
    int line_no = 0;
    while (true) {
      const bool got_ok = static_cast<bool>(std::getline(got_lines, got_line));
      const bool want_ok =
          static_cast<bool>(std::getline(want_lines, want_line));
      ++line_no;
      if (!got_ok && !want_ok) break;
      ASSERT_EQ(got_ok, want_ok) << "golden line count changed";
      ASSERT_EQ(got_line, want_line) << "first divergence at golden line "
                                     << line_no;
    }
    FAIL() << "golden text mismatch";  // unreachable if lines all matched
  }
}

// The same corpus through the scatter-gather path: ShardedEngine(N=4)
// must reproduce the checked-in goldens byte-for-byte. This pins the
// strongest sharding claim — partition + fan-out + candidate merge +
// plane ranking is not merely "close to" but *is* the single engine's
// numeric behavior, down to tie order and the 17-digit score text.
TEST(GoldenQueryTest, ShardedEngineMatchesGoldensByteForByte) {
  const GeneratedCorpus& corpus = World();
  ShardedEngine::Options options;
  options.num_shards = 4;
  auto engine = ShardedEngine::Build(corpus.dataset, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  (*engine)->plane_processor().mutable_options().enable_pruning = false;

  const std::vector<TkLusQuery> queries = CorpusQueries(corpus.dataset);

  std::vector<std::string> lines;
  lines.push_back("# tklus golden top-k corpus v1");
  lines.push_back("# world seed " + std::to_string(kWorldSeed) + ", " +
                  std::to_string(kNumQueries) +
                  " queries x {Sum,Max} x alpha grid");
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (const Ranking ranking : {Ranking::kSum, Ranking::kMax}) {
      for (const double alpha : kAlphaGrid) {
        TkLusQuery q = queries[qi];
        q.ranking = ranking;
        ScoringParams scoring;
        scoring.alpha = alpha;
        (*engine)->plane_processor().mutable_options().scoring = scoring;
        auto got = (*engine)->Query(q);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ASSERT_FALSE(got->degraded);
        QueryResult as_result;
        as_result.users = got->users;
        lines.push_back(
            FormatLine(static_cast<int>(qi), ranking, alpha, as_result));
      }
    }
  }

  std::string expected_text;
  for (const std::string& line : lines) {
    expected_text += line;
    expected_text += '\n';
  }

  if (g_regen) {
    GTEST_SKIP() << "goldens are regenerated by the single-engine leg";
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << GoldenPath()
      << "; run golden_query_test --regen and commit the result";
  std::ostringstream golden;
  golden << in.rdbuf();
  const std::string golden_text = golden.str();
  std::istringstream got_lines(expected_text);
  std::istringstream want_lines(golden_text);
  std::string got_line, want_line;
  int line_no = 0;
  while (true) {
    const bool got_ok = static_cast<bool>(std::getline(got_lines, got_line));
    const bool want_ok =
        static_cast<bool>(std::getline(want_lines, want_line));
    ++line_no;
    if (!got_ok && !want_ok) break;
    ASSERT_EQ(got_ok, want_ok) << "golden line count changed";
    ASSERT_EQ(got_line, want_line)
        << "sharded leg diverges at golden line " << line_no;
  }
}

// Seam sanity: the differential sweep above drives TkLusQuery::trace off;
// run one corpus query traced to pin that tracing does not perturb the
// ranked output.
TEST(GoldenQueryTest, TracingDoesNotChangeResults) {
  const GeneratedCorpus& corpus = World();
  auto engine = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<TkLusQuery> queries = CorpusQueries(corpus.dataset);
  TkLusQuery plain = queries.front();
  TkLusQuery traced = plain;
  traced.trace = true;
  auto plain_result = (*engine)->Query(plain);
  auto traced_result = (*engine)->Query(traced);
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(traced_result.ok());
  ASSERT_EQ(plain_result->users.size(), traced_result->users.size());
  for (size_t i = 0; i < plain_result->users.size(); ++i) {
    EXPECT_EQ(plain_result->users[i].uid, traced_result->users[i].uid);
    EXPECT_EQ(plain_result->users[i].score, traced_result->users[i].score);
  }
  ASSERT_NE(traced_result->stats.trace, nullptr);
  EXPECT_EQ(plain_result->stats.trace, nullptr);
}

}  // namespace
}  // namespace tklus

// Custom main (instead of gtest_main) so the checked-in goldens can be
// refreshed in place with `golden_query_test --regen`.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--regen") tklus::g_regen = true;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
