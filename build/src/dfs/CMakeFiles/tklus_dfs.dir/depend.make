# Empty dependencies file for tklus_dfs.
# This may be replaced when dependencies are built.
