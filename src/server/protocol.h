#ifndef TKLUS_SERVER_PROTOCOL_H_
#define TKLUS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"

namespace tklus::server {

// Wire protocol of the request server (DESIGN.md §16): length-prefixed
// binary frames over a connected stream socket. Each frame is a 4-byte
// little-endian payload length followed by the payload; payloads are the
// little-endian fixed-width encodings below (common/serde.h primitives).
// The protocol is strictly request/response — one response frame per
// request frame, in order, so a connection can pipeline requests without
// any correlation ids.
//
// Only the query surface crosses the wire (location, radius, keywords,
// k, semantics, ranking). Tracing/explain stay server-side concerns;
// ingestion rides the engine's own durable AppendBatch path, not this
// protocol.

enum class RequestKind : uint8_t {
  kUserQuery = 1,   // top-k local users (the paper's query)
  kTweetQuery = 2,  // top-k individual tweets (extension)
};

struct WireRequest {
  RequestKind kind = RequestKind::kUserQuery;
  TkLusQuery query;
};

struct WireUser {
  int64_t uid = 0;
  double score = 0.0;
};

struct WireTweet {
  int64_t sid = 0;
  int64_t uid = 0;
  double score = 0.0;
  double distance_km = 0.0;
};

struct WireResponse {
  // StatusCode of the server-side query, as its integer value; 0 is OK.
  int32_t code = 0;
  std::string message;
  // Mirror of ShardedQueryResult::degraded: some shard was skipped.
  bool degraded = false;
  std::vector<WireUser> users;    // kUserQuery responses
  std::vector<WireTweet> tweets;  // kTweetQuery responses
  // Server-side wall time of the query alone (no socket time).
  double server_ms = 0.0;
};

std::string EncodeRequest(const WireRequest& request);
Status DecodeRequest(const std::string& payload, WireRequest* request);
std::string EncodeResponse(const WireResponse& response);
Status DecodeResponse(const std::string& payload, WireResponse* response);

// Writes one `length || payload` frame. Retries short sends; fails on
// any socket error (the connection is then unusable).
Status WriteFrame(int fd, const std::string& payload);

// Reads one frame. A clean EOF before any byte of the length prefix sets
// *eof and returns OK with an empty payload; anything else that falls
// short — truncation mid-frame, a frame above `max_frame_bytes`, socket
// errors — is an error.
Status ReadFrame(int fd, uint64_t max_frame_bytes, std::string* payload,
                 bool* eof);

// Client-side helpers (tests and the load generator; the server never
// dials). Connect to 127.0.0.1:port; returns the connected fd.
Result<int> Connect(int port);
// One blocking request/response round trip on a connected fd.
Result<WireResponse> Call(int fd, const WireRequest& request);

}  // namespace tklus::server

#endif  // TKLUS_SERVER_PROTOCOL_H_
