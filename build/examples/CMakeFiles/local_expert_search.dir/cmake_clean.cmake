file(REMOVE_RECURSE
  "CMakeFiles/local_expert_search.dir/local_expert_search.cpp.o"
  "CMakeFiles/local_expert_search.dir/local_expert_search.cpp.o.d"
  "local_expert_search"
  "local_expert_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_expert_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
