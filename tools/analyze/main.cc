// tklus_analyze — the project's domain-invariant static analyzer.
//
// Generic tooling (clang-tidy, thread-safety annotations) cannot see the
// project's own contracts: the buffer-pool pin protocol, the include-DAG
// between modules, the Status consumption discipline. This binary checks
// exactly those, over a lightweight lexical/include model of the tree.
//
// Usage:
//   tklus_analyze [--root DIR] [PATH...]   analyze (default paths: src)
//   tklus_analyze --selftest [DIR]         prove every rule fires on its
//                                          fail fixture and stays quiet on
//                                          its pass fixture
//   tklus_analyze --list-rules             print the rule catalog
//
// Exit codes: 0 clean, 1 violations/selftest failure, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze/analyzer.h"

namespace tklus::analyze {
namespace {

namespace fs = std::filesystem;

void PrintDiagnostics(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    std::printf("%s:%d: [%s] %s\n", d.path.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
}

int ListRules() {
  for (const auto& rule : BuildRuleSet()) {
    std::printf("%-18s %s\n", std::string(rule->name()).c_str(),
                std::string(rule->description()).c_str());
  }
  return 0;
}

// Runs every rule against tests/analyze_fixtures/<rule>/{pass,fail}:
// the pass mini-tree must be completely clean (any rule firing there is
// a fixture bug), and the fail mini-tree must trip the rule under test.
// A rule without fixtures fails the selftest — an unproven rule may have
// silently stopped matching, which is worse than no rule at all.
int RunSelftest(const std::string& fixtures_dir) {
  int failures = 0;
  for (const auto& rule : BuildRuleSet()) {
    const std::string name(rule->name());
    const fs::path base = fs::path(fixtures_dir) / name;
    for (const char* kind : {"pass", "fail"}) {
      const fs::path dir = base / kind;
      if (!fs::is_directory(dir)) {
        std::printf("SELFTEST %-18s missing fixture dir %s\n", name.c_str(),
                    dir.string().c_str());
        ++failures;
        continue;
      }
      AnalyzerOptions opts;
      opts.root = dir.string();
      opts.paths = {"."};
      Result<std::vector<Diagnostic>> diags = RunAnalysis(opts);
      if (!diags.ok()) {
        std::printf("SELFTEST %-18s %s: %s\n", name.c_str(), kind,
                    diags.status().ToString().c_str());
        ++failures;
        continue;
      }
      if (std::strcmp(kind, "pass") == 0) {
        if (!diags->empty()) {
          std::printf("SELFTEST %-18s pass fixture is not clean:\n",
                      name.c_str());
          PrintDiagnostics(*diags);
          ++failures;
        }
        continue;
      }
      bool fired = false;
      for (const Diagnostic& d : *diags) {
        if (d.rule == name) fired = true;
      }
      if (!fired) {
        std::printf("SELFTEST %-18s did not fire on its fail fixture\n",
                    name.c_str());
        ++failures;
      }
    }
  }
  if (failures > 0) {
    std::printf("selftest: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("selftest OK (every rule fires on its fail fixture and is "
              "quiet on its pass fixture)\n");
  return 0;
}

int Main(int argc, char** argv) {
  AnalyzerOptions opts;
  bool selftest = false;
  std::string fixtures_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      opts.manifest = argv[++i];
    } else if (arg == "--selftest") {
      selftest = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') fixtures_dir = argv[++i];
    } else if (arg == "--list-rules") {
      return ListRules();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: tklus_analyze [--root DIR] "
                   "[--manifest FILE] [--selftest [DIR]] [--list-rules] "
                   "[PATH...]\n",
                   arg.c_str());
      return 2;
    } else {
      opts.paths.push_back(arg);
    }
  }

  if (selftest) {
    if (fixtures_dir.empty()) {
      fixtures_dir =
          (fs::path(opts.root) / "tests" / "analyze_fixtures").string();
    }
    return RunSelftest(fixtures_dir);
  }

  Result<std::vector<Diagnostic>> diags = RunAnalysis(opts);
  if (!diags.ok()) {
    std::fprintf(stderr, "tklus_analyze: %s\n",
                 diags.status().ToString().c_str());
    return 2;
  }
  if (!diags->empty()) {
    PrintDiagnostics(*diags);
    std::printf("tklus_analyze: %zu violation(s)\n", diags->size());
    return 1;
  }
  std::printf("tklus_analyze OK\n");
  return 0;
}

}  // namespace
}  // namespace tklus::analyze

int main(int argc, char** argv) { return tklus::analyze::Main(argc, argv); }
