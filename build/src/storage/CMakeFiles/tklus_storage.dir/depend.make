# Empty dependencies file for tklus_storage.
# This may be replaced when dependencies are built.
