#ifndef TKLUS_TOOLS_ANALYZE_CALLGRAPH_H_
#define TKLUS_TOOLS_ANALYZE_CALLGRAPH_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analyze/source_model.h"
#include "analyze/summaries.h"

namespace tklus::analyze {

// One resolved call-graph edge, recorded on the caller.
struct CallEdge {
  int callee;  // index into ProgramModel::functions
  int line;    // call-site line in the caller's file
  std::vector<std::string> held;  // lock members held at the site, in
                                  // acquisition order (deduped)
};

// One function body somewhere in the program, with the interprocedural
// state the rules read: merged thread-safety annotations, resolved
// callee edges, the acquire summary and the hot-path mark.
struct ProgramFunction {
  std::string path;        // file the body lives in
  int fn_index;            // index into that SourceFile's `functions`
  std::string class_name;  // "" for free functions
  std::string last_name;   // final name component
  std::string qualified;   // "Class::Method" or the bare name
  int line;
  bool is_ctor_or_dtor = false;
  // Merged from every TKLUS_REQUIRES(_SHARED) / NO_THREAD_SAFETY
  // annotation on this (class, method) across all scanned files, so a
  // header declaration annotates the out-of-line definition.
  std::set<std::string> requires_locks;
  bool no_thread_safety = false;
  std::vector<CallEdge> callees;
  FunctionSummary summary;
  // Locks provably held whenever this function is entered (greatest
  // fixpoint over same-class callers; see ComputeSummaries). When
  // `entry_held_universal` is true nothing is known — every same-class
  // caller is itself unconstrained — and guard-discipline treats the
  // entry set as "everything" rather than guess.
  std::set<std::string> entry_held;
  bool entry_held_universal = false;
  bool hot = false;
  std::vector<std::string> hot_path;  // witness: root ... this function
};

// The cross-TU program model: every function body in the scanned files,
// name indexes, GUARDED_BY field annotations merged by (class, field),
// and the resolved call graph. Built once per analysis run (the one
// sequential pass between the parallel lex/model and rule phases) and
// read-only afterwards, so the rule workers share it freely.
struct ProgramModel {
  std::vector<ProgramFunction> functions;
  // path -> function ids, positionally matching SourceFile::functions.
  std::map<std::string, std::vector<int>> by_file;
  std::map<std::string, std::vector<int>> by_qualified;
  std::map<std::string, std::vector<int>> by_name;  // by last component
  std::map<std::pair<std::string, std::string>, FieldGuard> field_guards;

  // Builds functions, indexes, annotations and edges from the per-file
  // models. `files` must outlive nothing — the model copies what it
  // keeps.
  void Build(const std::vector<SourceFile>& files);

  // Id of `file.functions[fn_index]`, or -1 if unknown.
  int IdOf(std::string_view path, size_t fn_index) const;

  // The GUARDED_BY annotation for (class, field), or nullptr.
  const FieldGuard* FindFieldGuard(const std::string& class_name,
                                   const std::string& field) const;

  // Conservative, collision-safe call resolution (see DESIGN.md §14):
  // unqualified/this-> calls prefer the caller's class, then a unique
  // same-file match, then a unique program-wide name; `Class::f` goes
  // through the qualifier; receiver calls (`x.f` / `p->f`) resolve only
  // when the name is program-unique. Returns -1 when ambiguous or
  // unknown — a missing edge can only make the interprocedural rules
  // quieter, never wrong.
  int Resolve(const ProgramFunction& caller, const CallSite& call) const;

  // Strongly connected components of the call graph in bottom-up order
  // (every edge out of a component lands in an earlier-listed one) —
  // the order ComputeSummaries folds callee summaries in.
  std::vector<std::vector<int>> SccOrder() const;
};

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_CALLGRAPH_H_
