#include <gtest/gtest.h>

#include <memory>

#include "baseline/naive_scan.h"
#include "core/engine.h"
#include "core/kendall.h"
#include "datagen/query_workload.h"
#include "datagen/tweet_generator.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

// Shared fixture: one generated corpus, one engine, one oracle. Building
// the engine is the expensive part, so it is done once per suite.
class EngineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TweetGenerator::Options opts;
    opts.num_users = 400;
    opts.num_tweets = 12000;
    opts.num_cities = 6;
    opts.experts_per_city = 6;
    corpus_ = new GeneratedCorpus(TweetGenerator::Generate(opts));
    auto engine = TkLusEngine::Build(corpus_->dataset);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = engine->release();
    scanner_ = new NaiveScanner(&corpus_->dataset);
  }
  static void TearDownTestSuite() {
    delete scanner_;
    delete engine_;
    delete corpus_;
    scanner_ = nullptr;
    engine_ = nullptr;
    corpus_ = nullptr;
  }

  static TkLusQuery CityQuery(int city, double radius_km,
                              std::vector<std::string> keywords,
                              Ranking ranking = Ranking::kSum,
                              Semantics semantics = Semantics::kOr) {
    TkLusQuery q;
    q.location = corpus_->city_centers[city];
    q.radius_km = radius_km;
    q.keywords = std::move(keywords);
    q.k = 10;
    q.ranking = ranking;
    q.semantics = semantics;
    return q;
  }

  static void ExpectSameRanking(const QueryResult& got,
                                const QueryResult& want) {
    ASSERT_EQ(got.users.size(), want.users.size());
    for (size_t i = 0; i < got.users.size(); ++i) {
      EXPECT_EQ(got.users[i].uid, want.users[i].uid) << "rank " << i;
      EXPECT_NEAR(got.users[i].score, want.users[i].score, 1e-9)
          << "rank " << i;
    }
  }

  static GeneratedCorpus* corpus_;
  static TkLusEngine* engine_;
  static NaiveScanner* scanner_;
};

GeneratedCorpus* EngineIntegrationTest::corpus_ = nullptr;
TkLusEngine* EngineIntegrationTest::engine_ = nullptr;
NaiveScanner* EngineIntegrationTest::scanner_ = nullptr;

TEST_F(EngineIntegrationTest, SumRankingMatchesOracleSingleKeyword) {
  for (const char* keyword : {"hotel", "pizza", "restaurant", "coffee"}) {
    for (const double radius : {5.0, 10.0, 20.0}) {
      const TkLusQuery q = CityQuery(0, radius, {keyword});
      Result<QueryResult> got = engine_->Query(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const QueryResult want = scanner_->Process(q);
      ExpectSameRanking(*got, want);
    }
  }
}

TEST_F(EngineIntegrationTest, SumRankingMatchesOracleMultiKeyword) {
  for (const Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    for (const auto& keywords :
         std::vector<std::vector<std::string>>{
             {"restaurant", "seafood"},
             {"mexican", "restaurant", "houston"},
             {"hotel", "luxury"}}) {
      const TkLusQuery q =
          CityQuery(1, 15.0, keywords, Ranking::kSum, sem);
      Result<QueryResult> got = engine_->Query(q);
      ASSERT_TRUE(got.ok());
      const QueryResult want = scanner_->Process(q);
      ExpectSameRanking(*got, want);
    }
  }
}

TEST_F(EngineIntegrationTest, UnprunedMaxRankingMatchesOracle) {
  engine_->processor().mutable_options().enable_pruning = false;
  for (const char* keyword : {"hotel", "game", "cafe"}) {
    const TkLusQuery q = CityQuery(2, 12.0, {keyword}, Ranking::kMax);
    Result<QueryResult> got = engine_->Query(q);
    ASSERT_TRUE(got.ok());
    const QueryResult want = scanner_->Process(q);
    ExpectSameRanking(*got, want);
  }
  engine_->processor().mutable_options().enable_pruning = true;
}

TEST_F(EngineIntegrationTest, PrunedMaxAgreesWithUnprunedMax) {
  // The Alg. 5 bound is admissible (our bounds are exact maxima), so
  // pruning must not change the returned rankings.
  for (const char* keyword : {"hotel", "restaurant", "shop"}) {
    for (const double radius : {10.0, 30.0}) {
      TkLusQuery q = CityQuery(0, radius, {keyword}, Ranking::kMax);
      engine_->processor().mutable_options().enable_pruning = false;
      Result<QueryResult> unpruned = engine_->Query(q);
      ASSERT_TRUE(unpruned.ok());
      engine_->processor().mutable_options().enable_pruning = true;
      Result<QueryResult> pruned = engine_->Query(q);
      ASSERT_TRUE(pruned.ok());
      const double tau = KendallTauVariant(pruned->UserIds(),
                                           unpruned->UserIds());
      EXPECT_GT(tau, 0.99) << keyword << " r=" << radius;
    }
  }
}

// A corpus engineered so Alg. 5's pruning provably fires: three "strong"
// cafe users at the query point with tf=2 tweets and phi=2 threads
// (score .545), fifty "weak" singleton cafe tweets whose hot-keyword
// optimistic bound is .525 < .545, and one giant off-topic hotel thread
// (phi=40) that inflates the *global* bound to 1.0 so pruning only works
// through the hot-keyword bound (§VI-B5).
Dataset PruningCorpus() {
  Dataset ds;
  const auto add = [&ds](TweetId sid, UserId uid, double lat, double lon,
                         const std::string& text, TweetId rsid = kNoId,
                         UserId ruid = kNoId) {
    Post p;
    p.sid = sid;
    p.uid = uid;
    p.location = GeoPoint{lat, lon};
    p.text = text;
    p.rsid = rsid;
    p.ruid = ruid;
    ds.Add(std::move(p));
  };
  TweetId sid = 1000;
  // Strong users 1..3 at the query point.
  for (UserId u = 1; u <= 3; ++u) {
    const TweetId root = sid;
    add(sid++, u, 10.0, 10.0, "cafe cafe");
    for (int r = 0; r < 4; ++r) {
      add(sid++, 100 + 10 * u + r, 10.0, 10.0, "love it", root, u);
    }
  }
  // Weak users 11..60 at ~5 km.
  for (UserId u = 11; u <= 60; ++u) {
    add(sid++, u, 10.045, 10.0, "nice cafe");
  }
  // Giant hotel thread far away: global bound becomes 40.
  const TweetId hotel_root = sid;
  add(sid++, 999, 40.0, -70.0, "grand hotel");
  for (int r = 0; r < 80; ++r) {
    add(sid++, 2000 + r, 40.0, -70.0, "wow", hotel_root, 999);
  }
  return ds;
}

TEST(PruningTest, HotBoundPrunesWeakSingletons) {
  auto engine = TkLusEngine::Build(PruningCorpus());
  ASSERT_TRUE(engine.ok());
  TkLusQuery q;
  q.location = GeoPoint{10.0, 10.0};
  q.radius_km = 10.0;
  q.keywords = {"cafe"};
  q.k = 2;
  q.ranking = Ranking::kMax;

  auto& opts = (*engine)->processor().mutable_options();

  // Hot-keyword bound (.525 for weak tf=1 tweets) < the running 2nd-best
  // score (.545): all 50 weak threads are pruned.
  opts.enable_pruning = true;
  opts.use_hot_bounds = true;
  Result<QueryResult> hot = (*engine)->Query(q);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->stats.threads_pruned, 50u);
  EXPECT_EQ(hot->stats.threads_built, 3u);

  // The global bound is inflated by the off-topic hotel thread: nothing
  // can be pruned (the Fig. 12 baseline). All 53 candidates are evaluated;
  // the 3 strong threads built by the first query come from the engine's
  // popularity cache, the 50 previously-pruned ones are built fresh.
  opts.use_hot_bounds = false;
  Result<QueryResult> global_only = (*engine)->Query(q);
  ASSERT_TRUE(global_only.ok());
  EXPECT_EQ(global_only->stats.threads_pruned, 0u);
  EXPECT_EQ(global_only->stats.threads_built +
                global_only->stats.popularity_cache_hits,
            53u);
  EXPECT_EQ(global_only->stats.popularity_cache_hits, 3u);
  EXPECT_EQ(global_only->stats.threads_built, 50u);

  // Pruning must not change the answer: compare against no pruning.
  opts.enable_pruning = false;
  Result<QueryResult> exact = (*engine)->Query(q);
  ASSERT_TRUE(exact.ok());
  opts.enable_pruning = true;
  opts.use_hot_bounds = true;
  ASSERT_EQ(hot->users.size(), exact->users.size());
  for (size_t i = 0; i < exact->users.size(); ++i) {
    EXPECT_EQ(hot->users[i].uid, exact->users[i].uid);
    EXPECT_NEAR(hot->users[i].score, exact->users[i].score, 1e-9);
  }
  // Pruned thread construction saves metadata-DB I/O.
  EXPECT_LE(hot->stats.db_page_reads, global_only->stats.db_page_reads);
}

TEST_F(EngineIntegrationTest, SumVsMaxKendallTauHigh) {
  // §VI-B3 reports tau >= 0.863 for single-keyword queries.
  double min_tau = 1.0;
  for (const char* keyword : {"hotel", "pizza", "cafe", "game", "shop"}) {
    TkLusQuery q = CityQuery(0, 15.0, {keyword}, Ranking::kSum);
    Result<QueryResult> sum_result = engine_->Query(q);
    ASSERT_TRUE(sum_result.ok());
    q.ranking = Ranking::kMax;
    Result<QueryResult> max_result = engine_->Query(q);
    ASSERT_TRUE(max_result.ok());
    min_tau = std::min(min_tau, KendallTauVariant(sum_result->UserIds(),
                                                  max_result->UserIds()));
  }
  // The paper reports tau >= 0.863 on its corpus; our synthetic corpus has
  // proportionally more multi-thread users (planted experts), so the
  // rankings diverge more. Positive correlation must still hold; the Fig. 9
  // bench reports the full curve.
  EXPECT_GT(min_tau, 0.25);
}

TEST_F(EngineIntegrationTest, AndSubsetOfOrCandidates) {
  TkLusQuery q =
      CityQuery(1, 20.0, {"restaurant", "italian"}, Ranking::kSum,
                Semantics::kOr);
  Result<QueryResult> or_result = engine_->Query(q);
  ASSERT_TRUE(or_result.ok());
  q.semantics = Semantics::kAnd;
  Result<QueryResult> and_result = engine_->Query(q);
  ASSERT_TRUE(and_result.ok());
  EXPECT_LE(and_result->stats.candidates, or_result->stats.candidates);
}

TEST_F(EngineIntegrationTest, InvalidQueriesRejected) {
  TkLusQuery q = CityQuery(0, 10.0, {"hotel"});
  q.k = 0;
  EXPECT_FALSE(engine_->Query(q).ok());
  q = CityQuery(0, -5.0, {"hotel"});
  EXPECT_FALSE(engine_->Query(q).ok());
}

TEST_F(EngineIntegrationTest, StopwordOnlyKeywordsEmptyResult) {
  const TkLusQuery q = CityQuery(0, 10.0, {"the", "and"});
  Result<QueryResult> result = engine_->Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->users.empty());
}

TEST_F(EngineIntegrationTest, QueryStatsAreCoherent) {
  const TkLusQuery q = CityQuery(0, 15.0, {"hotel"});
  Result<QueryResult> result = engine_->Query(q);
  ASSERT_TRUE(result.ok());
  const QueryStats& stats = result->stats;
  EXPECT_GT(stats.cover_cells, 0u);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_LE(stats.within_radius, stats.candidates);
  EXPECT_LE(stats.threads_built + stats.threads_pruned,
            stats.within_radius);
  EXPECT_GT(stats.dfs_block_reads, 0u);
  EXPECT_GE(stats.elapsed_ms, 0.0);
}

TEST_F(EngineIntegrationTest, ResultsOrderedByScore) {
  const TkLusQuery q = CityQuery(0, 20.0, {"restaurant"});
  Result<QueryResult> result = engine_->Query(q);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->users.size(), 1u);
  for (size_t i = 1; i < result->users.size(); ++i) {
    EXPECT_GE(result->users[i - 1].score, result->users[i].score);
  }
  EXPECT_LE(result->users.size(), 10u);
}

TEST_F(EngineIntegrationTest, VocabularyTopTermsExposed) {
  const auto top = engine_->vocabulary().TopTerms(10);
  ASSERT_EQ(top.size(), 10u);
  EXPECT_GT(top[0].second, top[9].second);
}

TEST_F(EngineIntegrationTest, KLimitsResultSize) {
  TkLusQuery q = CityQuery(0, 20.0, {"restaurant"});
  q.k = 3;
  Result<QueryResult> result = engine_->Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->users.size(), 3u);
}

// ---- The paper's running example end-to-end through the engine.

TEST(PaperExampleTest, Figure1Table1ThroughEngine) {
  Dataset ds;
  const auto add = [&ds](TweetId sid, UserId uid, double lat, double lon,
                         const std::string& text, TweetId rsid = kNoId,
                         UserId ruid = kNoId) {
    Post p;
    p.sid = sid;
    p.uid = uid;
    p.location = GeoPoint{lat, lon};
    p.text = text;
    p.rsid = rsid;
    p.ruid = ruid;
    ds.Add(std::move(p));
  };
  // Thread sizes calibrated as in NaiveScannerTest.PaperTableIExample:
  // sum favors u1 (.556 vs .544), max favors u5 (.544 vs .525).
  const GeoPoint q_loc{43.6839128037, -79.37356590};
  add(101, 1, 43.69290, -79.37356590,
      "I'm at Toronto Marriott Bloor Yorkville Hotel");
  add(102, 2, 43.662, -79.380, "Finally Toronto (at Clarion Hotel).");
  add(103, 3, 43.672, -79.389, "I'm at Four Seasons Hotel Toronto.");
  add(104, 4, 43.672, -79.390,
      "Veal, lemon ricotta gnocchi @ Four Seasons Hotel Toronto.");
  add(105, 5, 43.70189, -79.37356590,
      "And that was the best massage I've ever had. (@ The Spa at Four "
      "Seasons Hotel Toronto)");
  add(106, 6, 43.672, -79.388,
      "Saturday night steez #fashion #style #toronto @ Four Seasons Hotel "
      "Toronto.");
  add(107, 1, 43.69290, -79.37356590,
      "Marriott Bloor Yorkville Hotel is a perfect place to stay.");
  TweetId sid = 200;
  UserId replier = 50;
  for (int i = 0; i < 5; ++i) {
    add(sid++, replier++, 43.68, -79.37, "so cool", 101, 1);
  }
  for (int i = 0; i < 12; ++i) {
    add(sid++, replier++, 43.68, -79.37, "so true", 107, 1);
  }
  for (int i = 0; i < 23; ++i) {
    add(sid++, replier++, 43.68, -79.37, "wonderful", 105, 5);
  }

  auto engine = TkLusEngine::Build(ds);
  ASSERT_TRUE(engine.ok());

  TkLusQuery query;
  query.location = q_loc;
  query.radius_km = 10.0;
  query.keywords = {"hotel"};
  query.k = 1;

  query.ranking = Ranking::kSum;
  Result<QueryResult> sum_result = (*engine)->Query(query);
  ASSERT_TRUE(sum_result.ok());
  ASSERT_EQ(sum_result->users.size(), 1u);
  EXPECT_EQ(sum_result->users[0].uid, 1);

  query.ranking = Ranking::kMax;
  Result<QueryResult> max_result = (*engine)->Query(query);
  ASSERT_TRUE(max_result.ok());
  ASSERT_EQ(max_result->users.size(), 1u);
  EXPECT_EQ(max_result->users[0].uid, 5);
}

}  // namespace
}  // namespace tklus
