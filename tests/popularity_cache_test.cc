// Correctness of the engine-owned φ(p) memo: unit behavior of the cache
// itself (epochs, parameter matching, capacity), and — more importantly —
// that caching is *invisible* at the query level: cached and uncached
// engines return identical rankings, and AppendBatch invalidation makes
// post-append φ values flow through immediately.
#include "social/popularity_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "model/dataset.h"

namespace tklus {
namespace {

// ------------------------------------------------------------- unit

TEST(PopularityCacheTest, MissThenHit) {
  PopularityCache cache(PopularityCache::Options{64, 4});
  EXPECT_FALSE(cache.Get(100, 6, 0.5).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.Put(100, 6, 0.5, cache.generation(), 3.25);
  const std::optional<double> got = cache.Get(100, 6, 0.5);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(*got, 3.25);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PopularityCacheTest, ParameterMismatchMisses) {
  PopularityCache cache(PopularityCache::Options{64, 4});
  cache.Put(100, 6, 0.5, cache.generation(), 3.25);
  // φ depends on (root_sid, depth, epsilon): a different depth or epsilon
  // is a different value and must not be served.
  EXPECT_FALSE(cache.Get(100, 5, 0.5).has_value());
  EXPECT_FALSE(cache.Get(100, 6, 0.25).has_value());
  EXPECT_TRUE(cache.Get(100, 6, 0.5).has_value());
}

TEST(PopularityCacheTest, InvalidateStartsNewEpoch) {
  PopularityCache cache(PopularityCache::Options{64, 4});
  cache.Put(100, 6, 0.5, cache.generation(), 3.25);
  ASSERT_TRUE(cache.Get(100, 6, 0.5).has_value());
  cache.Invalidate();
  // Stale entry misses and is lazily reclaimed on sight.
  EXPECT_FALSE(cache.Get(100, 6, 0.5).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // Fresh-epoch install works again.
  cache.Put(100, 6, 0.5, cache.generation(), 4.0);
  const std::optional<double> got = cache.Get(100, 6, 0.5);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(*got, 4.0);
}

TEST(PopularityCacheTest, StaleGenerationPutIsDropped) {
  PopularityCache cache(PopularityCache::Options{64, 4});
  const uint64_t before = cache.generation();
  cache.Invalidate();
  // A φ computed against pre-append state must never be installed.
  cache.Put(100, 6, 0.5, before, 3.25);
  EXPECT_FALSE(cache.Get(100, 6, 0.5).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PopularityCacheTest, CapacityBoundsResidency) {
  PopularityCache cache(PopularityCache::Options{32, 4});
  for (int64_t sid = 0; sid < 1000; ++sid) {
    cache.Put(sid, 6, 0.5, cache.generation(), 1.0);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);
}

TEST(PopularityCacheTest, DegenerateOptionsClamped) {
  // shards=0 / capacity=0 must not divide by zero or cache nothing forever.
  PopularityCache cache(PopularityCache::Options{0, 0});
  cache.Put(7, 6, 0.5, cache.generation(), 2.0);
  EXPECT_TRUE(cache.Get(7, 6, 0.5).has_value());
}

// ------------------------------------------------------------ engine

// A corpus with reply threads whose φ matters to the ranking: users at
// the query point with threads of different sizes.
Dataset ThreadedCorpus(int extra_replies_per_root = 0) {
  Dataset ds;
  auto add = [&ds](TweetId sid, UserId uid, double lat, double lon,
                   const std::string& text, TweetId rsid = kNoId,
                   UserId ruid = kNoId) {
    Post p;
    p.sid = sid;
    p.uid = uid;
    p.location = GeoPoint{lat, lon};
    p.text = text;
    p.rsid = rsid;
    p.ruid = ruid;
    ds.Add(std::move(p));
  };
  TweetId sid = 1000;
  for (UserId u = 1; u <= 6; ++u) {
    const TweetId root = sid;
    add(sid++, u, 10.0 + 0.001 * u, 10.0, "cafe brunch");
    const int replies = static_cast<int>(u) + extra_replies_per_root;
    for (int r = 0; r < replies; ++r) {
      add(sid++, 200 + 10 * u + r, 10.0, 10.0, "looks great", root, u);
    }
  }
  return ds;
}

// Root sids of the *base* ThreadedCorpus() (user u's root precedes its u
// replies).
std::vector<TweetId> BaseRootSids() {
  std::vector<TweetId> roots;
  TweetId sid = 1000;
  for (UserId u = 1; u <= 6; ++u) {
    roots.push_back(sid);
    sid += 1 + u;
  }
  return roots;
}

TkLusQuery CafeQuery() {
  TkLusQuery q;
  q.location = GeoPoint{10.0, 10.0};
  q.radius_km = 10.0;
  q.keywords = {"cafe"};
  q.k = 4;
  return q;
}

TEST(PopularityCacheEngineTest, CachedEqualsUncached) {
  TkLusEngine::Options cached_opts;
  TkLusEngine::Options uncached_opts;
  uncached_opts.popularity_cache_entries = 0;
  auto cached = TkLusEngine::Build(ThreadedCorpus(), cached_opts);
  auto uncached = TkLusEngine::Build(ThreadedCorpus(), uncached_opts);
  ASSERT_TRUE(cached.ok() && uncached.ok());
  for (Ranking ranking : {Ranking::kSum, Ranking::kMax}) {
    TkLusQuery q = CafeQuery();
    q.ranking = ranking;
    // Twice each: the second cached run is served from the memo.
    for (int round = 0; round < 2; ++round) {
      const auto want = (*uncached)->Query(q);
      const auto got = (*cached)->Query(q);
      ASSERT_TRUE(want.ok() && got.ok());
      ASSERT_EQ(got->users.size(), want->users.size());
      for (size_t i = 0; i < want->users.size(); ++i) {
        EXPECT_EQ(got->users[i].uid, want->users[i].uid) << "rank " << i;
        EXPECT_NEAR(got->users[i].score, want->users[i].score, 1e-12);
      }
      // Uncached engine never touches a cache.
      EXPECT_EQ(want->stats.popularity_cache_hits, 0u);
      EXPECT_EQ(want->stats.popularity_cache_misses, 0u);
    }
  }
}

TEST(PopularityCacheEngineTest, CountersMoveColdThenWarm) {
  auto engine = TkLusEngine::Build(ThreadedCorpus());
  ASSERT_TRUE(engine.ok());
  const auto cold = (*engine)->Query(CafeQuery());
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->stats.popularity_cache_hits, 0u);
  EXPECT_GT(cold->stats.popularity_cache_misses, 0u);
  EXPECT_EQ(cold->stats.popularity_cache_misses, cold->stats.threads_built);
  const auto warm = (*engine)->Query(CafeQuery());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.popularity_cache_misses, 0u);
  EXPECT_EQ(warm->stats.popularity_cache_hits,
            cold->stats.popularity_cache_misses);
  EXPECT_EQ(warm->stats.threads_built, 0u);
  // The warm pass skips every rsid-index descent thread construction
  // would have paid. On this pool-resident corpus both passes may do zero
  // *physical* reads; the ≥30% reduction claim is measured by
  // bench_query_throughput on a disk-resident corpus.
  EXPECT_LE(warm->stats.db_page_reads, cold->stats.db_page_reads);
}

TEST(PopularityCacheEngineTest, AppendBatchInvalidatesStalePhi) {
  auto engine = TkLusEngine::Build(ThreadedCorpus());
  ASSERT_TRUE(engine.ok());
  // Warm the memo with pre-append φ values.
  ASSERT_TRUE((*engine)->Query(CafeQuery()).ok());

  // Extend every thread: each root gains 3 replies, so every cached φ is
  // now stale.
  Dataset batch;
  TweetId sid = 100000;
  const std::vector<TweetId> roots = BaseRootSids();
  for (UserId u = 1; u <= 6; ++u) {
    const TweetId root = roots[u - 1];
    for (int r = 0; r < 3; ++r) {
      Post p;
      p.sid = sid++;
      p.uid = 500 + 10 * u + r;
      p.location = GeoPoint{10.0, 10.0};
      p.text = "late reply";
      p.rsid = root;
      p.ruid = u;
      batch.Add(std::move(p));
    }
  }
  ASSERT_TRUE((*engine)->AppendBatch(batch).ok());

  // Oracle: a fresh engine over the full corpus (same φ inputs, no cache
  // history). Post-append rankings must match it exactly — a stale memo
  // would keep serving the smaller pre-append φ.
  auto oracle = TkLusEngine::Build(ThreadedCorpus(3));
  ASSERT_TRUE(oracle.ok());
  const auto got = (*engine)->Query(CafeQuery());
  const auto want = (*oracle)->Query(CafeQuery());
  ASSERT_TRUE(got.ok() && want.ok());
  // Everything recomputed: the epoch bump turned the warm memo cold.
  EXPECT_EQ(got->stats.popularity_cache_hits, 0u);
  EXPECT_GT(got->stats.popularity_cache_misses, 0u);
  ASSERT_EQ(got->users.size(), want->users.size());
  for (size_t i = 0; i < want->users.size(); ++i) {
    EXPECT_EQ(got->users[i].uid, want->users[i].uid) << "rank " << i;
    EXPECT_NEAR(got->users[i].score, want->users[i].score, 1e-12);
  }
}

}  // namespace
}  // namespace tklus
