# Empty dependencies file for tklus_geo.
# This may be replaced when dependencies are built.
