#ifndef TKLUS_STORAGE_SID_STORE_H_
#define TKLUS_STORAGE_SID_STORE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "storage/metadata_db.h"

namespace tklus {

// Denormalized O(1) sid -> TweetMeta resolution table — the read-optimized
// twin of the metadata DB's sid B+-tree. BENCH_query.json localized ~90%
// of query time (and every warm db_page_read) in the sid_resolve stage,
// where each candidate posting paid a root-to-leaf descent to join
// (sid -> uid, lat, lon, ruid, rsid). Sids are dense (timestamps assigned
// sequentially by the generators and appenders), so the join collapses to
// one subtraction and an array load: entries are stored in a flat
// array-of-structs indexed by `sid - base_sid`, with a parallel validity
// byte per slot (sentinel uids are not assumed).
//
// Write-side contract: the B+-tree/MetadataDb stays the source of truth.
// The store is populated at index build and at delta-merge commit (the
// engine's exclusive-commit window), persisted as a checksummed artifact
// in the checkpoint sequence, and rebuilt wholesale from the B+-tree when
// the artifact is missing, torn, or stale — a damaged store is never
// fatal and never consulted.
//
// Concurrency: externally synchronized, exactly like DeltaIndex — Put and
// the (de)serializers run under the engine's exclusive lock; Resolve /
// ResolveBatch are const and safe for any number of concurrent readers
// between commits.
class SidStore {
 public:
  SidStore() = default;
  SidStore(SidStore&&) = default;
  SidStore& operator=(SidStore&&) = default;
  SidStore(const SidStore&) = delete;
  SidStore& operator=(const SidStore&) = delete;

  // Inserts or overwrites the row's slot. Sids far from dense only cost
  // memory (absent slots hold one entry + one validity byte); slots below
  // the current base trigger an O(n) front-shift, which never happens on
  // the engine's append-only (monotone sid) write path.
  void Put(const TweetMeta& row);

  // O(1) point lookup; nullopt when the sid has no committed row.
  std::optional<TweetMeta> Resolve(int64_t sid) const;

  // Vectorized lookup: fills metas[i] for every sids[i] present in the
  // store, leaves the rest untouched (so a delta/db overlay can fill the
  // misses), and returns the number of slots filled. metas.size() must
  // equal sids.size().
  uint64_t ResolveBatch(std::span<const int64_t> sids,
                        std::vector<std::optional<TweetMeta>>* metas) const;

  // Rows present (not slot capacity). Matches MetadataDb::row_count()
  // exactly when store and DB were committed together — the staleness
  // check Open() uses.
  uint64_t entry_count() const { return entry_count_; }
  // Resident bytes of the slot + validity arrays.
  uint64_t size_bytes() const;

  // (De)serialization of the full table (used inside the checkpoint
  // artifact). Load returns kCorruption on truncation or bad magic.
  void Save(std::ostream& out) const;
  static Result<SidStore> Load(std::istream& in);

  // Checkpoint artifact: Save framed by fileio::WriteFileAtomic (payload +
  // CRC32 footer, temp + fsync + rename); LoadFromFile verifies the footer
  // first and returns kNotFound / kCorruption like every other artifact.
  Status SaveToFile(const std::string& path,
                    FaultInjector* faults = nullptr) const;
  static Result<SidStore> LoadFromFile(const std::string& path);

  // Full rebuild from the source of truth: one heap scan over every
  // committed row. The recovery path for a missing/torn/stale artifact.
  static Result<SidStore> RebuildFromDb(MetadataDb* db);

 private:
  // Slot index of `sid`, or nullopt when outside [base_sid_, base_sid_ +
  // slots). Keeps Resolve branch-light: one subtract + one unsigned
  // compare covers both bounds.
  std::optional<size_t> SlotOf(int64_t sid) const {
    if (entries_.empty()) return std::nullopt;
    const uint64_t offset =
        static_cast<uint64_t>(sid) - static_cast<uint64_t>(base_sid_);
    if (offset >= entries_.size()) return std::nullopt;
    return static_cast<size_t>(offset);
  }

  int64_t base_sid_ = 0;            // sid of slot 0 (meaningless when empty)
  std::vector<TweetMeta> entries_;  // dense slots, base_sid_ + i
  std::vector<uint8_t> valid_;      // 1 <=> entries_[i] holds a row
  uint64_t entry_count_ = 0;        // number of valid slots
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_SID_STORE_H_
