file(REMOVE_RECURSE
  "../bench/bench_ext_extensions"
  "../bench/bench_ext_extensions.pdb"
  "CMakeFiles/bench_ext_extensions.dir/bench_ext_extensions.cpp.o"
  "CMakeFiles/bench_ext_extensions.dir/bench_ext_extensions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
