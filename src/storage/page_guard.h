#ifndef TKLUS_STORAGE_PAGE_GUARD_H_
#define TKLUS_STORAGE_PAGE_GUARD_H_

#include <utility>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace tklus {

// RAII ownership of exactly one buffer-pool pin. A PageGuard is the only
// sanctioned way to pin a page: `tklus_analyze` (rule `pin-discipline`)
// bans naked FetchPage/NewPage/UnpinPage calls everywhere in src/ except
// this header and the BufferPool implementation itself, so an early
// `TKLUS_RETURN_IF_ERROR` between a fetch and its unpin can no longer
// leak a pinned frame — the guard's destructor unpins on every exit path.
//
// Usage:
//   Result<PageGuard> page = PageGuard::Fetch(pool, page_id);
//   if (!page.ok()) return page.status();
//   page->get()->ReadAt<uint16_t>(0);   // or (*page)->ReadAt<...>(0)
//   page->MarkDirty();                  // write-back on eviction/flush
//   // destructor unpins, even on early error returns
class PageGuard {
 public:
  // Pins `page_id`, reading it from disk on a pool miss.
  static Result<PageGuard> Fetch(BufferPool* pool, PageId page_id) {
    Result<Page*> page = pool->FetchPage(page_id);
    if (!page.ok()) return page.status();
    return PageGuard(pool, *page, /*dirty=*/false);
  }

  // Allocates and pins a fresh page. New pages are born dirty (the pool
  // marks the frame), so the guard records that intent too.
  static Result<PageGuard> New(BufferPool* pool) {
    Result<Page*> page = pool->NewPage();
    if (!page.ok()) return page.status();
    return PageGuard(pool, *page, /*dirty=*/true);
  }

  // An empty guard owning nothing; useful as a move-assignment target.
  PageGuard() = default;

  ~PageGuard() { Reset(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  PageGuard(PageGuard&& o) noexcept
      : pool_(std::exchange(o.pool_, nullptr)),
        page_(std::exchange(o.page_, nullptr)),
        dirty_(std::exchange(o.dirty_, false)) {}

  // Releases the currently held pin (if any) before taking over `o`'s.
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Reset();
      pool_ = std::exchange(o.pool_, nullptr);
      page_ = std::exchange(o.page_, nullptr);
      dirty_ = std::exchange(o.dirty_, false);
    }
    return *this;
  }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  PageId page_id() const { return page_->page_id(); }
  explicit operator bool() const { return page_ != nullptr; }

  // Marks the frame for write-back when it is eventually evicted/flushed.
  void MarkDirty() { dirty_ = true; }

 private:
  PageGuard(BufferPool* pool, Page* page, bool dirty)
      : pool_(pool), page_(page), dirty_(dirty) {}

  void Reset() {
    if (pool_ != nullptr && page_ != nullptr) {
      // Best-effort unpin: the only failure modes are "page not resident"
      // and "pin count already zero", neither of which can happen while
      // this guard holds the pin, and a destructor has no error channel.
      pool_->UnpinPage(page_->page_id(), dirty_).IgnoreError();
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_PAGE_GUARD_H_
