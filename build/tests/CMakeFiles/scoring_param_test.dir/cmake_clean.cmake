file(REMOVE_RECURSE
  "CMakeFiles/scoring_param_test.dir/scoring_param_test.cc.o"
  "CMakeFiles/scoring_param_test.dir/scoring_param_test.cc.o.d"
  "scoring_param_test"
  "scoring_param_test.pdb"
  "scoring_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoring_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
