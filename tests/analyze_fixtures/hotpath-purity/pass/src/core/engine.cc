// Fixture: the same call shape as the fail tree, but both reachable
// helpers are pure — Leaf is arithmetic and ResolveMeta is an O(1)
// array probe (the sid-store shape), so nothing fires.
namespace tklus {

double Leaf(int n) { return n > 0 ? 1.0 / n : 0.0; }

double ResolveMeta(int n) { return Leaf(n) + 1.0; }

class Engine {
 public:
  double Score(int n) { return Leaf(n) + ResolveMeta(n); }
};

}  // namespace tklus
