# Empty compiler generated dependencies file for tweet_search_test.
# This may be replaced when dependencies are built.
