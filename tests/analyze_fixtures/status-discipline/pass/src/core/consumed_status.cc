// Fixture: every sanctioned consumption pattern; no rule may fire.
namespace tklus {

Status Flaky();
Result<int> Answer();

Status Propagate() {
  Status st = Flaky();
  TKLUS_RETURN_IF_ERROR(st);
  return Status::Ok();
}

Status Inspect() {
  Status st = Flaky();
  if (!st.ok()) return st;
  return Status::Ok();
}

void BestEffort() {
  Status st = Flaky();
  st.IgnoreError();
}

Result<int> Forward() {
  Result<int> answer = Answer();
  if (!answer.ok()) return answer.status();
  return *answer;
}

}  // namespace tklus
