#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"

namespace tklus {
namespace fileio {

namespace {

constexpr uint64_t kFooterMagic = 0x6b63685374756f46ULL;  // "FoutShck"
constexpr uint32_t kFooterVersion = 1;
constexpr size_t kFooterSize = 16;

void PutU32(char* out, uint32_t v) { std::memcpy(out, &v, 4); }
void PutU64(char* out, uint64_t v) { std::memcpy(out, &v, 8); }
uint32_t GetU32(const char* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
uint64_t GetU64(const char* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view payload) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  char footer[kFooterSize];
  PutU32(footer, kFooterVersion);
  PutU32(footer + 4, Crc32(payload.data(), payload.size()));
  PutU64(footer + 8, kFooterMagic);

  auto write_all = [fd](const char* data, size_t len) {
    while (len > 0) {
      const ssize_t n = ::write(fd, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      data += n;
      len -= static_cast<size_t>(n);
    }
    return true;
  };
  const bool written = write_all(payload.data(), payload.size()) &&
                       write_all(footer, kFooterSize);
  // fsync before rename: the new bytes must be durable before the name
  // points at them, or a crash could expose an empty/torn file.
  const bool synced = written && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    ::unlink(tmp.c_str());
    return Status::IoError("short write saving " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return Status::IoError("renaming " + tmp + " over " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

Result<std::string> ReadFileVerified(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("no such file: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("cannot read " + path);
  }
  if (bytes.size() < kFooterSize) {
    return Status::Corruption("missing checksum footer in " + path);
  }
  const char* footer = bytes.data() + bytes.size() - kFooterSize;
  if (GetU64(footer + 8) != kFooterMagic) {
    return Status::Corruption("bad footer magic in " + path);
  }
  if (GetU32(footer) != kFooterVersion) {
    return Status::Corruption("unsupported footer version in " + path);
  }
  const uint32_t expected = GetU32(footer + 4);
  const size_t payload_size = bytes.size() - kFooterSize;
  if (Crc32(bytes.data(), payload_size) != expected) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  bytes.resize(payload_size);
  return bytes;
}

}  // namespace fileio
}  // namespace tklus
