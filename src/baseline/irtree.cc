#include "baseline/irtree.h"

#include <algorithm>
#include <unordered_set>

#include "baseline/rtree_node.h"
#include "geo/distance.h"

namespace tklus {

IRTree::IRTree(const Dataset* dataset, Options options)
    : dataset_(dataset),
      options_(options),
      tokenizer_(options.tokenizer),
      rtree_(options.max_entries) {
  post_terms_.reserve(dataset_->size());
  for (size_t i = 0; i < dataset_->size(); ++i) {
    const Post& p = dataset_->posts()[i];
    const auto freqs = tokenizer_.TermFrequencies(p.text);
    post_terms_.emplace_back(freqs.begin(), freqs.end());
    if (p.HasLocation()) {
      rtree_.Insert(p.location, i);
    }
  }
  AnnotateSubtree(rtree_.root_.get());
}

void IRTree::AnnotateSubtree(void* node_ptr) {
  auto* node = static_cast<RTree::Node*>(node_ptr);
  node->inverted_file.clear();
  if (node->is_leaf) {
    for (size_t e = 0; e < node->entries.size(); ++e) {
      const size_t post_idx = node->entries[e].id;
      for (const auto& [term, tf] : post_terms_[post_idx]) {
        node->inverted_file[term].emplace_back(static_cast<int>(e), tf);
      }
    }
  } else {
    for (size_t c = 0; c < node->children.size(); ++c) {
      AnnotateSubtree(node->children[c].get());
      for (const auto& [term, postings] :
           node->children[c]->inverted_file) {
        auto& list = node->inverted_file[term];
        if (list.empty() || list.back().first != static_cast<int>(c)) {
          // tf at internal level: total occurrences in the subtree.
          int total = 0;
          for (const auto& [idx, tf] : postings) total += tf;
          list.emplace_back(static_cast<int>(c), total);
        }
      }
    }
  }
  inverted_entries_ += node->inverted_file.size();
}

std::vector<size_t> IRTree::RangeKeywordQuery(
    const GeoPoint& center, double radius_km,
    const std::vector<std::string>& raw_terms, Semantics semantics) const {
  std::vector<size_t> out;
  last_nodes_visited_ = 0;
  // Normalize the query keywords into the indexed term space (lowercase,
  // stemmed, stop words dropped), deduplicated.
  std::vector<std::string> terms;
  for (const std::string& keyword : raw_terms) {
    for (std::string& term : tokenizer_.Tokenize(keyword)) {
      if (std::find(terms.begin(), terms.end(), term) == terms.end()) {
        terms.push_back(std::move(term));
      }
    }
  }
  if (terms.empty()) return out;
  std::vector<const RTree::Node*> stack{rtree_.root_.get()};
  while (!stack.empty()) {
    const RTree::Node* node = stack.back();
    stack.pop_back();
    ++last_nodes_visited_;
    if (node->mbr.min_lat > node->mbr.max_lat) continue;  // empty
    if (MinDistanceKm(node->mbr, center) > radius_km) continue;

    if (node->is_leaf) {
      for (size_t e = 0; e < node->entries.size(); ++e) {
        const RTree::Entry& entry = node->entries[e];
        if (EuclideanKm(entry.point, center) > radius_km) continue;
        size_t matched = 0;
        for (const std::string& term : terms) {
          const auto it = node->inverted_file.find(term);
          if (it == node->inverted_file.end()) continue;
          for (const auto& [idx, tf] : it->second) {
            if (idx == static_cast<int>(e)) {
              ++matched;
              break;
            }
          }
        }
        const bool match = semantics == Semantics::kAnd
                               ? matched == terms.size()
                               : matched > 0;
        if (match) out.push_back(entry.id);
      }
    } else {
      // Children admissible under the keyword predicate: AND requires the
      // child subtree to contain every term, OR any term.
      std::vector<bool> admissible(node->children.size(),
                                   semantics == Semantics::kAnd);
      for (const std::string& term : terms) {
        const auto it = node->inverted_file.find(term);
        std::vector<bool> has(node->children.size(), false);
        if (it != node->inverted_file.end()) {
          for (const auto& [child_idx, tf] : it->second) {
            has[child_idx] = true;
          }
        }
        for (size_t c = 0; c < node->children.size(); ++c) {
          if (semantics == Semantics::kAnd) {
            admissible[c] = admissible[c] && has[c];
          } else {
            admissible[c] = admissible[c] || has[c];
          }
        }
      }
      for (size_t c = 0; c < node->children.size(); ++c) {
        if (admissible[c]) stack.push_back(node->children[c].get());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tklus
