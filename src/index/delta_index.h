#ifndef TKLUS_INDEX_DELTA_INDEX_H_
#define TKLUS_INDEX_DELTA_INDEX_H_

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/posting.h"
#include "model/dataset.h"
#include "model/post.h"
#include "text/tokenizer.h"

namespace tklus {

// The in-memory delta of the LSM-style write path: appended posts that the
// WAL has made durable but the background merge has not yet folded into
// the hybrid index. Queries read base ⊎ delta — the query processor merges
// FetchTermPostings output with the base index's lists (base wins on
// duplicate tids, which arise only in crash-recovery windows where a fold
// committed but the checkpoint did not), resolves metadata misses through
// FindBySid, and extends reply-thread traversal through AppendChildren.
//
// Mirrors the hybrid index's keying: posts tokenize with the same
// Tokenizer and land under the same geohash cell, so a delta posting is
// indistinguishable from a base posting to the scorer.
//
// Concurrency: externally synchronized by the engine's shared lock —
// mutators (Apply, DropThrough) run under the exclusive flavor, the const
// readers under the shared one.
class DeltaIndex {
 public:
  struct Options {
    int geohash_length = 4;
    TokenizerOptions tokenizer;
  };

  explicit DeltaIndex(Options options);

  DeltaIndex(const DeltaIndex&) = delete;
  DeltaIndex& operator=(const DeltaIndex&) = delete;

  // Absorbs one post (already durable in the WAL). Posts arrive in
  // strictly increasing sid order; re-applying a sid is a no-op (replay
  // idempotency).
  void Apply(const Post& post);

  // Drops every post with sid <= `sid` — the fold watermark — after the
  // merge committed them to the base index.
  void DropThrough(TweetId sid);

  bool empty() const { return posts_.empty(); }
  size_t post_count() const { return posts_.size(); }
  // kNoId when empty; otherwise the highest absorbed sid.
  TweetId max_sid() const;
  // Rough heap footprint, for the size gauge and merge trigger.
  size_t approx_bytes() const { return approx_bytes_; }

  // All resident posts in ascending sid order (the fold input).
  Dataset Snapshot() const;

  // Postings for `term` across `cells`, ascending tid. Same contract as
  // HybridIndex::FetchTermPostings restricted to delta-resident posts.
  std::vector<Posting> FetchTermPostings(const std::vector<std::string>& cells,
                                         const std::string& term) const;

  // The resident post with this sid, or nullptr.
  const Post* FindBySid(TweetId sid) const;

  // Appends the sids of resident replies to `rsid` (thread children the
  // metadata DB does not know about yet).
  void AppendChildren(TweetId rsid, std::vector<TweetId>* out) const;

 private:
  static std::string Key(const std::string& cell, const std::string& term);

  Options options_;
  Tokenizer tokenizer_;
  // Sorted by sid: Snapshot() and DropThrough() walk prefixes in order.
  std::map<TweetId, Post> posts_;
  // (geohash-cell '\0' term) -> postings, ascending tid.
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  // rsid -> resident reply sids, ascending.
  std::unordered_map<TweetId, std::vector<TweetId>> children_;
  size_t approx_bytes_ = 0;
};

// Base ⊎ delta postings merge: ascending-tid union of the two lists. On a
// duplicate tid the base posting wins — after a crash between a fold
// commit and its checkpoint, replay re-absorbs posts the base index
// already holds, and preferring base keeps the pair counted once with
// identical stats.
std::vector<Posting> MergeDeltaPostings(const std::vector<Posting>& base,
                                        const std::vector<Posting>& delta);

}  // namespace tklus

#endif  // TKLUS_INDEX_DELTA_INDEX_H_
