# Empty compiler generated dependencies file for bench_fig13_user_study.
# This may be replaced when dependencies are built.
