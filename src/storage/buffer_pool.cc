#include "storage/buffer_pool.h"

#include "obs/metrics.h"

namespace tklus {

namespace {

// Process-wide buffer-pool counters, aggregated across every pool (each
// engine owns one). Per-pool numbers stay available via stats().
struct PoolMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;

  static const PoolMetrics& Get() {
    static const PoolMetrics* metrics = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      auto* m = new PoolMetrics();
      m->hits = reg.GetCounter("tklus_buffer_pool_hits_total",
                               "Buffer-pool page fetches served in memory.");
      m->misses = reg.GetCounter(
          "tklus_buffer_pool_misses_total",
          "Buffer-pool fetches that required a physical page read.");
      m->evictions = reg.GetCounter("tklus_buffer_pool_evictions_total",
                                    "LRU frames evicted to make room.");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t pool_size) : disk_(disk) {
  frames_.reserve(pool_size);
  MutexLock lock(&latch_);
  free_frames_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(pool_size - 1 - i);  // pop from back -> frame 0 first
  }
}

void BufferPool::Touch(size_t frame) {
  auto it = lru_pos_.find(frame);
  if (it != lru_pos_.end()) {
    lru_.erase(it->second);
  }
  lru_.push_back(frame);
  lru_pos_[frame] = std::prev(lru_.end());
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    const size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  // Evict the least recently used unpinned frame. Pins only change under
  // the latch, so the pin_count check cannot race a concurrent FetchPage.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const size_t frame = *it;
    Page* page = frames_[frame].get();
    if (page->pin_count() > 0) continue;
    if (page->dirty_) {
      TKLUS_RETURN_IF_ERROR(disk_->WritePage(page->page_id_, page->data_));
    }
    page_table_.erase(page->page_id_);
    lru_.erase(it);
    lru_pos_.erase(frame);
    page->Reset();
    ++stats_.evictions;
    PoolMetrics::Get().evictions->Increment();
    return frame;
  }
  return Status::ResourceExhausted("all buffer pool frames are pinned");
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  MutexLock lock(&latch_);
  const auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    PoolMetrics::Get().hits->Increment();
    Page* page = frames_[it->second].get();
    page->pin_count_.fetch_add(1, std::memory_order_acq_rel);
    Touch(it->second);
    return page;
  }
  ++stats_.misses;
  PoolMetrics::Get().misses->Increment();
  Result<size_t> frame = GetVictimFrame();
  if (!frame.ok()) return frame.status();
  Page* page = frames_[*frame].get();
  Status read = disk_->ReadPage(page_id, page->data_);
  if (!read.ok()) {
    // The victim was already detached from the page table; hand the frame
    // back so a transient (injected) read fault cannot leak capacity.
    page->Reset();
    free_frames_.push_back(*frame);
    return read;
  }
  page->page_id_ = page_id;
  page->pin_count_.store(1, std::memory_order_release);
  page->dirty_ = false;
  page_table_[page_id] = *frame;
  Touch(*frame);
  return page;
}

Result<Page*> BufferPool::NewPage() {
  MutexLock lock(&latch_);
  Result<size_t> frame = GetVictimFrame();
  if (!frame.ok()) return frame.status();
  const PageId page_id = disk_->AllocatePage();
  Page* page = frames_[*frame].get();
  page->page_id_ = page_id;
  page->pin_count_.store(1, std::memory_order_release);
  page->dirty_ = true;  // must reach disk even if never written again
  page_table_[page_id] = *frame;
  Touch(*frame);
  return page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  MutexLock lock(&latch_);
  const auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of unmapped page " +
                            std::to_string(page_id));
  }
  Page* page = frames_[it->second].get();
  if (page->pin_count() <= 0) {
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(page_id));
  }
  page->pin_count_.fetch_sub(1, std::memory_order_acq_rel);
  if (dirty) page->dirty_ = true;
  return Status::Ok();
}

Status BufferPool::FlushPage(PageId page_id) {
  MutexLock lock(&latch_);
  const auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("flush of unmapped page " +
                            std::to_string(page_id));
  }
  Page* page = frames_[it->second].get();
  if (page->dirty_) {
    TKLUS_RETURN_IF_ERROR(disk_->WritePage(page->page_id_, page->data_));
    page->dirty_ = false;
  }
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  MutexLock lock(&latch_);
  for (const auto& [page_id, frame] : page_table_) {
    Page* page = frames_[frame].get();
    if (page->dirty_) {
      TKLUS_RETURN_IF_ERROR(disk_->WritePage(page->page_id_, page->data_));
      page->dirty_ = false;
    }
  }
  return Status::Ok();
}

}  // namespace tklus
