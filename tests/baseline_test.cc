#include <gtest/gtest.h>

#include <set>

#include "baseline/centralized_builder.h"
#include "baseline/irtree.h"
#include "baseline/naive_scan.h"
#include "baseline/rtree.h"
#include "common/rng.h"
#include "dfs/dfs.h"
#include "geo/distance.h"
#include "index/hybrid_index.h"
#include "model/dataset.h"

namespace tklus {
namespace {

// ----------------------------------------------------------------- rtree

TEST(RTreeTest, InsertAndRangeMatchesBruteForce) {
  RTree tree(16);
  Rng rng(4);
  std::vector<GeoPoint> points;
  for (uint64_t i = 0; i < 3000; ++i) {
    const GeoPoint p{43.7 + rng.Normal(0, 0.3), -79.4 + rng.Normal(0, 0.3)};
    points.push_back(p);
    tree.Insert(p, i);
  }
  EXPECT_EQ(tree.size(), 3000u);
  EXPECT_TRUE(tree.CheckInvariants());
  const GeoPoint q{43.7, -79.4};
  for (const double r : {0.5, 5.0, 25.0, 200.0}) {
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < points.size(); ++i) {
      if (EuclideanKm(points[i], q) <= r) expected.insert(i);
    }
    std::set<uint64_t> got;
    for (const auto& e : tree.RangeQuery(q, r)) got.insert(e.id);
    EXPECT_EQ(got, expected) << "radius " << r;
  }
}

TEST(RTreeTest, UniformPointsInvariantsHold) {
  RTree tree(8);
  Rng rng(5);
  for (uint64_t i = 0; i < 2000; ++i) {
    tree.Insert(GeoPoint{rng.Uniform(-80, 80), rng.Uniform(-170, 170)}, i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GE(tree.height(), 2);
  EXPECT_GT(tree.node_count(), 10u);
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.RangeQuery(GeoPoint{0, 0}, 1000).empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, DuplicatePoints) {
  RTree tree(4);
  for (uint64_t i = 0; i < 200; ++i) tree.Insert(GeoPoint{5, 5}, i);
  EXPECT_EQ(tree.RangeQuery(GeoPoint{5, 5}, 0.001).size(), 200u);
  EXPECT_TRUE(tree.CheckInvariants());
}

// ----------------------------------------------------------------- irtree

Post MakePost(TweetId sid, UserId uid, double lat, double lon,
              const std::string& text, TweetId rsid = kNoId,
              UserId ruid = kNoId) {
  Post p;
  p.sid = sid;
  p.uid = uid;
  p.location = GeoPoint{lat, lon};
  p.text = text;
  p.rsid = rsid;
  p.ruid = ruid;
  return p;
}

Dataset IrDataset() {
  Dataset ds;
  Rng rng(6);
  const char* texts[] = {
      "great hotel stay",     "pizza and beer",
      "hotel pizza heaven",   "coffee break",
      "morning coffee hotel", "random chatter about town",
  };
  TweetId sid = 1000;
  for (int round = 0; round < 200; ++round) {
    for (const char* text : texts) {
      const UserId uid = (sid % 50) + 1;
      ds.Add(MakePost(sid, uid, 43.7 + rng.Normal(0, 0.2),
                      -79.4 + rng.Normal(0, 0.2), text));
      ++sid;
    }
  }
  return ds;
}

TEST(IRTreeTest, KeywordRangeMatchesBruteForce) {
  const Dataset ds = IrDataset();
  const IRTree irtree(&ds);
  const Tokenizer tokenizer;
  const GeoPoint q{43.7, -79.4};
  const double r = 15.0;
  for (const Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    const std::vector<std::string> terms = {"hotel", "pizza"};
    std::set<size_t> expected;
    for (size_t i = 0; i < ds.size(); ++i) {
      if (EuclideanKm(ds.posts()[i].location, q) > r) continue;
      const auto bag = tokenizer.TermFrequencies(ds.posts()[i].text);
      const size_t matched =
          (bag.count("hotel") ? 1 : 0) + (bag.count("pizza") ? 1 : 0);
      const bool match =
          sem == Semantics::kAnd ? matched == 2 : matched > 0;
      if (match) expected.insert(i);
    }
    const auto got_vec = irtree.RangeKeywordQuery(q, r, terms, sem);
    const std::set<size_t> got(got_vec.begin(), got_vec.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(IRTreeTest, KeywordPruningSkipsSubtrees) {
  const Dataset ds = IrDataset();
  const IRTree irtree(&ds);
  const GeoPoint q{43.7, -79.4};
  // A term that exists nowhere: traversal should stop at the root.
  const auto result =
      irtree.RangeKeywordQuery(q, 50.0, {"nonexistentterm"}, Semantics::kAnd);
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(irtree.last_nodes_visited(), 1u);
}

TEST(IRTreeTest, EmptyTermsEmptyResult) {
  const Dataset ds = IrDataset();
  const IRTree irtree(&ds);
  EXPECT_TRUE(
      irtree.RangeKeywordQuery(GeoPoint{43.7, -79.4}, 50.0, {}, Semantics::kOr)
          .empty());
}

TEST(IRTreeTest, InvertedFilesPopulated) {
  const Dataset ds = IrDataset();
  const IRTree irtree(&ds);
  EXPECT_GT(irtree.inverted_entry_count(), 0u);
  EXPECT_TRUE(irtree.rtree().CheckInvariants());
  EXPECT_EQ(irtree.rtree().size(), ds.size());
}

// ------------------------------------------------------------- naive scan

TEST(NaiveScannerTest, PaperTableIExample) {
  // The running example of Fig. 1 / Table I: sum favors u1 (two tweets,
  // both close to the query), max favors u5 (tweet E has considerably
  // more replies/forwards than other tweets). Thread sizes calibrated so
  // both rankings separate cleanly under Def. 10 with alpha=0.5, N=40:
  //   A: 5 replies -> phi=2.5; G: 12 -> phi=6; E: 23 -> phi=11.5;
  //   A,G at ~1 km (delta(u1)=.9), E at ~2 km (delta(u5)=.8).
  //   sum(u1)=.556 > sum(u5)=.544;  max(u5)=.544 > max(u1)=.525.
  Dataset ds;
  const GeoPoint q{43.6839128037, -79.37356590};
  ds.Add(MakePost(101, 1, 43.69290, -79.37356590,
                  "I'm at Toronto Marriott Bloor Yorkville Hotel"));  // A
  ds.Add(MakePost(102, 2, 43.662, -79.380,
                  "Finally Toronto (at Clarion Hotel)."));  // B
  ds.Add(MakePost(103, 3, 43.672, -79.389,
                  "I'm at Four Seasons Hotel Toronto."));  // C
  ds.Add(MakePost(104, 4, 43.672, -79.390,
                  "Veal, lemon ricotta gnocchi @ Four Seasons Hotel "
                  "Toronto."));  // D
  ds.Add(MakePost(105, 5, 43.70189, -79.37356590,
                  "And that was the best massage I've ever had. (@ The Spa "
                  "at Four Seasons Hotel Toronto)"));  // E
  ds.Add(MakePost(106, 6, 43.672, -79.388,
                  "Saturday night steez #fashion #style #toronto @ Four "
                  "Seasons Hotel Toronto."));  // F
  ds.Add(MakePost(107, 1, 43.69290, -79.37356590,
                  "Marriott Bloor Yorkville Hotel is a perfect place to "
                  "stay."));  // G
  TweetId sid = 200;
  UserId replier = 50;
  for (int i = 0; i < 5; ++i) {  // A's thread
    ds.Add(MakePost(sid++, replier++, 43.68, -79.37, "so cool", 101, 1));
  }
  for (int i = 0; i < 12; ++i) {  // G's thread
    ds.Add(MakePost(sid++, replier++, 43.68, -79.37, "so true", 107, 1));
  }
  for (int i = 0; i < 23; ++i) {  // E's thread — the most popular tweet
    ds.Add(MakePost(sid++, replier++, 43.68, -79.37, "wonderful", 105, 5));
  }

  NaiveScanner scanner(&ds);
  TkLusQuery query;
  query.location = q;
  query.radius_km = 10.0;
  query.keywords = {"hotel"};
  query.k = 1;

  query.ranking = Ranking::kSum;
  const QueryResult sum_result = scanner.Process(query);
  ASSERT_EQ(sum_result.users.size(), 1u);
  EXPECT_EQ(sum_result.users[0].uid, 1);  // u1: two relevant tweets

  query.ranking = Ranking::kMax;
  const QueryResult max_result = scanner.Process(query);
  ASSERT_EQ(max_result.users.size(), 1u);
  EXPECT_EQ(max_result.users[0].uid, 5);  // u5: most popular thread
}

TEST(NaiveScannerTest, AndSemanticsFiltersMore) {
  const Dataset ds = IrDataset();
  NaiveScanner scanner(&ds);
  TkLusQuery query;
  query.location = GeoPoint{43.7, -79.4};
  query.radius_km = 30.0;
  query.keywords = {"hotel", "pizza"};
  query.k = 50;
  query.semantics = Semantics::kOr;
  const QueryResult or_result = scanner.Process(query);
  query.semantics = Semantics::kAnd;
  const QueryResult and_result = scanner.Process(query);
  EXPECT_LT(and_result.stats.candidates, or_result.stats.candidates);
  EXPECT_GT(and_result.stats.candidates, 0u);
}

TEST(NaiveScannerTest, RadiusZeroOrFarQueryEmpty) {
  const Dataset ds = IrDataset();
  NaiveScanner scanner(&ds);
  TkLusQuery query;
  query.location = GeoPoint{0.0, 0.0};  // middle of the Atlantic
  query.radius_km = 5.0;
  query.keywords = {"hotel"};
  const QueryResult result = scanner.Process(query);
  EXPECT_TRUE(result.users.empty());
}

TEST(NaiveScannerTest, IrTreeCandidatesProduceSameRanking) {
  // Feeding IR-tree candidates into the shared ranking path must equal the
  // naive end-to-end result.
  const Dataset ds = IrDataset();
  NaiveScanner scanner(&ds);
  const IRTree irtree(&ds);
  TkLusQuery query;
  query.location = GeoPoint{43.7, -79.4};
  query.radius_km = 20.0;
  query.keywords = {"coffee"};
  query.k = 10;
  const QueryResult direct = scanner.Process(query);
  const auto candidates = irtree.RangeKeywordQuery(
      query.location, query.radius_km, {"coffee"}, query.semantics);
  const QueryResult via_irtree = scanner.RankCandidates(query, candidates);
  ASSERT_EQ(direct.users.size(), via_irtree.users.size());
  for (size_t i = 0; i < direct.users.size(); ++i) {
    EXPECT_EQ(direct.users[i].uid, via_irtree.users[i].uid);
    EXPECT_NEAR(direct.users[i].score, via_irtree.users[i].score, 1e-12);
  }
}

// ------------------------------------------------------------ centralized

TEST(CentralizedBuilderTest, ProducesSameListCountAsHybrid) {
  const Dataset ds = IrDataset();
  const CentralizedBuildResult result =
      BuildCentralizedIndex(ds, 4, TokenizerOptions{});
  EXPECT_GT(result.postings_lists, 0u);
  EXPECT_GT(result.postings_entries, 0u);
  EXPECT_GT(result.encoded_bytes, 0u);
  // Cross-check against the MapReduce-built hybrid index.
  SimulatedDfs dfs;
  auto hybrid = HybridIndex::Build(ds, &dfs, HybridIndex::Options{});
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ(result.postings_lists, (*hybrid)->build_stats().postings_lists);
  EXPECT_EQ(result.postings_entries,
            (*hybrid)->build_stats().postings_entries);
  EXPECT_EQ(result.encoded_bytes, (*hybrid)->build_stats().inverted_bytes);
}

}  // namespace
}  // namespace tklus
