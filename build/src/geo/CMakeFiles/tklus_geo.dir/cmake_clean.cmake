file(REMOVE_RECURSE
  "CMakeFiles/tklus_geo.dir/circle_cover.cc.o"
  "CMakeFiles/tklus_geo.dir/circle_cover.cc.o.d"
  "CMakeFiles/tklus_geo.dir/geohash.cc.o"
  "CMakeFiles/tklus_geo.dir/geohash.cc.o.d"
  "CMakeFiles/tklus_geo.dir/quadtree.cc.o"
  "CMakeFiles/tklus_geo.dir/quadtree.cc.o.d"
  "libtklus_geo.a"
  "libtklus_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
