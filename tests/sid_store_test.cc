// SidStore unit + differential suite. The store is a denormalized copy of
// the metadata DB's committed rows, so the load-bearing property is
// equivalence: over fuzzed worlds, every sid must resolve to exactly the
// row the B+-tree returns (and to nothing where the B+-tree has nothing)
// — through build, delta-overlay reads, fold commits, checkpoint round
// trips and post-crash WAL replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/tweet_generator.h"
#include "storage/sid_store.h"

namespace tklus {
namespace {

namespace fs = std::filesystem;
using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

fs::path TempDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("tklus_sidstore_" + tag + "_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  fs::create_directories(dir);
  return dir;
}

void CopyDir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

TweetMeta Row(int64_t sid, int64_t uid, double lat = 1.0, double lon = 2.0,
              int64_t ruid = TweetMeta::kNone,
              int64_t rsid = TweetMeta::kNone) {
  return TweetMeta{sid, uid, lat, lon, ruid, rsid};
}

void ExpectRowEq(const std::optional<TweetMeta>& got,
                 const std::optional<TweetMeta>& want,
                 const std::string& context) {
  ASSERT_EQ(got.has_value(), want.has_value()) << context;
  if (!want.has_value()) return;
  EXPECT_EQ(got->sid, want->sid) << context;
  EXPECT_EQ(got->uid, want->uid) << context;
  EXPECT_EQ(got->lat, want->lat) << context;
  EXPECT_EQ(got->lon, want->lon) << context;
  EXPECT_EQ(got->ruid, want->ruid) << context;
  EXPECT_EQ(got->rsid, want->rsid) << context;
}

// ------------------------------------------------------------------ unit

TEST(SidStoreTest, EmptyStoreResolvesNothing) {
  SidStore store;
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_FALSE(store.Resolve(0).has_value());
  EXPECT_FALSE(store.Resolve(123).has_value());
  std::vector<std::optional<TweetMeta>> metas(2);
  const std::vector<int64_t> sids = {1, 2};
  EXPECT_EQ(store.ResolveBatch(sids, &metas), 0u);
  EXPECT_FALSE(metas[0].has_value());
  EXPECT_FALSE(metas[1].has_value());
}

TEST(SidStoreTest, PutResolveWithGapsAndBounds) {
  SidStore store;
  store.Put(Row(100, 7));
  store.Put(Row(105, 8));  // slots 101..104 stay invalid
  EXPECT_EQ(store.entry_count(), 2u);
  ExpectRowEq(store.Resolve(100), Row(100, 7), "sid 100");
  ExpectRowEq(store.Resolve(105), Row(105, 8), "sid 105");
  EXPECT_FALSE(store.Resolve(102).has_value());  // gap slot
  EXPECT_FALSE(store.Resolve(99).has_value());   // below base
  EXPECT_FALSE(store.Resolve(106).has_value());  // above top
  EXPECT_FALSE(store.Resolve(INT64_MIN).has_value());
  EXPECT_FALSE(store.Resolve(INT64_MAX).has_value());
}

TEST(SidStoreTest, PutOverwritesInPlace) {
  SidStore store;
  store.Put(Row(10, 1, 1.0, 1.0));
  store.Put(Row(10, 2, 3.0, 4.0, 9, 5));
  EXPECT_EQ(store.entry_count(), 1u);
  ExpectRowEq(store.Resolve(10), Row(10, 2, 3.0, 4.0, 9, 5), "overwrite");
}

TEST(SidStoreTest, PutBelowBaseShiftsTheArray) {
  SidStore store;
  store.Put(Row(50, 1));
  store.Put(Row(47, 2));  // front-shift path (rebuild scans, not appends)
  EXPECT_EQ(store.entry_count(), 2u);
  ExpectRowEq(store.Resolve(47), Row(47, 2), "shifted base");
  ExpectRowEq(store.Resolve(50), Row(50, 1), "original row");
  EXPECT_FALSE(store.Resolve(48).has_value());
  EXPECT_FALSE(store.Resolve(46).has_value());
}

TEST(SidStoreTest, ResolveBatchFillsOnlyPresentSlots) {
  SidStore store;
  store.Put(Row(20, 1));
  store.Put(Row(22, 2));
  const std::vector<int64_t> sids = {19, 20, 21, 22, 23};
  std::vector<std::optional<TweetMeta>> metas(sids.size());
  // Pre-filled slots must be overwritten only where the store has a row
  // (the delta/db overlay relies on untouched misses).
  EXPECT_EQ(store.ResolveBatch(sids, &metas), 2u);
  EXPECT_FALSE(metas[0].has_value());
  ExpectRowEq(metas[1], Row(20, 1), "batch sid 20");
  EXPECT_FALSE(metas[2].has_value());
  ExpectRowEq(metas[3], Row(22, 2), "batch sid 22");
  EXPECT_FALSE(metas[4].has_value());
}

TEST(SidStoreTest, StreamRoundTripPreservesEverything) {
  SidStore store;
  store.Put(Row(1000, 5, -43.1, 172.6, 4, 999));
  store.Put(Row(1004, 6));
  std::ostringstream out(std::ios::binary);
  store.Save(out);
  std::istringstream in(out.str(), std::ios::binary);
  Result<SidStore> loaded = SidStore::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entry_count(), 2u);
  ExpectRowEq(loaded->Resolve(1000), Row(1000, 5, -43.1, 172.6, 4, 999),
              "roundtrip 1000");
  ExpectRowEq(loaded->Resolve(1004), Row(1004, 6), "roundtrip 1004");
  EXPECT_FALSE(loaded->Resolve(1002).has_value());
}

TEST(SidStoreTest, TruncatedStreamIsCorruptionNotGarbage) {
  SidStore store;
  store.Put(Row(1, 1));
  store.Put(Row(2, 2));
  std::ostringstream out(std::ios::binary);
  store.Save(out);
  const std::string bytes = out.str();
  for (const size_t keep :
       {size_t{0}, size_t{4}, size_t{20}, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    Result<SidStore> loaded = SidStore::Load(in);
    ASSERT_FALSE(loaded.ok()) << "keep=" << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "keep=" << keep;
  }
}

TEST(SidStoreTest, FileRoundTripAndMissingFile) {
  const fs::path dir = TempDir("file");
  const std::string path = (dir / "sid_store.bin").string();
  SidStore store;
  store.Put(Row(7, 70));
  ASSERT_TRUE(store.SaveToFile(path).ok());
  Result<SidStore> loaded = SidStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRowEq(loaded->Resolve(7), Row(7, 70), "file roundtrip");
  Result<SidStore> missing =
      SidStore::LoadFromFile((dir / "absent.bin").string());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  fs::remove_all(dir);
}

// ---------------------------------------------------------- differential

GeneratedCorpus FuzzWorld(uint64_t seed, size_t tweets) {
  TweetGenerator::Options opts;
  opts.seed = seed;
  opts.num_users = 80;
  opts.num_tweets = tweets;
  opts.num_cities = 2;
  return TweetGenerator::Generate(opts);
}

// Every sid the world contains resolves identically through the store and
// the B+-tree; sids around and between them agree on absence.
void ExpectStoreMatchesDb(TkLusEngine& engine, const Dataset& posts,
                          const std::string& context) {
  const SidStore& store = engine.sid_store();
  MetadataDb& db = engine.metadata_db();
  EXPECT_EQ(store.entry_count(), db.row_count()) << context;
  int64_t min_sid = INT64_MAX, max_sid = INT64_MIN;
  for (const Post& p : posts.posts()) {
    min_sid = std::min(min_sid, p.sid);
    max_sid = std::max(max_sid, p.sid);
    Result<std::optional<TweetMeta>> want = db.SelectBySid(p.sid);
    ASSERT_TRUE(want.ok()) << context;
    ExpectRowEq(store.Resolve(p.sid), *want,
                context + " sid " + std::to_string(p.sid));
  }
  for (const int64_t absent : {min_sid - 1, max_sid + 1, max_sid + 12345}) {
    Result<std::optional<TweetMeta>> want = db.SelectBySid(absent);
    ASSERT_TRUE(want.ok()) << context;
    ExpectRowEq(store.Resolve(absent), *want,
                context + " absent sid " + std::to_string(absent));
  }
}

TEST(SidStoreDifferentialTest, MatchesMetadataDbOverFuzzedWorlds) {
  for (const uint64_t seed : {3u, 17u, 99u}) {
    GeneratedCorpus corpus = FuzzWorld(seed, 600);
    auto engine = TkLusEngine::Build(corpus.dataset);
    ASSERT_TRUE(engine.ok()) << "seed " << seed;
    ExpectStoreMatchesDb(**engine, corpus.dataset,
                         "seed " + std::to_string(seed));
  }
}

TEST(SidStoreDifferentialTest, DeltaOverlayAndFoldStayExact) {
  GeneratedCorpus corpus = FuzzWorld(7, 900);
  Dataset seed_data;
  Dataset appended;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    (i < 600 ? seed_data : appended).Add(corpus.dataset.posts()[i]);
  }
  TkLusEngine::Options opts;
  opts.delta_merge_posts = 0;  // keep the append in the delta until asked
  auto engine = TkLusEngine::Build(seed_data, opts);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AppendBatch(appended).ok());

  // Delta-resident posts are NOT in the store (it mirrors committed DB
  // rows only); queries still see them via the delta overlay, and a
  // steady-state query takes zero B+-tree fallback rows.
  ExpectStoreMatchesDb(**engine, seed_data, "pre-fold");
  for (const Post& p : appended.posts()) {
    EXPECT_FALSE((*engine)->sid_store().Resolve(p.sid).has_value())
        << "delta sid " << p.sid << " leaked into the store";
  }
  TkLusQuery q;
  q.location = corpus.city_centers[0];
  q.radius_km = 15.0;
  q.keywords = {"hotel", "restaurant"};
  q.semantics = Semantics::kOr;
  q.k = 10;
  auto before_fold = (*engine)->Query(q);
  ASSERT_TRUE(before_fold.ok());
  EXPECT_EQ(before_fold->stats.sid_store_fallback_rows, 0u);

  // Fold, then the whole world must be committed and store == DB again —
  // and the results byte-identical to an engine built from everything.
  ASSERT_TRUE((*engine)->MergeNow().ok());
  ExpectStoreMatchesDb(**engine, corpus.dataset, "post-fold");
  auto after_fold = (*engine)->Query(q);
  ASSERT_TRUE(after_fold.ok());
  EXPECT_EQ(after_fold->stats.sid_store_fallback_rows, 0u);
  auto oracle = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(oracle.ok());
  auto want = (*oracle)->Query(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(after_fold->users.size(), want->users.size());
  for (size_t i = 0; i < want->users.size(); ++i) {
    EXPECT_EQ(after_fold->users[i].uid, want->users[i].uid) << "rank " << i;
    EXPECT_NEAR(after_fold->users[i].score, want->users[i].score, 1e-9)
        << "rank " << i;
  }
}

TEST(SidStoreDifferentialTest, PostCrashReplayedStateStaysExact) {
  GeneratedCorpus corpus = FuzzWorld(23, 900);
  Dataset seed_data;
  Dataset appended;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    (i < 700 ? seed_data : appended).Add(corpus.dataset.posts()[i]);
  }
  const fs::path dir = TempDir("crash");
  const fs::path crash = TempDir("crash_image");
  {
    TkLusEngine::Options opts;
    opts.working_dir = dir.string();
    opts.delta_merge_posts = 0;
    auto engine = TkLusEngine::Build(seed_data, opts);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
    ASSERT_TRUE((*engine)->AppendBatch(appended).ok());
    CopyDir(dir, crash);  // kill: the append lives only in the WAL
  }
  auto reopened = TkLusEngine::Open(crash.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The store restored from the artifact covers the checkpointed rows;
  // replayed posts serve from the delta overlay.
  ExpectStoreMatchesDb(**reopened, seed_data, "post-crash");
  EXPECT_EQ((*reopened)->delta_index().post_count(), appended.size());
  TkLusQuery q;
  q.location = corpus.city_centers[0];
  q.radius_km = 15.0;
  q.keywords = {"hotel"};
  q.k = 10;
  auto have = (*reopened)->Query(q);
  ASSERT_TRUE(have.ok());
  EXPECT_EQ(have->stats.sid_store_fallback_rows, 0u);
  auto oracle = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(oracle.ok());
  auto want = (*oracle)->Query(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(have->users.size(), want->users.size());
  for (size_t i = 0; i < want->users.size(); ++i) {
    EXPECT_EQ(have->users[i].uid, want->users[i].uid) << "rank " << i;
    EXPECT_NEAR(have->users[i].score, want->users[i].score, 1e-9)
        << "rank " << i;
  }
  reopened->reset();
  fs::remove_all(dir);
  fs::remove_all(crash);
}

}  // namespace
}  // namespace tklus
