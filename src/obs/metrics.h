#ifndef TKLUS_OBS_METRICS_H_
#define TKLUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace tklus {

// Process-wide metrics: counters, gauges and fixed-bucket histograms,
// exposed in the Prometheus text format by MetricsRegistry::Expose().
//
// Counters are sharded per core (cache-line-padded atomics indexed by a
// hashed thread id), so the hot paths that bump them — every buffer-pool
// fetch, every DFS block read — never contend on one cache line even
// with all reader threads running. Values are eventually consistent:
// Value() sums the shards without a lock.

// A monotonically increasing counter.
class Counter {
 public:
  explicit Counter(size_t shards = 0);  // 0 -> per-core default
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  size_t ShardIndex() const;

  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

// A settable instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram over fixed, strictly increasing bucket upper bounds (an
// implicit +Inf bucket is appended). Observe is lock-free: per-bucket
// atomic counts plus a CAS loop for the running sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  // Cumulative count of observations <= bounds()[i] (Prometheus `le`
  // semantics); i == bounds().size() is the +Inf bucket == Count().
  uint64_t CumulativeCount(size_t i) const;
  uint64_t Count() const;
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // per-bound + Inf
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// The process-wide registry. Get* registers on first use and returns the
// same stable pointer ever after, so call sites cache the pointer once
// (e.g. in a constructor) and pay only the atomic bump per event.
// Re-registering a name as a different metric type is a programming
// error; the call then returns a detached dummy metric that is never
// exposed, so the caller stays safe and the mismatch is visible in
// Expose() output (the name keeps its first type).
//
// Global() is the process instance; tests construct private registries
// so their assertions see only their own traffic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help)
      TKLUS_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help)
      TKLUS_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bucket_bounds)
      TKLUS_EXCLUDES(mu_);

  // Prometheus text exposition format, families sorted by name:
  //   # HELP <name> <escaped help>
  //   # TYPE <name> counter|gauge|histogram
  //   <name> <value>            (counter/gauge)
  //   <name>_bucket{le="..."} <cumulative>   (histogram, incl. +Inf)
  //   <name>_sum / <name>_count
  std::string Expose() const TKLUS_EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    Type type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  // Sorted map: Expose() output order is deterministic.
  std::map<std::string, Family> families_ TKLUS_GUARDED_BY(mu_);
};

}  // namespace tklus

#endif  // TKLUS_OBS_METRICS_H_
