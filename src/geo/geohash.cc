#include "geo/geohash.h"

#include <cmath>

#include "geo/distance.h"

namespace tklus {
namespace geohash {
namespace {

constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

// -1 for invalid characters.
int CharIndex(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  switch (c) {
    case 'b': return 10; case 'c': return 11; case 'd': return 12;
    case 'e': return 13; case 'f': return 14; case 'g': return 15;
    case 'h': return 16; case 'j': return 17; case 'k': return 18;
    case 'm': return 19; case 'n': return 20; case 'p': return 21;
    case 'q': return 22; case 'r': return 23; case 's': return 24;
    case 't': return 25; case 'u': return 26; case 'v': return 27;
    case 'w': return 28; case 'x': return 29; case 'y': return 30;
    case 'z': return 31;
    default: return -1;
  }
}

}  // namespace

std::string Encode(const GeoPoint& p, int length) {
  std::string out;
  out.reserve(length);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  bool even = true;  // even bit positions refine longitude
  int bit = 0;
  int current = 0;
  while (static_cast<int>(out.size()) < length) {
    if (even) {
      const double mid = (lon_lo + lon_hi) / 2;
      if (p.lon >= mid) {
        current = (current << 1) | 1;
        lon_lo = mid;
      } else {
        current <<= 1;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2;
      if (p.lat >= mid) {
        current = (current << 1) | 1;
        lat_lo = mid;
      } else {
        current <<= 1;
        lat_hi = mid;
      }
    }
    even = !even;
    if (++bit == 5) {
      out.push_back(kBase32[current]);
      bit = 0;
      current = 0;
    }
  }
  return out;
}

uint64_t EncodeBits(const GeoPoint& p, int bits) {
  uint64_t out = 0;
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  bool even = true;
  for (int i = 0; i < bits; ++i) {
    if (even) {
      const double mid = (lon_lo + lon_hi) / 2;
      if (p.lon >= mid) {
        out = (out << 1) | 1;
        lon_lo = mid;
      } else {
        out <<= 1;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2;
      if (p.lat >= mid) {
        out = (out << 1) | 1;
        lat_lo = mid;
      } else {
        out <<= 1;
        lat_hi = mid;
      }
    }
    even = !even;
  }
  return out;
}

Result<BoundingBox> DecodeBox(const std::string& hash) {
  if (hash.empty()) {
    return Status::InvalidArgument("empty geohash");
  }
  BoundingBox box;
  bool even = true;
  for (char c : hash) {
    const int idx = CharIndex(c);
    if (idx < 0) {
      return Status::InvalidArgument(std::string("invalid geohash char: ") +
                                     c);
    }
    for (int b = 4; b >= 0; --b) {
      const int bit = (idx >> b) & 1;
      if (even) {
        const double mid = (box.min_lon + box.max_lon) / 2;
        if (bit) {
          box.min_lon = mid;
        } else {
          box.max_lon = mid;
        }
      } else {
        const double mid = (box.min_lat + box.max_lat) / 2;
        if (bit) {
          box.min_lat = mid;
        } else {
          box.max_lat = mid;
        }
      }
      even = !even;
    }
  }
  return box;
}

Result<GeoPoint> Decode(const std::string& hash) {
  Result<BoundingBox> box = DecodeBox(hash);
  if (!box.ok()) return box.status();
  return box->Center();
}

void CellSpanDegrees(int length, double* lat_span, double* lon_span) {
  const int bits = length * 5;
  const int lon_bits = (bits + 1) / 2;  // longitude refined first
  const int lat_bits = bits / 2;
  *lon_span = 360.0 / static_cast<double>(1ULL << lon_bits);
  *lat_span = 180.0 / static_cast<double>(1ULL << lat_bits);
}

double CellDiagonalKm(int length, double at_lat) {
  double lat_span, lon_span;
  CellSpanDegrees(length, &lat_span, &lon_span);
  const double dy = lat_span * kKmPerDegreeLat;
  const double dx =
      lon_span * kKmPerDegreeLat * std::cos(at_lat * kDegToRad);
  return std::sqrt(dx * dx + dy * dy);
}

std::vector<std::string> Neighbors(const std::string& hash) {
  std::vector<std::string> out;
  Result<BoundingBox> box = DecodeBox(hash);
  if (!box.ok()) return out;
  const GeoPoint c = box->Center();
  const double dlat = box->LatSpan();
  const double dlon = box->LonSpan();
  const int length = static_cast<int>(hash.size());
  for (int di = -1; di <= 1; ++di) {
    for (int dj = -1; dj <= 1; ++dj) {
      if (di == 0 && dj == 0) continue;
      double lat = c.lat + di * dlat;
      double lon = c.lon + dj * dlon;
      if (lat > 90.0 || lat < -90.0) continue;  // off the pole
      if (lon >= 180.0) lon -= 360.0;
      if (lon < -180.0) lon += 360.0;
      out.push_back(Encode(GeoPoint{lat, lon}, length));
    }
  }
  return out;
}

bool IsValid(const std::string& hash) {
  if (hash.empty()) return false;
  for (char c : hash) {
    if (CharIndex(c) < 0) return false;
  }
  return true;
}

}  // namespace geohash
}  // namespace tklus
