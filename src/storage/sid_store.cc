#include "storage/sid_store.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/file_io.h"
#include "common/serde.h"

namespace tklus {

namespace {

constexpr uint64_t kSidStoreMagic = 0x3153524453554c54ull;  // "TLUSDRS1"
constexpr uint32_t kSidStoreVersion = 1;

}  // namespace

void SidStore::Put(const TweetMeta& row) {
  if (entries_.empty()) {
    base_sid_ = row.sid;
    entries_.resize(1);
    valid_.resize(1, 0);
  } else if (row.sid < base_sid_) {
    // Never hit by the engine (its sids are monotone); kept correct for
    // arbitrary insertion orders (rebuild scans, tests).
    const size_t shift = static_cast<size_t>(base_sid_ - row.sid);
    entries_.insert(entries_.begin(), shift, TweetMeta{});
    valid_.insert(valid_.begin(), shift, 0);
    base_sid_ = row.sid;
  } else if (static_cast<uint64_t>(row.sid - base_sid_) >= entries_.size()) {
    const size_t need = static_cast<size_t>(row.sid - base_sid_) + 1;
    entries_.resize(need);
    valid_.resize(need, 0);
  }
  const size_t slot = static_cast<size_t>(row.sid - base_sid_);
  entry_count_ += valid_[slot] == 0 ? 1 : 0;
  entries_[slot] = row;
  valid_[slot] = 1;
}

std::optional<TweetMeta> SidStore::Resolve(int64_t sid) const {
  const std::optional<size_t> slot = SlotOf(sid);
  if (!slot.has_value() || valid_[*slot] == 0) return std::nullopt;
  return entries_[*slot];
}

uint64_t SidStore::ResolveBatch(
    std::span<const int64_t> sids,
    std::vector<std::optional<TweetMeta>>* metas) const {
  uint64_t filled = 0;
  for (size_t i = 0; i < sids.size(); ++i) {
    const std::optional<size_t> slot = SlotOf(sids[i]);
    if (!slot.has_value() || valid_[*slot] == 0) continue;
    (*metas)[i] = entries_[*slot];
    ++filled;
  }
  return filled;
}

uint64_t SidStore::size_bytes() const {
  return entries_.capacity() * sizeof(TweetMeta) + valid_.capacity();
}

void SidStore::Save(std::ostream& out) const {
  serde::WriteU64(out, kSidStoreMagic);
  serde::WriteU32(out, kSidStoreVersion);
  serde::WriteI64(out, base_sid_);
  serde::WriteU64(out, entries_.size());
  serde::WriteU64(out, entry_count_);
  out.write(reinterpret_cast<const char*>(entries_.data()),
            static_cast<std::streamsize>(entries_.size() * sizeof(TweetMeta)));
  out.write(reinterpret_cast<const char*>(valid_.data()),
            static_cast<std::streamsize>(valid_.size()));
}

Result<SidStore> SidStore::Load(std::istream& in) {
  uint64_t magic = 0;
  uint32_t version = 0;
  int64_t base_sid = 0;
  uint64_t slots = 0;
  uint64_t declared_entries = 0;
  if (!serde::ReadU64(in, &magic) || magic != kSidStoreMagic) {
    return Status::Corruption("sid store: bad magic");
  }
  if (!serde::ReadU32(in, &version) || version != kSidStoreVersion) {
    return Status::Corruption("sid store: unsupported version");
  }
  if (!serde::ReadI64(in, &base_sid) || !serde::ReadU64(in, &slots) ||
      !serde::ReadU64(in, &declared_entries)) {
    return Status::Corruption("sid store: truncated header");
  }
  SidStore store;
  store.base_sid_ = base_sid;
  store.entries_.resize(slots);
  store.valid_.resize(slots);
  in.read(reinterpret_cast<char*>(store.entries_.data()),
          static_cast<std::streamsize>(slots * sizeof(TweetMeta)));
  if (static_cast<uint64_t>(in.gcount()) != slots * sizeof(TweetMeta)) {
    return Status::Corruption("sid store: truncated entries");
  }
  in.read(reinterpret_cast<char*>(store.valid_.data()),
          static_cast<std::streamsize>(slots));
  if (static_cast<uint64_t>(in.gcount()) != slots) {
    return Status::Corruption("sid store: truncated validity map");
  }
  for (const uint8_t v : store.valid_) {
    store.entry_count_ += v != 0 ? 1 : 0;
  }
  if (store.entry_count_ != declared_entries) {
    return Status::Corruption("sid store: entry count mismatch");
  }
  return store;
}

Status SidStore::SaveToFile(const std::string& path,
                            FaultInjector* faults) const {
  std::ostringstream payload;
  Save(payload);
  return fileio::WriteFileAtomic(path, payload.str(), faults);
}

Result<SidStore> SidStore::LoadFromFile(const std::string& path) {
  Result<std::string> payload = fileio::ReadFileVerified(path);
  if (!payload.ok()) return payload.status();
  std::istringstream in(*payload);
  return Load(in);
}

Result<SidStore> SidStore::RebuildFromDb(MetadataDb* db) {
  SidStore store;
  TKLUS_RETURN_IF_ERROR(
      db->ScanRows([&store](const TweetMeta& row) { store.Put(row); }));
  return store;
}

}  // namespace tklus
