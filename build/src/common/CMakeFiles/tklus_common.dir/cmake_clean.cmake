file(REMOVE_RECURSE
  "CMakeFiles/tklus_common.dir/fault_injector.cc.o"
  "CMakeFiles/tklus_common.dir/fault_injector.cc.o.d"
  "CMakeFiles/tklus_common.dir/file_io.cc.o"
  "CMakeFiles/tklus_common.dir/file_io.cc.o.d"
  "CMakeFiles/tklus_common.dir/logging.cc.o"
  "CMakeFiles/tklus_common.dir/logging.cc.o.d"
  "CMakeFiles/tklus_common.dir/retry.cc.o"
  "CMakeFiles/tklus_common.dir/retry.cc.o.d"
  "CMakeFiles/tklus_common.dir/status.cc.o"
  "CMakeFiles/tklus_common.dir/status.cc.o.d"
  "CMakeFiles/tklus_common.dir/string_util.cc.o"
  "CMakeFiles/tklus_common.dir/string_util.cc.o.d"
  "libtklus_common.a"
  "libtklus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
