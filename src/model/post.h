#ifndef TKLUS_MODEL_POST_H_
#define TKLUS_MODEL_POST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"

namespace tklus {

using TweetId = int64_t;
using UserId = int64_t;
inline constexpr int64_t kNoId = -1;

// Provenance of a post's location field (§II-A notes the location "may be
// unavailable"; §VIII proposes exploiting place names in the text).
enum class GeoSource {
  kTagged = 0,    // device GPS geo-tag (the paper's main setting)
  kInferred = 1,  // filled in by gazetteer-based inference
  kNone = 2,      // no location; invisible to the spatial index
};

// A social media post (Definition 1): p = (uid, t, l, W). The tweet id
// `sid` doubles as the timestamp t ("sid ... is essentially the tweet
// timestamp", §IV-A), so sids are unique and time-ordered. `rsid`/`ruid`
// link a reply or forward to its parent tweet/user (kNoId for originals).
struct Post {
  TweetId sid = 0;
  UserId uid = 0;
  GeoPoint location;  // meaningless when geo_source == kNone
  std::string text;
  UserId ruid = kNoId;
  TweetId rsid = kNoId;
  bool is_forward = false;  // meaningful only when rsid != kNoId
  GeoSource geo_source = GeoSource::kTagged;

  bool IsReplyOrForward() const { return rsid != kNoId; }
  bool HasLocation() const { return geo_source != GeoSource::kNone; }
};

}  // namespace tklus

#endif  // TKLUS_MODEL_POST_H_
