#ifndef TKLUS_SERVER_SERVER_H_
#define TKLUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/lock_ranks.h"
#include "core/sharded_engine.h"
#include "obs/metrics.h"

namespace tklus::server {

// Thread-pool request server over the sharded engine (DESIGN.md §16):
// a loopback TCP listener speaking the length-prefixed protocol of
// server/protocol.h. An acceptor thread hands connected sockets to a
// fixed worker pool over a condvar queue; each worker owns one
// connection at a time and serves its requests in order (so a client
// may pipeline), then returns for the next connection.
//
// Concurrency model: workers hold NO server lock while querying — the
// queue lock guards only the fd handoff — so request concurrency is
// bounded by num_workers and the engine's own reader-writer discipline
// (queries overlap; appends serialize against them at the plane).
class RequestServer {
 public:
  struct Options {
    // 0 binds an ephemeral loopback port; read it back via port().
    int port = 0;
    int num_workers = 4;
    // Per-frame payload ceiling; oversized frames fail the connection.
    uint64_t max_frame_bytes = 1 << 20;
  };

  // Starts listening and serving immediately. The engine must outlive
  // the returned server.
  static Result<std::unique_ptr<RequestServer>> Start(ShardedEngine* engine,
                                                      Options options);
  ~RequestServer();
  RequestServer(const RequestServer&) = delete;
  RequestServer& operator=(const RequestServer&) = delete;

  // Stops accepting, sheds queued and in-flight connections (a worker
  // blocked reading an idle connection is unblocked via shutdown) and
  // joins every thread. Idempotent; also run by the destructor.
  void Stop();

  int port() const { return port_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  RequestServer() = default;

  void AcceptLoop();
  void WorkerLoop();
  // Serves one connection to EOF/error; closes the fd.
  void ServeConnection(int fd);
  // Decodes, runs and encodes one request payload.
  std::string HandleRequest(const std::string& payload);

  ShardedEngine* engine_ = nullptr;
  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;

  Mutex queue_mu_{lockrank::kServerQueueMu, "queue_mu_"};
  CondVar queue_cv_;
  std::deque<int> pending_fds_ TKLUS_GUARDED_BY(queue_mu_);
  // Connections currently owned by a worker. A worker removes its fd
  // here (still under queue_mu_) before closing it, so every fd in the
  // list is live and Stop() may shutdown() it to unblock a worker
  // parked in recv() on an idle connection.
  std::vector<int> active_fds_ TKLUS_GUARDED_BY(queue_mu_);
  bool stopping_ TKLUS_GUARDED_BY(queue_mu_) = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> requests_served_{0};
  Counter* requests_total_ = nullptr;
};

}  // namespace tklus::server

#endif  // TKLUS_SERVER_SERVER_H_
