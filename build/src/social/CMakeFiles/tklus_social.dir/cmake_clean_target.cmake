file(REMOVE_RECURSE
  "libtklus_social.a"
)
