file(REMOVE_RECURSE
  "CMakeFiles/tklus_index.dir/hybrid_index.cc.o"
  "CMakeFiles/tklus_index.dir/hybrid_index.cc.o.d"
  "CMakeFiles/tklus_index.dir/posting.cc.o"
  "CMakeFiles/tklus_index.dir/posting.cc.o.d"
  "CMakeFiles/tklus_index.dir/postings_ops.cc.o"
  "CMakeFiles/tklus_index.dir/postings_ops.cc.o.d"
  "libtklus_index.a"
  "libtklus_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
