file(REMOVE_RECURSE
  "../bench/bench_fig9_kendall_single"
  "../bench/bench_fig9_kendall_single.pdb"
  "CMakeFiles/bench_fig9_kendall_single.dir/bench_fig9_kendall_single.cpp.o"
  "CMakeFiles/bench_fig9_kendall_single.dir/bench_fig9_kendall_single.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_kendall_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
