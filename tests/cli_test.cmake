# End-to-end exercise of examples/tklus_cli: generate -> build -> query ->
# stats, checking each stage's output. Run via ctest (see
# tests/CMakeLists.txt); requires -DCLI=<path-to-tklus_cli>.
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<tklus_cli path>")
endif()

set(WORK "$ENV{TMPDIR}")
if(WORK STREQUAL "")
  set(WORK "/tmp")
endif()
string(RANDOM LENGTH 8 suffix)
set(WORK "${WORK}/tklus_cli_test_${suffix}")
file(MAKE_DIRECTORY "${WORK}")

function(run_cli expect_substr)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tklus_cli ${ARGN} failed (${rc}): ${out}${err}")
  endif()
  if(NOT out MATCHES "${expect_substr}")
    message(FATAL_ERROR
        "tklus_cli ${ARGN}: expected output matching '${expect_substr}', "
        "got: ${out}")
  endif()
endfunction()

run_cli("wrote 4000 posts"
        generate --tweets 4000 --cities 3 --seed 7 --out ${WORK}/corpus.tsv)
run_cli("engine saved to"
        build --corpus ${WORK}/corpus.tsv --out ${WORK}/engine --n-norm 8)
run_cli("rank"
        query --engine ${WORK}/engine --lat 43.6839 --lon -79.3736
        --keywords hotel --radius 10 --k 5)
run_cli("tweet"
        query --engine ${WORK}/engine --lat 43.6839 --lon -79.3736
        --keywords hotel --radius 10 --k 5 --tweets yes)
run_cli("top terms"
        stats --engine ${WORK}/engine)

# Bad usage exits non-zero.
execute_process(COMMAND ${CLI} bogus RESULT_VARIABLE rc OUTPUT_QUIET
                ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()

file(REMOVE_RECURSE "${WORK}")
