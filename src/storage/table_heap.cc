#include "storage/table_heap.h"

#include <functional>

namespace tklus {

// Page layout: u32 record_count, u32 unused, i64 next_page, then densely
// packed fixed-size records from byte 16. Pages are explicitly chained
// because heap pages interleave with index pages on a shared disk file.
namespace {
constexpr size_t kCountOff = 0;
constexpr size_t kNextOff = 8;
constexpr size_t kHeaderSize = 16;
}  // namespace

Result<TableHeap> TableHeap::Create(BufferPool* pool, size_t record_size) {
  if (record_size == 0 || record_size > kPageSize - kHeaderSize) {
    return Status::InvalidArgument("record size does not fit a page");
  }
  TableHeap heap(pool, record_size);
  Result<Page*> page = pool->NewPage();
  if (!page.ok()) return page.status();
  Page* p = *page;
  p->WriteAt<uint32_t>(kCountOff, 0);
  p->WriteAt<int64_t>(kNextOff, kInvalidPageId);
  heap.first_page_ = heap.last_page_ = p->page_id();
  TKLUS_RETURN_IF_ERROR(pool->UnpinPage(p->page_id(), /*dirty=*/true));
  return heap;
}

TableHeap TableHeap::Open(BufferPool* pool, size_t record_size,
                          PageId first_page, PageId last_page,
                          uint64_t record_count) {
  TableHeap heap(pool, record_size);
  heap.first_page_ = first_page;
  heap.last_page_ = last_page;
  heap.record_count_ = record_count;
  return heap;
}

Result<Rid> TableHeap::Insert(const char* record) {
  Result<Page*> page = pool_->FetchPage(last_page_);
  if (!page.ok()) return page.status();
  Page* p = *page;
  uint32_t count = p->ReadAt<uint32_t>(kCountOff);
  if (count >= records_per_page_) {
    Result<Page*> fresh = pool_->NewPage();
    if (!fresh.ok()) {
      pool_->UnpinPage(last_page_, false).IgnoreError();
      return fresh.status();
    }
    Page* np = *fresh;
    np->WriteAt<uint32_t>(kCountOff, 0);
    np->WriteAt<int64_t>(kNextOff, kInvalidPageId);
    p->WriteAt<int64_t>(kNextOff, np->page_id());
    TKLUS_RETURN_IF_ERROR(pool_->UnpinPage(last_page_, /*dirty=*/true));
    p = np;
    last_page_ = p->page_id();
    count = 0;
  }
  const size_t off = kHeaderSize + count * record_size_;
  std::memcpy(p->data() + off, record, record_size_);
  p->WriteAt<uint32_t>(kCountOff, count + 1);
  const Rid rid{p->page_id(), count};
  TKLUS_RETURN_IF_ERROR(pool_->UnpinPage(p->page_id(), /*dirty=*/true));
  ++record_count_;
  return rid;
}

Status TableHeap::Get(Rid rid, char* out) {
  Result<Page*> page = pool_->FetchPage(rid.page_id);
  if (!page.ok()) return page.status();
  Page* p = *page;
  const uint32_t count = p->ReadAt<uint32_t>(kCountOff);
  if (rid.slot >= count) {
    pool_->UnpinPage(rid.page_id, false).IgnoreError();
    return Status::OutOfRange("slot past end of page");
  }
  std::memcpy(out, p->data() + kHeaderSize + rid.slot * record_size_,
              record_size_);
  return pool_->UnpinPage(rid.page_id, false);
}

Status TableHeap::Scan(const std::function<void(Rid, const char*)>& fn) {
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    Result<Page*> page = pool_->FetchPage(pid);
    if (!page.ok()) return page.status();
    Page* p = *page;
    const uint32_t count = p->ReadAt<uint32_t>(kCountOff);
    for (uint32_t s = 0; s < count; ++s) {
      fn(Rid{pid, s}, p->data() + kHeaderSize + s * record_size_);
    }
    const PageId next = p->ReadAt<int64_t>(kNextOff);
    TKLUS_RETURN_IF_ERROR(pool_->UnpinPage(pid, false));
    pid = next;
  }
  return Status::Ok();
}

}  // namespace tklus
