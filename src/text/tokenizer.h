#ifndef TKLUS_TEXT_TOKENIZER_H_
#define TKLUS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/porter_stemmer.h"

namespace tklus {

// Options controlling microblog tokenization (Alg. 2, map side).
struct TokenizerOptions {
  bool lowercase = true;
  bool remove_stopwords = true;
  bool stem = true;
  // Tweets carry @mentions, #hashtags and URLs; hashtags keep their word,
  // mentions and URLs are dropped.
  bool strip_mentions = true;
  bool strip_urls = true;
  // Tokens shorter than this after processing are dropped.
  int min_token_length = 2;
};

// Splits microblog text into index terms: lowercase, strip URLs/@mentions,
// split on non-alphanumerics, drop stop words, Porter-stem.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = TokenizerOptions{})
      : options_(options) {}

  // All terms in order of appearance (duplicates preserved — the postings
  // builder counts term frequency from them).
  std::vector<std::string> Tokenize(std::string_view text) const;

  // Term -> frequency bag, the associative array H of Alg. 2.
  std::unordered_map<std::string, int> TermFrequencies(
      std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
  PorterStemmer stemmer_;
};

}  // namespace tklus

#endif  // TKLUS_TEXT_TOKENIZER_H_
