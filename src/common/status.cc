#include "common/status.h"

namespace tklus {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace tklus
