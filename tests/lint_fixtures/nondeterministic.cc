// Lint fixture: libc randomness seeded from the wall clock. The real tree
// must draw from the seeded tklus::Rng so every run replays exactly.
#include <cstdlib>
#include <ctime>

namespace fixture {

int UnseededDiceRoll() {
  srand(static_cast<unsigned>(time(nullptr)));
  return rand() % 6;
}

}  // namespace fixture
