#include "dfs/dfs.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/crc32.h"
#include "common/serde.h"
#include "obs/metrics.h"

namespace tklus {

namespace {

// Process-wide DFS counters across every SimulatedDfs instance; the
// per-node breakdown stays on node_stats().
struct DfsMetrics {
  Counter* block_reads;
  Counter* read_faults;

  static const DfsMetrics& Get() {
    static const DfsMetrics* metrics = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      auto* m = new DfsMetrics();
      m->block_reads = reg.GetCounter("tklus_dfs_block_reads_total",
                                      "DFS blocks read across all nodes.");
      m->read_faults = reg.GetCounter(
          "tklus_dfs_read_faults_total",
          "DFS reads aborted by an injected transient fault.");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

SimulatedDfs::SimulatedDfs(Options options) : options_(options) {
  if (options_.num_data_nodes < 1) options_.num_data_nodes = 1;
  if (options_.block_size == 0) options_.block_size = 64 * 1024;
  nodes_.resize(options_.num_data_nodes);
  node_down_.assign(options_.num_data_nodes, 0);
  last_block_read_.assign(options_.num_data_nodes, -2);
}

Status SimulatedDfs::Append(const std::string& path, std::string_view data) {
  MutexLock lock(&mu_);
  File& file = files_[path];
  size_t consumed = 0;
  while (consumed < data.size()) {
    if (file.blocks.empty() ||
        file.blocks.back().data.size() >= options_.block_size) {
      Block block;
      block.node = next_node_;
      next_node_ = (next_node_ + 1) % options_.num_data_nodes;
      ++nodes_[block.node].blocks_stored;
      file.blocks.push_back(std::move(block));
    }
    Block& tail = file.blocks.back();
    const size_t room = options_.block_size - tail.data.size();
    const size_t take = std::min(room, data.size() - consumed);
    tail.data.append(data.substr(consumed, take));
    tail.crc = Crc32(tail.data.data(), tail.data.size());
    nodes_[tail.node].bytes_stored += take;
    consumed += take;
    file.size += take;
  }
  return Status::Ok();
}

Status SimulatedDfs::ReadAt(const std::string& path, uint64_t offset,
                            uint64_t length, std::string* out) {
  MutexLock lock(&mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  File& file = it->second;
  if (offset + length > file.size) {
    return Status::OutOfRange("read past EOF of " + path);
  }
  if (faults_ != nullptr) {
    Status fault = faults_->MaybeFail(faults::kDfsRead, path);
    if (!fault.ok()) {
      DfsMetrics::Get().read_faults->Increment();
      return fault;
    }
  }
  out->clear();
  out->reserve(length);
  uint64_t block_idx = offset / options_.block_size;
  uint64_t in_block = offset % options_.block_size;
  uint64_t remaining = length;
  while (remaining > 0) {
    Block& block = file.blocks[block_idx];
    if (node_down_[block.node]) {
      return Status::Unavailable("data node " + std::to_string(block.node) +
                                 " down while reading " + path);
    }
    NodeStats& node = nodes_[block.node];
    ++node.block_reads;
    DfsMetrics::Get().block_reads->Increment();
    // A read is a seek unless it continues right after the previous block
    // read on the same node.
    if (last_block_read_[block.node] + 1 !=
        static_cast<int64_t>(block_idx)) {
      ++node.seeks;
    }
    last_block_read_[block.node] = static_cast<int64_t>(block_idx);
    if (faults_ != nullptr && !block.data.empty()) {
      // At-rest corruption: the stored bytes themselves are damaged, so
      // the checksum below (and every later read) sees the flip.
      faults_->MaybeCorrupt(faults::kDfsRead, block.data.data(),
                            block.data.size());
    }
    if (Crc32(block.data.data(), block.data.size()) != block.crc) {
      return Status::Corruption(
          "block checksum mismatch in " + path + " (block " +
          std::to_string(block_idx) + " on node " +
          std::to_string(block.node) + ")");
    }
    const uint64_t take =
        std::min<uint64_t>(remaining, block.data.size() - in_block);
    out->append(block.data, in_block, take);
    remaining -= take;
    in_block = 0;
    ++block_idx;
  }
  return Status::Ok();
}

Result<std::string> SimulatedDfs::ReadAll(const std::string& path) {
  uint64_t size = 0;
  {
    MutexLock lock(&mu_);
    const auto it = files_.find(path);
    if (it == files_.end()) {
      return Status::NotFound("no such file: " + path);
    }
    size = it->second.size;
  }
  std::string out;
  TKLUS_RETURN_IF_ERROR(ReadAt(path, 0, size, &out));
  return out;
}

bool SimulatedDfs::Exists(const std::string& path) const {
  MutexLock lock(&mu_);
  return files_.count(path) > 0;
}

Status SimulatedDfs::Delete(const std::string& path) {
  MutexLock lock(&mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  for (const Block& block : it->second.blocks) {
    nodes_[block.node].bytes_stored -= block.data.size();
    --nodes_[block.node].blocks_stored;
  }
  files_.erase(it);
  return Status::Ok();
}

Result<uint64_t> SimulatedDfs::FileSize(const std::string& path) const {
  MutexLock lock(&mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second.size;
}

std::vector<std::string> SimulatedDfs::List(const std::string& prefix) const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

namespace {
constexpr uint64_t kDfsMagic = 0x73666474736b6c54ULL;  // "Tklstfds"
}  // namespace

Status SimulatedDfs::Save(std::ostream& out) const {
  MutexLock lock(&mu_);
  serde::WriteU64(out, kDfsMagic);
  serde::WriteU64(out, options_.block_size);
  serde::WriteU64(out, static_cast<uint64_t>(options_.num_data_nodes));
  serde::WriteU64(out, files_.size());
  for (const auto& [path, file] : files_) {
    serde::WriteString(out, path);
    serde::WriteU64(out, file.size);
    for (const Block& block : file.blocks) {
      out.write(block.data.data(),
                static_cast<std::streamsize>(block.data.size()));
    }
  }
  if (!out) return Status::IoError("short write saving DFS image");
  return Status::Ok();
}

Status SimulatedDfs::Load(std::istream& in) {
  uint64_t magic = 0, block_size = 0, num_nodes = 0, file_count = 0;
  if (!serde::ReadU64(in, &magic) || magic != kDfsMagic) {
    return Status::Corruption("not a DFS image");
  }
  if (!serde::ReadU64(in, &block_size) || !serde::ReadU64(in, &num_nodes) ||
      !serde::ReadU64(in, &file_count)) {
    return Status::Corruption("truncated DFS image header");
  }
  {
    MutexLock lock(&mu_);
    options_.block_size = block_size;
    options_.num_data_nodes = static_cast<int>(num_nodes);
    files_.clear();
    nodes_.assign(options_.num_data_nodes, NodeStats{});
    node_down_.assign(options_.num_data_nodes, 0);
    last_block_read_.assign(options_.num_data_nodes, -2);
    next_node_ = 0;
  }
  std::string content;
  for (uint64_t f = 0; f < file_count; ++f) {
    std::string path;
    uint64_t size = 0;
    if (!serde::ReadString(in, &path) || !serde::ReadU64(in, &size)) {
      return Status::Corruption("truncated DFS image file entry");
    }
    content.resize(size);
    in.read(content.data(), static_cast<std::streamsize>(size));
    if (static_cast<uint64_t>(in.gcount()) != size) {
      return Status::Corruption("truncated DFS image content");
    }
    TKLUS_RETURN_IF_ERROR(Append(path, content));
  }
  return Status::Ok();
}

uint64_t SimulatedDfs::total_bytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const NodeStats& node : nodes_) total += node.bytes_stored;
  return total;
}

size_t SimulatedDfs::file_count() const {
  MutexLock lock(&mu_);
  return files_.size();
}

std::vector<SimulatedDfs::NodeStats> SimulatedDfs::node_stats() const {
  MutexLock lock(&mu_);
  return nodes_;
}

Status SimulatedDfs::SetNodeDown(int node, bool down) {
  MutexLock lock(&mu_);
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("no such data node: " +
                                   std::to_string(node));
  }
  node_down_[node] = down ? 1 : 0;
  return Status::Ok();
}

bool SimulatedDfs::node_is_down(int node) const {
  MutexLock lock(&mu_);
  return node >= 0 && node < options_.num_data_nodes &&
         node_down_[node] != 0;
}

void SimulatedDfs::set_fault_injector(FaultInjector* injector) {
  MutexLock lock(&mu_);
  faults_ = injector;
}

FaultInjector* SimulatedDfs::fault_injector() const {
  MutexLock lock(&mu_);
  return faults_;
}

void SimulatedDfs::ResetStats() {
  MutexLock lock(&mu_);
  for (NodeStats& node : nodes_) {
    node.block_reads = 0;
    node.seeks = 0;
  }
  last_block_read_.assign(options_.num_data_nodes, -2);
}

}  // namespace tklus
