#ifndef TKLUS_TEXT_STOPWORDS_H_
#define TKLUS_TEXT_STOPWORDS_H_

#include <string_view>

namespace tklus {

// True if `word` (lowercase) is in the built-in English stop-word list.
// The paper assumes a vocabulary that "excludes popular stop words
// (e.g., this and that)" (§II-A); the list here is the classic SMART-style
// short list commonly used for microblog text.
bool IsStopWord(std::string_view word);

// Number of words in the built-in list (for tests).
size_t StopWordCount();

}  // namespace tklus

#endif  // TKLUS_TEXT_STOPWORDS_H_
