#include "storage/disk_manager.h"

#include <filesystem>

namespace tklus {

Result<DiskManager> DiskManager::Open(const std::string& path,
                                      bool truncate) {
  DiskManager dm;
  dm.path_ = path;
  std::ios_base::openmode mode =
      std::ios::in | std::ios::out | std::ios::binary;
  if (truncate) {
    mode |= std::ios::trunc;
  } else if (!std::filesystem::exists(path)) {
    // Opening an existing database must not create one as a side effect.
    return Status::NotFound("no such database file: " + path);
  }
  dm.file_.open(path, mode);
  if (!dm.file_.is_open()) {
    return Status::IoError("cannot open database file: " + path);
  }
  dm.file_.seekg(0, std::ios::end);
  const auto size = static_cast<uint64_t>(dm.file_.tellg());
  dm.next_page_id_ = static_cast<PageId>(size / kPageSize);
  return dm;
}

DiskManager::~DiskManager() {
  if (file_.is_open()) file_.close();
}

PageId DiskManager::AllocatePage() { return next_page_id_++; }

Status DiskManager::ReadPage(PageId page_id, char* out) {
  if (page_id < 0 || page_id >= next_page_id_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(page_id));
  }
  file_.seekg(static_cast<std::streamoff>(page_id) * kPageSize);
  file_.read(out, kPageSize);
  if (file_.eof()) {
    // Allocated but never written: zero-filled page.
    file_.clear();
    const auto got = file_.gcount();
    std::memset(out + got, 0, kPageSize - static_cast<size_t>(got));
  } else if (!file_) {
    return Status::IoError("short read on page " + std::to_string(page_id));
  }
  ++stats_.page_reads;
  return Status::Ok();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  if (page_id < 0 || page_id >= next_page_id_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(page_id));
  }
  file_.seekp(static_cast<std::streamoff>(page_id) * kPageSize);
  file_.write(data, kPageSize);
  if (!file_) {
    return Status::IoError("short write on page " + std::to_string(page_id));
  }
  file_.flush();
  ++stats_.page_writes;
  return Status::Ok();
}

}  // namespace tklus
