#include "storage/bplus_tree.h"

#include "common/logging.h"
#include "storage/page_guard.h"

namespace tklus {
namespace {

constexpr uint16_t kInternal = 1;
constexpr uint16_t kLeaf = 2;

constexpr size_t kTypeOff = 0;
constexpr size_t kCountOff = 2;
constexpr size_t kNextOff = 8;
constexpr size_t kPayloadOff = 16;

constexpr size_t kLeafEntrySize = 16;   // i64 key + u64 value
constexpr size_t kInternalPairSize = 16;  // i64 key + i64 child

constexpr int kLeafMaxKeys =
    static_cast<int>((kPageSize - kPayloadOff) / kLeafEntrySize);  // 255
constexpr int kInternalMaxKeys = static_cast<int>(
    (kPageSize - kPayloadOff - 8) / kInternalPairSize);  // 254

uint16_t PageType(const Page* p) { return p->ReadAt<uint16_t>(kTypeOff); }
int KeyCount(const Page* p) { return p->ReadAt<uint16_t>(kCountOff); }
void SetKeyCount(Page* p, int n) {
  p->WriteAt<uint16_t>(kCountOff, static_cast<uint16_t>(n));
}
PageId NextLeaf(const Page* p) { return p->ReadAt<int64_t>(kNextOff); }
void SetNextLeaf(Page* p, PageId id) { p->WriteAt<int64_t>(kNextOff, id); }

// Leaf entry accessors.
int64_t LeafKey(const Page* p, int i) {
  return p->ReadAt<int64_t>(kPayloadOff + i * kLeafEntrySize);
}
uint64_t LeafValue(const Page* p, int i) {
  return p->ReadAt<uint64_t>(kPayloadOff + i * kLeafEntrySize + 8);
}
void SetLeafEntry(Page* p, int i, int64_t key, uint64_t value) {
  p->WriteAt<int64_t>(kPayloadOff + i * kLeafEntrySize, key);
  p->WriteAt<uint64_t>(kPayloadOff + i * kLeafEntrySize + 8, value);
}

// Internal node accessors: child(i) for i in [0, count], key(i) for
// i in [0, count).
PageId Child(const Page* p, int i) {
  if (i == 0) return p->ReadAt<int64_t>(kPayloadOff);
  return p->ReadAt<int64_t>(kPayloadOff + 8 + (i - 1) * kInternalPairSize +
                            8);
}
int64_t InternalKey(const Page* p, int i) {
  return p->ReadAt<int64_t>(kPayloadOff + 8 + i * kInternalPairSize);
}
void SetChild(Page* p, int i, PageId id) {
  if (i == 0) {
    p->WriteAt<int64_t>(kPayloadOff, id);
  } else {
    p->WriteAt<int64_t>(kPayloadOff + 8 + (i - 1) * kInternalPairSize + 8,
                        id);
  }
}
void SetInternalKey(Page* p, int i, int64_t key) {
  p->WriteAt<int64_t>(kPayloadOff + 8 + i * kInternalPairSize, key);
}

// First index with LeafKey >= key.
int LeafLowerBound(const Page* p, int64_t key) {
  int lo = 0, hi = KeyCount(p);
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (LeafKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First index with LeafKey > key.
int LeafUpperBound(const Page* p, int64_t key) {
  int lo = 0, hi = KeyCount(p);
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (LeafKey(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child index for read descent: first i with key <= InternalKey(i), else
// count. Lands at-or-before the first occurrence of `key`.
int ChildIndexForRead(const Page* p, int64_t key) {
  const int n = KeyCount(p);
  int lo = 0, hi = n;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (InternalKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child index for insert descent: first i with key < InternalKey(i), so
// duplicates append to the right.
int ChildIndexForInsert(const Page* p, int64_t key) {
  const int n = KeyCount(p);
  int lo = 0, hi = n;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (InternalKey(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  Result<PageGuard> page = PageGuard::New(pool);
  if (!page.ok()) return page.status();
  Page* root = page->get();
  root->WriteAt<uint16_t>(kTypeOff, kLeaf);
  SetKeyCount(root, 0);
  SetNextLeaf(root, kInvalidPageId);
  return BPlusTree(pool, page->page_id());
}

BPlusTree BPlusTree::Open(BufferPool* pool, PageId root) {
  return BPlusTree(pool, root);
}

Result<PageId> BPlusTree::FindLeaf(int64_t key) {
  PageId page_id = root_;
  while (true) {
    Result<PageGuard> page = PageGuard::Fetch(pool_, page_id);
    if (!page.ok()) return page.status();
    Page* p = page->get();
    if (PageType(p) == kLeaf) return page_id;
    page_id = Child(p, ChildIndexForRead(p, key));
  }
}

Status BPlusTree::InsertInto(PageId page_id, int64_t key, uint64_t value,
                             std::optional<SplitResult>* split) {
  split->reset();
  Result<PageGuard> page = PageGuard::Fetch(pool_, page_id);
  if (!page.ok()) return page.status();
  PageGuard& guard = *page;
  Page* p = guard.get();

  if (PageType(p) == kLeaf) {
    const int n = KeyCount(p);
    const int pos = LeafUpperBound(p, key);
    // Shift right and insert.
    for (int i = n; i > pos; --i) {
      SetLeafEntry(p, i, LeafKey(p, i - 1), LeafValue(p, i - 1));
    }
    SetLeafEntry(p, pos, key, value);
    SetKeyCount(p, n + 1);
    guard.MarkDirty();

    if (n + 1 > kLeafMaxKeys - 1) {
      // Split: right half moves to a new leaf.
      Result<PageGuard> right_res = PageGuard::New(pool_);
      if (!right_res.ok()) return right_res.status();
      Page* right = right_res->get();
      right->WriteAt<uint16_t>(kTypeOff, kLeaf);
      const int total = KeyCount(p);
      const int keep = total / 2;
      SetKeyCount(right, total - keep);
      for (int i = keep; i < total; ++i) {
        SetLeafEntry(right, i - keep, LeafKey(p, i), LeafValue(p, i));
      }
      SetKeyCount(p, keep);
      SetNextLeaf(right, NextLeaf(p));
      SetNextLeaf(p, right->page_id());
      *split = SplitResult{LeafKey(right, 0), right->page_id()};
    }
    return Status::Ok();
  }

  // Internal node: descend.
  const int child_idx = ChildIndexForInsert(p, key);
  std::optional<SplitResult> child_split;
  TKLUS_RETURN_IF_ERROR(
      InsertInto(Child(p, child_idx), key, value, &child_split));
  if (!child_split.has_value()) return Status::Ok();

  // Insert separator + right child at child_idx.
  const int n = KeyCount(p);
  for (int i = n; i > child_idx; --i) {
    SetInternalKey(p, i, InternalKey(p, i - 1));
    SetChild(p, i + 1, Child(p, i));
  }
  SetInternalKey(p, child_idx, child_split->separator);
  SetChild(p, child_idx + 1, child_split->right);
  SetKeyCount(p, n + 1);
  guard.MarkDirty();

  if (n + 1 > kInternalMaxKeys - 1) {
    // Split internal node: middle key moves up.
    Result<PageGuard> right_res = PageGuard::New(pool_);
    if (!right_res.ok()) return right_res.status();
    Page* right = right_res->get();
    right->WriteAt<uint16_t>(kTypeOff, kInternal);
    const int total = KeyCount(p);
    const int mid = total / 2;  // key at mid moves up
    const int right_keys = total - mid - 1;
    SetKeyCount(right, right_keys);
    SetChild(right, 0, Child(p, mid + 1));
    for (int i = 0; i < right_keys; ++i) {
      SetInternalKey(right, i, InternalKey(p, mid + 1 + i));
      SetChild(right, i + 1, Child(p, mid + 2 + i));
    }
    const int64_t up_key = InternalKey(p, mid);
    SetKeyCount(p, mid);
    *split = SplitResult{up_key, right->page_id()};
  }
  return Status::Ok();
}

Status BPlusTree::Insert(int64_t key, uint64_t value) {
  std::optional<SplitResult> split;
  TKLUS_RETURN_IF_ERROR(InsertInto(root_, key, value, &split));
  if (!split.has_value()) return Status::Ok();

  // Grow a new root.
  Result<PageGuard> new_root_res = PageGuard::New(pool_);
  if (!new_root_res.ok()) return new_root_res.status();
  Page* new_root = new_root_res->get();
  new_root->WriteAt<uint16_t>(kTypeOff, kInternal);
  SetKeyCount(new_root, 1);
  SetChild(new_root, 0, root_);
  SetInternalKey(new_root, 0, split->separator);
  SetChild(new_root, 1, split->right);
  root_ = new_root_res->page_id();
  return Status::Ok();
}

Result<std::optional<uint64_t>> BPlusTree::Get(int64_t key) {
  Result<std::vector<uint64_t>> all = GetAll(key);
  if (!all.ok()) return all.status();
  if (all->empty()) return std::optional<uint64_t>{};
  return std::optional<uint64_t>{all->front()};
}

Result<std::vector<std::optional<uint64_t>>> BPlusTree::GetBatch(
    const std::vector<int64_t>& keys) {
  std::vector<std::optional<uint64_t>> out(keys.size());
  if (keys.empty()) return out;
  // How many sibling hops to try before giving up on the chain and paying
  // a fresh descent: bounds the worst case (sparse keys far apart) to one
  // wasted leaf read per key while keeping dense runs at ~one leaf fetch
  // per leaf of results.
  constexpr int kMaxChainHops = 2;

  PageGuard leaf;              // current position in the leaf chain
  int64_t watermark = INT64_MIN;  // keys <= watermark may lie behind us
  bool have_watermark = false;
  for (size_t ki = 0; ki < keys.size(); ++ki) {
    const int64_t key = keys[ki];
    // An out-of-order key may live in a leaf we already passed.
    if (have_watermark && key < watermark) leaf = PageGuard();
    // Whether a fresh root-to-leaf descent already ran for this key. After
    // one descent we are at-or-before the key's leaf, so pure forward
    // chain-walking terminates; a second descent could only revisit the
    // same leaf and loop.
    bool descended = false;
    if (!leaf) {
      Result<PageId> leaf_id = FindLeaf(key);
      if (!leaf_id.ok()) return leaf_id.status();
      Result<PageGuard> fetched = PageGuard::Fetch(pool_, *leaf_id);
      if (!fetched.ok()) return fetched.status();
      leaf = std::move(*fetched);
      descended = true;
    }
    int hops = 0;
    while (true) {
      Page* p = leaf.get();
      const int n = KeyCount(p);
      if (n > 0 && key <= LeafKey(p, n - 1)) {
        const int i = LeafLowerBound(p, key);
        if (i < n && LeafKey(p, i) == key) {
          out[ki] = LeafValue(p, i);
        }
        break;  // key <= max of this leaf: present here or nowhere ahead
      }
      const PageId next = NextLeaf(p);
      if (next == kInvalidPageId) break;  // past the last leaf: absent
      if (++hops > kMaxChainHops && !descended) {
        // Too far ahead for chain-walking to pay off; re-descend once.
        Result<PageId> leaf_id = FindLeaf(key);
        if (!leaf_id.ok()) return leaf_id.status();
        Result<PageGuard> fetched = PageGuard::Fetch(pool_, *leaf_id);
        if (!fetched.ok()) return fetched.status();
        leaf = std::move(*fetched);
        descended = true;
        continue;
      }
      Result<PageGuard> fetched = PageGuard::Fetch(pool_, next);
      if (!fetched.ok()) return fetched.status();
      leaf = std::move(*fetched);
    }
    watermark = key;
    have_watermark = true;
  }
  return out;
}

Result<std::vector<uint64_t>> BPlusTree::GetAll(int64_t key) {
  std::vector<uint64_t> out;
  Result<PageId> leaf_id = FindLeaf(key);
  if (!leaf_id.ok()) return leaf_id.status();
  PageId page_id = *leaf_id;
  while (page_id != kInvalidPageId) {
    Result<PageGuard> page = PageGuard::Fetch(pool_, page_id);
    if (!page.ok()) return page.status();
    Page* p = page->get();
    const int n = KeyCount(p);
    int i = LeafLowerBound(p, key);
    bool past_key = false;
    for (; i < n; ++i) {
      const int64_t k = LeafKey(p, i);
      if (k > key) {
        past_key = true;
        break;
      }
      out.push_back(LeafValue(p, i));
    }
    if (past_key) break;
    page_id = NextLeaf(p);
  }
  return out;
}

Result<std::vector<std::pair<int64_t, uint64_t>>> BPlusTree::Range(
    int64_t lo, int64_t hi) {
  std::vector<std::pair<int64_t, uint64_t>> out;
  if (lo > hi) return out;
  Result<PageId> leaf_id = FindLeaf(lo);
  if (!leaf_id.ok()) return leaf_id.status();
  PageId page_id = *leaf_id;
  while (page_id != kInvalidPageId) {
    Result<PageGuard> page = PageGuard::Fetch(pool_, page_id);
    if (!page.ok()) return page.status();
    Page* p = page->get();
    const int n = KeyCount(p);
    bool done = false;
    for (int i = LeafLowerBound(p, lo); i < n; ++i) {
      const int64_t k = LeafKey(p, i);
      if (k > hi) {
        done = true;
        break;
      }
      out.emplace_back(k, LeafValue(p, i));
    }
    if (done) break;
    page_id = NextLeaf(p);
  }
  return out;
}

Result<bool> BPlusTree::Remove(int64_t key, uint64_t value) {
  Result<PageId> leaf_id = FindLeaf(key);
  if (!leaf_id.ok()) return leaf_id.status();
  PageId page_id = *leaf_id;
  while (page_id != kInvalidPageId) {
    Result<PageGuard> page = PageGuard::Fetch(pool_, page_id);
    if (!page.ok()) return page.status();
    Page* p = page->get();
    const int n = KeyCount(p);
    bool past_key = false;
    for (int i = LeafLowerBound(p, key); i < n; ++i) {
      const int64_t k = LeafKey(p, i);
      if (k > key) {
        past_key = true;
        break;
      }
      if (LeafValue(p, i) == value) {
        for (int j = i; j + 1 < n; ++j) {
          SetLeafEntry(p, j, LeafKey(p, j + 1), LeafValue(p, j + 1));
        }
        SetKeyCount(p, n - 1);
        page->MarkDirty();
        return true;
      }
    }
    if (past_key) break;
    page_id = NextLeaf(p);
  }
  return false;
}

Result<int> BPlusTree::Height() {
  int height = 1;
  PageId page_id = root_;
  while (true) {
    Result<PageGuard> page = PageGuard::Fetch(pool_, page_id);
    if (!page.ok()) return page.status();
    Page* p = page->get();
    if (PageType(p) == kLeaf) return height;
    ++height;
    page_id = Child(p, 0);
  }
}

Result<uint64_t> BPlusTree::CountEntries() {
  // Walk to the leftmost leaf, then the chain.
  PageId page_id = root_;
  while (true) {
    Result<PageGuard> page = PageGuard::Fetch(pool_, page_id);
    if (!page.ok()) return page.status();
    Page* p = page->get();
    if (PageType(p) == kLeaf) break;
    page_id = Child(p, 0);
  }
  uint64_t count = 0;
  while (page_id != kInvalidPageId) {
    Result<PageGuard> page = PageGuard::Fetch(pool_, page_id);
    if (!page.ok()) return page.status();
    Page* p = page->get();
    count += static_cast<uint64_t>(KeyCount(p));
    page_id = NextLeaf(p);
  }
  return count;
}

}  // namespace tklus
