#include "analyze/output.h"

#include <cstdio>
#include <sstream>

namespace tklus::analyze {
namespace {

// Index of `rule` in the catalog, or -1. SARIF results reference their
// rule by index so viewers can join back to the catalog entry.
int RuleIndex(const std::vector<RuleInfo>& rules, const std::string& name) {
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << "  {\"rule\": \"" << JsonEscape(d.rule) << "\", \"path\": \""
        << JsonEscape(d.path) << "\", \"line\": " << d.line
        << ", \"message\": \"" << JsonEscape(d.message) << "\"}"
        << (i + 1 < diags.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.str();
}

std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diags,
                               const std::vector<RuleInfo>& rules) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"tklus_analyze\",\n"
      << "          \"rules\": [\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << JsonEscape(rules[i].name)
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].description) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    const int rule_index = RuleIndex(rules, d.rule);
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(d.rule) << "\",\n";
    if (rule_index >= 0) {
      out << "          \"ruleIndex\": " << rule_index << ",\n";
    }
    out << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(d.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << JsonEscape(d.path) << "\"}, \"region\": {\"startLine\": "
        << (d.line > 0 ? d.line : 1) << "}}}\n"
        << "          ]\n"
        << "        }" << (i + 1 < diags.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace tklus::analyze
