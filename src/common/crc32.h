#ifndef TKLUS_COMMON_CRC32_H_
#define TKLUS_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tklus {

// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding every
// persisted byte: 4 KiB database pages, simulated-DFS blocks, and the
// footer of each saved artifact file. Table-driven, one byte at a time —
// integrity checking is nowhere near the hot path.
namespace crc32_internal {

inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_internal

// Incremental form: pass the previous return value as `seed` to extend a
// running checksum across multiple buffers. Starts from 0.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto& table = crc32_internal::Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace tklus

#endif  // TKLUS_COMMON_CRC32_H_
