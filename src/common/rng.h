#ifndef TKLUS_COMMON_RNG_H_
#define TKLUS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace tklus {

// Deterministic xoshiro256** PRNG. Used everywhere instead of std::mt19937
// so data generation is reproducible across standard libraries; all
// experiments take explicit seeds.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, per Blackman & Vigna's reference implementation.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller (single draw; the pair's second value is
  // discarded for simplicity — generation speed is not a bottleneck here).
  double Normal(double mean, double stddev);

  // Geometric number of trials until first success, >= 1.
  int Geometric(double p);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

// Implementation details only below here.

inline double Rng::Normal(double mean, double stddev) {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.28318530717958647692 * u2);
}

inline int Rng::Geometric(double p) {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return 1 << 20;  // effectively unbounded; callers cap depth
  int n = 1;
  while (!Bernoulli(p)) ++n;
  return n;
}

}  // namespace tklus

#endif  // TKLUS_COMMON_RNG_H_
