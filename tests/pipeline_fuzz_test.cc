#include <gtest/gtest.h>

#include "baseline/irtree.h"
#include "baseline/naive_scan.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/kendall.h"
#include "datagen/text_model.h"
#include "datagen/tweet_generator.h"
#include "obs/trace.h"

namespace tklus {
namespace {

// Structural invariants every recorded trace must satisfy, checked on
// each randomized query: a well-formed span tree (one root, parents
// precede children), stage durations that sum to no more than the root
// span, and per-stage I/O counters that attribute every db/dfs read the
// QueryStats totals saw.
void CheckTraceInvariants(const Trace& trace, const QueryStats& stats) {
  ASSERT_FALSE(trace.spans.empty());
  const TraceSpan& root = trace.spans.front();
  EXPECT_EQ(root.name, stage::kQuery);
  EXPECT_EQ(root.parent, 0u);
  uint64_t child_duration_total = 0;
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    EXPECT_EQ(span.id, static_cast<uint32_t>(i + 1));
    if (i == 0) continue;
    // Spans appear in start order, so a parent always precedes its child;
    // exactly one root exists.
    EXPECT_GT(span.parent, 0u) << "second root span: " << span.name;
    EXPECT_LT(span.parent, span.id);
    EXPECT_GE(span.start_ns, root.start_ns);
    if (span.parent == root.id) child_duration_total += span.duration_ns;
  }
  // Stages tile the root span: their wall time cannot exceed it.
  EXPECT_LE(child_duration_total, root.duration_ns);
  // I/O attribution: every page/block read lands in exactly one stage
  // counter (the root span carries none), so the totals reconcile.
  EXPECT_EQ(trace.CounterTotal(stage::kCounterDbPageReads),
            stats.db_page_reads);
  EXPECT_EQ(trace.CounterTotal(stage::kCounterDfsBlockReads),
            stats.dfs_block_reads);
}

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

// Whole-pipeline randomized cross-validation: for several generator seeds,
// run randomized queries (keywords, location, radius, k, semantics,
// ranking, temporal windows) through the indexed engine and the in-memory
// oracle, requiring identical rankings. This is the strongest end-to-end
// invariant the system has: geohash covers, postings codec, AND/OR set
// operations, B+-tree lookups, thread construction and Def. 5-10 scoring
// must all agree with a brute-force reimplementation.
class PipelineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzzTest, EngineEqualsOracleOnRandomQueries) {
  TweetGenerator::Options gen;
  gen.seed = GetParam();
  gen.num_users = 250;
  gen.num_tweets = 6000;
  gen.num_cities = 4;
  gen.untagged_frac = GetParam() % 2 == 0 ? 0.0 : 0.15;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);

  const NaiveScanner scanner(&corpus.dataset);
  auto engine = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(engine.ok());
  // Pruning must be off for exact oracle equality under kMax: the tracker
  // bound is exact, but pruned delta-only updates may reorder users whose
  // scores tie; the pruned-vs-unpruned agreement is covered separately.
  (*engine)->processor().mutable_options().enable_pruning = false;

  Rng rng(GetParam() * 7919 + 13);
  const auto& topics = datagen::TopicWords();
  const int64_t first_sid = corpus.dataset.posts().front().sid;
  const int64_t last_sid = corpus.dataset.posts().back().sid;

  for (int trial = 0; trial < 25; ++trial) {
    TkLusQuery q;
    // Location: near a random post (mirrors the workload generator).
    const Post& anchor =
        corpus.dataset.posts()[rng.UniformInt(corpus.dataset.size())];
    q.location = anchor.location;
    q.radius_km = rng.Uniform(2.0, 60.0);
    q.k = 1 + static_cast<int>(rng.UniformInt(uint64_t{15}));
    const size_t num_keywords = 1 + rng.UniformInt(uint64_t{3});
    for (size_t i = 0; i < num_keywords; ++i) {
      if (rng.Bernoulli(0.8)) {
        q.keywords.push_back(topics[rng.UniformInt(topics.size())]);
      } else {
        const auto& modifiers = datagen::ModifierWords();
        q.keywords.push_back(modifiers[rng.UniformInt(modifiers.size())]);
      }
    }
    q.semantics = rng.Bernoulli(0.5) ? Semantics::kAnd : Semantics::kOr;
    q.ranking = rng.Bernoulli(0.5) ? Ranking::kSum : Ranking::kMax;
    // Trace half the trials: results must be identical either way (the
    // oracle comparison below covers that), and each recorded trace must
    // satisfy the structural invariants.
    q.trace = trial % 2 == 0;
    if (rng.Bernoulli(0.3)) {
      const int64_t a = rng.UniformInt(first_sid, last_sid);
      const int64_t b = rng.UniformInt(first_sid, last_sid);
      q.temporal.begin = std::min(a, b);
      q.temporal.end = std::max(a, b);
    }
    if (rng.Bernoulli(0.3)) {
      q.temporal.half_life = rng.Uniform(100.0, 5000.0);
      q.temporal.reference = last_sid;
    }

    auto got = (*engine)->Query(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const QueryResult want = scanner.Process(q);
    ASSERT_EQ(got->users.size(), want.users.size())
        << "trial " << trial << " kw=" << q.keywords[0]
        << " r=" << q.radius_km;
    for (size_t i = 0; i < want.users.size(); ++i) {
      EXPECT_EQ(got->users[i].uid, want.users[i].uid)
          << "trial " << trial << " rank " << i;
      EXPECT_NEAR(got->users[i].score, want.users[i].score, 1e-9);
    }
    if (q.trace) {
      ASSERT_NE(got->stats.trace, nullptr) << "trial " << trial;
      CheckTraceInvariants(*got->stats.trace, got->stats);
    } else {
      EXPECT_EQ(got->stats.trace, nullptr);
    }
  }
}

TEST_P(PipelineFuzzTest, IrTreeCandidatesMatchIndexCandidates) {
  // The IR-tree and the hybrid index must retrieve the same candidate
  // tweet sets for the same query (both implement condition 1 of the
  // problem definition).
  TweetGenerator::Options gen;
  gen.seed = GetParam() + 1000;
  gen.num_users = 200;
  gen.num_tweets = 4000;
  gen.num_cities = 3;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);
  const IRTree irtree(&corpus.dataset);
  const NaiveScanner scanner(&corpus.dataset);
  auto engine = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(engine.ok());

  Rng rng(GetParam() * 104729 + 7);
  const auto& topics = datagen::TopicWords();
  for (int trial = 0; trial < 10; ++trial) {
    TkLusQuery q;
    const Post& anchor =
        corpus.dataset.posts()[rng.UniformInt(corpus.dataset.size())];
    q.location = anchor.location;
    q.radius_km = rng.Uniform(3.0, 40.0);
    q.k = 50;
    q.keywords = {topics[rng.UniformInt(topics.size())]};
    q.semantics = Semantics::kOr;

    // IR-tree candidates, ranked through the shared oracle path.
    const auto candidates = irtree.RangeKeywordQuery(
        q.location, q.radius_km, q.keywords, q.semantics);
    const QueryResult via_irtree = scanner.RankCandidates(q, candidates);
    auto via_engine = (*engine)->Query(q);
    ASSERT_TRUE(via_engine.ok());
    ASSERT_EQ(via_engine->users.size(), via_irtree.users.size())
        << "trial " << trial;
    for (size_t i = 0; i < via_irtree.users.size(); ++i) {
      EXPECT_EQ(via_engine->users[i].uid, via_irtree.users[i].uid);
      EXPECT_NEAR(via_engine->users[i].score, via_irtree.users[i].score,
                  1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace tklus
