#include "analyze/analyzer.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace tklus::analyze {
namespace fs = std::filesystem;

namespace {

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Forward-slash path of `file` relative to `root`.
std::string RelPath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::proximate(file, root, ec);
  return (ec ? file : rel).generic_string();
}

}  // namespace

Result<AnalyzerContext> LoadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open manifest " + path);
  AnalyzerContext ctx;
  ctx.has_manifest = true;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'module: deps...'");
    }
    const std::string module = Trim(line.substr(0, colon));
    if (module.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": empty module name");
    }
    std::set<std::string>& deps = ctx.allowed_deps[module];
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.insert(dep);
  }
  return ctx;
}

Result<LockOrderConfig> LoadLockOrderConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open lockorder manifest " + path);
  LockOrderConfig cfg;
  cfg.loaded = true;
  std::map<std::string, std::set<std::string>> edges;
  std::string line;
  int lineno = 0;
  const auto err = [&](const std::string& what) {
    return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                   ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = Trim(line);
    if (line.empty()) continue;
    std::istringstream rest(line);
    std::string directive;
    rest >> directive;
    std::vector<std::string> args;
    for (std::string arg; rest >> arg;) args.push_back(arg);
    if (directive == "lock") {
      if (args.empty() || args.size() > 2) {
        return err("expected 'lock NAME [PATH_SUFFIX]'");
      }
      for (const LockOrderConfig::LockDecl& decl : cfg.locks) {
        if (decl.name == args[0]) {
          return err("duplicate lock declaration '" + args[0] + "'");
        }
      }
      cfg.locks.push_back(LockOrderConfig::LockDecl{
          args[0], args.size() > 1 ? args[1] : std::string()});
      edges.emplace(args[0], std::set<std::string>());
    } else if (directive == "order") {
      if (args.size() < 2) return err("expected 'order A B [C ...]'");
      for (const std::string& name : args) {
        if (edges.find(name) == edges.end()) {
          return err("order names undeclared lock '" + name +
                     "' (declare it with 'lock' first)");
        }
      }
      for (size_t i = 0; i + 1 < args.size(); ++i) {
        edges[args[i]].insert(args[i + 1]);
      }
    } else if (directive == "io-symbol") {
      if (args.empty()) return err("expected 'io-symbol NAME...'");
      cfg.io_symbols.insert(args.begin(), args.end());
    } else if (directive == "io-lock") {
      if (args.empty()) return err("expected 'io-lock NAME...'");
      for (const std::string& name : args) {
        if (edges.find(name) == edges.end()) {
          return err("io-lock names undeclared lock '" + name + "'");
        }
        cfg.io_locks.insert(name);
      }
    } else {
      return err("unknown directive '" + directive + "'");
    }
  }
  // Transitive closure + cycle check, DFS per node. A lock reachable
  // from itself means the declared "order" is not a DAG.
  for (const auto& [start, unused] : edges) {
    std::set<std::string>& reach = cfg.can_precede[start];
    std::vector<std::string> stack(edges.at(start).begin(),
                                   edges.at(start).end());
    while (!stack.empty()) {
      const std::string node = std::move(stack.back());
      stack.pop_back();
      if (node == start) {
        return Status::InvalidArgument(
            path + ": declared lock order contains a cycle through '" +
            start + "'");
      }
      if (!reach.insert(node).second) continue;
      const auto it = edges.find(node);
      if (it != edges.end()) {
        stack.insert(stack.end(), it->second.begin(), it->second.end());
      }
    }
  }
  return cfg;
}

Result<std::vector<Diagnostic>> RunAnalysis(const AnalyzerOptions& options) {
  const fs::path root(options.root);
  if (!fs::exists(root)) {
    return Status::InvalidArgument("root does not exist: " + options.root);
  }

  AnalyzerContext ctx;
  std::string manifest = options.manifest;
  if (manifest.empty()) {
    for (const fs::path& candidate :
         {root / "layers.conf", root / "tools" / "analyze" / "layers.conf"}) {
      if (fs::exists(candidate)) {
        manifest = candidate.string();
        break;
      }
    }
  }
  if (!manifest.empty()) {
    Result<AnalyzerContext> loaded = LoadManifest(manifest);
    if (!loaded.ok()) return loaded.status();
    ctx = std::move(*loaded);
  }
  std::string lockorder = options.lockorder;
  if (lockorder.empty()) {
    for (const fs::path& candidate :
         {root / "lockorder.conf",
          root / "tools" / "analyze" / "lockorder.conf"}) {
      if (fs::exists(candidate)) {
        lockorder = candidate.string();
        break;
      }
    }
  }
  if (!lockorder.empty()) {
    Result<LockOrderConfig> loaded = LoadLockOrderConfig(lockorder);
    if (!loaded.ok()) return loaded.status();
    ctx.lockorder = std::move(*loaded);
  }

  std::vector<std::string> paths = options.paths;
  if (paths.empty()) paths.push_back("src");

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_regular_file(full)) {
      files.push_back(full);
      continue;
    }
    if (!fs::is_directory(full)) {
      return Status::InvalidArgument("scan path not found: " + full.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(full)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  // Per-file analysis fans out over a small thread pool: rules are pure
  // (no state across files), so each worker lexes + checks whole files
  // independently and determinism comes from the final sort. Per-file
  // results land in a pre-sized slot vector — no locking needed.
  struct FileOutcome {
    std::vector<Diagnostic> diags;
    Status status = Status::Ok();
  };
  std::vector<FileOutcome> outcomes(files.size());
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    // Each worker owns a rule set: BuildRuleSet is cheap and per-worker
    // instances remove any question of shared mutable rule state.
    const std::vector<std::unique_ptr<Rule>> rules = BuildRuleSet();
    for (size_t idx; (idx = next.fetch_add(1)) < files.size();) {
      Result<std::string> text = ReadFile(files[idx]);
      if (!text.ok()) {
        outcomes[idx].status = text.status();
        continue;
      }
      SourceFile model = LexFile(RelPath(files[idx], root), *text);
      model.functions = BuildLockModel(model);
      for (const auto& rule : rules) {
        rule->Check(model, ctx, &outcomes[idx].diags);
      }
    }
  };
  unsigned jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::min(8u, std::max(1u, std::thread::hardware_concurrency()));
  }
  jobs = static_cast<unsigned>(
      std::min<size_t>(jobs, std::max<size_t>(files.size(), 1)));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  std::vector<Diagnostic> diagnostics;
  for (FileOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) return outcome.status;
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(outcome.diags.begin()),
                       std::make_move_iterator(outcome.diags.end()));
  }
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return diagnostics;
}

}  // namespace tklus::analyze
