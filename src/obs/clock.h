#ifndef TKLUS_OBS_CLOCK_H_
#define TKLUS_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tklus {

// The project's single steady-clock injection point. Everything that
// needs monotonic time — trace spans, stopwatches, slow-query
// thresholds — reads it through a Clock*, so tests substitute a
// FakeClock and become fully deterministic. `tklus_analyze` (rule
// `clock-discipline`) bans the raw std::chrono clocks outside src/obs/,
// making this the only place wall time can leak in from.
class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic nanoseconds since an arbitrary epoch.
  virtual uint64_t NowNanos() const = 0;
};

// The real monotonic clock.
class MonotonicClock final : public Clock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

// Process-wide default clock instance (a MonotonicClock). Functions
// taking a Clock* default to this, so production call sites never spell
// a clock at all.
inline const Clock* DefaultClock() {
  static const MonotonicClock clock;
  return &clock;
}

// A manually advanced clock for tests: time moves only when told to, so
// span durations and slow-query thresholds assert exact values. Thread-
// safe (atomic), so concurrent stress tests can share one.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(uint64_t start_ns = 0) : now_ns_(start_ns) {}

  uint64_t NowNanos() const override {
    return now_ns_.load(std::memory_order_acquire);
  }
  void AdvanceNanos(uint64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_acq_rel);
  }
  void AdvanceMillis(uint64_t delta_ms) { AdvanceNanos(delta_ms * 1000000); }

 private:
  std::atomic<uint64_t> now_ns_;
};

}  // namespace tklus

#endif  // TKLUS_OBS_CLOCK_H_
