#include "analyze/source_model.h"

#include <array>
#include <cctype>

namespace tklus::analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses the payload of an `#include` line starting at `pos` (just past
// the "include" keyword). Returns false if the line is malformed.
bool ParseIncludeTarget(std::string_view text, size_t pos, int line,
                        std::vector<IncludeDirective>* out) {
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  if (pos >= text.size()) return false;
  const char open = text[pos];
  const char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
  if (close == '\0') return false;
  const size_t start = pos + 1;
  const size_t end = text.find(close, start);
  if (end == std::string_view::npos) return false;
  out->push_back(IncludeDirective{std::string(text.substr(start, end - start)),
                                  /*quoted=*/open == '"', line});
  return true;
}

// An encoding prefix that may precede a string/char literal. `R` suffixes
// (raw) are handled by the caller.
bool IsLiteralPrefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

// Phase-1 preprocessing: backslash-newline splices are removed (the
// spliced pieces become adjacent, exactly like translation phase 2), and
// every surviving character remembers its original line. Lexing over the
// spliced text makes line comments that end in `\` swallow their
// continuation lines and keeps a spliced identifier one token — both
// were mis-lexed before, which could hide or fabricate rule hits.
void SpliceLines(std::string_view text, std::string* out,
                 std::vector<int>* line_of) {
  out->reserve(text.size());
  line_of->reserve(text.size());
  int line = 1;
  for (size_t i = 0; i < text.size();) {
    if (text[i] == '\\') {
      size_t j = i + 1;
      if (j < text.size() && text[j] == '\r') ++j;
      if (j < text.size() && text[j] == '\n') {
        ++line;
        i = j + 1;
        continue;
      }
    }
    out->push_back(text[i]);
    line_of->push_back(line);
    if (text[i] == '\n') ++line;
    ++i;
  }
}

// Parses a NOLINT marker out of one line comment's text. `comment` is
// everything after the `//`. Recognized shape:
//   NOLINT(tklus-<rule>): <reason>
// A bare NOLINT, a missing rule, a rule without the tklus- prefix and a
// missing reason all still produce a Suppression record (with the flags
// reflecting what was found) so the suppression rule can flag them.
void ParseSuppression(std::string_view comment, int line,
                      std::vector<Suppression>* out) {
  const size_t at = comment.find("NOLINT");
  if (at == std::string_view::npos) return;
  // Avoid matching inside a longer word (e.g. "DONOLINTER").
  if (at > 0 && IsIdentChar(comment[at - 1])) return;
  size_t pos = at + 6;  // past "NOLINT"
  if (pos < comment.size() && IsIdentChar(comment[pos])) return;
  Suppression s{line, "", false, false};
  if (pos < comment.size() && comment[pos] == '(') {
    const size_t close = comment.find(')', pos + 1);
    if (close != std::string_view::npos) {
      std::string_view rule = comment.substr(pos + 1, close - pos - 1);
      if (rule.rfind("tklus-", 0) == 0) {
        s.has_rule = true;
        s.rule = std::string(rule.substr(6));
      }
      pos = close + 1;
    }
  }
  // Reason: non-space text after a `:` following the marker.
  const size_t colon = comment.find(':', pos);
  if (colon != std::string_view::npos) {
    for (size_t i = colon + 1; i < comment.size(); ++i) {
      if (!std::isspace(static_cast<unsigned char>(comment[i]))) {
        s.has_reason = true;
        break;
      }
    }
  }
  out->push_back(std::move(s));
}

}  // namespace

bool PathEndsWith(std::string_view path, std::string_view suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

SourceFile LexFile(std::string rel_path, std::string_view raw_text) {
  SourceFile file;
  file.path = std::move(rel_path);
  if (file.path.rfind("src/", 0) == 0) {
    const size_t slash = file.path.find('/', 4);
    if (slash != std::string::npos) {
      file.module = file.path.substr(4, slash - 4);
    }
  }

  std::string text;
  std::vector<int> line_of;
  SpliceLines(raw_text, &text, &line_of);
  const auto line_at = [&](size_t pos) {
    return pos < line_of.size() ? line_of[pos] : (line_of.empty()
                                                      ? 1
                                                      : line_of.back());
  };

  size_t i = 0;
  const size_t n = text.size();
  bool at_line_start = true;  // only whitespace seen since the last newline

  // Consumes a string/char literal starting at the quote `q` (the
  // optional encoding prefix began at `start`); returns one past the
  // closing quote.
  const auto lex_quoted = [&](size_t start, size_t q) {
    const char quote = text[q];
    size_t j = q + 1;
    while (j < n && text[j] != quote) {
      if (text[j] == '\\' && j + 1 < n) ++j;
      ++j;
    }
    file.tokens.push_back(Token{
        quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
        std::string(text.substr(start, j + 1 - start)), line_at(start)});
    return j + 1;
  };

  // Consumes a raw string literal whose `"` sits at `q` (the prefix and
  // `R` began at `start`); returns one past the closing delimiter. Raw
  // strings collapse to a single `<raw-string>` token: their contents
  // must never produce rule hits.
  const auto lex_raw_string = [&](size_t start, size_t q) {
    size_t j = q + 1;
    std::string delim;
    while (j < n && text[j] != '(') delim.push_back(text[j++]);
    const std::string closer = ")" + delim + "\"";
    const size_t end = text.find(closer, j);
    const size_t stop =
        end == std::string_view::npos ? n : end + closer.size();
    file.tokens.push_back(
        Token{Token::Kind::kString, "<raw-string>", line_at(start)});
    return stop;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment (splices already resolved, so a trailing `\` has
    // correctly pulled the next line into this comment). NOLINT
    // suppressions are parsed out of the comment text here — the only
    // place comment content survives lexing.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const size_t start = i + 2;
      while (i < n && text[i] != '\n') ++i;
      ParseSuppression(std::string_view(text).substr(start, i - start),
                       line_at(start > 0 ? start - 2 : 0),
                       &file.suppressions);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) ++i;
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Preprocessor directive at the start of a line: extract #include
    // targets (the angle-bracket form would otherwise lex as `<` tokens);
    // other directives fall through to normal tokenization.
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (text.compare(j, 7, "include") == 0) {
        ParseIncludeTarget(text, j + 7, line_at(i), &file.includes);
        while (i < n && text[i] != '\n') ++i;
        continue;
      }
    }
    at_line_start = false;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      const std::string_view ident(text.data() + i, j - i);
      // Encoding-prefixed literals: u8R"(..)", LR"(..)", u"..", L'x' and
      // the bare R"(..)" all start with what scans as an identifier.
      if (j < n && text[j] == '"') {
        if (ident == "R" || (ident.size() > 1 && ident.back() == 'R' &&
                             IsLiteralPrefix(ident.substr(0, ident.size() - 1)))) {
          i = lex_raw_string(i, j);
          continue;
        }
        if (IsLiteralPrefix(ident)) {
          i = lex_quoted(i, j);
          continue;
        }
      }
      if (j < n && text[j] == '\'' && IsLiteralPrefix(ident)) {
        i = lex_quoted(i, j);
        continue;
      }
      file.tokens.push_back(
          Token{Token::Kind::kIdent, std::string(ident), line_at(i)});
      i = j;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      i = lex_quoted(i, i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // A pp-number: identifier chars, `.`, C++14 digit separators (`'`
      // only when flanked by number chars, so `f(1,'a')` never swallows
      // the char literal) and signed exponents (1e+5, 0x1p-3).
      size_t j = i + 1;
      while (j < n) {
        if (IsIdentChar(text[j]) || text[j] == '.') {
          ++j;
          continue;
        }
        if (text[j] == '\'' && j + 1 < n && IsIdentChar(text[j + 1])) {
          j += 2;
          continue;
        }
        if ((text[j] == '+' || text[j] == '-') &&
            (text[j - 1] == 'e' || text[j - 1] == 'E' ||
             text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      file.tokens.push_back(Token{Token::Kind::kNumber,
                                  std::string(text.substr(i, j - i)),
                                  line_at(i)});
      i = j;
      continue;
    }
    // Single-character punctuation; rules match multi-char operators as
    // token sequences (e.g. `::` is two `:` tokens).
    file.tokens.push_back(
        Token{Token::Kind::kPunct, std::string(1, c), line_at(i)});
    ++i;
  }
  return file;
}

namespace {

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, char c) {
  return t.kind == Token::Kind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

bool IsGuardType(const Token& t) {
  return IsIdent(t, "MutexLock") || IsIdent(t, "ReaderMutexLock") ||
         IsIdent(t, "WriterMutexLock");
}

// Keywords (and keyword-shaped constructs) that read as `ident (` but
// are not calls.
bool IsCallKeyword(std::string_view s) {
  static const std::set<std::string_view> kKeywords = {
      "if",       "for",      "while",   "switch",        "return",
      "sizeof",   "alignof",  "catch",   "throw",         "new",
      "delete",   "decltype", "typeid",  "noexcept",      "operator",
      "co_await", "co_yield", "co_return", "static_assert", "defined",
      "alignas",  "requires"};
  return kKeywords.count(s) > 0;
}

// Best-effort name of the function whose body opens at `toks[open]`
// (`open` indexes a `{`): walks left over the trailing specifiers and
// parenthesized groups (argument list, TKLUS_* annotation macros, ctor
// init lists), remembering the identifier chain before the leftmost
// group — `Status TkLusEngine::AppendBatch(const Dataset&)
// TKLUS_EXCLUDES(mu_) {` names `TkLusEngine::AppendBatch`. A
// user-defined-literal definition (`Bytes operator"" _kb(...)`) names
// `operator""_kb` rather than the bare suffix. Cosmetic plus call-graph
// identity; diagnostics always carry file:line.
std::string FunctionNameBefore(const std::vector<Token>& toks, size_t open) {
  std::string name;
  size_t i = open;
  while (i-- > 0) {
    const Token& t = toks[i];
    if (IsPunct(t, ';') || IsPunct(t, '{') || IsPunct(t, '}')) break;
    if (IsPunct(t, ')')) {
      int depth = 1;
      size_t j = i;
      while (depth > 0) {
        if (j == 0) return name;  // unbalanced; give up
        --j;
        if (IsPunct(toks[j], ')')) ++depth;
        if (IsPunct(toks[j], '(')) --depth;
      }
      // `j` is at the matching `(`; the qualified name (if any) sits
      // before it. Groups are visited right to left, so the leftmost
      // group's name is assigned last and wins.
      if (j > 0 && toks[j - 1].kind == Token::Kind::kIdent) {
        size_t k = j - 1;
        std::string candidate = toks[k].text;
        // `operator"" _suffix(` — fold the UDL spelling into one name.
        if (k >= 2 && toks[k - 1].kind == Token::Kind::kString &&
            toks[k - 1].text == "\"\"" && IsIdent(toks[k - 2], "operator")) {
          candidate = "operator\"\"" + candidate;
          k -= 2;
        }
        while (k >= 3 && IsPunct(toks[k - 1], ':') &&
               IsPunct(toks[k - 2], ':') &&
               toks[k - 3].kind == Token::Kind::kIdent) {
          candidate = toks[k - 3].text + "::" + candidate;
          k -= 3;
        }
        name = candidate;
      }
      i = j;  // resume scanning left of the `(`
    }
  }
  return name;
}

// Name of the class/struct whose body opens at `toks[open]`: the last
// identifier at paren depth 0 between the class keyword and the brace,
// stopping at a base-clause `:` — handles `class TKLUS_CAPABILITY("x")
// Mutex {` and `class Foo : public Bar {` alike. `kw` indexes the
// class/struct token.
std::string ClassNameBetween(const std::vector<Token>& toks, size_t kw,
                             size_t open) {
  std::string name;
  int depth = 0;
  for (size_t j = kw + 1; j < open; ++j) {
    if (IsPunct(toks[j], '(')) ++depth;
    if (IsPunct(toks[j], ')')) --depth;
    if (depth > 0) continue;
    if (IsPunct(toks[j], ':')) break;  // base clause (`::` cannot appear
                                       // at depth 0 before the name)
    if (toks[j].kind == Token::Kind::kIdent && !IsIdent(toks[j], "final") &&
        !IsIdent(toks[j], "alignas")) {
      name = toks[j].text;
    }
  }
  return name;
}

// True if the `{` at `open` starts a lambda body: the token to its left
// (after skipping trailing specifiers and a `-> ret` clause) is either a
// `]` or the `)` of a parameter list whose `(` directly follows `]`.
bool IsLambdaBody(const std::vector<Token>& toks, size_t open) {
  size_t j = open;
  // Skip `mutable`, `noexcept`, `const` and `-> Type` pieces.
  while (j-- > 0) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::kIdent &&
        (t.text == "mutable" || t.text == "noexcept" || t.text == "const" ||
         IsIdentStart(t.text[0]))) {
      // Identifiers here can only be specifiers or a trailing return
      // type; keep skipping, but only across a short tail.
      if (open - j > 8) return false;
      continue;
    }
    if (IsPunct(t, '>') || IsPunct(t, '-') || IsPunct(t, ':') ||
        IsPunct(t, '<') || IsPunct(t, '*') || IsPunct(t, '&')) {
      if (open - j > 8) return false;
      continue;
    }
    break;
  }
  if (j == static_cast<size_t>(-1)) return false;
  if (IsPunct(toks[j], ']')) return true;
  if (IsPunct(toks[j], ')')) {
    int depth = 1;
    while (depth > 0) {
      if (j == 0) return false;
      --j;
      if (IsPunct(toks[j], ')')) ++depth;
      if (IsPunct(toks[j], '(')) --depth;
    }
    return j > 0 && IsPunct(toks[j - 1], ']');
  }
  return false;
}

// Splits a qualified name into (class prefix, last component). A name
// with no `::` yields an empty prefix.
void SplitQualified(const std::string& name, std::string* cls,
                    std::string* last) {
  const size_t sep = name.rfind("::");
  if (sep == std::string::npos) {
    cls->clear();
    *last = name;
  } else {
    *cls = name.substr(0, sep);
    *last = name.substr(sep + 2);
  }
}

// Extracts the lock names from a TKLUS_REQUIRES(...) argument list
// starting at the `(` at `open`: the last identifier of each
// comma-separated chunk (so `this->mu_` and `engine->mu_` both yield
// `mu_`). Returns one past the closing `)`.
size_t ParseRequiresArgs(const std::vector<Token>& toks, size_t open,
                         std::set<std::string>* locks) {
  int depth = 1;
  std::string last;
  size_t j = open + 1;
  for (; j < toks.size() && depth > 0; ++j) {
    if (IsPunct(toks[j], '(')) ++depth;
    if (IsPunct(toks[j], ')')) --depth;
    if (depth == 0) break;
    if (depth == 1 && IsPunct(toks[j], ',')) {
      if (!last.empty()) locks->insert(last);
      last.clear();
      continue;
    }
    if (toks[j].kind == Token::Kind::kIdent) last = toks[j].text;
  }
  if (!last.empty()) locks->insert(last);
  return j + 1;
}

// Walks left from an annotation token to the method it annotates:
// skips trailing specifiers (`const`, `noexcept`, `override`, `final`)
// and other annotation groups, then takes the identifier before the
// parameter list's `(`. Returns the qualified method name ("" = not
// attributable, e.g. the macro's own #define line).
std::string AnnotatedMethodBefore(const std::vector<Token>& toks,
                                  size_t anno) {
  size_t j = anno;
  while (j-- > 0) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::kIdent &&
        (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
         t.text == "final" || t.text == "mutable")) {
      continue;
    }
    if (IsPunct(t, ')')) {
      int depth = 1;
      size_t k = j;
      while (depth > 0) {
        if (k == 0) return "";
        --k;
        if (IsPunct(toks[k], ')')) ++depth;
        if (IsPunct(toks[k], '(')) --depth;
      }
      if (k == 0 || toks[k - 1].kind != Token::Kind::kIdent) return "";
      const std::string& ident = toks[k - 1].text;
      if (ident.rfind("TKLUS_", 0) == 0) {
        // Another annotation group; keep walking left of it.
        j = k - 1;
        continue;
      }
      // This is the parameter list; `ident` is the method.
      std::string candidate = ident;
      size_t p = k - 1;
      while (p >= 3 && IsPunct(toks[p - 1], ':') && IsPunct(toks[p - 2], ':') &&
             toks[p - 3].kind == Token::Kind::kIdent) {
        candidate = toks[p - 3].text + "::" + candidate;
        p -= 3;
      }
      return candidate;
    }
    return "";
  }
  return "";
}

}  // namespace

void BuildFileModel(SourceFile* file_ptr) {
  SourceFile& file = *file_ptr;
  const std::vector<Token>& toks = file.tokens;
  std::vector<FunctionLockModel> functions;
  file.guarded_fields.clear();
  file.method_annotations.clear();

  // Brace frames, classified as in the status-discipline rule: a frame
  // whose introducing statement contains a type or namespace keyword is
  // a declaration body, anything else is an executable block. The
  // outermost block frame is a function body. Class frames carry their
  // class name so field annotations and inline methods know their class;
  // lambda frames are marked so member accesses inside deferred bodies
  // can be exempted from guard-discipline.
  struct Frame {
    bool is_block;
    bool is_lambda;
    std::string class_name;  // nonempty only for class/struct frames
  };
  std::vector<Frame> frames;
  int open_blocks = 0;
  int lambda_blocks = 0;
  FunctionLockModel* current = nullptr;

  struct ActiveGuard {
    HeldGuard guard;
    size_t frame_count;  // frames.size() when declared; dies below that
  };
  std::vector<ActiveGuard> held;

  const auto held_snapshot = [&] {
    std::vector<HeldGuard> out;
    out.reserve(held.size());
    for (const ActiveGuard& g : held) out.push_back(g.guard);
    return out;
  };
  const auto enclosing_class = [&]() -> const std::string* {
    for (size_t f = frames.size(); f-- > 0;) {
      if (!frames[f].class_name.empty()) return &frames[f].class_name;
    }
    return nullptr;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, '{')) {
      bool is_block = true;
      std::string class_name;
      for (size_t j = i; j-- > 0;) {
        if (IsPunct(toks[j], ';') || IsPunct(toks[j], '{') ||
            IsPunct(toks[j], '}')) {
          break;
        }
        if (IsIdent(toks[j], "class") || IsIdent(toks[j], "struct") ||
            IsIdent(toks[j], "union") || IsIdent(toks[j], "enum") ||
            IsIdent(toks[j], "namespace")) {
          is_block = false;
          if (IsIdent(toks[j], "class") || IsIdent(toks[j], "struct")) {
            class_name = ClassNameBetween(toks, j, i);
          }
          break;
        }
      }
      const bool is_lambda = is_block && IsLambdaBody(toks, i);
      if (is_block && open_blocks == 0) {
        FunctionLockModel fn;
        fn.name = FunctionNameBefore(toks, i);
        fn.line = t.line;
        std::string cls, last;
        SplitQualified(fn.name, &cls, &last);
        if (cls.empty()) {
          const std::string* enc = enclosing_class();
          if (enc != nullptr) cls = *enc;
        }
        fn.class_name = cls;
        if (!cls.empty()) {
          std::string cls_last = cls;
          const size_t sep = cls.rfind("::");
          if (sep != std::string::npos) cls_last = cls.substr(sep + 2);
          fn.is_ctor_or_dtor = (last == cls_last);
        }
        functions.push_back(std::move(fn));
        current = &functions.back();
      }
      frames.push_back(Frame{is_block, is_lambda, std::move(class_name)});
      if (is_block) ++open_blocks;
      if (is_lambda) ++lambda_blocks;
      continue;
    }
    if (IsPunct(t, '}')) {
      if (!frames.empty()) {
        if (frames.back().is_block) --open_blocks;
        if (frames.back().is_lambda) --lambda_blocks;
        frames.pop_back();
        while (!held.empty() && held.back().frame_count > frames.size()) {
          held.pop_back();
        }
        if (open_blocks == 0) current = nullptr;
      }
      continue;
    }

    // Annotation collection runs at declaration scope (outside any
    // function body): field guards and method annotations.
    if (current == nullptr && t.kind == Token::Kind::kIdent) {
      if ((t.text == "TKLUS_GUARDED_BY" || t.text == "TKLUS_PT_GUARDED_BY") &&
          i + 1 < toks.size() && IsPunct(toks[i + 1], '(') && i > 0 &&
          toks[i - 1].kind == Token::Kind::kIdent) {
        const std::string* cls = enclosing_class();
        if (cls != nullptr) {
          std::set<std::string> args;
          ParseRequiresArgs(toks, i + 1, &args);
          if (!args.empty()) {
            file.guarded_fields.push_back(FieldGuard{
                *cls, toks[i - 1].text, *args.rbegin(), t.line});
          }
        }
        continue;
      }
      const bool is_requires = t.text == "TKLUS_REQUIRES" ||
                               t.text == "TKLUS_REQUIRES_SHARED";
      const bool is_no_ts = t.text == "TKLUS_NO_THREAD_SAFETY_ANALYSIS";
      if (is_requires || is_no_ts) {
        const std::string method = AnnotatedMethodBefore(toks, i);
        if (!method.empty()) {
          MethodAnnotation anno;
          std::string cls, last;
          SplitQualified(method, &cls, &last);
          if (cls.empty()) {
            const std::string* enc = enclosing_class();
            if (enc != nullptr) cls = *enc;
          }
          anno.class_name = cls;
          anno.method = last;
          anno.line = t.line;
          anno.no_thread_safety = is_no_ts;
          if (is_requires && i + 1 < toks.size() &&
              IsPunct(toks[i + 1], '(')) {
            ParseRequiresArgs(toks, i + 1, &anno.requires_locks);
          }
          file.method_annotations.push_back(std::move(anno));
        }
        continue;
      }
    }
    if (current == nullptr) continue;

    // Guard declaration: `MutexLock name(&... member ...);`. The bare
    // class name in a declaration (`MutexLock(Mutex*)`) has no variable
    // identifier before the `(` and never matches.
    if (IsGuardType(t) && i + 2 < toks.size() &&
        toks[i + 1].kind == Token::Kind::kIdent && IsPunct(toks[i + 2], '(')) {
      int depth = 1;
      size_t j = i + 3;
      std::string member;
      for (; j < toks.size() && depth > 0; ++j) {
        if (IsPunct(toks[j], '(')) ++depth;
        if (IsPunct(toks[j], ')')) --depth;
        if (depth > 0 && toks[j].kind == Token::Kind::kIdent) {
          member = toks[j].text;
        }
      }
      if (!member.empty()) {
        HeldGuard guard{member, t.text, !IsIdent(t, "ReaderMutexLock"),
                        t.line};
        current->acquisitions.push_back(GuardAcquire{guard, held_snapshot()});
        held.push_back(ActiveGuard{std::move(guard), frames.size()});
      }
      i = j - 1;  // continue after the closing `)`
      continue;
    }

    if (t.kind != Token::Kind::kIdent) continue;

    // Effect sites (heap allocation / string construction), as visible
    // at token level.
    const bool next_is_call =
        i + 1 < toks.size() && IsPunct(toks[i + 1], '(');
    const bool next_is_open =
        i + 1 < toks.size() &&
        (IsPunct(toks[i + 1], '(') || IsPunct(toks[i + 1], '<'));
    if (t.text == "new") {
      if (!(i > 0 && IsIdent(toks[i - 1], "operator"))) {
        current->effects.push_back(EffectSite{EffectSite::Kind::kAlloc,
                                              "new", t.line});
      }
    } else if (next_is_open &&
               (t.text == "make_unique" || t.text == "make_shared" ||
                t.text == "malloc" || t.text == "calloc" ||
                t.text == "realloc" || t.text == "strdup")) {
      current->effects.push_back(
          EffectSite{EffectSite::Kind::kAlloc, t.text, t.line});
    } else if (next_is_call && (t.text == "to_string" || t.text == "substr")) {
      current->effects.push_back(
          EffectSite{EffectSite::Kind::kString, t.text, t.line});
    } else if (t.text == "ostringstream" || t.text == "stringstream") {
      current->effects.push_back(
          EffectSite{EffectSite::Kind::kString, t.text, t.line});
    } else if (t.text == "string" && i >= 3 && IsPunct(toks[i - 1], ':') &&
               IsPunct(toks[i - 2], ':') && IsIdent(toks[i - 3], "std") &&
               i + 1 < toks.size() &&
               (toks[i + 1].kind == Token::Kind::kIdent ||
                IsPunct(toks[i + 1], '(') || IsPunct(toks[i + 1], '{'))) {
      // `std::string local`/`std::string(...)` construct; `std::string&`,
      // `std::string>` and `std::string::npos` do not.
      current->effects.push_back(
          EffectSite{EffectSite::Kind::kString, "std::string", t.line});
    }

    // Call site: `ident(` — the callee is the final identifier of the
    // chain. Keywords, guard declarations (handled above) and the header
    // of a UDL definition are not calls.
    if (next_is_call && !IsCallKeyword(t.text) && !IsGuardType(t)) {
      const bool udl_header =
          i >= 2 && toks[i - 1].kind == Token::Kind::kString &&
          toks[i - 1].text == "\"\"" && IsIdent(toks[i - 2], "operator");
      const bool ctor_after_new = i > 0 && IsIdent(toks[i - 1], "new");
      if (!udl_header && !ctor_after_new) {
        CallSite cs;
        cs.callee = t.text;
        cs.form = CallSite::Form::kUnqualified;
        cs.line = t.line;
        cs.in_lambda = lambda_blocks > 0;
        cs.held = held_snapshot();
        if (i > 0 && IsPunct(toks[i - 1], '.')) {
          cs.form = CallSite::Form::kMember;
          if (i > 1 && toks[i - 2].kind == Token::Kind::kIdent) {
            cs.qualifier = toks[i - 2].text;
          }
        } else if (i > 1 && IsPunct(toks[i - 1], '>') &&
                   IsPunct(toks[i - 2], '-')) {
          if (i > 2 && IsIdent(toks[i - 3], "this")) {
            cs.form = CallSite::Form::kThis;
          } else {
            cs.form = CallSite::Form::kMember;
            if (i > 2 && toks[i - 3].kind == Token::Kind::kIdent) {
              cs.qualifier = toks[i - 3].text;
            }
          }
        } else if (i > 1 && IsPunct(toks[i - 1], ':') &&
                   IsPunct(toks[i - 2], ':')) {
          cs.form = CallSite::Form::kQualified;
          if (i > 2 && toks[i - 3].kind == Token::Kind::kIdent) {
            cs.qualifier = toks[i - 3].text;
          }
        }
        if (!held.empty()) {
          current->calls.push_back(GuardedCall{cs.callee, cs.line, cs.held});
        }
        current->call_sites.push_back(std::move(cs));
      }
    }

    // Candidate member access: a `_`-suffixed identifier read through
    // `this` (explicitly or implicitly). Accesses through other
    // receivers are skipped — the token model cannot type them.
    if (t.text.size() > 1 && t.text.back() == '_' && !next_is_call) {
      bool via_this = true;
      if (i > 0) {
        if (IsPunct(toks[i - 1], '.')) {
          via_this = false;  // `obj.member_`
        } else if (i > 1 && IsPunct(toks[i - 1], '>') &&
                   IsPunct(toks[i - 2], '-')) {
          via_this = i > 2 && IsIdent(toks[i - 3], "this");
        } else if (i > 1 && IsPunct(toks[i - 1], ':') &&
                   IsPunct(toks[i - 2], ':')) {
          via_this = false;  // `Class::member_`
        }
      }
      if (via_this) {
        current->accesses.push_back(MemberAccess{
            t.text, t.line, lambda_blocks > 0, held_snapshot()});
      }
    }
  }
  file.functions = std::move(functions);
}

std::vector<FunctionLockModel> BuildLockModel(const SourceFile& file) {
  SourceFile copy = file;
  BuildFileModel(&copy);
  return std::move(copy.functions);
}

}  // namespace tklus::analyze
