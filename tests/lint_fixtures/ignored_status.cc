// Lint fixture: a fallible call silenced with a bare (void) cast, which
// would defeat [[nodiscard]] without leaving a greppable trace. The real
// tree must spell this status.IgnoreError().
namespace fixture {

struct Status {
  bool ok() const { return true; }
};

Status MightFail();

void Caller() {
  (void)MightFail();
}

}  // namespace fixture
