// Figure 7: effect of geohash encoding length (1..4) on query processing
// time, for radii 5/10/15/20 km. The paper finds longer encodings better
// at these radii (coarser cells force more per-point work; the finer cover
// costs little because cells are stored contiguously), settling on 4.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 7 — query time vs geohash encoding length",
                "longer encodings (finer cells) win at 5-20 km radii; "
                "length 4 adopted for the remaining experiments");
  // Cities here are spread wider than the default corpus (sigma 15 km, so
  // a metro area spans ~60 km) — the geohash length only matters once the
  // urban area is larger than a single fine-grained cell, which matches
  // the paper's continuously-sprawling tweet distribution.
  auto gen = bench::CorpusOptions(bench::ScaleFromEnv());
  gen.home_sigma_km = 15.0;
  gen.tweet_sigma_km = 5.0;
  const auto corpus = datagen::TweetGenerator::Generate(gen);
  datagen::WorkloadOptions wl;
  wl.queries_per_group = 10;  // "we issue 10 queries randomly chosen"
  const auto workload_all = MakeQueryWorkload(corpus, wl);
  const auto workload = datagen::FilterByKeywordCount(workload_all, 1);

  std::printf("%-8s", "length");
  for (const double r : {5.0, 10.0, 15.0, 20.0}) {
    std::printf(" r=%-4.0fkm ms", r);
  }
  std::printf("  candidates(r=10)\n");
  for (int length = 1; length <= 5; ++length) {
    TkLusEngine::Options opts;
    opts.geohash_length = length;
    auto engine = bench::MakeEngine(corpus.dataset, opts);
    std::printf("%-8d", length);
    double candidates_at_10 = 0;
    for (const double r : {5.0, 10.0, 15.0, 20.0}) {
      const auto stats = bench::RunQueries(
          *engine, bench::With(workload, r, 10, Semantics::kOr,
                               Ranking::kSum));
      if (r == 10.0) candidates_at_10 = stats.mean_candidates;
      std::printf(" %10.2f", stats.mean_ms);
    }
    std::printf("  %14.1f\n", candidates_at_10);
  }
  return 0;
}
