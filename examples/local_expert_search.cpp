// The introduction's motivating scenario: "Are there any good babysitters
// in Seoul?" — a location-dependent social search answered by finding
// local users rather than raw tweets. Runs against a synthetic corpus with
// planted local experts and checks the returned users against the
// generator's ground truth.
#include <cstdio>

#include "core/engine.h"
#include "datagen/relevance_oracle.h"
#include "datagen/tweet_generator.h"

using tklus::GeoPoint;
using tklus::TkLusEngine;
using tklus::TkLusQuery;
using tklus::datagen::RelevanceOracle;
using tklus::datagen::TweetGenerator;

int main() {
  // A mid-size synthetic corpus; city 5 in the built-in table is Seoul.
  TweetGenerator::Options gen;
  gen.num_tweets = 40000;
  gen.num_users = 1200;
  gen.num_cities = 8;
  gen.experts_per_city = 10;
  std::printf("generating %zu tweets across %d cities...\n", gen.num_tweets,
              gen.num_cities);
  auto corpus = TweetGenerator::Generate(gen);

  std::printf("building engine (metadata DB + hybrid index)...\n");
  auto engine = TkLusEngine::Build(corpus.dataset);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Ask for local "cafe" experts in Seoul (the generator's topic list is
  // POI-flavoured; "babysitter" stands in for any expertise keyword).
  const GeoPoint seoul{37.5665, 126.9780};
  TkLusQuery query;
  query.location = seoul;
  query.radius_km = 15.0;
  query.keywords = {"cafe"};
  query.k = 10;
  query.ranking = tklus::Ranking::kSum;

  auto result = (*engine)->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  RelevanceOracle oracle(&corpus);
  std::printf("\ntop-%d local users for \"%s\" within %.0f km of Seoul:\n",
              query.k, query.keywords[0].c_str(), query.radius_km);
  int rank = 1;
  for (const auto& user : result->users) {
    std::printf("  #%-2d user %-6lld score %.4f  %s\n", rank++,
                static_cast<long long>(user.uid), user.score,
                oracle.TrulyRelevant(user.uid, query)
                    ? "<- planted local expert"
                    : "");
  }
  std::printf("\nprecision vs planted ground truth: %.2f\n",
              oracle.TruePrecision(result->UserIds(), query));
  std::printf("query took %.2f ms over %zu candidate tweets\n",
              result->stats.elapsed_ms, result->stats.candidates);
  return 0;
}
