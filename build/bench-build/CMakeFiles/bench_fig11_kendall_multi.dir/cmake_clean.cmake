file(REMOVE_RECURSE
  "../bench/bench_fig11_kendall_multi"
  "../bench/bench_fig11_kendall_multi.pdb"
  "CMakeFiles/bench_fig11_kendall_multi.dir/bench_fig11_kendall_multi.cpp.o"
  "CMakeFiles/bench_fig11_kendall_multi.dir/bench_fig11_kendall_multi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_kendall_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
