# Empty dependencies file for scoring_param_test.
# This may be replaced when dependencies are built.
