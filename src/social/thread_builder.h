#ifndef TKLUS_SOCIAL_THREAD_BUILDER_H_
#define TKLUS_SOCIAL_THREAD_BUILDER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "model/post.h"
#include "storage/metadata_db.h"

namespace tklus {

// Level sizes of a tweet thread: level_sizes[0] == 1 is the root, and
// level_sizes[i] is |T_{i+1}| in the paper's 1-based notation.
struct ThreadShape {
  std::vector<uint64_t> level_sizes;

  int height() const { return static_cast<int>(level_sizes.size()); }
  uint64_t total_tweets() const {
    uint64_t n = 0;
    for (const uint64_t s : level_sizes) n += s;
    return n;
  }
};

// Popularity of a tweet whose thread has the given shape (Definition 4):
//   phi = epsilon                      if the thread is the root alone,
//   phi = sum_{i=2..n} |T_i| * (1/i)   otherwise.
// The paper's Fig. 2 example (levels 1,3,4,2) scores 3/2 + 4/3 + 2/4 = 10/3.
double ThreadPopularity(const ThreadShape& shape, double epsilon);

// Constructs tweet threads level-by-level through MetadataDb's rsid index —
// Algorithm 1. The depth cap `d` bounds the number of SELECT rounds ("a
// thread depth d is always set to constrain the construction process").
class ThreadBuilder {
 public:
  struct Options {
    int max_depth = 6;       // d in Alg. 1
    double epsilon = 0.1;    // Def. 4 smoothing, §VI-B1 sets it to 0.1
  };

  // Supplies reply sids the metadata DB does not know about (e.g. posts
  // still resident in the engine's delta index). Appends children of the
  // given sid to the vector; duplicates with the DB's own replies are
  // deduplicated by the builder.
  using ExtraChildrenFn = std::function<void(TweetId, std::vector<TweetId>*)>;

  // `db` may be nullptr, in which case every reply edge must come from the
  // extra-children hook (the ShardedEngine's ranking plane descends its
  // global in-memory children map this way).
  ThreadBuilder(MetadataDb* db, Options options)
      : db_(db), options_(options) {}
  explicit ThreadBuilder(MetadataDb* db) : ThreadBuilder(db, Options{}) {}

  // Level sizes of the thread rooted at `root_sid`, down to max_depth.
  Result<ThreadShape> BuildShape(TweetId root_sid);

  // Algorithm 1 end-to-end: popularity of the thread rooted at `root_sid`.
  Result<double> Popularity(TweetId root_sid);

  void set_extra_children(ExtraChildrenFn fn) { extra_children_ = std::move(fn); }

  const Options& options() const { return options_; }

 private:
  MetadataDb* db_;
  Options options_;
  ExtraChildrenFn extra_children_;
};

// In-memory thread construction from a children adjacency map
// (SocialGraph::children()). Used as the test oracle for ThreadBuilder and
// by the offline exact upper-bound precomputation, where the paper also
// constructs threads offline (§V-B).
ThreadShape BuildShapeInMemory(
    const std::unordered_map<TweetId, std::vector<TweetId>>& children,
    TweetId root_sid, int max_depth);

}  // namespace tklus

#endif  // TKLUS_SOCIAL_THREAD_BUILDER_H_
