// Fixture: naked pin-protocol calls outside PageGuard/BufferPool must
// trip `pin-discipline`.
#include "storage/buffer_pool.h"

namespace tklus {

Status TouchPage(BufferPool* pool, PageId id) {
  Result<Page*> page = pool->FetchPage(id);  // naked pin: must fire
  if (!page.ok()) return page.status();
  return pool->UnpinPage(id, false);  // naked unpin: must fire
}

}  // namespace tklus
