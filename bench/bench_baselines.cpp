// Baseline comparison (supporting §VII's positioning): TkLUS query latency
// through (a) the hybrid geohash index + metadata DB, (b) a centralized
// IR-tree retrieving candidates then ranked in memory, and (c) a naive
// full scan. Also reports the IR-tree's storage overhead.
#include <cstdio>

#include "baseline/irtree.h"
#include "baseline/naive_scan.h"
#include "bench_util.h"
#include "obs/stopwatch.h"

int main() {
  using namespace tklus;
  bench::Banner("Baselines — hybrid index vs IR-tree vs naive scan",
                "index-based evaluation beats scanning; the hybrid index "
                "matches the centralized IR-tree at laptop scale while "
                "remaining distributable");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  auto engine = bench::MakeEngine(corpus.dataset);

  Stopwatch build_timer;
  const IRTree irtree(&corpus.dataset);
  const double irtree_build_s = build_timer.ElapsedSeconds();
  build_timer.Restart();
  NaiveScanner scanner(&corpus.dataset);
  const double scanner_build_s = build_timer.ElapsedSeconds();
  std::printf("IR-tree build: %.2f s (%zu inverted entries); scanner prep: "
              "%.2f s\n\n",
              irtree_build_s, irtree.inverted_entry_count(),
              scanner_build_s);

  const auto workload = datagen::FilterByKeywordCount(
      MakeQueryWorkload(corpus, datagen::WorkloadOptions{}), 1);

  std::printf("%-10s %-12s %-12s %-12s\n", "radius km", "hybrid ms",
              "irtree ms", "naive ms");
  for (const double r : {5.0, 10.0, 20.0, 50.0}) {
    const auto queries =
        bench::With(workload, r, 10, Semantics::kOr, Ranking::kSum);
    const auto hybrid = bench::RunQueries(*engine, queries);

    double irtree_ms = 0, naive_ms = 0;
    for (const TkLusQuery& q : queries) {
      Stopwatch t;
      const auto candidates = irtree.RangeKeywordQuery(
          q.location, q.radius_km, q.keywords, q.semantics);
      (void)scanner.RankCandidates(q, candidates);
      irtree_ms += t.ElapsedMillis();
      t.Restart();
      (void)scanner.Process(q);
      naive_ms += t.ElapsedMillis();
    }
    std::printf("%-10.0f %-12.2f %-12.2f %-12.2f\n", r, hybrid.mean_ms,
                irtree_ms / queries.size(), naive_ms / queries.size());
  }
  return 0;
}
