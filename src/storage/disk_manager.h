#ifndef TKLUS_STORAGE_DISK_MANAGER_H_
#define TKLUS_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "storage/page.h"

namespace tklus {

// Reads and writes fixed-size pages of a single database file and counts
// physical I/Os. All experiments that report "I/Os" (thread construction,
// buffer-pool ablations) read these counters.
//
// Integrity: every written page's CRC32 is tracked and persisted to a
// sidecar file (`<path>.crc`, written by Sync); ReadPage re-derives the
// CRC and returns kCorruption on any mismatch, so a flipped byte in the
// database file is detected instead of being served as a valid row.
// Reopening a database whose sidecar is missing (files from before
// checksumming existed) disables verification for that file.
class DiskManager {
 public:
  // I/O counters. The fields are relaxed atomics (with value-copy
  // semantics preserved) because the query path reads them for per-query
  // deltas while concurrent readers bump them under the buffer pool's
  // latch — an unsynchronized plain read would be a data race.
  struct Stats {
    std::atomic<uint64_t> page_reads{0};
    std::atomic<uint64_t> page_writes{0};
    std::atomic<uint64_t> checksum_failures{0};

    Stats() = default;
    Stats(const Stats& o)
        : page_reads(o.page_reads.load(std::memory_order_relaxed)),
          page_writes(o.page_writes.load(std::memory_order_relaxed)),
          checksum_failures(
              o.checksum_failures.load(std::memory_order_relaxed)) {}
    Stats& operator=(const Stats& o) {
      page_reads.store(o.page_reads.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      page_writes.store(o.page_writes.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      checksum_failures.store(
          o.checksum_failures.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      return *this;
    }
  };

  // Creates (truncating if `truncate`) or opens the file at `path`.
  static Result<DiskManager> Open(const std::string& path,
                                  bool truncate = true);

  DiskManager(DiskManager&&) = default;
  DiskManager& operator=(DiskManager&&) = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  ~DiskManager();

  // Allocates a fresh page id at the end of the file.
  PageId AllocatePage();

  Status ReadPage(PageId page_id, char* out);
  Status WritePage(PageId page_id, const char* data);

  // Flushes the data file and persists the checksum sidecar (atomically:
  // temp + rename). Call after a batch of writes that must be reopenable.
  Status Sync();

  // Wires a shared fault injector into this file's I/O path (sites
  // faults::kDiskRead / faults::kDiskWrite); nullptr detaches.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }

  PageId num_pages() const { return next_page_id_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  const std::string& path() const { return path_; }
  bool verifies_checksums() const { return verify_checksums_; }

 private:
  DiskManager() = default;

  std::string path_;
  std::fstream file_;
  PageId next_page_id_ = 0;
  Stats stats_;
  // CRC32 of the last data written to each page (zero-page CRC for pages
  // allocated but never written). Empty when verification is disabled.
  std::vector<uint32_t> page_crc_;
  bool verify_checksums_ = true;
  FaultInjector* faults_ = nullptr;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_DISK_MANAGER_H_
