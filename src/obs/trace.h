#ifndef TKLUS_OBS_TRACE_H_
#define TKLUS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.h"

namespace tklus {

// One node of a per-query trace tree: a named interval with a counters
// map. Span ids are 1-based indexes into Trace::spans (id == index + 1);
// parent == 0 marks a root.
struct TraceSpan {
  uint32_t id = 0;
  uint32_t parent = 0;
  std::string name;
  uint64_t start_ns = 0;     // clock-relative, monotone within the trace
  uint64_t duration_ns = 0;  // 0 until the span ends
  std::vector<std::pair<std::string, uint64_t>> counters;

  // Counter value by name; 0 when absent.
  uint64_t Counter(std::string_view counter_name) const;
};

// The recorded tree of one query, reachable via QueryStats::trace. Spans
// appear in start order, so spans[0] is the root when the trace is
// non-empty and every span's parent precedes it.
struct Trace {
  std::vector<TraceSpan> spans;

  const TraceSpan* Find(std::string_view name) const;  // first by name
  std::vector<const TraceSpan*> ChildrenOf(uint32_t parent_id) const;
  // Sum of `counter_name` over every span (stage counters are disjoint,
  // so this is the whole-query total).
  uint64_t CounterTotal(std::string_view counter_name) const;
  // Compact JSON array of span objects, for bench output and debugging.
  std::string ToJson() const;
};

// Records hierarchical spans into a Trace through RAII guards:
//
//   Trace trace;
//   Tracer tracer(&trace);
//   {
//     Tracer::Span stage = tracer.StartSpan("sid_resolve");
//     stage.AddCounter("db_page_reads", delta);
//   }  // duration captured here
//
// A default-constructed Tracer (or one built over nullptr) is disabled:
// StartSpan returns an inert guard and every operation is a cheap
// early-out, so the query path pays almost nothing when tracing is off.
// The clock is injected (obs/clock.h) so tests drive time by hand.
//
// Not thread-safe: one Tracer records one query on one thread. (Stage
// spans nest via an explicit parent stack; sharing it across threads
// would interleave unrelated stages.)
class Tracer {
 public:
  // An RAII span guard. Move-only; ends the span on destruction (or on
  // an explicit End, after which further calls are no-ops).
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept
        : tracer_(other.tracer_), id_(other.id_) {
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        End();
        tracer_ = other.tracer_;
        id_ = other.id_;
        other.tracer_ = nullptr;
        other.id_ = 0;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    // Adds `delta` to the span's named counter (created at 0 on first use).
    void AddCounter(std::string_view name, uint64_t delta);
    // Closes the span (captures duration, pops it off the parent stack).
    void End();
    bool active() const { return tracer_ != nullptr; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, uint32_t id) : tracer_(tracer), id_(id) {}

    Tracer* tracer_ = nullptr;
    uint32_t id_ = 0;
  };

  Tracer() = default;  // disabled
  explicit Tracer(Trace* trace, const Clock* clock = DefaultClock())
      : trace_(trace), clock_(clock) {}

  bool enabled() const { return trace_ != nullptr; }

  // Opens a span under the innermost open span (or as a root).
  Span StartSpan(std::string_view name);

 private:
  void EndSpan(uint32_t id);
  void AddCounter(uint32_t id, std::string_view name, uint64_t delta);

  Trace* trace_ = nullptr;
  const Clock* clock_ = nullptr;
  std::vector<uint32_t> open_;  // stack of open span ids
};

}  // namespace tklus

#endif  // TKLUS_OBS_TRACE_H_
