// Fixture: the sanctioned pattern — all file writes flow through fileio's
// atomic writers. The words ofstream / fopen / ::write in this comment
// prove comment immunity, and the stream member call below proves that
// in-memory `.write(...)` never fires.
namespace tklus {

Status DumpState(const std::string& path, const std::string& payload) {
  std::ostringstream out;
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return fileio::WriteFileAtomic(path, out.str());
}

}  // namespace tklus
