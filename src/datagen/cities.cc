#include "datagen/cities.h"

namespace tklus {
namespace datagen {

const std::vector<City>& WorldCities() {
  static const std::vector<City>* kCities = new std::vector<City>{
      {"toronto", {43.6839, -79.3736}, 10.0},  // the paper's Fig. 1 city
      {"newyork", {40.7128, -74.0060}, 9.0},
      {"losangeles", {34.0522, -118.2437}, 8.0},
      {"london", {51.5074, -0.1278}, 7.5},
      {"paris", {48.8566, 2.3522}, 7.0},
      {"seoul", {37.5665, 126.9780}, 6.5},  // the intro's babysitter city
      {"tokyo", {35.6762, 139.6503}, 6.0},
      {"sanfrancisco", {37.7749, -122.4194}, 5.5},
      {"chicago", {41.8781, -87.6298}, 5.0},
      {"houston", {29.7604, -95.3698}, 4.5},  // AOL example query city
      {"berlin", {52.5200, 13.4050}, 4.0},
      {"madrid", {40.4168, -3.7038}, 3.5},
      {"rome", {41.9028, 12.4964}, 3.0},
      {"sydney", {-33.8688, 151.2093}, 2.8},
      {"singapore", {1.3521, 103.8198}, 2.6},
      {"saopaulo", {-23.5505, -46.6333}, 2.4},  // near the Table IV coordinate
      {"mexicocity", {19.4326, -99.1332}, 2.2},
      {"amsterdam", {52.3676, 4.9041}, 2.0},
      {"copenhagen", {55.6761, 12.5683}, 1.8},  // the authors' neighbourhood
      {"istanbul", {41.0082, 28.9784}, 1.6},
  };
  return *kCities;
}

Gazetteer MakeCityGazetteer() {
  Gazetteer gazetteer;
  for (const City& city : WorldCities()) {
    gazetteer.Add(city.name, city.center);
  }
  return gazetteer;
}

}  // namespace datagen
}  // namespace tklus
