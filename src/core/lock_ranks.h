#ifndef TKLUS_CORE_LOCK_RANKS_H_
#define TKLUS_CORE_LOCK_RANKS_H_

// Lock ranks for the engine's runtime deadlock witness
// (common/mutex.h, built with -DTKLUS_DEADLOCK_DEBUG=ON). Ranks must
// strictly increase along every permitted acquisition chain; the witness
// aborts any thread that acquires a rank <= one it already holds.
//
// This is the same DAG the static analyzer checks lexically — declared in
// tools/analyze/lockorder.conf — so keep the two in sync:
//
//   order append_mu_ merge_mu_ mu_     (10 -> 20 -> 30)
//   order append_mu_ merge_wake_mu_    (10 -> 40)
//
// Gaps between ranks leave room to slot a new lock into the middle of a
// chain without renumbering.

namespace tklus::lockrank {

inline constexpr int kAppendMu = 10;     // Engine::append_mu_
inline constexpr int kMergeMu = 20;      // Engine::merge_mu_
inline constexpr int kEngineMu = 30;     // Engine::mu_ (innermost)
inline constexpr int kMergeWakeMu = 40;  // Engine::merge_wake_mu_

}  // namespace tklus::lockrank

#endif  // TKLUS_CORE_LOCK_RANKS_H_
