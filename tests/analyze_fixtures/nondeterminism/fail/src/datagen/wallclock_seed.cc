// Fixture: libc randomness and wall-clock seeds must trip
// `nondeterminism`.
#include <cstdlib>
#include <ctime>

namespace tklus {

int WeakDraw() {
  srand(static_cast<unsigned>(time(nullptr)));  // both must fire
  return rand();                                // must fire
}

}  // namespace tklus
