file(REMOVE_RECURSE
  "CMakeFiles/tklus_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/tklus_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/tklus_text.dir/stopwords.cc.o"
  "CMakeFiles/tklus_text.dir/stopwords.cc.o.d"
  "CMakeFiles/tklus_text.dir/tokenizer.cc.o"
  "CMakeFiles/tklus_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/tklus_text.dir/vocabulary.cc.o"
  "CMakeFiles/tklus_text.dir/vocabulary.cc.o.d"
  "libtklus_text.a"
  "libtklus_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
