#ifndef TKLUS_COMMON_ZIPF_H_
#define TKLUS_COMMON_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace tklus {

// Zipf-distributed sampler over ranks 0..n-1 with exponent s:
// P(rank = i) ∝ 1 / (i + 1)^s. Uses an inverse-CDF table (O(log n) per
// sample), which is exact and fast enough for corpus generation.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first cdf >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

  // Probability mass of a rank (for tests).
  double Pmf(size_t rank) const {
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace tklus

#endif  // TKLUS_COMMON_ZIPF_H_
