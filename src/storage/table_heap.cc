#include "storage/table_heap.h"

#include <functional>

#include "storage/page_guard.h"

namespace tklus {

// Page layout: u32 record_count, u32 unused, i64 next_page, then densely
// packed fixed-size records from byte 16. Pages are explicitly chained
// because heap pages interleave with index pages on a shared disk file.
namespace {
constexpr size_t kCountOff = 0;
constexpr size_t kNextOff = 8;
constexpr size_t kHeaderSize = 16;
}  // namespace

Result<TableHeap> TableHeap::Create(BufferPool* pool, size_t record_size) {
  if (record_size == 0 || record_size > kPageSize - kHeaderSize) {
    return Status::InvalidArgument("record size does not fit a page");
  }
  TableHeap heap(pool, record_size);
  Result<PageGuard> page = PageGuard::New(pool);
  if (!page.ok()) return page.status();
  (*page)->WriteAt<uint32_t>(kCountOff, 0);
  (*page)->WriteAt<int64_t>(kNextOff, kInvalidPageId);
  heap.first_page_ = heap.last_page_ = page->page_id();
  return heap;
}

TableHeap TableHeap::Open(BufferPool* pool, size_t record_size,
                          PageId first_page, PageId last_page,
                          uint64_t record_count) {
  TableHeap heap(pool, record_size);
  heap.first_page_ = first_page;
  heap.last_page_ = last_page;
  heap.record_count_ = record_count;
  return heap;
}

Result<Rid> TableHeap::Insert(const char* record) {
  Result<PageGuard> last = PageGuard::Fetch(pool_, last_page_);
  if (!last.ok()) return last.status();
  PageGuard page = std::move(*last);
  uint32_t count = page->ReadAt<uint32_t>(kCountOff);
  if (count >= records_per_page_) {
    Result<PageGuard> fresh = PageGuard::New(pool_);
    if (!fresh.ok()) return fresh.status();
    (*fresh)->WriteAt<uint32_t>(kCountOff, 0);
    (*fresh)->WriteAt<int64_t>(kNextOff, kInvalidPageId);
    page->WriteAt<int64_t>(kNextOff, fresh->page_id());
    page.MarkDirty();
    // Hand the guard over to the fresh page; the old last page unpins
    // here (dirty), with no gap an early return could leak through.
    page = std::move(*fresh);
    last_page_ = page.page_id();
    count = 0;
  }
  const size_t off = kHeaderSize + count * record_size_;
  std::memcpy(page->data() + off, record, record_size_);
  page->WriteAt<uint32_t>(kCountOff, count + 1);
  page.MarkDirty();
  ++record_count_;
  return Rid{page.page_id(), count};
}

Status TableHeap::Get(Rid rid, char* out) {
  Result<PageGuard> page = PageGuard::Fetch(pool_, rid.page_id);
  if (!page.ok()) return page.status();
  const uint32_t count = (*page)->ReadAt<uint32_t>(kCountOff);
  if (rid.slot >= count) {
    return Status::OutOfRange("slot past end of page");
  }
  std::memcpy(out, (*page)->data() + kHeaderSize + rid.slot * record_size_,
              record_size_);
  return Status::Ok();
}

Status TableHeap::Scan(const std::function<void(Rid, const char*)>& fn) {
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    Result<PageGuard> page = PageGuard::Fetch(pool_, pid);
    if (!page.ok()) return page.status();
    Page* p = page->get();
    const uint32_t count = p->ReadAt<uint32_t>(kCountOff);
    for (uint32_t s = 0; s < count; ++s) {
      fn(Rid{pid, s}, p->data() + kHeaderSize + s * record_size_);
    }
    pid = p->ReadAt<int64_t>(kNextOff);
  }
  return Status::Ok();
}

}  // namespace tklus
