// Fixture: `value_` is declared TKLUS_GUARDED_BY(mu_), but Get reads it
// with no lock held, no TKLUS_REQUIRES annotation, and no caller that
// could vouch for the lock — the core unguarded-access finding.
namespace tklus {

class Widget {
 public:
  int Get() const { return value_; }  // must fire: mu_ not held

 private:
  Mutex mu_;
  int value_ TKLUS_GUARDED_BY(mu_) = 0;
};

}  // namespace tklus
