// Fixture: the annotated wrapper type is the sanctioned spelling. The
// mention of std::mutex in this comment proves comment immunity.
namespace tklus {

class Counters {
 private:
  Mutex mu_;
};

}  // namespace tklus
