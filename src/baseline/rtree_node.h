#ifndef TKLUS_BASELINE_RTREE_NODE_H_
#define TKLUS_BASELINE_RTREE_NODE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/rtree.h"

namespace tklus {

// Internal node structure shared between RTree and IRTree (which attaches
// inverted files to nodes). Not part of the public API.
struct RTree::Node {
  BoundingBox mbr{90.0, -90.0, 180.0, -180.0};  // empty (inverted) box
  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;  // internal
  std::vector<Entry> entries;                   // leaf
  bool is_leaf = true;

  // IR-tree annotation: terms present in this subtree. For leaves, term ->
  // per-entry term frequency aligned with `entries` index; for internal
  // nodes, term -> child indices containing the term.
  std::unordered_map<std::string, std::vector<std::pair<int, int>>>
      inverted_file;

  void GrowMbr(const GeoPoint& p) {
    if (p.lat < mbr.min_lat) mbr.min_lat = p.lat;
    if (p.lat > mbr.max_lat) mbr.max_lat = p.lat;
    if (p.lon < mbr.min_lon) mbr.min_lon = p.lon;
    if (p.lon > mbr.max_lon) mbr.max_lon = p.lon;
  }
  void GrowMbr(const BoundingBox& box) {
    if (box.min_lat < mbr.min_lat) mbr.min_lat = box.min_lat;
    if (box.max_lat > mbr.max_lat) mbr.max_lat = box.max_lat;
    if (box.min_lon < mbr.min_lon) mbr.min_lon = box.min_lon;
    if (box.max_lon > mbr.max_lon) mbr.max_lon = box.max_lon;
  }
};

}  // namespace tklus

#endif  // TKLUS_BASELINE_RTREE_NODE_H_
