#ifndef TKLUS_CORE_SHARD_ROUTER_H_
#define TKLUS_CORE_SHARD_ROUTER_H_

#include <string>
#include <vector>

#include "model/dataset.h"
#include "model/post.h"

namespace tklus {

// Deterministic geohash-cell -> shard ownership for the ShardedEngine.
// The shard key is the paper's spatial partition unit (§VI-B2): the
// geohash cell a post is indexed under. Every cell is owned by exactly
// one shard (FNV-1a over the cell string, mod N), so the per-shard
// postings lists partition the global lists — the property the
// scatter-gather exactness argument rests on (DESIGN.md §16).
//
// Stateless and trivially copyable; the same routing runs at build time
// (partitioning the dataset), append time (routing sub-batches) and query
// time (assigning cover cells to shards), which is what keeps data
// placement and query fan-out from ever drifting apart.
class ShardRouter {
 public:
  explicit ShardRouter(int num_shards) : num_shards_(num_shards) {}

  int num_shards() const { return num_shards_; }

  // Owning shard of one geohash cell.
  int OwnerOfCell(const std::string& cell) const;

  // Owning shard of one post: the cell of its location at
  // `geohash_length`. Untagged posts never enter the spatial index, so
  // any deterministic placement is correct for them; they route by sid to
  // spread metadata/WAL volume.
  int OwnerOfPost(const Post& post, int geohash_length) const;

  // Splits a query cover into per-shard cell lists (index = shard).
  // Within each shard the cells keep the cover's order, so every shard
  // fetches a sorted sub-cover.
  std::vector<std::vector<std::string>> PartitionCells(
      const std::vector<std::string>& cells) const;

  // Splits a batch into per-shard sub-batches, preserving sid order
  // within each shard.
  std::vector<Dataset> PartitionPosts(const Dataset& posts,
                                      int geohash_length) const;

 private:
  int num_shards_;
};

}  // namespace tklus

#endif  // TKLUS_CORE_SHARD_ROUTER_H_
