// Table II: top-10 frequent keywords of the corpus. The paper's Table II
// lists restaurant, game, cafe, shop, hotel, club, coffee, film, pizza,
// mall; the generator plants the same head (stemmed forms are printed).
#include <cstdio>

#include "bench_util.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

int main() {
  using namespace tklus;
  bench::Banner("Table II — top-10 frequent keywords",
                "head of the term distribution: restaurant, game, cafe, "
                "shop, hotel, club, coffee, film, pizza, mall");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  const Vocabulary vocab = corpus.dataset.BuildVocabulary(Tokenizer());
  std::printf("%-5s %-16s %s\n", "rank", "keyword(stem)", "frequency");
  int rank = 1;
  for (const auto& [term, freq] : vocab.TopTerms(10)) {
    std::printf("%-5d %-16s %llu\n", rank++, term.c_str(),
                static_cast<unsigned long long>(freq));
  }
  std::printf("\nvocabulary: %zu distinct terms, %llu occurrences\n",
              vocab.size(),
              static_cast<unsigned long long>(vocab.total_occurrences()));
  return 0;
}
