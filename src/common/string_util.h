#ifndef TKLUS_COMMON_STRING_UTIL_H_
#define TKLUS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tklus {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// ASCII lowercase copy.
std::string AsciiToLower(std::string_view s);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Human-readable byte count, e.g. "3.5 MiB".
std::string HumanBytes(uint64_t bytes);

}  // namespace tklus

#endif  // TKLUS_COMMON_STRING_UTIL_H_
