#include "core/bounds.h"

#include <algorithm>

#include "social/thread_builder.h"

namespace tklus {

UpperBoundRegistry UpperBoundRegistry::Build(const Dataset& dataset,
                                             const SocialGraph& graph,
                                             const Tokenizer& tokenizer,
                                             Options options) {
  UpperBoundRegistry registry;

  // Hot keywords: the most frequent terms in the corpus (Table II).
  const Vocabulary vocab = dataset.BuildVocabulary(tokenizer);
  const auto top = vocab.TopTerms(options.num_hot_keywords);
  for (const auto& [term, freq] : top) {
    registry.hot_bounds_.emplace(term, 0.0);
  }

  // One offline pass: thread score per tweet; fold into global and
  // per-term maxima.
  const auto& children = graph.children();
  for (const Post& post : dataset.posts()) {
    const ThreadShape shape =
        BuildShapeInMemory(children, post.sid, options.max_depth);
    const double popularity = ThreadPopularity(shape, options.epsilon);
    registry.global_bound_ = std::max(registry.global_bound_, popularity);
    if (registry.hot_bounds_.empty()) continue;
    for (const std::string& term : tokenizer.Tokenize(post.text)) {
      const auto it = registry.hot_bounds_.find(term);
      if (it != registry.hot_bounds_.end()) {
        it->second = std::max(it->second, popularity);
      }
    }
  }
  return registry;
}

double UpperBoundRegistry::TermBound(const std::string& term) const {
  const auto it = hot_bounds_.find(term);
  return it == hot_bounds_.end() ? global_bound_ : it->second;
}

double UpperBoundRegistry::QueryBound(const std::vector<std::string>& terms,
                                      bool conjunctive,
                                      bool use_hot_bounds) const {
  if (!use_hot_bounds || terms.empty()) return global_bound_;
  double bound = conjunctive ? global_bound_ : 0.0;
  bool any_hot = false;
  for (const std::string& term : terms) {
    const double term_bound = TermBound(term);
    any_hot = any_hot || IsHotKeyword(term);
    bound = conjunctive ? std::min(bound, term_bound)
                        : std::max(bound, term_bound);
  }
  // "For queries without any hot keyword, global upper bound popularity is
  // still used."
  if (!any_hot) return global_bound_;
  return bound;
}

}  // namespace tklus
