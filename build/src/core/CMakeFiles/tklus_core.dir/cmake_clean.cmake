file(REMOVE_RECURSE
  "CMakeFiles/tklus_core.dir/bounds.cc.o"
  "CMakeFiles/tklus_core.dir/bounds.cc.o.d"
  "CMakeFiles/tklus_core.dir/engine.cc.o"
  "CMakeFiles/tklus_core.dir/engine.cc.o.d"
  "CMakeFiles/tklus_core.dir/federation.cc.o"
  "CMakeFiles/tklus_core.dir/federation.cc.o.d"
  "CMakeFiles/tklus_core.dir/kendall.cc.o"
  "CMakeFiles/tklus_core.dir/kendall.cc.o.d"
  "CMakeFiles/tklus_core.dir/query_processor.cc.o"
  "CMakeFiles/tklus_core.dir/query_processor.cc.o.d"
  "CMakeFiles/tklus_core.dir/thread_tracker.cc.o"
  "CMakeFiles/tklus_core.dir/thread_tracker.cc.o.d"
  "libtklus_core.a"
  "libtklus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
