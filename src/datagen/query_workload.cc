#include "datagen/query_workload.h"

#include "common/rng.h"
#include "datagen/text_model.h"

namespace tklus {
namespace datagen {

std::vector<TkLusQuery> MakeQueryWorkload(const GeneratedCorpus& corpus,
                                          const WorkloadOptions& options) {
  Rng rng(options.seed);
  std::vector<TkLusQuery> workload;
  workload.reserve(3 * options.queries_per_group);
  const auto& topics = TopicWords();
  const auto& posts = corpus.dataset.posts();

  const auto sample_location = [&]() -> GeoPoint {
    if (posts.empty()) return GeoPoint{0, 0};
    return posts[rng.UniformInt(posts.size())].location;
  };
  const auto base_query = [&]() {
    TkLusQuery q;
    q.location = sample_location();
    q.radius_km = options.radius_km;
    q.k = options.k;
    q.semantics = options.semantics;
    q.ranking = options.ranking;
    return q;
  };
  // Hot topics are the Table-II head of the topic list.
  const size_t num_hot = std::min<size_t>(10, topics.size());

  for (int i = 0; i < options.queries_per_group; ++i) {
    TkLusQuery q = base_query();
    q.keywords = {topics[rng.UniformInt(topics.size())]};
    workload.push_back(std::move(q));
  }
  for (int i = 0; i < options.queries_per_group; ++i) {
    TkLusQuery q = base_query();
    const std::string& topic = topics[rng.UniformInt(num_hot)];
    const auto modifiers = ModifiersForTopic(topic);
    q.keywords = {topic, modifiers[rng.UniformInt(modifiers.size())]};
    workload.push_back(std::move(q));
  }
  for (int i = 0; i < options.queries_per_group; ++i) {
    TkLusQuery q = base_query();
    const std::string& topic = topics[rng.UniformInt(num_hot)];
    const auto modifiers = ModifiersForTopic(topic);
    const std::string& city =
        corpus.city_names.empty()
            ? std::string("toronto")
            : corpus.city_names[rng.UniformInt(corpus.city_names.size())];
    q.keywords = {modifiers[rng.UniformInt(modifiers.size())], topic, city};
    workload.push_back(std::move(q));
  }
  return workload;
}

std::vector<TkLusQuery> FilterByKeywordCount(
    const std::vector<TkLusQuery>& workload, size_t num_keywords) {
  std::vector<TkLusQuery> out;
  for (const TkLusQuery& q : workload) {
    if (q.keywords.size() == num_keywords) out.push_back(q);
  }
  return out;
}

}  // namespace datagen
}  // namespace tklus
