#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"
#include "text/stopwords.h"

namespace tklus {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    // Skip separators; handle @mentions and URLs at token starts.
    while (i < n && !IsWordChar(text[i]) && text[i] != '@' && text[i] != '#') {
      ++i;
    }
    if (i >= n) break;

    bool drop_token = false;
    if (text[i] == '@') {
      drop_token = options_.strip_mentions;
      ++i;
      if (i >= n || !IsWordChar(text[i])) continue;
    } else if (text[i] == '#') {
      ++i;  // hashtags keep their word
      if (i >= n || !IsWordChar(text[i])) continue;
    }

    const size_t start = i;
    while (i < n && IsWordChar(text[i])) ++i;
    std::string token(text.substr(start, i - start));

    // URL detection: "http"/"https" scheme token followed by "://...".
    if (options_.strip_urls && (token == "http" || token == "https") &&
        i + 2 < n && text[i] == ':' && text[i + 1] == '/' &&
        text[i + 2] == '/') {
      // Swallow the rest of the URL (until whitespace).
      while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      continue;
    }
    if (drop_token) continue;

    if (options_.lowercase) token = AsciiToLower(token);
    if (options_.remove_stopwords && IsStopWord(token)) continue;
    if (options_.stem) token = stemmer_.Stem(token);
    if (static_cast<int>(token.size()) < options_.min_token_length) continue;
    out.push_back(std::move(token));
  }
  return out;
}

std::unordered_map<std::string, int> Tokenizer::TermFrequencies(
    std::string_view text) const {
  std::unordered_map<std::string, int> freq;
  for (std::string& term : Tokenize(text)) {
    ++freq[std::move(term)];
  }
  return freq;
}

}  // namespace tklus
