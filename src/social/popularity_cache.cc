#include "social/popularity_cache.h"

#include <algorithm>

namespace tklus {

PopularityCache::PopularityCache(Options options) : options_(options) {
  const size_t shard_count = std::max<size_t>(1, options_.shards);
  options_.capacity = std::max<size_t>(shard_count, options_.capacity);
  per_shard_capacity_ = options_.capacity / shard_count;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<double> PopularityCache::Get(int64_t root_sid, int depth,
                                           double epsilon) {
  const uint64_t gen = generation();
  Shard& shard = ShardFor(root_sid);
  MutexLock lock(&shard.mu);
  const auto it = shard.entries.find(root_sid);
  if (it != shard.entries.end() && it->second.generation == gen &&
      it->second.depth == depth && it->second.epsilon == epsilon) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.phi;
  }
  if (it != shard.entries.end() && it->second.generation != gen) {
    // Lazy epoch cleanup: stale entries never satisfy a Get, so reclaim
    // the slot on sight rather than sweeping on Invalidate.
    shard.entries.erase(it);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void PopularityCache::Put(int64_t root_sid, int depth, double epsilon,
                          uint64_t generation, double phi) {
  if (generation != this->generation()) return;  // computed pre-append
  Shard& shard = ShardFor(root_sid);
  MutexLock lock(&shard.mu);
  const auto it = shard.entries.find(root_sid);
  if (it == shard.entries.end() &&
      shard.entries.size() >= per_shard_capacity_) {
    shard.entries.erase(shard.entries.begin());
  }
  shard.entries[root_sid] = Entry{depth, epsilon, generation, phi};
}

size_t PopularityCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace tklus
