// Fixture: the same call shape as the fail tree, but the reachable
// helper is pure arithmetic — nothing for hotpath-purity to flag.
namespace tklus {

double Leaf(int n) { return n > 0 ? 1.0 / n : 0.0; }

class Engine {
 public:
  double Score(int n) { return Leaf(n); }
};

}  // namespace tklus
