#ifndef TKLUS_GEO_CIRCLE_COVER_H_
#define TKLUS_GEO_CIRCLE_COVER_H_

#include <string>
#include <vector>

#include "geo/point.h"

namespace tklus {

// GeoHashCircleQuery (Alg. 4/5, line 1): the set of geohash cells of a
// fixed character `length` that completely covers the disk of radius
// `radius_km` around `center`. Implemented as a breadth-first flood fill
// from the centre cell over 8-neighbours, keeping every cell whose
// bounding box comes within `radius_km` of the centre. The result is
// sorted (Z-order == lexicographic for equal-length geohashes), matching
// the paper's observation that covered cells form contiguous key ranges.
std::vector<std::string> GeohashCircleCover(const GeoPoint& center,
                                            double radius_km, int length);

// Cover quality diagnostics: total covered cell area divided by the circle
// area (>= 1; closer to 1 is tighter). Used in tests and ablations.
double CoverAreaRatio(const std::vector<std::string>& cells,
                      const GeoPoint& center, double radius_km);

}  // namespace tklus

#endif  // TKLUS_GEO_CIRCLE_COVER_H_
