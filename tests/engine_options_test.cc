#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/naive_scan.h"
#include "core/engine.h"
#include "datagen/tweet_generator.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

GeneratedCorpus SmallCorpus() {
  TweetGenerator::Options opts;
  opts.num_users = 200;
  opts.num_tweets = 5000;
  opts.num_cities = 3;
  opts.experts_per_city = 5;
  opts.experts_per_topic = 2;
  return TweetGenerator::Generate(opts);
}

TkLusQuery HotelQuery(const GeneratedCorpus& corpus) {
  TkLusQuery q;
  q.location = corpus.city_centers[0];
  q.radius_km = 12.0;
  q.keywords = {"hotel"};
  q.k = 5;
  return q;
}

// Every geohash length must produce the oracle ranking — the cover and
// postings layout change, the answer must not.
class GeohashLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(GeohashLengthTest, MatchesOracleAtEveryLength) {
  const GeneratedCorpus corpus = SmallCorpus();
  const NaiveScanner scanner(&corpus.dataset);
  TkLusEngine::Options opts;
  opts.geohash_length = GetParam();
  auto engine = TkLusEngine::Build(corpus.dataset, opts);
  ASSERT_TRUE(engine.ok());
  const TkLusQuery q = HotelQuery(corpus);
  auto got = (*engine)->Query(q);
  ASSERT_TRUE(got.ok());
  const QueryResult want = scanner.Process(q);
  ASSERT_EQ(got->users.size(), want.users.size());
  for (size_t i = 0; i < want.users.size(); ++i) {
    EXPECT_EQ(got->users[i].uid, want.users[i].uid) << "rank " << i;
    EXPECT_NEAR(got->users[i].score, want.users[i].score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, GeohashLengthTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Scoring-parameter combinations keep engine == oracle (both sides take
// the same options).
struct ParamCase {
  double alpha;
  double n_norm;
  int depth;
};

class ScoringOptionTest : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ScoringOptionTest, EngineMatchesOracleUnderOptions) {
  const ParamCase& c = GetParam();
  const GeneratedCorpus corpus = SmallCorpus();
  NaiveScanner::Options scanner_opts;
  scanner_opts.scoring.alpha = c.alpha;
  scanner_opts.scoring.n_norm = c.n_norm;
  scanner_opts.thread_depth = c.depth;
  const NaiveScanner scanner(&corpus.dataset, scanner_opts);
  TkLusEngine::Options engine_opts;
  engine_opts.scoring.alpha = c.alpha;
  engine_opts.scoring.n_norm = c.n_norm;
  engine_opts.thread_depth = c.depth;
  auto engine = TkLusEngine::Build(corpus.dataset, engine_opts);
  ASSERT_TRUE(engine.ok());
  for (const Ranking ranking : {Ranking::kSum, Ranking::kMax}) {
    (*engine)->processor().mutable_options().enable_pruning = false;
    TkLusQuery q = HotelQuery(corpus);
    q.ranking = ranking;
    auto got = (*engine)->Query(q);
    ASSERT_TRUE(got.ok());
    const QueryResult want = scanner.Process(q);
    ASSERT_EQ(got->users.size(), want.users.size());
    for (size_t i = 0; i < want.users.size(); ++i) {
      EXPECT_EQ(got->users[i].uid, want.users[i].uid)
          << "alpha=" << c.alpha << " N=" << c.n_norm << " rank " << i;
      EXPECT_NEAR(got->users[i].score, want.users[i].score, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScoringOptionTest,
    ::testing::Values(ParamCase{0.0, 40, 6}, ParamCase{1.0, 40, 6},
                      ParamCase{0.5, 4, 6}, ParamCase{0.5, 40, 2},
                      ParamCase{0.3, 10, 4}, ParamCase{0.9, 2, 8}));

TEST(EngineOptionsTest, CustomWorkingDirKept) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tklus_engine_custom_" + std::to_string(::getpid()));
  {
    TkLusEngine::Options opts;
    opts.working_dir = dir.string();
    auto engine = TkLusEngine::Build(SmallCorpus().dataset, opts);
    ASSERT_TRUE(engine.ok());
    EXPECT_TRUE(std::filesystem::exists(dir / "meta.live.db"));
    EXPECT_TRUE(std::filesystem::exists(dir / "wal.log"));
  }
  // Caller-provided directories are not deleted by the engine.
  EXPECT_TRUE(std::filesystem::exists(dir));
  std::filesystem::remove_all(dir);
}

TEST(EngineOptionsTest, TempWorkingDirCleanedUp) {
  std::string working_dir;
  {
    auto engine = TkLusEngine::Build(SmallCorpus().dataset);
    ASSERT_TRUE(engine.ok());
    working_dir = (*engine)->options().working_dir;
    EXPECT_TRUE(std::filesystem::exists(working_dir));
  }
  EXPECT_FALSE(std::filesystem::exists(working_dir));
}

TEST(EngineOptionsTest, BuildIsDeterministic) {
  const GeneratedCorpus corpus = SmallCorpus();
  auto e1 = TkLusEngine::Build(corpus.dataset);
  auto e2 = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  const TkLusQuery q = HotelQuery(corpus);
  auto r1 = (*e1)->Query(q);
  auto r2 = (*e2)->Query(q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->users.size(), r2->users.size());
  for (size_t i = 0; i < r1->users.size(); ++i) {
    EXPECT_EQ(r1->users[i].uid, r2->users[i].uid);
    EXPECT_DOUBLE_EQ(r1->users[i].score, r2->users[i].score);
  }
  EXPECT_EQ((*e1)->bounds().global_bound(), (*e2)->bounds().global_bound());
  EXPECT_EQ((*e1)->index().build_stats().inverted_bytes,
            (*e2)->index().build_stats().inverted_bytes);
}

TEST(EngineOptionsTest, HotKeywordCountRespected) {
  const GeneratedCorpus corpus = SmallCorpus();
  TkLusEngine::Options opts;
  opts.num_hot_keywords = 3;
  auto engine = TkLusEngine::Build(corpus.dataset, opts);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->bounds().hot_bounds().size(), 3u);
  opts.num_hot_keywords = 0;
  auto no_hot = TkLusEngine::Build(corpus.dataset, opts);
  ASSERT_TRUE(no_hot.ok());
  EXPECT_TRUE((*no_hot)->bounds().hot_bounds().empty());
}

TEST(EngineOptionsTest, EmptyDatasetQueriesCleanly) {
  Dataset empty;
  auto engine = TkLusEngine::Build(empty);
  ASSERT_TRUE(engine.ok());
  TkLusQuery q;
  q.location = GeoPoint{0, 0};
  q.radius_km = 10;
  q.keywords = {"hotel"};
  q.k = 5;
  auto result = (*engine)->Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->users.empty());
}

TEST(EngineOptionsTest, DfsNodeCountConfigurable) {
  const GeneratedCorpus corpus = SmallCorpus();
  TkLusEngine::Options opts;
  opts.dfs.num_data_nodes = 5;
  auto engine = TkLusEngine::Build(corpus.dataset, opts);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->dfs().node_stats().size(), 5u);
  // Blocks spread across all nodes.
  size_t nodes_with_data = 0;
  for (const auto& node : (*engine)->dfs().node_stats()) {
    if (node.bytes_stored > 0) ++nodes_with_data;
  }
  EXPECT_EQ(nodes_with_data, 5u);
}

}  // namespace
}  // namespace tklus
