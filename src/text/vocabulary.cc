#include "text/vocabulary.h"

#include <algorithm>

namespace tklus {

Vocabulary::TermId Vocabulary::Add(std::string_view term, uint64_t count) {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) {
    const TermId id = static_cast<TermId>(terms_.size());
    terms_.emplace_back(term);
    freqs_.push_back(0);
    it = index_.emplace(terms_.back(), id).first;
  }
  freqs_[it->second] += count;
  total_ += count;
  return it->second;
}

Vocabulary::TermId Vocabulary::Lookup(std::string_view term) const {
  const auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTerm : it->second;
}

std::vector<std::pair<std::string, uint64_t>> Vocabulary::TopTerms(
    size_t top_n) const {
  std::vector<std::pair<std::string, uint64_t>> all;
  all.reserve(terms_.size());
  for (size_t i = 0; i < terms_.size(); ++i) {
    all.emplace_back(terms_[i], freqs_[i]);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > top_n) all.resize(top_n);
  return all;
}

}  // namespace tklus
