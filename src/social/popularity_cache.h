#ifndef TKLUS_SOCIAL_POPULARITY_CACHE_H_
#define TKLUS_SOCIAL_POPULARITY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"

namespace tklus {

// A sharded, capacity-bounded memoization of thread popularity φ(p)
// (Definition 4). φ depends only on (root_sid, max_depth, epsilon) and on
// the set of replies reachable from root_sid — it is query-independent, so
// the same thread rebuilt by every query that touches a hot tweet is pure
// waste. The engine owns one cache and shares it across all concurrent
// queries; ThreadBuilder stays the (uncached) compute path.
//
// Invalidation is by generation: AppendBatch bumps the generation (a new
// reply can extend *any* existing thread, so per-entry invalidation would
// need the full ancestor chain — the paper's threads are shallow but wide,
// making a whole-cache epoch both correct and cheap). Entries written
// under an older generation miss and are lazily overwritten.
//
// Thread safety: fully thread-safe. Keys are sharded over per-shard
// mutexes; the generation and the hit/miss counters are atomics. Writers
// (the engine's AppendBatch) only ever call Invalidate, which is
// wait-free for readers mid-lookup: a reader that raced the bump either
// sees the old generation and misses, or re-computes φ against the
// already-updated metadata DB — both yield correct post-append results
// because the engine's reader-writer lock keeps queries and appends from
// overlapping in the first place.
class PopularityCache {
 public:
  struct Options {
    size_t capacity = 1 << 16;  // total entries across shards
    size_t shards = 16;         // power of two recommended
  };

  explicit PopularityCache(Options options);
  PopularityCache(const PopularityCache&) = delete;
  PopularityCache& operator=(const PopularityCache&) = delete;

  // Current epoch. Capture before computing φ and pass to Put so a value
  // computed against pre-append state can never be installed post-append.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Invalidates every cached φ by starting a new epoch.
  void Invalidate() { generation_.fetch_add(1, std::memory_order_acq_rel); }

  // Cached φ for (root_sid, depth, epsilon) in the current epoch, or
  // nullopt. Stale-epoch and parameter-mismatched entries count as misses.
  std::optional<double> Get(int64_t root_sid, int depth, double epsilon);

  // Installs φ computed under epoch `generation`; dropped if an
  // Invalidate ran in between. Evicts an arbitrary resident entry when the
  // shard is at capacity (the workload's reuse is heavily skewed toward
  // hot threads, so any-victim eviction loses little over LRU and needs
  // no shared recency state).
  void Put(int64_t root_sid, int depth, double epsilon, uint64_t generation,
           double phi);

  // Cumulative counters across all queries (atomics; also reported
  // per-query in QueryStats by the query processor).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  // Resident entries summed over shards (approximate under concurrency).
  size_t size() const;

  size_t capacity() const { return options_.capacity; }

 private:
  struct Entry {
    int depth = 0;
    double epsilon = 0.0;
    uint64_t generation = 0;
    double phi = 0.0;
  };
  struct Shard {
    Mutex mu;
    std::unordered_map<int64_t, Entry> entries TKLUS_GUARDED_BY(mu);
  };

  Shard& ShardFor(int64_t root_sid) {
    // Multiplicative hash: sids are timestamps, so low bits alone cluster.
    const uint64_t h =
        static_cast<uint64_t>(root_sid) * 0x9e3779b97f4a7c15ULL;
    return *shards_[(h >> 32) % shards_.size()];
  }

  Options options_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace tklus

#endif  // TKLUS_SOCIAL_POPULARITY_CACHE_H_
