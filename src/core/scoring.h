#ifndef TKLUS_CORE_SCORING_H_
#define TKLUS_CORE_SCORING_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "geo/distance.h"
#include "geo/point.h"

namespace tklus {

// Parameters of §III / §VI-B1. Defaults are the paper's experimental
// settings: alpha = 0.5, N ~ 40, epsilon = 0.1.
struct ScoringParams {
  double alpha = 0.5;      // Def. 10 keyword-vs-distance mix
  double n_norm = 40.0;    // Def. 6 normalizer N
  double epsilon = 0.1;    // Def. 4 singleton-thread smoothing
};

// Distance score of a tweet (Definition 5): (r - d)/r inside the radius,
// 0 outside; range [0, 1].
inline double DistanceScore(double distance_km, double radius_km) {
  if (radius_km <= 0.0) return 0.0;
  if (distance_km > radius_km) return 0.0;
  return (radius_km - distance_km) / radius_km;
}

inline double DistanceScore(const GeoPoint& tweet, const GeoPoint& query,
                            double radius_km) {
  return DistanceScore(EuclideanKm(tweet, query), radius_km);
}

// Keyword relevance of a tweet (Definition 6): (|q.W ∩ p.W| / N) * phi(p),
// with bag-model occurrence counting (matched_occurrences is the summed
// term frequency of the query keywords in the tweet).
inline double KeywordRelevance(uint32_t matched_occurrences,
                               double popularity, const ScoringParams& params) {
  return (static_cast<double>(matched_occurrences) / params.n_norm) *
         popularity;
}

// User score (Definition 10): alpha * rho(u,q) + (1 - alpha) * delta(u,q),
// where rho is the Sum (Def. 7) or Max (Def. 8) keyword score and delta is
// the user distance score (Def. 9).
inline double UserScore(double keyword_score, double user_distance_score,
                        const ScoringParams& params) {
  return params.alpha * keyword_score +
         (1.0 - params.alpha) * user_distance_score;
}

// The paper's global upper-bound popularity (Definition 11):
// sum_{i=2..n} t_m / i, where t_m is the database's maximum reply fan-out
// and n the thread depth cap. NOTE: as written this is not a sound bound
// for threads whose deeper levels fan out multiplicatively (level i can
// hold up to t_m^{i-1} tweets); the engine therefore defaults to the exact
// offline maximum thread score and exposes this formula for the Def. 11
// ablation. See DESIGN.md §5.
inline double PaperGlobalBoundPopularity(int64_t t_m, int max_depth) {
  double bound = 0.0;
  for (int i = 2; i <= max_depth; ++i) {
    bound += static_cast<double>(t_m) / i;
  }
  return bound;
}

// Recency weight of the §VIII temporal extension: halves every
// `half_life` timestamp units before `reference`; tweets from the future
// of `reference` are clamped to weight 1.
inline double RecencyWeight(int64_t sid, int64_t reference,
                            double half_life) {
  if (sid >= reference) return 1.0;
  const double age = static_cast<double>(reference - sid);
  return std::exp2(-age / half_life);
}

// Optimistic score of a single tweet (Alg. 5 line 18): its best possible
// keyword relevance combined with the maximum distance score of 1.
inline double TweetUpperBoundScore(uint32_t matched_occurrences,
                                   double bound_popularity,
                                   const ScoringParams& params) {
  return params.alpha *
             KeywordRelevance(matched_occurrences, bound_popularity, params) +
         (1.0 - params.alpha) * 1.0;
}

}  // namespace tklus

#endif  // TKLUS_CORE_SCORING_H_
