#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace tklus {

namespace {

// splitmix64 finalizer: a cheap stateless mix for the jitter hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::BackoffMs(int retry, uint64_t op_key) const {
  if (retry < 1) retry = 1;
  double backoff =
      base_backoff_ms * std::pow(backoff_multiplier, retry - 1);
  backoff = std::min(backoff, max_backoff_ms);
  if (jitter_fraction > 0) {
    // u in [0, 1), a pure function of (seed, op, retry): replayable runs.
    const uint64_t h =
        Mix64(jitter_seed ^ Mix64(op_key ^ static_cast<uint64_t>(retry)));
    const double u = (h >> 11) * 0x1.0p-53;
    backoff *= 1.0 - jitter_fraction * u;
  }
  return std::max(backoff, 0.0);
}

}  // namespace tklus
