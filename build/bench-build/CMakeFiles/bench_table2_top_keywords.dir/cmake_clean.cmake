file(REMOVE_RECURSE
  "../bench/bench_table2_top_keywords"
  "../bench/bench_table2_top_keywords.pdb"
  "CMakeFiles/bench_table2_top_keywords.dir/bench_table2_top_keywords.cpp.o"
  "CMakeFiles/bench_table2_top_keywords.dir/bench_table2_top_keywords.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_top_keywords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
