file(REMOVE_RECURSE
  "CMakeFiles/spatial_decision.dir/spatial_decision.cpp.o"
  "CMakeFiles/spatial_decision.dir/spatial_decision.cpp.o.d"
  "spatial_decision"
  "spatial_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
