#ifndef TKLUS_STORAGE_TABLE_HEAP_H_
#define TKLUS_STORAGE_TABLE_HEAP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace tklus {

// Record id: page + slot, packed into a u64 for storage in B+-tree values.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint32_t slot = 0;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 20) | slot;
  }
  static Rid Unpack(uint64_t v) {
    return Rid{static_cast<PageId>(v >> 20),
               static_cast<uint32_t>(v & 0xFFFFF)};
  }
  friend bool operator==(const Rid& a, const Rid& b) {
    return a.page_id == b.page_id && a.slot == b.slot;
  }
};

// A heap file of fixed-size records. Page layout: u32 record_count, then
// densely packed records of `record_size` bytes. Pages are chained
// implicitly by allocation order (first_page..last_page contiguous).
class TableHeap {
 public:
  // Creates an empty heap. `record_size` must fit at least one record per
  // page alongside the 8-byte header.
  static Result<TableHeap> Create(BufferPool* pool, size_t record_size);

  // Re-attaches to an existing heap.
  static TableHeap Open(BufferPool* pool, size_t record_size,
                        PageId first_page, PageId last_page,
                        uint64_t record_count);

  // Appends a record; returns its Rid.
  Result<Rid> Insert(const char* record);

  // Reads the record at `rid` into `out` (record_size bytes).
  Status Get(Rid rid, char* out);

  uint64_t record_count() const { return record_count_; }
  size_t record_size() const { return record_size_; }
  size_t records_per_page() const { return records_per_page_; }
  PageId first_page() const { return first_page_; }
  PageId last_page() const { return last_page_; }

  // Sequential scan callback over every record.
  Status Scan(const std::function<void(Rid, const char*)>& fn);

 private:
  TableHeap(BufferPool* pool, size_t record_size)
      : pool_(pool),
        record_size_(record_size),
        records_per_page_((kPageSize - 16) / record_size) {}

  BufferPool* pool_;
  size_t record_size_;
  size_t records_per_page_;
  PageId first_page_ = kInvalidPageId;
  PageId last_page_ = kInvalidPageId;
  uint64_t record_count_ = 0;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_TABLE_HEAP_H_
