#ifndef TKLUS_STORAGE_WAL_H_
#define TKLUS_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace tklus {

// A checksummed, record-framed write-ahead log. The engine appends one
// serialized batch per record and fsyncs before acking the append — the
// durability half of the delta-index write path (base ⊎ delta reads, WAL
// replay after a crash).
//
// On-disk layout:
//   header:  [u64 magic "TkLusWal"][u32 version]
//   record:  [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// The payload is opaque to the WAL (the storage layer cannot see model
// types); the engine owns the batch codec. Records are applied strictly in
// append order on replay.
//
// Tail policy (as in LevelDB's log reader): the first record that fails
// to parse — short frame, payload past EOF, CRC mismatch — ends the
// durable prefix. Open truncates the file back to the last intact record
// boundary and reports how many bytes were dropped; replay never sees a
// record written after a damaged one. A damaged *header* is kCorruption
// and fatal (the file is not a WAL).
//
// Concurrency: the engine serializes Append/Truncate under its append
// lock; the WAL itself is not internally synchronized.
//
// Fault sites (via the optional FaultInjector): faults::kWalAppend (fail
// before writing, or torn write — a prefix of the frame lands on disk and
// the append fails, leaving exactly the state a mid-write crash leaves),
// faults::kWalFsync (the frame is fully written but the sync "crashes";
// the tail is rolled back before returning so an unacked record can never
// survive to replay), and faults::kWalTruncate (checkpoint truncation
// fails before touching the log).
class Wal {
 public:
  struct Options {
    FaultInjector* fault_injector = nullptr;  // must outlive the Wal
  };

  // What Open found in an existing log.
  struct RecoveryInfo {
    uint64_t records = 0;          // intact records scanned
    uint64_t bytes = 0;            // bytes of intact records (incl. frames)
    uint64_t truncated_bytes = 0;  // torn/corrupt tail bytes dropped
  };

  // Opens (creating if absent) the log at `path`, scans it, truncates any
  // torn/corrupt tail, and retains the replayable records for
  // TakeRecoveredRecords. Fails with kCorruption on a bad header or
  // interior damage, kIoError on filesystem errors.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           Options options);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one record and fsyncs. On success the record is durable: it
  // will be replayed by every future Open. On failure the log is restored
  // (or marked for restoration) to its pre-call durable prefix, so a
  // failed append is never replayed — except for an injected torn write,
  // which deliberately leaves the partial frame on disk (healed by the
  // next successful Append, truncated by the next Open).
  Status Append(std::string_view payload);

  // Checkpoint barrier: atomically replaces the log with an empty one
  // (fresh header written to a temp file, fsynced, renamed over `path`).
  // Every record appended so far is discarded — the caller must have
  // folded them into a durable checkpoint first.
  Status Truncate();

  // Moves the records Open recovered out of the Wal (one call; later
  // calls return empty). In append order.
  std::vector<std::string> TakeRecoveredRecords();

  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  const std::string& path() const { return path_; }
  // Records/bytes currently in the durable log (recovered + appended).
  uint64_t record_count() const { return record_count_; }
  uint64_t size_bytes() const { return end_offset_; }

 private:
  Wal(std::string path, int fd, Options options);

  // Rolls a dirty tail (failed/torn append) back to the durable prefix.
  Status RestoreTail();

  std::string path_;
  int fd_ = -1;
  Options options_;
  RecoveryInfo recovery_info_;
  std::vector<std::string> recovered_;
  uint64_t end_offset_ = 0;  // durable end: header + intact records
  uint64_t record_count_ = 0;
  bool tail_dirty_ = false;  // bytes past end_offset_ may exist on disk
  Counter* appends_total_ = nullptr;
  Counter* fsyncs_total_ = nullptr;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_WAL_H_
