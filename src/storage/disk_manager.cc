#include "storage/disk_manager.h"

#include <cstring>
#include <filesystem>

#include "common/crc32.h"
#include "common/file_io.h"
#include "common/serde.h"

namespace tklus {

namespace {

uint32_t ZeroPageCrc() {
  static const uint32_t crc = [] {
    const std::string zeros(kPageSize, '\0');
    return Crc32(zeros.data(), zeros.size());
  }();
  return crc;
}

std::string SidecarPath(const std::string& path) { return path + ".crc"; }

}  // namespace

Result<DiskManager> DiskManager::Open(const std::string& path,
                                      bool truncate) {
  DiskManager dm;
  dm.path_ = path;
  std::ios_base::openmode mode =
      std::ios::in | std::ios::out | std::ios::binary;
  if (truncate) {
    mode |= std::ios::trunc;
    // A stale sidecar must not outlive the data it described.
    std::error_code ec;
    std::filesystem::remove(SidecarPath(path), ec);
  } else if (!std::filesystem::exists(path)) {
    // Opening an existing database must not create one as a side effect.
    return Status::NotFound("no such database file: " + path);
  }
  dm.file_.open(path, mode);
  if (!dm.file_.is_open()) {
    return Status::IoError("cannot open database file: " + path);
  }
  dm.file_.seekg(0, std::ios::end);
  const auto size = static_cast<uint64_t>(dm.file_.tellg());
  dm.next_page_id_ = static_cast<PageId>(size / kPageSize);

  if (!truncate) {
    Result<std::string> sidecar =
        fileio::ReadFileVerified(SidecarPath(path));
    if (sidecar.ok()) {
      const std::string& bytes = *sidecar;
      uint64_t count = 0;
      if (bytes.size() < 8) {
        return Status::Corruption("truncated checksum sidecar for " + path);
      }
      std::memcpy(&count, bytes.data(), 8);
      if (count != static_cast<uint64_t>(dm.next_page_id_) ||
          bytes.size() != 8 + count * 4) {
        return Status::Corruption("checksum sidecar for " + path +
                                  " does not match the database size");
      }
      dm.page_crc_.resize(count);
      std::memcpy(dm.page_crc_.data(), bytes.data() + 8, count * 4);
    } else if (sidecar.status().code() == StatusCode::kNotFound) {
      // Pre-checksum database file: readable, but unverifiable.
      dm.verify_checksums_ = false;
    } else {
      // The sidecar exists but is itself damaged.
      return sidecar.status();
    }
  }
  return dm;
}

DiskManager::~DiskManager() {
  if (file_.is_open()) file_.close();
}

PageId DiskManager::AllocatePage() {
  if (verify_checksums_) page_crc_.push_back(ZeroPageCrc());
  return next_page_id_++;
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  if (page_id < 0 || page_id >= next_page_id_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(page_id));
  }
  if (faults_ != nullptr) {
    TKLUS_RETURN_IF_ERROR(faults_->MaybeFail(
        faults::kDiskRead, path_ + " page " + std::to_string(page_id)));
  }
  file_.seekg(static_cast<std::streamoff>(page_id) * kPageSize);
  file_.read(out, kPageSize);
  if (file_.eof()) {
    // Allocated but never written: zero-filled page.
    file_.clear();
    const auto got = file_.gcount();
    std::memset(out + got, 0, kPageSize - static_cast<size_t>(got));
  } else if (!file_) {
    return Status::IoError("short read on page " + std::to_string(page_id));
  }
  ++stats_.page_reads;
  if (faults_ != nullptr) {
    faults_->MaybeCorrupt(faults::kDiskRead, out, kPageSize);
  }
  if (verify_checksums_ &&
      static_cast<size_t>(page_id) < page_crc_.size() &&
      Crc32(out, kPageSize) != page_crc_[page_id]) {
    ++stats_.checksum_failures;
    return Status::Corruption("page checksum mismatch on page " +
                              std::to_string(page_id) + " of " + path_);
  }
  return Status::Ok();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  if (page_id < 0 || page_id >= next_page_id_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(page_id));
  }
  if (faults_ != nullptr) {
    TKLUS_RETURN_IF_ERROR(faults_->MaybeFail(
        faults::kDiskWrite, path_ + " page " + std::to_string(page_id)));
  }
  // The checksum always describes the *intended* bytes, so an injected
  // torn write (corrupted below, after the CRC is recorded) is caught by
  // the next read of this page.
  if (verify_checksums_) {
    if (static_cast<size_t>(page_id) >= page_crc_.size()) {
      page_crc_.resize(static_cast<size_t>(page_id) + 1, ZeroPageCrc());
    }
    page_crc_[page_id] = Crc32(data, kPageSize);
  }
  const char* to_write = data;
  char torn[kPageSize];
  if (faults_ != nullptr) {
    std::memcpy(torn, data, kPageSize);
    if (faults_->MaybeCorrupt(faults::kDiskWrite, torn, kPageSize)) {
      to_write = torn;
    }
    const std::optional<size_t> torn_len =
        faults_->MaybeTornWrite(faults::kDiskWrite, kPageSize);
    if (torn_len.has_value()) {
      // Persist only a prefix of the page and fail, simulating a crash
      // mid-write. The recorded CRC still describes the intended bytes,
      // so the next read of this page reports kCorruption.
      file_.seekp(static_cast<std::streamoff>(page_id) * kPageSize);
      file_.write(to_write, static_cast<std::streamsize>(*torn_len));
      file_.flush();
      return Status::IoError("injected torn write on page " +
                             std::to_string(page_id) + " of " + path_);
    }
  }
  file_.seekp(static_cast<std::streamoff>(page_id) * kPageSize);
  file_.write(to_write, kPageSize);
  if (!file_) {
    return Status::IoError("short write on page " + std::to_string(page_id));
  }
  file_.flush();
  ++stats_.page_writes;
  return Status::Ok();
}

Status DiskManager::Sync() {
  file_.flush();
  if (!file_) {
    return Status::IoError("flushing database file " + path_);
  }
  if (!verify_checksums_) return Status::Ok();
  std::string payload(8 + page_crc_.size() * 4, '\0');
  const uint64_t count = page_crc_.size();
  std::memcpy(payload.data(), &count, 8);
  std::memcpy(payload.data() + 8, page_crc_.data(), page_crc_.size() * 4);
  return fileio::WriteFileAtomic(SidecarPath(path_), payload, faults_);
}

}  // namespace tklus
