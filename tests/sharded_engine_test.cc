#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/text_model.h"
#include "datagen/tweet_generator.h"
#include "geo/geohash.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

// ---------------------------------------------------------------------------
// ShardRouter

TEST(ShardRouterTest, CellOwnershipIsDeterministicAndInRange) {
  const ShardRouter a(4), b(4);
  const std::vector<std::string> cells = {"dpz8", "dpz9", "9q5c", "u4pr",
                                          "gbsu", "s000"};
  for (const std::string& cell : cells) {
    const int owner = a.OwnerOfCell(cell);
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
    // Two routers with the same shard count agree (ownership is baked
    // into on-disk shard state, so it must be process-independent).
    EXPECT_EQ(owner, b.OwnerOfCell(cell));
  }
}

TEST(ShardRouterTest, PartitionCellsIsAPartition) {
  const ShardRouter router(8);
  std::vector<std::string> cells;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string cell;
    for (int j = 0; j < 4; ++j) {
      cell.push_back("0123456789bcdefghjkmnpqrstuvwxyz"[rng.UniformInt(
          uint64_t{32})]);
    }
    cells.push_back(cell);
  }
  const auto parts = router.PartitionCells(cells);
  ASSERT_EQ(parts.size(), 8u);
  size_t total = 0;
  for (int s = 0; s < 8; ++s) {
    total += parts[s].size();
    for (const std::string& cell : parts[s]) {
      EXPECT_EQ(router.OwnerOfCell(cell), s);
    }
  }
  EXPECT_EQ(total, cells.size());
}

TEST(ShardRouterTest, PostsFollowTheirCellAndUntaggedSpreadBySid) {
  TweetGenerator::Options gen;
  gen.seed = 11;
  gen.num_users = 50;
  gen.num_tweets = 800;
  gen.num_cities = 3;
  gen.untagged_frac = 0.3;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);
  const ShardRouter router(4);
  const auto parts = router.PartitionPosts(corpus.dataset, 4);
  size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    total += parts[s].size();
    for (const Post& p : parts[s].posts()) {
      if (p.HasLocation()) {
        // A located post lives with its geohash cell's owner: the shard
        // that answers for a cover cell holds every post in it.
        EXPECT_EQ(router.OwnerOfCell(geohash::Encode(p.location, 4)), s);
      } else {
        EXPECT_EQ(static_cast<uint64_t>(p.sid) % 4, static_cast<uint64_t>(s));
      }
    }
  }
  EXPECT_EQ(total, corpus.dataset.size());
}

// ---------------------------------------------------------------------------
// Differential oracle: ShardedEngine(N) must equal one TkLusEngine exactly —
// same uids in the same order, bit-identical scores — for every N. The
// sharded path reuses the single engine's own ranking loop over the merged
// candidate stream, so any deviation means the scatter/merge lost, gained,
// duplicated or reordered a candidate.

void ExpectSameRanking(const ShardedQueryResult& got, const QueryResult& want,
                       const std::string& label) {
  EXPECT_FALSE(got.degraded) << label;
  ASSERT_EQ(got.users.size(), want.users.size()) << label;
  for (size_t i = 0; i < want.users.size(); ++i) {
    EXPECT_EQ(got.users[i].uid, want.users[i].uid)
        << label << " rank " << i;
    // Bit-for-bit: both paths execute the identical FP op sequence.
    EXPECT_EQ(got.users[i].score, want.users[i].score)
        << label << " rank " << i;
  }
  EXPECT_EQ(got.stats.candidates, want.stats.candidates) << label;
  EXPECT_EQ(got.stats.cover_cells, want.stats.cover_cells) << label;
}

TkLusQuery RandomQuery(Rng& rng, const Dataset& dataset) {
  const auto& topics = datagen::TopicWords();
  const auto& modifiers = datagen::ModifierWords();
  TkLusQuery q;
  const Post& anchor = dataset.posts()[rng.UniformInt(dataset.size())];
  q.location = anchor.location;
  q.radius_km = rng.Uniform(2.0, 60.0);
  q.k = 1 + static_cast<int>(rng.UniformInt(uint64_t{15}));
  const size_t num_keywords = 1 + rng.UniformInt(uint64_t{3});
  for (size_t i = 0; i < num_keywords; ++i) {
    if (rng.Bernoulli(0.8)) {
      q.keywords.push_back(topics[rng.UniformInt(topics.size())]);
    } else {
      q.keywords.push_back(modifiers[rng.UniformInt(modifiers.size())]);
    }
  }
  q.semantics = rng.Bernoulli(0.5) ? Semantics::kAnd : Semantics::kOr;
  q.ranking = rng.Bernoulli(0.5) ? Ranking::kSum : Ranking::kMax;
  const int64_t first_sid = dataset.posts().front().sid;
  const int64_t last_sid = dataset.posts().back().sid;
  if (rng.Bernoulli(0.3)) {
    const int64_t a = rng.UniformInt(first_sid, last_sid);
    const int64_t b = rng.UniformInt(first_sid, last_sid);
    q.temporal.begin = std::min(a, b);
    q.temporal.end = std::max(a, b);
  }
  if (rng.Bernoulli(0.3)) {
    q.temporal.half_life = rng.Uniform(100.0, 5000.0);
    q.temporal.reference = last_sid;
  }
  return q;
}

class ShardedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedDifferentialTest, MatchesSingleEngineAcrossShardCounts) {
  TweetGenerator::Options gen;
  gen.seed = GetParam();
  gen.num_users = 150;
  gen.num_tweets = 3000;
  gen.num_cities = 4;
  gen.untagged_frac = GetParam() % 2 == 0 ? 0.0 : 0.15;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);

  auto single = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  for (const int num_shards : {1, 2, 4, 8}) {
    ShardedEngine::Options options;
    options.num_shards = num_shards;
    auto sharded = ShardedEngine::Build(corpus.dataset, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    Rng rng(GetParam() * 7919 + 13);  // same stream for every N
    for (int trial = 0; trial < 15; ++trial) {
      const TkLusQuery q = RandomQuery(rng, corpus.dataset);
      auto want = (*single)->Query(q);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      auto got = (*sharded)->Query(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameRanking(*got, *want,
                        "N=" + std::to_string(num_shards) + " trial " +
                            std::to_string(trial));
    }
  }
}

TEST_P(ShardedDifferentialTest, MatchesSingleEngineThroughAppends) {
  TweetGenerator::Options gen;
  gen.seed = GetParam() + 500;
  gen.num_users = 120;
  gen.num_tweets = 2400;
  gen.num_cities = 3;
  gen.untagged_frac = 0.1;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);

  // Build both over the first 60%, then feed identical batches to each.
  Dataset initial;
  std::vector<Dataset> batches(4);
  const size_t cut = corpus.dataset.size() * 6 / 10;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    const Post& p = corpus.dataset.posts()[i];
    if (i < cut) {
      initial.Add(p);
    } else {
      batches[(i - cut) * 4 / (corpus.dataset.size() - cut)].Add(p);
    }
  }

  auto single = TkLusEngine::Build(initial);
  ASSERT_TRUE(single.ok());
  ShardedEngine::Options options;
  options.num_shards = 4;
  auto sharded = ShardedEngine::Build(initial, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  Rng rng(GetParam() * 104729 + 7);
  for (const Dataset& batch : batches) {
    ASSERT_EQ((*single)->AppendBatch(batch).ok(), true);
    ASSERT_EQ((*sharded)->AppendBatch(batch).ok(), true);
    for (int trial = 0; trial < 5; ++trial) {
      const TkLusQuery q = RandomQuery(rng, corpus.dataset);
      auto want = (*single)->Query(q);
      ASSERT_TRUE(want.ok());
      auto got = (*sharded)->Query(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameRanking(*got, *want, "post-append trial");
    }
  }
  // Fold every shard's delta and re-check: base-vs-delta serving must not
  // change results either.
  ASSERT_TRUE((*sharded)->MergeAllNow().ok());
  for (int trial = 0; trial < 5; ++trial) {
    const TkLusQuery q = RandomQuery(rng, corpus.dataset);
    auto want = (*single)->Query(q);
    ASSERT_TRUE(want.ok());
    auto got = (*sharded)->Query(q);
    ASSERT_TRUE(got.ok());
    ExpectSameRanking(*got, *want, "post-merge trial");
  }
}

TEST_P(ShardedDifferentialTest, TweetQueriesMatchSingleEngine) {
  TweetGenerator::Options gen;
  gen.seed = GetParam() + 900;
  gen.num_users = 100;
  gen.num_tweets = 2000;
  gen.num_cities = 3;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);
  auto single = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(single.ok());
  ShardedEngine::Options options;
  options.num_shards = 4;
  auto sharded = ShardedEngine::Build(corpus.dataset, options);
  ASSERT_TRUE(sharded.ok());

  Rng rng(GetParam() * 31 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const TkLusQuery q = RandomQuery(rng, corpus.dataset);
    auto want = (*single)->QueryTweets(q);
    ASSERT_TRUE(want.ok());
    auto got = (*sharded)->QueryTweets(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->tweets.size(), want->tweets.size()) << "trial " << trial;
    for (size_t i = 0; i < want->tweets.size(); ++i) {
      EXPECT_EQ(got->tweets[i].sid, want->tweets[i].sid);
      EXPECT_EQ(got->tweets[i].uid, want->tweets[i].uid);
      EXPECT_EQ(got->tweets[i].score, want->tweets[i].score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferentialTest,
                         ::testing::Values(1, 2, 3));

// A query circle straddling many cell boundaries must gather candidates
// from several shards and still match the single engine exactly.
TEST(ShardedEngineTest, BoundaryStraddlingQueriesSpanShards) {
  TweetGenerator::Options gen;
  gen.seed = 21;
  gen.num_users = 150;
  gen.num_tweets = 3000;
  gen.num_cities = 2;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);
  auto single = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(single.ok());
  ShardedEngine::Options options;
  options.num_shards = 4;
  auto sharded = ShardedEngine::Build(corpus.dataset, options);
  ASSERT_TRUE(sharded.ok());

  const auto& topics = datagen::TopicWords();
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    TkLusQuery q;
    const Post& anchor =
        corpus.dataset.posts()[rng.UniformInt(corpus.dataset.size())];
    q.location = anchor.location;
    q.radius_km = 80.0;  // covers tens of length-4 cells around the city
    q.k = 10;
    q.keywords = {topics[rng.UniformInt(topics.size())]};
    q.semantics = Semantics::kOr;
    q.trace = true;
    auto want = (*single)->Query(q);
    ASSERT_TRUE(want.ok());
    auto got = (*sharded)->Query(q);
    ASSERT_TRUE(got.ok());
    ExpectSameRanking(*got, *want, "straddle trial " + std::to_string(trial));
    // The trace must show more than one shard fetch: the circle cannot fit
    // inside one shard's cells at this radius.
    ASSERT_NE(got->stats.trace, nullptr);
    std::set<uint64_t> shards_touched;
    for (const TraceSpan& span : got->stats.trace->spans) {
      if (span.name == stage::kShardFetch) {
        shards_touched.insert(span.Counter("shard"));
      }
    }
    EXPECT_GT(shards_touched.size(), 1u) << "trial " << trial;
  }
}

// More shards than occupied cells: the unowned shards stay empty and
// harmless (every query still matches, including ones whose cover touches
// only empty shards).
TEST(ShardedEngineTest, EmptyShardsAreHarmless) {
  TweetGenerator::Options gen;
  gen.seed = 31;
  gen.num_users = 40;
  gen.num_tweets = 600;
  gen.num_cities = 1;  // one city -> a handful of occupied cells
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);
  auto single = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(single.ok());
  ShardedEngine::Options options;
  options.num_shards = 8;
  auto sharded = ShardedEngine::Build(corpus.dataset, options);
  ASSERT_TRUE(sharded.ok());

  size_t empty_shards = 0;
  for (int s = 0; s < 8; ++s) {
    if ((*sharded)->shard(s).vocabulary().size() == 0) ++empty_shards;
  }
  EXPECT_GT(empty_shards, 0u) << "corpus unexpectedly spread over 8+ cells";

  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const TkLusQuery q = RandomQuery(rng, corpus.dataset);
    auto want = (*single)->Query(q);
    ASSERT_TRUE(want.ok());
    auto got = (*sharded)->Query(q);
    ASSERT_TRUE(got.ok());
    ExpectSameRanking(*got, *want, "empty-shard trial");
  }
}

// ---------------------------------------------------------------------------
// Durability: Save/Open round-trips the whole federation — router plane +
// every shard — including appends made after the last Save.

TEST(ShardedEngineTest, SaveOpenRoundTripPreservesResults) {
  TweetGenerator::Options gen;
  gen.seed = 41;
  gen.num_users = 100;
  gen.num_tweets = 2000;
  gen.num_cities = 3;
  gen.untagged_frac = 0.1;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);

  Dataset initial, batch1, batch2;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    const Post& p = corpus.dataset.posts()[i];
    if (i < corpus.dataset.size() / 2) {
      initial.Add(p);
    } else if (i < corpus.dataset.size() * 3 / 4) {
      batch1.Add(p);
    } else {
      batch2.Add(p);
    }
  }

  auto single = TkLusEngine::Build(initial);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE((*single)->AppendBatch(batch1).ok());
  ASSERT_TRUE((*single)->AppendBatch(batch2).ok());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "tklus_sharded_roundtrip")
          .string();
  std::filesystem::remove_all(dir);
  ShardedEngine::Options options;
  options.num_shards = 4;
  options.working_dir = dir;
  {
    auto sharded = ShardedEngine::Build(initial, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_TRUE((*sharded)->AppendBatch(batch1).ok());
    ASSERT_TRUE((*sharded)->Save().ok());
    // batch2 lands after the Save: only the shard WALs carry it.
    ASSERT_TRUE((*sharded)->AppendBatch(batch2).ok());
  }

  auto reopened = ShardedEngine::Open(dir, ShardedEngine::Options{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_shards(), 4);

  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const TkLusQuery q = RandomQuery(rng, corpus.dataset);
    auto want = (*single)->Query(q);
    ASSERT_TRUE(want.ok());
    auto got = (*reopened)->Query(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameRanking(*got, *want, "reopened trial " + std::to_string(trial));
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Degraded mode: one shard's DFS dies mid-flight. strict fails closed;
// the default skips the shard, flags the result and counts the failure.

TEST(ShardedEngineTest, ShardFailureDegradesOrFailsClosed) {
  TweetGenerator::Options gen;
  gen.seed = 51;
  gen.num_users = 100;
  gen.num_tweets = 2000;
  gen.num_cities = 2;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);

  // Wire a dedicated injector into shard 1 only; it stays quiet through
  // Build and is armed afterwards.
  FaultInjector injector(7);
  ShardedEngine::Options options;
  options.num_shards = 4;
  options.shard_options_hook = [&injector](int shard,
                                           TkLusEngine::Options* shard_opts) {
    if (shard == 1) {
      shard_opts->fault_injector = &injector;
      shard_opts->dfs_retry.max_attempts = 1;  // no transient absorption
    }
  };
  auto sharded = ShardedEngine::Build(corpus.dataset, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // A broad query that touches every shard.
  const auto& topics = datagen::TopicWords();
  TkLusQuery q;
  q.location = corpus.dataset.posts().front().location;
  q.radius_km = 200.0;
  q.k = 10;
  q.keywords = {topics[0], topics[1]};
  q.semantics = Semantics::kOr;

  auto healthy = (*sharded)->Query(q);
  ASSERT_TRUE(healthy.ok());
  ASSERT_FALSE(healthy->degraded);
  ASSERT_FALSE(healthy->users.empty());

  injector.SetFaultRate(faults::kDfsRead, FaultKind::kPermanent, 1.0);
  Counter* failures = MetricsRegistry::Global().GetCounter(
      "tklus_shard_failures_total", "");
  const uint64_t failures_before = failures->Value();

  auto degraded = (*sharded)->Query(q);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  bool saw_shard_1_failure = false;
  for (const ShardOutcome& outcome : degraded->outcomes) {
    if (outcome.shard == 1) {
      EXPECT_FALSE(outcome.status.ok());
      saw_shard_1_failure = outcome.shard == 1 && !outcome.status.ok();
    } else {
      EXPECT_TRUE(outcome.status.ok()) << "shard " << outcome.shard;
    }
  }
  EXPECT_TRUE(saw_shard_1_failure);
  EXPECT_GT(failures->Value(), failures_before);
  // Partial results: the surviving shards' candidates still rank. The
  // downed shard may hide users, but nobody outside the radius appears.
  EXPECT_LE(degraded->users.size(), static_cast<size_t>(q.k));

  // strict: same failure fails the whole query closed.
  ShardedEngine::Options strict_options = options;
  strict_options.strict = true;
  injector.Clear();
  auto strict_engine = ShardedEngine::Build(corpus.dataset, strict_options);
  ASSERT_TRUE(strict_engine.ok());
  injector.SetFaultRate(faults::kDfsRead, FaultKind::kPermanent, 1.0);
  auto refused = (*strict_engine)->Query(q);
  EXPECT_FALSE(refused.ok());
  injector.Clear();
}

// Every touched shard failing is an outage, not an empty answer.
TEST(ShardedEngineTest, AllShardsFailingIsUnavailable) {
  TweetGenerator::Options gen;
  gen.seed = 61;
  gen.num_users = 60;
  gen.num_tweets = 1000;
  gen.num_cities = 2;
  const GeneratedCorpus corpus = TweetGenerator::Generate(gen);

  // One shard so the failure deterministically downs *every* touched
  // shard: a multi-shard cover can include shards whose cells hold no
  // matching postings — those perform no DFS reads and survive, which is
  // the degraded case covered above, not an outage.
  FaultInjector injector(3);
  ShardedEngine::Options options;
  options.num_shards = 1;
  options.shard_options_hook = [&injector](int, TkLusEngine::Options* o) {
    o->fault_injector = &injector;
    o->dfs_retry.max_attempts = 1;
  };
  auto sharded = ShardedEngine::Build(corpus.dataset, options);
  ASSERT_TRUE(sharded.ok());

  const auto& topics = datagen::TopicWords();
  TkLusQuery q;
  q.location = corpus.dataset.posts().front().location;
  q.radius_km = 200.0;
  q.k = 5;
  q.keywords = {topics[0]};

  injector.SetFaultRate(faults::kDfsRead, FaultKind::kPermanent, 1.0);
  auto result = (*sharded)->Query(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  injector.Clear();
}

}  // namespace
}  // namespace tklus
