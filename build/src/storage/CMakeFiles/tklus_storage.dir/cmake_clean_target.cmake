file(REMOVE_RECURSE
  "libtklus_storage.a"
)
