#include "analyze/source_model.h"

#include <array>
#include <cctype>

namespace tklus::analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses the payload of an `#include` line starting at `pos` (just past
// the "include" keyword). Returns false if the line is malformed.
bool ParseIncludeTarget(std::string_view text, size_t pos, int line,
                        std::vector<IncludeDirective>* out) {
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  if (pos >= text.size()) return false;
  const char open = text[pos];
  const char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
  if (close == '\0') return false;
  const size_t start = pos + 1;
  const size_t end = text.find(close, start);
  if (end == std::string_view::npos) return false;
  out->push_back(IncludeDirective{std::string(text.substr(start, end - start)),
                                  /*quoted=*/open == '"', line});
  return true;
}

// An encoding prefix that may precede a string/char literal. `R` suffixes
// (raw) are handled by the caller.
bool IsLiteralPrefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

// Phase-1 preprocessing: backslash-newline splices are removed (the
// spliced pieces become adjacent, exactly like translation phase 2), and
// every surviving character remembers its original line. Lexing over the
// spliced text makes line comments that end in `\` swallow their
// continuation lines and keeps a spliced identifier one token — both
// were mis-lexed before, which could hide or fabricate rule hits.
void SpliceLines(std::string_view text, std::string* out,
                 std::vector<int>* line_of) {
  out->reserve(text.size());
  line_of->reserve(text.size());
  int line = 1;
  for (size_t i = 0; i < text.size();) {
    if (text[i] == '\\') {
      size_t j = i + 1;
      if (j < text.size() && text[j] == '\r') ++j;
      if (j < text.size() && text[j] == '\n') {
        ++line;
        i = j + 1;
        continue;
      }
    }
    out->push_back(text[i]);
    line_of->push_back(line);
    if (text[i] == '\n') ++line;
    ++i;
  }
}

}  // namespace

bool PathEndsWith(std::string_view path, std::string_view suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

SourceFile LexFile(std::string rel_path, std::string_view raw_text) {
  SourceFile file;
  file.path = std::move(rel_path);
  if (file.path.rfind("src/", 0) == 0) {
    const size_t slash = file.path.find('/', 4);
    if (slash != std::string::npos) {
      file.module = file.path.substr(4, slash - 4);
    }
  }

  std::string text;
  std::vector<int> line_of;
  SpliceLines(raw_text, &text, &line_of);
  const auto line_at = [&](size_t pos) {
    return pos < line_of.size() ? line_of[pos] : (line_of.empty()
                                                      ? 1
                                                      : line_of.back());
  };

  size_t i = 0;
  const size_t n = text.size();
  bool at_line_start = true;  // only whitespace seen since the last newline

  // Consumes a string/char literal starting at the quote `q` (the
  // optional encoding prefix began at `start`); returns one past the
  // closing quote.
  const auto lex_quoted = [&](size_t start, size_t q) {
    const char quote = text[q];
    size_t j = q + 1;
    while (j < n && text[j] != quote) {
      if (text[j] == '\\' && j + 1 < n) ++j;
      ++j;
    }
    file.tokens.push_back(Token{
        quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
        std::string(text.substr(start, j + 1 - start)), line_at(start)});
    return j + 1;
  };

  // Consumes a raw string literal whose `"` sits at `q` (the prefix and
  // `R` began at `start`); returns one past the closing delimiter. Raw
  // strings collapse to a single `<raw-string>` token: their contents
  // must never produce rule hits.
  const auto lex_raw_string = [&](size_t start, size_t q) {
    size_t j = q + 1;
    std::string delim;
    while (j < n && text[j] != '(') delim.push_back(text[j++]);
    const std::string closer = ")" + delim + "\"";
    const size_t end = text.find(closer, j);
    const size_t stop =
        end == std::string_view::npos ? n : end + closer.size();
    file.tokens.push_back(
        Token{Token::Kind::kString, "<raw-string>", line_at(start)});
    return stop;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment (splices already resolved, so a trailing `\` has
    // correctly pulled the next line into this comment).
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) ++i;
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Preprocessor directive at the start of a line: extract #include
    // targets (the angle-bracket form would otherwise lex as `<` tokens);
    // other directives fall through to normal tokenization.
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (text.compare(j, 7, "include") == 0) {
        ParseIncludeTarget(text, j + 7, line_at(i), &file.includes);
        while (i < n && text[i] != '\n') ++i;
        continue;
      }
    }
    at_line_start = false;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      const std::string_view ident(text.data() + i, j - i);
      // Encoding-prefixed literals: u8R"(..)", LR"(..)", u"..", L'x' and
      // the bare R"(..)" all start with what scans as an identifier.
      if (j < n && text[j] == '"') {
        if (ident == "R" || (ident.size() > 1 && ident.back() == 'R' &&
                             IsLiteralPrefix(ident.substr(0, ident.size() - 1)))) {
          i = lex_raw_string(i, j);
          continue;
        }
        if (IsLiteralPrefix(ident)) {
          i = lex_quoted(i, j);
          continue;
        }
      }
      if (j < n && text[j] == '\'' && IsLiteralPrefix(ident)) {
        i = lex_quoted(i, j);
        continue;
      }
      file.tokens.push_back(
          Token{Token::Kind::kIdent, std::string(ident), line_at(i)});
      i = j;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      i = lex_quoted(i, i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '.' ||
                       text[j] == '\'')) {
        ++j;
      }
      file.tokens.push_back(Token{Token::Kind::kNumber,
                                  std::string(text.substr(i, j - i)),
                                  line_at(i)});
      i = j;
      continue;
    }
    // Single-character punctuation; rules match multi-char operators as
    // token sequences (e.g. `::` is two `:` tokens).
    file.tokens.push_back(
        Token{Token::Kind::kPunct, std::string(1, c), line_at(i)});
    ++i;
  }
  return file;
}

namespace {

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, char c) {
  return t.kind == Token::Kind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

bool IsGuardType(const Token& t) {
  return IsIdent(t, "MutexLock") || IsIdent(t, "ReaderMutexLock") ||
         IsIdent(t, "WriterMutexLock");
}

// Best-effort name of the function whose body opens at `toks[open]`
// (`open` indexes a `{`): walks left over the trailing specifiers and
// parenthesized groups (argument list, TKLUS_* annotation macros, ctor
// init lists), remembering the identifier chain before the leftmost
// group — `Status TkLusEngine::AppendBatch(const Dataset&)
// TKLUS_EXCLUDES(mu_) {` names `TkLusEngine::AppendBatch`. Cosmetic
// only; diagnostics always carry file:line.
std::string FunctionNameBefore(const std::vector<Token>& toks, size_t open) {
  std::string name;
  size_t i = open;
  while (i-- > 0) {
    const Token& t = toks[i];
    if (IsPunct(t, ';') || IsPunct(t, '{') || IsPunct(t, '}')) break;
    if (IsPunct(t, ')')) {
      int depth = 1;
      size_t j = i;
      while (depth > 0) {
        if (j == 0) return name;  // unbalanced; give up
        --j;
        if (IsPunct(toks[j], ')')) ++depth;
        if (IsPunct(toks[j], '(')) --depth;
      }
      // `j` is at the matching `(`; the qualified name (if any) sits
      // before it. Groups are visited right to left, so the leftmost
      // group's name is assigned last and wins.
      if (j > 0 && toks[j - 1].kind == Token::Kind::kIdent) {
        size_t k = j - 1;
        std::string candidate = toks[k].text;
        while (k >= 3 && IsPunct(toks[k - 1], ':') &&
               IsPunct(toks[k - 2], ':') &&
               toks[k - 3].kind == Token::Kind::kIdent) {
          candidate = toks[k - 3].text + "::" + candidate;
          k -= 3;
        }
        name = candidate;
      }
      i = j;  // resume scanning left of the `(`
    }
  }
  return name;
}

}  // namespace

std::vector<FunctionLockModel> BuildLockModel(const SourceFile& file) {
  const std::vector<Token>& toks = file.tokens;
  std::vector<FunctionLockModel> functions;

  // Brace frames, classified as in the status-discipline rule: a frame
  // whose introducing statement contains a type or namespace keyword is
  // a declaration body, anything else is an executable block. The
  // outermost block frame is a function body.
  struct Frame {
    bool is_block;
  };
  std::vector<Frame> frames;
  int open_blocks = 0;
  FunctionLockModel* current = nullptr;

  struct ActiveGuard {
    HeldGuard guard;
    size_t frame_count;  // frames.size() when declared; dies below that
  };
  std::vector<ActiveGuard> held;

  const auto held_snapshot = [&] {
    std::vector<HeldGuard> out;
    out.reserve(held.size());
    for (const ActiveGuard& g : held) out.push_back(g.guard);
    return out;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, '{')) {
      bool is_block = true;
      for (size_t j = i; j-- > 0;) {
        if (IsPunct(toks[j], ';') || IsPunct(toks[j], '{') ||
            IsPunct(toks[j], '}')) {
          break;
        }
        if (IsIdent(toks[j], "class") || IsIdent(toks[j], "struct") ||
            IsIdent(toks[j], "union") || IsIdent(toks[j], "enum") ||
            IsIdent(toks[j], "namespace")) {
          is_block = false;
          break;
        }
      }
      if (is_block && open_blocks == 0) {
        functions.push_back(
            FunctionLockModel{FunctionNameBefore(toks, i), t.line, {}, {}});
        current = &functions.back();
      }
      frames.push_back(Frame{is_block});
      if (is_block) ++open_blocks;
      continue;
    }
    if (IsPunct(t, '}')) {
      if (!frames.empty()) {
        if (frames.back().is_block) --open_blocks;
        frames.pop_back();
        while (!held.empty() && held.back().frame_count > frames.size()) {
          held.pop_back();
        }
        if (open_blocks == 0) current = nullptr;
      }
      continue;
    }
    if (current == nullptr) continue;

    // Guard declaration: `MutexLock name(&... member ...);`. The bare
    // class name in a declaration (`MutexLock(Mutex*)`) has no variable
    // identifier before the `(` and never matches.
    if (IsGuardType(t) && i + 2 < toks.size() &&
        toks[i + 1].kind == Token::Kind::kIdent && IsPunct(toks[i + 2], '(')) {
      int depth = 1;
      size_t j = i + 3;
      std::string member;
      for (; j < toks.size() && depth > 0; ++j) {
        if (IsPunct(toks[j], '(')) ++depth;
        if (IsPunct(toks[j], ')')) --depth;
        if (depth > 0 && toks[j].kind == Token::Kind::kIdent) {
          member = toks[j].text;
        }
      }
      if (!member.empty()) {
        HeldGuard guard{member, t.text, !IsIdent(t, "ReaderMutexLock"),
                        t.line};
        current->acquisitions.push_back(GuardAcquire{guard, held_snapshot()});
        held.push_back(ActiveGuard{std::move(guard), frames.size()});
      }
      i = j - 1;  // continue after the closing `)`
      continue;
    }

    // Call under at least one guard: `ident(` — the callee is the final
    // identifier of the chain, so member calls record the method name.
    if (!held.empty() && t.kind == Token::Kind::kIdent &&
        i + 1 < toks.size() && IsPunct(toks[i + 1], '(')) {
      current->calls.push_back(GuardedCall{t.text, t.line, held_snapshot()});
    }
  }
  return functions;
}

}  // namespace tklus::analyze
