#include "analyze/rules.h"

#include <array>
#include <string>

#include "analyze/callgraph.h"

namespace tklus::analyze {
namespace {

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, char c) {
  return t.kind == Token::Kind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

// True if tokens[i..] spell `std::<name>` for any name in `names`.
template <size_t N>
bool MatchesStdName(const std::vector<Token>& toks, size_t i,
                    const std::array<std::string_view, N>& names) {
  if (i + 3 >= toks.size()) return false;
  if (!IsIdent(toks[i], "std") || !IsPunct(toks[i + 1], ':') ||
      !IsPunct(toks[i + 2], ':')) {
    return false;
  }
  for (const std::string_view name : names) {
    if (IsIdent(toks[i + 3], name)) return true;
  }
  return false;
}

// ------------------------------------------------------------ pin-discipline

// Naked pin-protocol calls leak pinned frames whenever an early error
// return (TKLUS_RETURN_IF_ERROR and friends) fires between a fetch and
// its unpin. All pinning must go through the RAII PageGuard; only the
// guard itself and the BufferPool implementation may touch the raw API.
class PinDisciplineRule : public Rule {
 public:
  std::string_view name() const override { return "pin-discipline"; }
  std::string_view description() const override {
    return "FetchPage/NewPage/UnpinPage only inside PageGuard/BufferPool; "
           "everything else pins via storage/page_guard.h";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    for (const auto* exempt :
         {"storage/page_guard.h", "storage/buffer_pool.h",
          "storage/buffer_pool.cc"}) {
      if (PathEndsWith(file.path, exempt)) return;
    }
    const auto& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!IsPunct(toks[i + 1], '(')) continue;
      for (const std::string_view fn : {"FetchPage", "NewPage", "UnpinPage"}) {
        if (IsIdent(toks[i], fn)) {
          out->push_back(Diagnostic{
              std::string(name()), file.path, toks[i].line,
              "naked " + toks[i].text +
                  " call; pin pages through PageGuard::Fetch/New "
                  "(storage/page_guard.h) so early error returns cannot "
                  "leak the pin"});
        }
      }
    }
  }
};

// ------------------------------------------------------------------ layering

// Enforces the declared include-DAG (tools/analyze/layers.conf): a module
// may include only from itself and from the modules the manifest grants
// it. Keeps lower layers (common, geo, text, storage) from quietly
// growing upward dependencies that would freeze the architecture.
class LayeringRule : public Rule {
 public:
  std::string_view name() const override { return "layering"; }
  std::string_view description() const override {
    return "src/<module> includes only from modules granted by the "
           "layers.conf include-DAG manifest";
  }
  void Check(const SourceFile& file, const AnalyzerContext& ctx,
             std::vector<Diagnostic>* out) const override {
    if (file.module.empty()) return;  // tests/bench/tools are unconstrained
    for (const IncludeDirective& inc : file.includes) {
      if (!inc.quoted) continue;
      const size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;  // not module-qualified
      const std::string dep = inc.path.substr(0, slash);
      if (dep == file.module) continue;
      if (!ctx.has_manifest) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, inc.line,
            "cross-module include \"" + inc.path +
                "\" but no layers.conf manifest was found"});
        continue;
      }
      const auto mod_it = ctx.allowed_deps.find(file.module);
      if (mod_it == ctx.allowed_deps.end()) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, inc.line,
            "module '" + file.module + "' is not declared in layers.conf"});
        continue;
      }
      if (ctx.allowed_deps.find(dep) == ctx.allowed_deps.end()) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, inc.line,
            "include \"" + inc.path + "\" targets undeclared module '" +
                dep + "'"});
        continue;
      }
      if (mod_it->second.count(dep) == 0) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, inc.line,
            "layering violation: '" + file.module +
                "' may not include from '" + dep +
                "' (edge missing from layers.conf)"});
      }
    }
  }
};

// --------------------------------------------------------- status-discipline

// A Status/Result local that is initialized and then never mentioned
// again is a swallowed error: [[nodiscard]] only protects the immediate
// call expression, not a named local that goes stale. Every such local
// must be consumed — TKLUS_RETURN_IF_ERROR(st), st.ok(), st.IgnoreError(),
// returning or moving it all count (any later use of the name does).
class StatusDisciplineRule : public Rule {
 public:
  std::string_view name() const override { return "status-discipline"; }
  std::string_view description() const override {
    return "Status/Result<T> locals must be consumed "
           "(TKLUS_RETURN_IF_ERROR, .ok(), IgnoreError(), return/move)";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    const auto& toks = file.tokens;
    // depth_before[i]: brace depth when token i is read. in_block[i]:
    // whether the innermost enclosing brace frame is a plain block
    // (function body, loop, ...) rather than a namespace or a
    // class/struct/enum body — only block-scoped locals are checked, so
    // default member initializers and namespace-scope globals are exempt.
    std::vector<int> depth_before(toks.size(), 0);
    std::vector<char> in_block(toks.size(), 0);
    std::vector<char> frame_is_block;
    for (size_t i = 0; i < toks.size(); ++i) {
      depth_before[i] = static_cast<int>(frame_is_block.size());
      in_block[i] = !frame_is_block.empty() && frame_is_block.back();
      if (IsPunct(toks[i], '{')) {
        // Classify the frame by the tokens since the previous statement
        // boundary: a type or namespace keyword there means this brace
        // opens a declaration body, not executable scope.
        bool is_block = true;
        for (size_t j = i; j-- > 0;) {
          if (IsPunct(toks[j], ';') || IsPunct(toks[j], '{') ||
              IsPunct(toks[j], '}')) {
            break;
          }
          if (IsIdent(toks[j], "class") || IsIdent(toks[j], "struct") ||
              IsIdent(toks[j], "union") || IsIdent(toks[j], "enum") ||
              IsIdent(toks[j], "namespace")) {
            is_block = false;
            break;
          }
        }
        frame_is_block.push_back(is_block);
      }
      if (IsPunct(toks[i], '}') && !frame_is_block.empty()) {
        frame_is_block.pop_back();
      }
    }
    for (size_t i = 0; i < toks.size(); ++i) {
      size_t var_idx = 0;
      if (IsIdent(toks[i], "Status") && i + 2 < toks.size() &&
          toks[i + 1].kind == Token::Kind::kIdent &&
          IsPunct(toks[i + 2], '=')) {
        var_idx = i + 1;
      } else if (IsIdent(toks[i], "Result") && i + 1 < toks.size() &&
                 IsPunct(toks[i + 1], '<')) {
        // Find the matching `>` of the template argument list.
        int angle = 1;
        size_t j = i + 2;
        for (; j < toks.size() && angle > 0; ++j) {
          if (IsPunct(toks[j], '<')) ++angle;
          if (IsPunct(toks[j], '>')) --angle;
        }
        if (angle == 0 && j + 1 < toks.size() &&
            toks[j].kind == Token::Kind::kIdent && IsPunct(toks[j + 1], '=')) {
          var_idx = j;
        }
      }
      if (var_idx == 0) continue;
      if (!in_block[var_idx]) continue;  // member/global, not a local
      const std::string& var = toks[var_idx].text;
      const int decl_depth = depth_before[var_idx];
      bool consumed = false;
      for (size_t j = var_idx + 2; j < toks.size(); ++j) {
        if (IsPunct(toks[j], '}') && depth_before[j] == decl_depth) {
          break;  // the block holding the local closed
        }
        if (toks[j].kind == Token::Kind::kIdent && toks[j].text == var) {
          consumed = true;
          break;
        }
      }
      if (!consumed) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, toks[var_idx].line,
            "fallible local '" + var +
                "' is never consumed; check it with TKLUS_RETURN_IF_ERROR/"
                ".ok() or discard explicitly with IgnoreError()"});
      }
    }
  }
};

// --------------------------------------------------------------- naked-mutex

// Locks must be tklus::Mutex (common/mutex.h) so Clang thread-safety
// analysis and the TKLUS_GUARDED_BY annotations can see them. Migrated
// from the old grep lint; token-level, so comments/strings are exempt.
class NakedMutexRule : public Rule {
 public:
  std::string_view name() const override { return "naked-mutex"; }
  std::string_view description() const override {
    return "std::mutex family banned; use tklus::Mutex (common/mutex.h)";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    if (PathEndsWith(file.path, "common/mutex.h")) return;
    static constexpr std::array<std::string_view, 4> kNames = {
        "mutex", "shared_mutex", "recursive_mutex", "timed_mutex"};
    const auto& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (MatchesStdName(toks, i, kNames)) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, toks[i].line,
            "naked std::" + toks[i + 3].text +
                "; use tklus::Mutex from common/mutex.h"});
      }
    }
  }
};

class NakedLockRule : public Rule {
 public:
  std::string_view name() const override { return "naked-lock"; }
  std::string_view description() const override {
    return "std::lock_guard family banned; use tklus::MutexLock "
           "(common/mutex.h)";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    if (PathEndsWith(file.path, "common/mutex.h")) return;
    static constexpr std::array<std::string_view, 4> kNames = {
        "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
    const auto& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (MatchesStdName(toks, i, kNames)) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, toks[i].line,
            "naked std::" + toks[i + 3].text +
                "; use tklus::MutexLock from common/mutex.h"});
      }
    }
  }
};

// -------------------------------------------------------------- void-discard

// `(void)fallible()` silently defeats [[nodiscard]]. The sanctioned,
// greppable spelling is `.IgnoreError()`.
class VoidDiscardRule : public Rule {
 public:
  std::string_view name() const override { return "void-discard"; }
  std::string_view description() const override {
    return "(void) casts on calls banned; discard with .IgnoreError()";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    const auto& toks = file.tokens;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!IsPunct(toks[i], '(') || !IsIdent(toks[i + 1], "void") ||
          !IsPunct(toks[i + 2], ')') ||
          toks[i + 3].kind != Token::Kind::kIdent) {
        continue;
      }
      // Walk the qualified name (`ns::obj`), then require a call or a
      // member access — `int f(void)` parameter lists never match.
      size_t j = i + 4;
      while (j < toks.size() &&
             (IsPunct(toks[j], ':') || toks[j].kind == Token::Kind::kIdent)) {
        ++j;
      }
      const bool applied =
          j < toks.size() &&
          (IsPunct(toks[j], '(') || IsPunct(toks[j], '.') ||
           (IsPunct(toks[j], '-') && j + 1 < toks.size() &&
            IsPunct(toks[j + 1], '>')));
      if (applied) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, toks[i].line,
            "(void) cast discards a result; use .IgnoreError() on "
            "fallible calls so the discard is named and greppable"});
      }
    }
  }
};

// ------------------------------------------------------------ nondeterminism

// Benchmarks, datagen and fault injection are all seeded (common/rng.h);
// libc rand()/srand(), wall-clock seeds and std::random_device make runs
// unreproducible.
class NondeterminismRule : public Rule {
 public:
  std::string_view name() const override { return "nondeterminism"; }
  std::string_view description() const override {
    return "rand()/srand()/time(NULL)/std::random_device banned; seed "
           "tklus::Rng (common/rng.h)";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    const auto& toks = file.tokens;
    static constexpr std::array<std::string_view, 1> kRandomDevice = {
        "random_device"};
    for (size_t i = 0; i < toks.size(); ++i) {
      const bool libc_rand =
          i + 2 < toks.size() && IsIdent(toks[i], "rand") &&
          IsPunct(toks[i + 1], '(') && IsPunct(toks[i + 2], ')');
      const bool libc_srand = i + 1 < toks.size() &&
                              IsIdent(toks[i], "srand") &&
                              IsPunct(toks[i + 1], '(');
      const bool wall_clock_seed =
          i + 3 < toks.size() && IsIdent(toks[i], "time") &&
          IsPunct(toks[i + 1], '(') &&
          (IsIdent(toks[i + 2], "NULL") || IsIdent(toks[i + 2], "nullptr")) &&
          IsPunct(toks[i + 3], ')');
      if (libc_rand || libc_srand || wall_clock_seed ||
          MatchesStdName(toks, i, kRandomDevice)) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, toks[i].line,
            "nondeterministic source '" + toks[i].text +
                "'; use the seeded tklus::Rng (common/rng.h)"});
      }
    }
  }
};

// ----------------------------------------------------------- clock-discipline

// Every wall-time read must flow through the injectable tklus::Clock
// (obs/clock.h) so spans, latency stats and the slow-query log are
// fake-clock testable. src/obs is the single module allowed to touch the
// std::chrono clocks; a bare `steady_clock` anywhere else — including a
// `using namespace std::chrono` shortening — is a violation.
class ClockDisciplineRule : public Rule {
 public:
  std::string_view name() const override { return "clock-discipline"; }
  std::string_view description() const override {
    return "std::chrono steady_clock/system_clock/high_resolution_clock "
           "banned outside src/obs; read time via obs/clock.h";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    if (file.module == "obs") return;
    const auto& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      for (const std::string_view clock :
           {"steady_clock", "system_clock", "high_resolution_clock"}) {
        if (IsIdent(toks[i], clock)) {
          out->push_back(Diagnostic{
              std::string(name()), file.path, toks[i].line,
              "raw chrono clock '" + toks[i].text +
                  "' outside src/obs; read time via tklus::Clock / "
                  "Stopwatch (obs/clock.h, obs/stopwatch.h) so tests can "
                  "inject a fake clock"});
        }
      }
    }
  }
};

// ------------------------------------------------------ durability-discipline

// Every byte that must survive a crash flows through an audited write
// path: fileio's atomic temp+fsync+rename writers (common/file_io), the
// DiskManager's CRC-tracked page writes, or the WAL's append+fsync
// protocol. A raw std::ofstream / fopen / fwrite / ::write anywhere else
// bypasses fsync, checksumming and fault injection — durable-looking
// data that a crash can tear silently and the recovery harness cannot
// exercise. Stream member calls (`buf.write(...)`) are in-memory and
// exempt.
class DurabilityDisciplineRule : public Rule {
 public:
  std::string_view name() const override { return "durability-discipline"; }
  std::string_view description() const override {
    return "raw file writes (ofstream/fopen/fwrite/::write) banned outside "
           "common/file_io, storage/disk_manager, storage/wal";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    for (const auto* exempt :
         {"common/file_io.h", "common/file_io.cc", "storage/disk_manager.h",
          "storage/disk_manager.cc", "storage/wal.h", "storage/wal.cc"}) {
      if (PathEndsWith(file.path, exempt)) return;
    }
    const auto& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (IsIdent(toks[i], "ofstream")) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, toks[i].line,
            "raw ofstream bypasses the durability layer; write files via "
            "fileio::WriteFileAtomic/WriteFilePlain (common/file_io.h)"});
        continue;
      }
      if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], '(')) continue;
      if (IsIdent(toks[i], "fopen") || IsIdent(toks[i], "fwrite")) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, toks[i].line,
            "raw " + toks[i].text +
                " bypasses the durability layer; write files via "
                "fileio::WriteFileAtomic/WriteFilePlain (common/file_io.h)"});
        continue;
      }
      if (IsIdent(toks[i], "write")) {
        // `x.write(...)` / `x->write(...)` are member calls (in-memory
        // streams); `ssize_t write(...)` after an identifier is a
        // declaration. Everything else — `::write(fd, ...)` included —
        // is a raw file write.
        if (i > 0 && (IsPunct(toks[i - 1], '.') || IsPunct(toks[i - 1], '>') ||
                      toks[i - 1].kind == Token::Kind::kIdent)) {
          continue;
        }
        out->push_back(Diagnostic{
            std::string(name()), file.path, toks[i].line,
            "raw write() syscall bypasses the durability layer; write files "
            "via fileio (common/file_io.h) or the WAL/DiskManager"});
      }
    }
  }
};

// ----------------------------------------------------------------- lock-order

// Validates every observed guard-acquisition chain against the declared
// lock-order DAG (tools/analyze/lockorder.conf). Clang's thread-safety
// analysis checks capability *requirements* but not acquisition
// *ordering*; this rule pins the order that previously existed only as a
// comment in engine.h, over the flow-aware statement model. The check is
// intraprocedural: it sees the guards a function itself opens, which is
// exactly where the engine's lock chains live.
class LockOrderRule : public Rule {
 public:
  std::string_view name() const override { return "lock-order"; }
  std::string_view description() const override {
    return "RAII guard acquisition chains must follow the declared "
           "lock-order DAG (tools/analyze/lockorder.conf)";
  }
  void Check(const SourceFile& file, const AnalyzerContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const LockOrderConfig& cfg = ctx.lockorder;
    for (const FunctionLockModel& fn : file.functions) {
      for (const GuardAcquire& acq : fn.acquisitions) {
        if (acq.held.empty()) continue;
        if (!cfg.loaded) {
          // Mirrors the layering rule's missing-manifest behavior:
          // nested acquisitions with no declared order are an error, so
          // deleting lockorder.conf cannot silently disarm the rule.
          for (const HeldGuard& h : acq.held) {
            if (h.member != acq.guard.member) {
              out->push_back(Diagnostic{
                  std::string(name()), file.path, acq.guard.line,
                  "nested acquisition of '" + acq.guard.member +
                      "' while holding '" + h.member +
                      "' but no lockorder.conf manifest was found"});
              break;
            }
          }
          continue;
        }
        if (!cfg.IsDeclared(acq.guard.member, file.path)) continue;
        for (const HeldGuard& h : acq.held) {
          if (!cfg.IsDeclared(h.member, file.path)) continue;
          const std::string where =
              fn.name.empty() ? std::string() : (" in " + fn.name);
          if (h.member == acq.guard.member) {
            out->push_back(Diagnostic{
                std::string(name()), file.path, acq.guard.line,
                "recursive acquisition of '" + acq.guard.member + "'" +
                    where + " (outer " + h.guard_type + " at line " +
                    std::to_string(h.line) +
                    "); re-entry deadlocks — the SharedMutex is "
                    "writer-preferring, so even a nested reader queues "
                    "behind a waiting writer"});
          } else if (!cfg.CanPrecede(h.member, acq.guard.member)) {
            out->push_back(Diagnostic{
                std::string(name()), file.path, acq.guard.line,
                "lock-order inversion" + where + ": acquiring '" +
                    acq.guard.member + "' while holding '" + h.member +
                    "' (held since line " + std::to_string(h.line) +
                    ") — no declared order in lockorder.conf permits "
                    "this chain"});
          }
        }
      }
    }
  }
};

// -------------------------------------------------------------- io-under-lock

// Bans the configured blocking calls (fsync, pwrite, WAL appends, DFS
// block reads, ...) while a lock listed as `io-lock` is held in *any*
// mode. This statically pins the PR-6 durability design: the WAL
// fsync-before-ack happens off the readers' lock, so a blocking syscall
// creeping under the engine lock — which would stall every concurrent
// query behind one disk flush — fails `ctest -L static` instead of
// shipping.
class IoUnderLockRule : public Rule {
 public:
  std::string_view name() const override { return "io-under-lock"; }
  std::string_view description() const override {
    return "blocking calls (lockorder.conf io-symbol list) banned while "
           "an io-lock guard is held";
  }
  void Check(const SourceFile& file, const AnalyzerContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const LockOrderConfig& cfg = ctx.lockorder;
    if (!cfg.loaded || cfg.io_symbols.empty()) return;
    for (const FunctionLockModel& fn : file.functions) {
      for (const GuardedCall& call : fn.calls) {
        if (cfg.io_symbols.count(call.callee) == 0) continue;
        for (const HeldGuard& h : call.held) {
          if (cfg.io_locks.count(h.member) == 0 ||
              !cfg.IsDeclared(h.member, file.path)) {
            continue;
          }
          const std::string where =
              fn.name.empty() ? std::string() : (" in " + fn.name);
          out->push_back(Diagnostic{
              std::string(name()), file.path, call.line,
              "blocking call '" + call.callee + "'" + where +
                  " while holding '" + h.member + "' (" +
                  (h.exclusive ? "exclusive" : "shared") + " " +
                  h.guard_type + " since line " + std::to_string(h.line) +
                  "); move the I/O off the lock — the ack-barrier design "
                  "keeps fsync/pwrite outside every engine lock"});
        }
      }
    }
  }
};

// ------------------------------------------------------------ nodiscard-guard

// The whole error-discipline stack leans on Status/Result<T> being
// [[nodiscard]]; losing the attribute would silently disarm the compiler
// check everywhere.
class NodiscardGuardRule : public Rule {
 public:
  std::string_view name() const override { return "nodiscard-guard"; }
  std::string_view description() const override {
    return "common/status.h must keep class [[nodiscard]] Status/Result";
  }
  void Check(const SourceFile& file, const AnalyzerContext&,
             std::vector<Diagnostic>* out) const override {
    if (!PathEndsWith(file.path, "common/status.h")) return;
    for (const std::string_view cls : {"Status", "Result"}) {
      if (!HasNodiscardClass(file.tokens, cls)) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, 1,
            "class " + std::string(cls) +
                " lost its [[nodiscard]] attribute"});
      }
    }
  }

 private:
  static bool HasNodiscardClass(const std::vector<Token>& toks,
                                std::string_view cls) {
    for (size_t i = 0; i + 6 < toks.size(); ++i) {
      if (IsIdent(toks[i], "class") && IsPunct(toks[i + 1], '[') &&
          IsPunct(toks[i + 2], '[') && IsIdent(toks[i + 3], "nodiscard") &&
          IsPunct(toks[i + 4], ']') && IsPunct(toks[i + 5], ']') &&
          IsIdent(toks[i + 6], cls)) {
        return true;
      }
    }
    return false;
  }
};

// -------------------------------------------------------------- lock-order-ipa

// The interprocedural extension of lock-order: a function that holds a
// declared lock at a call site must not reach — through any chain of
// resolved calls — an acquisition the lock-order DAG forbids after it.
// This is where a PR-7-clean inversion hides: f takes `mu_` and calls g,
// g takes `append_mu_`, both functions locally well-ordered. The
// diagnostic carries the witness call path from the summary so the chain
// is readable without re-deriving it.
class LockOrderIpaRule : public Rule {
 public:
  std::string_view name() const override { return "lock-order-ipa"; }
  std::string_view description() const override {
    return "call chains must not reach a lock acquisition the declared "
           "lock-order DAG forbids under the locks held at the call site";
  }
  void Check(const SourceFile& file, const AnalyzerContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const LockOrderConfig& cfg = ctx.lockorder;
    if (!cfg.loaded || ctx.program == nullptr) return;
    for (size_t fi = 0; fi < file.functions.size(); ++fi) {
      const int id = ctx.program->IdOf(file.path, fi);
      if (id < 0) continue;
      const ProgramFunction& pf = ctx.program->functions[id];
      for (const CallEdge& edge : pf.callees) {
        if (edge.held.empty()) continue;
        const ProgramFunction& callee = ctx.program->functions[edge.callee];
        for (const TransitiveAcquire& acq : callee.summary.acquires) {
          if (!cfg.IsDeclared(acq.lock, acq.site_path)) continue;
          for (const std::string& held : edge.held) {
            if (!cfg.IsDeclared(held, file.path)) continue;
            std::string via;
            for (const std::string& hop : acq.path) {
              via += (via.empty() ? "" : " -> ") + hop;
            }
            const std::string site = acq.site_path + ":" +
                                     std::to_string(acq.site_line);
            if (held == acq.lock) {
              out->push_back(Diagnostic{
                  std::string(name()), file.path, edge.line,
                  "recursive acquisition through calls: '" + held +
                      "' is held at this call and reacquired at " + site +
                      " (via " + via +
                      "); re-entry deadlocks on the writer-preferring "
                      "SharedMutex"});
            } else if (!cfg.CanPrecede(held, acq.lock)) {
              out->push_back(Diagnostic{
                  std::string(name()), file.path, edge.line,
                  "interprocedural lock-order inversion: holding '" + held +
                      "' while the callee chain acquires '" + acq.lock +
                      "' at " + site + " (via " + via +
                      ") — no declared order in lockorder.conf permits "
                      "this chain"});
            }
          }
        }
      }
    }
  }
};

// ------------------------------------------------------------ guard-discipline

// Compiler-independent GUARDED_BY enforcement — the gcc substitute for
// clang -Werror=thread-safety. A read/write of an annotated member (via
// `this`, explicit or implicit) must happen with the declared mutex in
// the held set: locks the function itself opened, locks from a
// TKLUS_REQUIRES annotation, or locks every same-class caller provably
// holds at the call site (the entry-held propagation). Everything the
// token model cannot type — receiver-qualified accesses, lambda bodies
// (deferred execution), constructors/destructors (exclusive access) —
// is skipped, so the rule stays silent wherever clang's analysis is.
class GuardDisciplineRule : public Rule {
 public:
  std::string_view name() const override { return "guard-discipline"; }
  std::string_view description() const override {
    return "reads/writes of TKLUS_GUARDED_BY members require the declared "
           "mutex held (directly, via TKLUS_REQUIRES, or proven on entry)";
  }
  void Check(const SourceFile& file, const AnalyzerContext& ctx,
             std::vector<Diagnostic>* out) const override {
    if (ctx.program == nullptr) return;
    for (size_t fi = 0; fi < file.functions.size(); ++fi) {
      const FunctionLockModel& fn = file.functions[fi];
      if (fn.class_name.empty() || fn.is_ctor_or_dtor) continue;
      const int id = ctx.program->IdOf(file.path, fi);
      if (id < 0) continue;
      const ProgramFunction& pf = ctx.program->functions[id];
      if (pf.no_thread_safety) continue;
      for (const MemberAccess& access : fn.accesses) {
        if (access.in_lambda) continue;
        const FieldGuard* guard =
            ctx.program->FindFieldGuard(fn.class_name, access.member);
        if (guard == nullptr) continue;
        bool held = pf.entry_held_universal ||
                    pf.entry_held.count(guard->mutex) > 0;
        for (const HeldGuard& h : access.held) {
          held = held || h.member == guard->mutex;
        }
        if (held) continue;
        out->push_back(Diagnostic{
            std::string(name()), file.path, access.line,
            "access to '" + access.member + "' (TKLUS_GUARDED_BY(" +
                guard->mutex + ") on " + fn.class_name + ", declared at " +
                guard->class_name + " line " + std::to_string(guard->line) +
                ") without holding '" + guard->mutex +
                "'; lock it, annotate the method with TKLUS_REQUIRES, or "
                "mark an audited exception with "
                "TKLUS_NO_THREAD_SAFETY_ANALYSIS"});
      }
    }
  }
};

// -------------------------------------------------------------- hotpath-purity

// The per-posting inner loops (hotpath.conf roots: scoring, bounds,
// thread-tracker lookups) run under the shared engine lock for every
// query; one stray allocation or blocking call there multiplies across
// the whole corpus scan. This rule bans heap allocation, string
// construction and the configured blocking calls in any function
// *reachable* from a declared root — the guardrail the sid_resolve
// rewrite and block-max pruning work build against. `allow` entries are
// audited leaves the walk neither flags nor descends into.
class HotPathPurityRule : public Rule {
 public:
  std::string_view name() const override { return "hotpath-purity"; }
  std::string_view description() const override {
    return "no heap allocation, string construction or configured "
           "blocking calls reachable from hotpath.conf roots";
  }
  void Check(const SourceFile& file, const AnalyzerContext& ctx,
             std::vector<Diagnostic>* out) const override {
    if (!ctx.hotpath.loaded || ctx.program == nullptr) return;
    for (size_t fi = 0; fi < file.functions.size(); ++fi) {
      const FunctionLockModel& fn = file.functions[fi];
      const int id = ctx.program->IdOf(file.path, fi);
      if (id < 0) continue;
      const ProgramFunction& pf = ctx.program->functions[id];
      if (!pf.hot) continue;
      std::string witness;
      for (const std::string& hop : pf.hot_path) {
        witness += (witness.empty() ? "" : " -> ") + hop;
      }
      for (const EffectSite& effect : fn.effects) {
        const char* what = effect.kind == EffectSite::Kind::kAlloc
                               ? "heap allocation"
                               : "string construction";
        out->push_back(Diagnostic{
            std::string(name()), file.path, effect.line,
            std::string(what) + " '" + effect.what +
                "' on a declared hot path (" + witness +
                "); hoist it out of the per-posting loop or allow-list "
                "the audited helper in hotpath.conf"});
      }
      for (const CallSite& call : fn.call_sites) {
        if (ctx.hotpath.banned.count(call.callee) == 0) continue;
        if (ctx.hotpath.allowed.count(call.callee) > 0) continue;
        out->push_back(Diagnostic{
            std::string(name()), file.path, call.line,
            "blocking call '" + call.callee + "' on a declared hot path (" +
                witness + "); hot-path roots must never reach blocking "
                "I/O — move it behind the lock-free read path"});
      }
    }
  }
};

// ----------------------------------------------------------------- suppression

// Polices the inline suppression syntax itself. The sanctioned spelling
// is `// NOLINT(tklus-<rule>): <reason>`: a bare NOLINT, an unknown rule
// name and a missing reason are each findings — a suppression that does
// not say what it silences and why is how analyzer debt becomes
// invisible. The companion stale check (a well-formed suppression whose
// rule no longer fires on that line) lives in the analyzer driver, which
// is the only place that sees the other rules' results.
class SuppressionRule : public Rule {
 public:
  std::string_view name() const override { return "suppression"; }
  std::string_view description() const override {
    return "NOLINT comments must name a tklus rule and a reason "
           "(`// NOLINT(tklus-<rule>): <reason>`); stale suppressions "
           "are flagged";
  }
  void Check(const SourceFile& file, const AnalyzerContext& ctx,
             std::vector<Diagnostic>* out) const override {
    for (const Suppression& s : file.suppressions) {
      if (!s.has_rule) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, s.line,
            "bare NOLINT; name the silenced rule and the reason: "
            "`// NOLINT(tklus-<rule>): <reason>`"});
        continue;
      }
      if (!ctx.rule_names.empty() && ctx.rule_names.count(s.rule) == 0) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, s.line,
            "NOLINT names unknown rule 'tklus-" + s.rule +
                "'; see --list-rules for the registered set"});
        continue;
      }
      if (!s.has_reason) {
        out->push_back(Diagnostic{
            std::string(name()), file.path, s.line,
            "NOLINT(tklus-" + s.rule +
                ") has no reason; append `: <why this is safe>` — "
                "unexplained suppressions are unreviewable"});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> BuildRuleSet() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<PinDisciplineRule>());
  rules.push_back(std::make_unique<LayeringRule>());
  rules.push_back(std::make_unique<StatusDisciplineRule>());
  rules.push_back(std::make_unique<NakedMutexRule>());
  rules.push_back(std::make_unique<NakedLockRule>());
  rules.push_back(std::make_unique<VoidDiscardRule>());
  rules.push_back(std::make_unique<NondeterminismRule>());
  rules.push_back(std::make_unique<ClockDisciplineRule>());
  rules.push_back(std::make_unique<DurabilityDisciplineRule>());
  rules.push_back(std::make_unique<LockOrderRule>());
  rules.push_back(std::make_unique<IoUnderLockRule>());
  rules.push_back(std::make_unique<NodiscardGuardRule>());
  rules.push_back(std::make_unique<LockOrderIpaRule>());
  rules.push_back(std::make_unique<GuardDisciplineRule>());
  rules.push_back(std::make_unique<HotPathPurityRule>());
  rules.push_back(std::make_unique<SuppressionRule>());
  return rules;
}

}  // namespace tklus::analyze
