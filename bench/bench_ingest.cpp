// Durable-ingestion baseline: WAL-acked append throughput, reader tail
// latency with and without a concurrent ingest stream (the delta index's
// whole point is a flat reader p99 while batches land), and recovery time
// as a function of WAL length.
//
// Emits a machine-readable BENCH_ingest.json (schema: EXPERIMENTS.md
// "BENCH_ingest.json") so CI can track regressions; the human-readable
// tables go to stdout.
//
// Flags:
//   --smoke       small corpus + fewer repetitions (CI-friendly, <1 min)
//   --out <path>  JSON destination (default: BENCH_ingest.json in cwd)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/query_workload.h"

namespace {

using namespace tklus;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

Dataset Slice(const Dataset& all, size_t begin, size_t end) {
  Dataset out;
  for (size_t i = begin; i < end && i < all.size(); ++i) {
    out.Add(all.posts()[i]);
  }
  return out;
}

struct LatencyStats {
  uint64_t queries = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

// `threads` readers loop the workload until `stop` flips (or `reps`
// passes complete when stop is null): per-query latencies, merged.
LatencyStats RunReaders(TkLusEngine& engine,
                        const std::vector<TkLusQuery>& queries, int threads,
                        int reps, std::atomic<bool>* stop) {
  std::vector<std::vector<double>> latencies(threads);
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&engine, &queries, &latencies, reps, stop, t] {
      std::vector<double>& mine = latencies[t];
      for (int rep = 0; stop != nullptr || rep < reps; ++rep) {
        for (const TkLusQuery& q : queries) {
          if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
            return;
          }
          const auto q_start = Clock::now();
          auto result = engine.Query(q);
          if (!result.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         result.status().ToString().c_str());
            std::exit(1);
          }
          mine.push_back(MillisSince(q_start));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s = MillisSince(start) / 1000.0;

  std::vector<double> all;
  for (const std::vector<double>& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  LatencyStats stats;
  stats.queries = all.size();
  stats.qps = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  stats.p50_ms = Percentile(all, 0.50);
  stats.p99_ms = Percentile(all, 0.99);
  return stats;
}

struct RecoveryPoint {
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t replayed_posts = 0;
  double open_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out path]\n", argv[0]);
      return 2;
    }
  }

  bench::Scale scale = bench::ScaleFromEnv();
  if (smoke && std::getenv("TKLUS_BENCH_TWEETS") == nullptr) {
    scale.tweets = 8000;
    scale.users = 400;
  }
  const size_t batch_posts = smoke ? 200 : 500;
  const int reader_threads = 2;

  bench::Banner(
      "Durable ingestion — WAL append, reader tail latency, recovery",
      "WAL-acked appends land in the delta index off the readers' lock "
      "path, so reader p99 stays flat during ingest; recovery replays the "
      "WAL tail in time linear in its length");
  std::printf("corpus: %zu tweets, %zu users; batch: %zu posts\n\n",
              scale.tweets, scale.users, batch_posts);

  const auto corpus = bench::MakeCorpus(scale);
  const size_t seed_size = corpus.dataset.size() / 2;
  const Dataset seed = Slice(corpus.dataset, 0, seed_size);

  const auto scratch = std::filesystem::temp_directory_path() /
                       ("tklus_bench_ingest_" + std::to_string(::getpid()));
  std::filesystem::create_directories(scratch);

  datagen::WorkloadOptions wl;
  wl.radius_km = 50.0;
  const std::vector<TkLusQuery> workload = MakeQueryWorkload(corpus, wl);

  // ---- append throughput: WAL-acked batches on a quiescent engine (no
  // background merge, no readers) — the pure durable-write cost, fsyncs
  // included.
  double append_posts_per_s = 0.0;
  double append_mean_batch_ms = 0.0;
  uint64_t append_wal_bytes = 0;
  size_t append_batches = 0;
  {
    TkLusEngine::Options options;
    options.working_dir = (scratch / "append").string();
    options.delta_merge_posts = 0;
    auto engine = bench::MakeEngine(seed, options);
    const auto start = Clock::now();
    size_t appended = 0;
    for (size_t at = seed_size; at < corpus.dataset.size();
         at += batch_posts) {
      const Dataset batch =
          Slice(corpus.dataset, at, at + batch_posts);
      const Status st = engine->AppendBatch(batch);
      if (!st.ok()) {
        std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
        return 1;
      }
      appended += batch.size();
      ++append_batches;
    }
    const double wall_ms = MillisSince(start);
    append_posts_per_s =
        wall_ms > 0 ? static_cast<double>(appended) / (wall_ms / 1000.0) : 0;
    append_mean_batch_ms =
        append_batches > 0 ? wall_ms / static_cast<double>(append_batches)
                           : 0;
    append_wal_bytes = engine->wal().size_bytes();
    std::printf("%-22s %-10zu\n", "batches appended", append_batches);
    std::printf("%-22s %-10.1f\n", "posts / s (fsynced)",
                append_posts_per_s);
    std::printf("%-22s %-10.2f\n", "mean batch ms", append_mean_batch_ms);
    std::printf("%-22s %-10llu\n\n", "final WAL bytes",
                (unsigned long long)append_wal_bytes);
  }

  // ---- reader p99, idle vs during ingest. Same engine shape both times;
  // the ingest run streams the second half of the corpus as a *paced*
  // periodic-batch arrival (the paper's §IV-A setting — bulk-loading
  // back-to-back measures CPU saturation, not the write path's reader
  // impact), with the background merge folding mid-stream.
  LatencyStats idle, busy;
  const auto batch_interval =
      std::chrono::milliseconds(smoke ? 25 : 50);
  {
    TkLusEngine::Options options;
    options.working_dir = (scratch / "readers").string();
    auto engine = bench::MakeEngine(seed, options);
    const int reps = smoke ? 2 : 4;
    idle = RunReaders(*engine, workload, reader_threads, reps, nullptr);

    std::atomic<bool> stop{false};
    LatencyStats during;
    std::thread readers_thread([&] {
      during = RunReaders(*engine, workload, reader_threads, 0, &stop);
    });
    auto next_batch = Clock::now();
    for (size_t at = seed_size; at < corpus.dataset.size();
         at += batch_posts) {
      std::this_thread::sleep_until(next_batch);
      next_batch += batch_interval;
      const Status st =
          engine->AppendBatch(Slice(corpus.dataset, at, at + batch_posts));
      if (!st.ok()) {
        std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    stop.store(true, std::memory_order_relaxed);
    readers_thread.join();
    busy = during;

    std::printf("%-16s %-9s %-10s %-10s %-10s\n", "readers", "queries",
                "QPS", "p50 ms", "p99 ms");
    std::printf("%-16s %-9llu %-10.1f %-10.2f %-10.2f\n", "idle",
                (unsigned long long)idle.queries, idle.qps, idle.p50_ms,
                idle.p99_ms);
    std::printf("%-16s %-9llu %-10.1f %-10.2f %-10.2f\n", "during ingest",
                (unsigned long long)busy.queries, busy.qps, busy.p50_ms,
                busy.p99_ms);
    std::printf("p99 during / idle: %.2fx\n\n",
                idle.p99_ms > 0 ? busy.p99_ms / idle.p99_ms : 0.0);
  }

  // ---- recovery time vs WAL length: checkpoint once, append K batches,
  // drop the engine (the WAL survives; the delta does not), time Open.
  std::vector<RecoveryPoint> recovery;
  {
    const size_t max_batches = smoke ? 8 : 16;
    for (const size_t k : {size_t{0}, max_batches / 4, max_batches / 2,
                           max_batches}) {
      const auto dir = scratch / ("recover_" + std::to_string(k));
      {
        TkLusEngine::Options options;
        options.working_dir = dir.string();
        options.delta_merge_posts = 0;  // keep every batch in the WAL
        auto engine = bench::MakeEngine(seed, options);
        const Status st = engine->Save(dir.string());
        if (!st.ok()) {
          std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
          return 1;
        }
        for (size_t b = 0; b < k; ++b) {
          const size_t at = seed_size + b * batch_posts;
          const Status append_st =
              engine->AppendBatch(Slice(corpus.dataset, at, at + batch_posts));
          if (!append_st.ok()) {
            std::fprintf(stderr, "append failed: %s\n",
                         append_st.ToString().c_str());
            return 1;
          }
        }
      }
      const auto start = Clock::now();
      auto reopened = TkLusEngine::Open(dir.string());
      const double open_ms = MillisSince(start);
      if (!reopened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     reopened.status().ToString().c_str());
        return 1;
      }
      RecoveryPoint point;
      point.wal_records = k;
      point.wal_bytes = (*reopened)->wal().recovery_info().bytes;
      point.replayed_posts = (*reopened)->delta_index().post_count();
      point.open_ms = open_ms;
      recovery.push_back(point);
    }
    std::printf("%-13s %-12s %-15s %-10s\n", "WAL records", "WAL bytes",
                "replayed posts", "open ms");
    for (const RecoveryPoint& p : recovery) {
      std::printf("%-13llu %-12llu %-15llu %-10.1f\n",
                  (unsigned long long)p.wal_records,
                  (unsigned long long)p.wal_bytes,
                  (unsigned long long)p.replayed_posts, p.open_ms);
    }
  }

  // ---- machine-readable record (schema: EXPERIMENTS.md "BENCH_ingest").
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"tklus-bench-ingest-v1\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"corpus\": {\"tweets\": %zu, \"users\": %zu, "
               "\"batch_posts\": %zu},\n",
               scale.tweets, scale.users, batch_posts);
  std::fprintf(out,
               "  \"append\": {\"batches\": %zu, \"posts_per_s\": %.1f, "
               "\"mean_batch_ms\": %.3f, \"wal_bytes\": %llu},\n",
               append_batches, append_posts_per_s, append_mean_batch_ms,
               (unsigned long long)append_wal_bytes);
  std::fprintf(out, "  \"readers\": {\n");
  std::fprintf(out, "    \"ingest_batch_interval_ms\": %lld,\n",
               static_cast<long long>(batch_interval.count()));
  std::fprintf(out,
               "    \"idle\": {\"queries\": %llu, \"qps\": %.1f, "
               "\"p50_ms\": %.3f, \"p99_ms\": %.3f},\n",
               (unsigned long long)idle.queries, idle.qps, idle.p50_ms,
               idle.p99_ms);
  std::fprintf(out,
               "    \"during_ingest\": {\"queries\": %llu, \"qps\": %.1f, "
               "\"p50_ms\": %.3f, \"p99_ms\": %.3f},\n",
               (unsigned long long)busy.queries, busy.qps, busy.p50_ms,
               busy.p99_ms);
  std::fprintf(out, "    \"p99_ratio\": %.4f\n",
               idle.p99_ms > 0 ? busy.p99_ms / idle.p99_ms : 0.0);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"recovery\": [\n");
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryPoint& p = recovery[i];
    std::fprintf(out,
                 "    {\"wal_records\": %llu, \"wal_bytes\": %llu, "
                 "\"replayed_posts\": %llu, \"open_ms\": %.3f}%s\n",
                 (unsigned long long)p.wal_records,
                 (unsigned long long)p.wal_bytes,
                 (unsigned long long)p.replayed_posts, p.open_ms,
                 i + 1 < recovery.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  std::filesystem::remove_all(scratch);
  return 0;
}
