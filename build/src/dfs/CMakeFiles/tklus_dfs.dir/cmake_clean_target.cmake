file(REMOVE_RECURSE
  "libtklus_dfs.a"
)
