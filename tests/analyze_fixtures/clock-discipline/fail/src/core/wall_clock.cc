// Fixture: a core file reading wall time directly instead of through the
// injectable tklus::Clock. Both the fully qualified spelling and the
// using-shortened one must fire.
#include <chrono>

namespace tklus {

long NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long WallNs() {
  using namespace std::chrono;
  return system_clock::now().time_since_epoch().count();
}

}  // namespace tklus
