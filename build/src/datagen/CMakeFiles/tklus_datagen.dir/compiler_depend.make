# Empty compiler generated dependencies file for tklus_datagen.
# This may be replaced when dependencies are built.
