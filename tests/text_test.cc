#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace tklus {
namespace {

// ------------------------------------------------------------- stemmer

struct StemCase {
  const char* in;
  const char* out;
};

class PorterStemmerParamTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerParamTest, MatchesReference) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().in), GetParam().out);
}

// Expected outputs from Porter's reference vocabulary (voc.txt/output.txt).
INSTANTIATE_TEST_SUITE_P(
    ReferenceVocabulary, PorterStemmerParamTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("at"), "at");
  EXPECT_EQ(stemmer.Stem("by"), "by");
  EXPECT_EQ(stemmer.Stem(""), "");
  EXPECT_EQ(stemmer.Stem("a"), "a");
}

TEST(PorterStemmerTest, NonLowercasePassThrough) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("Hotel"), "Hotel");   // not pre-lowercased
  EXPECT_EQ(stemmer.Stem("caf3"), "caf3");     // digit
}

TEST(PorterStemmerTest, PaperDomainWords) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("restaurants"), "restaur");
  EXPECT_EQ(stemmer.Stem("restaurant"), "restaur");
  EXPECT_EQ(stemmer.Stem("hotels"), "hotel");
  EXPECT_EQ(stemmer.Stem("babysitters"), "babysitt");
  EXPECT_EQ(stemmer.Stem("babysitter"), "babysitt");
}

TEST(PorterStemmerTest, EdgeSuffixWords) {
  PorterStemmer stemmer;
  // Words that are pure suffixes must not crash or misindex.
  EXPECT_EQ(stemmer.Stem("ion"), "ion");
  EXPECT_EQ(stemmer.Stem("ing"), "ing");
  EXPECT_EQ(stemmer.Stem("sses"), "ss");  // step 1a: SSES -> SS
  EXPECT_EQ(stemmer.Stem("eed"), "eed");
}

// ------------------------------------------------------------ stopwords

TEST(StopwordsTest, PaperExamples) {
  // §II-A: "excludes popular stop words (e.g., this and that)".
  EXPECT_TRUE(IsStopWord("this"));
  EXPECT_TRUE(IsStopWord("that"));
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("rt"));
}

TEST(StopwordsTest, ContentWordsKept) {
  EXPECT_FALSE(IsStopWord("hotel"));
  EXPECT_FALSE(IsStopWord("restaurant"));
  EXPECT_FALSE(IsStopWord("toronto"));
}

TEST(StopwordsTest, ListIsSortedForBinarySearch) {
  // The binary_search contract: if the internal list were unsorted, known
  // members would be missed. Spot-check words across the alphabet.
  for (const char* w : {"a", "because", "doing", "herself", "itself",
                        "ourselves", "through", "yourselves"}) {
    EXPECT_TRUE(IsStopWord(w)) << w;
  }
  EXPECT_GT(StopWordCount(), 100u);
}

// ------------------------------------------------------------ tokenizer

TEST(TokenizerTest, PaperTweetA) {
  Tokenizer tok;
  const auto terms = tok.Tokenize("I'm at Toronto Marriott Bloor Yorkville Hotel");
  // "I'm" -> "i"+"m" dropped (stopword/short), rest stemmed+lowercased;
  // "yorkville" stems to "yorkvil" (step 5a drops e, 5b undoubles ll).
  const std::vector<std::string> expected = {"toronto", "marriott", "bloor",
                                             "yorkvil", "hotel"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, HashtagsKeepWordMentionsDropped) {
  Tokenizer tok;
  const auto terms = tok.Tokenize("#fashion #style @someone party");
  const std::vector<std::string> expected = {"fashion", "style", "parti"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, UrlsStripped) {
  Tokenizer tok;
  const auto terms = tok.Tokenize(
      "check http://t.co/abc123 great pizza https://x.y/z tonight");
  const std::vector<std::string> expected = {"check", "great", "pizza",
                                             "tonight"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, TermFrequenciesBagSemantics) {
  // §III-B example: "one spicy and two restaurant" occurrences.
  Tokenizer tok;
  const auto tf =
      tok.TermFrequencies("spicy restaurant! best restaurant ever");
  EXPECT_EQ(tf.at("restaur"), 2);
  EXPECT_EQ(tf.at("spici"), 1);
}

TEST(TokenizerTest, StopwordsRemoved) {
  Tokenizer tok;
  const auto terms = tok.Tokenize("the hotel is very good");
  const std::vector<std::string> expected = {"hotel", "good"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, OptionsCanDisableStemming) {
  TokenizerOptions opts;
  opts.stem = false;
  Tokenizer tok(opts);
  const auto terms = tok.Tokenize("amazing restaurants");
  const std::vector<std::string> expected = {"amazing", "restaurants"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("!!! ... ###").empty());
  EXPECT_TRUE(tok.Tokenize("@@@").empty());
}

TEST(TokenizerTest, MinTokenLengthEnforced) {
  TokenizerOptions opts;
  opts.min_token_length = 4;
  Tokenizer tok(opts);
  const auto terms = tok.Tokenize("go eat great food");
  const std::vector<std::string> expected = {"great", "food"};
  EXPECT_EQ(terms, expected);
}

// ----------------------------------------------------------- vocabulary

TEST(VocabularyTest, InternAssignsStableIds) {
  Vocabulary vocab;
  const auto id1 = vocab.Add("hotel");
  const auto id2 = vocab.Add("restaurant");
  const auto id3 = vocab.Add("hotel");
  EXPECT_EQ(id1, id3);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(vocab.term(id1), "hotel");
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, FrequenciesAccumulate) {
  Vocabulary vocab;
  vocab.Add("pizza", 3);
  vocab.Add("pizza", 2);
  const auto id = vocab.Lookup("pizza");
  ASSERT_NE(id, Vocabulary::kInvalidTerm);
  EXPECT_EQ(vocab.frequency(id), 5u);
  EXPECT_EQ(vocab.total_occurrences(), 5u);
}

TEST(VocabularyTest, LookupMissing) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Lookup("nothing"), Vocabulary::kInvalidTerm);
}

TEST(VocabularyTest, TopTermsOrdering) {
  Vocabulary vocab;
  vocab.Add("cafe", 10);
  vocab.Add("game", 30);
  vocab.Add("restaurant", 40);
  vocab.Add("shop", 10);
  const auto top = vocab.TopTerms(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "restaurant");
  EXPECT_EQ(top[1].first, "game");
  EXPECT_EQ(top[2].first, "cafe");  // tie with shop broken lexicographically
}

TEST(VocabularyTest, TopTermsMoreThanSize) {
  Vocabulary vocab;
  vocab.Add("one");
  EXPECT_EQ(vocab.TopTerms(10).size(), 1u);
}

}  // namespace
}  // namespace tklus
