#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "baseline/rtree.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/kendall.h"
#include "geo/circle_cover.h"
#include "geo/distance.h"
#include "geo/geohash.h"
#include "geo/quadtree.h"
#include "text/tokenizer.h"

namespace tklus {
namespace {

// ----------------------------------------------------------------- serde

TEST(SerdeTest, PrimitivesRoundTrip) {
  std::stringstream buffer;
  serde::WriteU64(buffer, 0xDEADBEEFCAFEBABEULL);
  serde::WriteI64(buffer, -42);
  serde::WriteU32(buffer, 7);
  serde::WriteDouble(buffer, 3.14159);
  serde::WriteString(buffer, "hello\0world");
  serde::WriteString(buffer, "");
  uint64_t u = 0;
  int64_t i = 0;
  uint32_t w = 0;
  double d = 0;
  std::string s, empty;
  ASSERT_TRUE(serde::ReadU64(buffer, &u));
  ASSERT_TRUE(serde::ReadI64(buffer, &i));
  ASSERT_TRUE(serde::ReadU32(buffer, &w));
  ASSERT_TRUE(serde::ReadDouble(buffer, &d));
  ASSERT_TRUE(serde::ReadString(buffer, &s));
  ASSERT_TRUE(serde::ReadString(buffer, &empty));
  EXPECT_EQ(u, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(i, -42);
  EXPECT_EQ(w, 7u);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "hello");  // string literal stops at NUL
  EXPECT_TRUE(empty.empty());
}

TEST(SerdeTest, TruncationDetected) {
  std::stringstream buffer;
  serde::WriteU64(buffer, 1);
  std::string data = buffer.str();
  data.resize(5);
  std::stringstream truncated(data);
  uint64_t v = 0;
  EXPECT_FALSE(serde::ReadU64(truncated, &v));
  // Bogus string length.
  std::stringstream bogus;
  serde::WriteU64(bogus, ~0ULL);
  std::string out;
  EXPECT_FALSE(serde::ReadString(bogus, &out));
}

// --------------------------------------------------------------- geohash

TEST(GeohashPropertyTest, NeighborRelationIsSymmetric) {
  Rng rng(71);
  for (int trial = 0; trial < 100; ++trial) {
    const GeoPoint p{rng.Uniform(-70, 70), rng.Uniform(-170, 170)};
    const std::string cell = geohash::Encode(p, 4);
    for (const std::string& nb : geohash::Neighbors(cell)) {
      const auto back = geohash::Neighbors(nb);
      EXPECT_NE(std::find(back.begin(), back.end(), cell), back.end())
          << cell << " <-> " << nb;
    }
  }
}

TEST(GeohashPropertyTest, NeighborsDistinct) {
  Rng rng(72);
  for (int trial = 0; trial < 100; ++trial) {
    const GeoPoint p{rng.Uniform(-70, 70), rng.Uniform(-170, 170)};
    const std::string cell = geohash::Encode(p, 3);
    const auto neighbors = geohash::Neighbors(cell);
    const std::set<std::string> unique(neighbors.begin(), neighbors.end());
    EXPECT_EQ(unique.size(), neighbors.size());
    EXPECT_EQ(unique.count(cell), 0u);
  }
}

// Circle covers across radii and lengths: every in-circle point is
// covered; ratio sane.
struct CoverCase {
  double radius_km;
  int length;
};

class CircleCoverPropertyTest : public ::testing::TestWithParam<CoverCase> {};

TEST_P(CircleCoverPropertyTest, CoversAndBounded) {
  const auto [radius, length] = GetParam();
  Rng rng(73);
  const GeoPoint q{51.5074, -0.1278};  // London
  const auto cells = GeohashCircleCover(q, radius, length);
  ASSERT_FALSE(cells.empty());
  const std::set<std::string> cell_set(cells.begin(), cells.end());
  for (int i = 0; i < 500; ++i) {
    const double bearing = rng.Uniform(0, 6.283185);
    const double dist = radius * std::sqrt(rng.NextDouble());
    const GeoPoint p{
        q.lat + dist * std::cos(bearing) / kKmPerDegreeLat,
        q.lon + dist * std::sin(bearing) /
                    (kKmPerDegreeLat * std::cos(q.lat * kDegToRad))};
    if (EuclideanKm(p, q) > radius) continue;
    EXPECT_TRUE(cell_set.count(geohash::Encode(p, length)))
        << "uncovered at r=" << radius << " len=" << length;
  }
  EXPECT_GE(CoverAreaRatio(cells, q, radius), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CircleCoverPropertyTest,
    ::testing::Values(CoverCase{1, 4}, CoverCase{5, 3}, CoverCase{5, 4},
                      CoverCase{5, 5}, CoverCase{20, 3}, CoverCase{20, 4},
                      CoverCase{50, 2}, CoverCase{50, 4},
                      CoverCase{100, 3}));

// ------------------------------------------- spatial index cross-check

TEST(SpatialCrossCheckTest, QuadtreeAndRTreeAgree) {
  Quadtree quadtree;
  RTree rtree(16);
  Rng rng(74);
  for (uint64_t i = 0; i < 3000; ++i) {
    const GeoPoint p{40.0 + rng.Normal(0, 0.5), -74.0 + rng.Normal(0, 0.5)};
    quadtree.Insert(p, i);
    rtree.Insert(p, i);
  }
  for (const double r : {1.0, 10.0, 60.0}) {
    for (int trial = 0; trial < 5; ++trial) {
      const GeoPoint q{40.0 + rng.Uniform(-0.5, 0.5),
                       -74.0 + rng.Uniform(-0.5, 0.5)};
      std::set<uint64_t> a, b;
      for (const auto& e : quadtree.RangeQuery(q, r)) a.insert(e.id);
      for (const auto& e : rtree.RangeQuery(q, r)) b.insert(e.id);
      EXPECT_EQ(a, b) << "r=" << r;
    }
  }
}

// --------------------------------------------------------------- kendall

TEST(KendallPropertyTest, SelfTauIsOne) {
  Rng rng(75);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<UserId> ranking;
    const int n = 2 + static_cast<int>(rng.UniformInt(uint64_t{20}));
    for (int i = 0; i < n; ++i) ranking.push_back(i * 7 + 1);
    EXPECT_DOUBLE_EQ(KendallTauVariant(ranking, ranking), 1.0);
  }
}

TEST(KendallPropertyTest, SingleSwapReducesTauSlightly) {
  std::vector<UserId> base;
  for (UserId u = 1; u <= 20; ++u) base.push_back(u);
  double prev_tau = 1.0;
  // Progressive corruption: each extra swap lowers tau (or ties).
  std::vector<UserId> shuffled = base;
  Rng rng(76);
  for (int swaps = 0; swaps < 5; ++swaps) {
    const size_t i = rng.UniformInt(shuffled.size());
    const size_t j = rng.UniformInt(shuffled.size());
    std::swap(shuffled[i], shuffled[j]);
    const double tau = KendallTauVariant(base, shuffled);
    EXPECT_LE(tau, 1.0);
    EXPECT_GE(tau, -1.0);
    prev_tau = tau;
  }
  (void)prev_tau;
}

TEST(KendallPropertyTest, DisjointListsStronglyDiscordant) {
  // Completely disjoint top-k lists: each list ranks the other's users
  // behind its own, so every cross pair is discordant (9 of 15 pairs) and
  // within-list pairs are tied-in-one-list (neither). tau = -9/15.
  const std::vector<UserId> a = {1, 2, 3};
  const std::vector<UserId> b = {4, 5, 6};
  EXPECT_NEAR(KendallTauVariant(a, b), -0.6, 1e-12);
}

// --------------------------------------------------------------- text

TEST(TokenizerRobustnessTest, GarbageInputsDoNotCrash) {
  Tokenizer tokenizer;
  const std::string inputs[] = {
      std::string(1000, '@'),
      std::string(1000, '#'),
      "http://",
      "https://",
      "@@##@@##",
      std::string("\x01\x02\x7f\x03"),
      "ALLCAPS ALLCAPS ALLCAPS",
      std::string(5000, 'a'),
      "a b c d e f g h i j k l m n o p q r s t u v w x y z",
  };
  for (const std::string& input : inputs) {
    const auto terms = tokenizer.Tokenize(input);
    for (const std::string& term : terms) {
      EXPECT_GE(static_cast<int>(term.size()),
                tokenizer.options().min_token_length);
    }
  }
}

TEST(TokenizerRobustnessTest, RandomBytesFuzz) {
  Tokenizer tokenizer;
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const size_t n = rng.UniformInt(uint64_t{300});
    for (size_t i = 0; i < n; ++i) {
      input.push_back(static_cast<char>(rng.UniformInt(uint64_t{128})));
    }
    // Must not crash; all tokens lowercase alnum.
    for (const std::string& term : tokenizer.Tokenize(input)) {
      for (const char c : term) {
        EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            << static_cast<int>(c);
      }
    }
  }
}

}  // namespace
}  // namespace tklus
