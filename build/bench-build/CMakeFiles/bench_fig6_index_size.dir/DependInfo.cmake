
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_index_size.cpp" "bench-build/CMakeFiles/bench_fig6_index_size.dir/bench_fig6_index_size.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig6_index_size.dir/bench_fig6_index_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tklus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/tklus_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tklus_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/tklus_index.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/tklus_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/tklus_social.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tklus_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tklus_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tklus_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tklus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tklus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
