#ifndef TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_
#define TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace tklus::analyze {

// One lexical token. The lexer strips comments and collapses string/char
// literals into single tokens, so rules never false-positive on a banned
// spelling inside a comment or a log message — the main precision win
// over the grep-based lint this analyzer replaced.
struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

// An `#include` directive, extracted before tokenization.
struct IncludeDirective {
  std::string path;  // as written between the delimiters
  bool quoted;       // "module/header.h" (true) vs <vector> (false)
  int line;
};

// A `// NOLINT...` suppression comment, captured during lexing. The
// sanctioned spelling is `// NOLINT(tklus-<rule>): <reason>` — the rule
// parenthesized with its `tklus-` prefix, the reason mandatory. Malformed
// forms are kept too (with the flags unset) so the suppression rule can
// report them.
struct Suppression {
  int line;
  std::string rule;  // without the "tklus-" prefix; empty if none given
  bool has_rule;     // false for a bare `// NOLINT`
  bool has_reason;   // true when non-space text follows the `:`
};

// One RAII lock guard (`MutexLock` / `ReaderMutexLock` /
// `WriterMutexLock`) as seen by the statement model: the guarded member
// is the last identifier of the constructor argument, so
// `MutexLock lock(&append_mu_)` and `WriterMutexLock l(&engine->mu_)`
// resolve to `append_mu_` and `mu_`.
struct HeldGuard {
  std::string member;
  std::string guard_type;  // the RAII class name as written
  bool exclusive;          // false only for ReaderMutexLock
  int line;
};

// One guard acquisition together with the guards already held (in
// acquisition order, outermost first) at that statement.
struct GuardAcquire {
  HeldGuard guard;
  std::vector<HeldGuard> held;
};

// One call made while at least one guard is in scope. `callee` is the
// final identifier of the call chain (`wal_->Append(..)` -> `Append`).
struct GuardedCall {
  std::string callee;
  int line;
  std::vector<HeldGuard> held;
};

// Every call site (guarded or not), with enough syntactic context for
// the cross-TU call graph to resolve it conservatively: an unqualified
// or `this->` call inside a member function prefers the same class, a
// `Class::f(...)` call resolves through the qualifier, and a call
// through an object receiver (`x.f(...)` / `p->f(...)`) resolves only
// when exactly one function in the program bears that name.
struct CallSite {
  enum class Form { kUnqualified, kThis, kMember, kQualified };
  std::string callee;     // final identifier of the call chain
  std::string qualifier;  // `Class` for kQualified; receiver for kMember
  Form form;
  int line;
  // Inside a lambda body. The token model cannot tell a deferred lambda
  // (thread entry, callback) from an immediately-invoked one, so the
  // call graph drops these call sites entirely: a thread-entry call
  // attributed to the spawning function would fabricate lock chains the
  // spawner never executes. Intraprocedural rules still see the call.
  bool in_lambda = false;
  std::vector<HeldGuard> held;  // guards in scope at the call
};

// A heap-allocation or string-construction site inside a function body,
// as visible at token level: `new`, make_unique/make_shared, the malloc
// family, `std::string` construction, to_string/substr and the
// stringstream types. Invisible allocations (container growth inside a
// member call) are out of scope — hotpath-purity documents that bound.
struct EffectSite {
  enum class Kind { kAlloc, kString };
  Kind kind;
  std::string what;  // the spelling that triggered the record
  int line;
};

// An unqualified or `this->` read/write of a `_`-suffixed identifier —
// the candidate member accesses guard-discipline checks against the
// GUARDED_BY annotations. Accesses through a non-this receiver are not
// recorded: the token model cannot type the receiver, and a wrong guess
// would be a false positive factory.
struct MemberAccess {
  std::string member;
  int line;
  bool in_lambda;  // inside a lambda body; guard-discipline skips these
  std::vector<HeldGuard> held;
};

// A `TKLUS_GUARDED_BY(mu)` (or TKLUS_PT_GUARDED_BY) field annotation,
// attributed to its enclosing class.
struct FieldGuard {
  std::string class_name;
  std::string field;
  std::string mutex;  // last identifier of the annotation argument
  int line;
};

// A TKLUS_REQUIRES / TKLUS_REQUIRES_SHARED /
// TKLUS_NO_THREAD_SAFETY_ANALYSIS annotation attached to a method
// declaration or definition. Collected from headers and sources alike;
// the program model merges them by (class, method).
struct MethodAnnotation {
  std::string class_name;
  std::string method;
  std::set<std::string> requires_locks;  // REQUIRES(_SHARED) arguments
  bool no_thread_safety = false;
  int line;
};

// The flow-aware view of one function: every guard acquisition with its
// in-scope predecessors, every call made under a guard, plus the
// interprocedural inputs — all call sites, effect sites and candidate
// member accesses. Guard lifetimes follow brace scopes (RAII), so a
// guard declared inside a nested block stops being "held" at the block's
// closing brace. The per-function view is intraprocedural; the program
// model (analyze/callgraph.h) propagates it across calls.
struct FunctionLockModel {
  std::string name;        // best-effort qualified name; may be empty
  std::string class_name;  // from the name's prefix or the enclosing class
  int line;
  bool is_ctor_or_dtor = false;
  std::vector<GuardAcquire> acquisitions;
  std::vector<GuardedCall> calls;  // calls under at least one guard
  std::vector<CallSite> call_sites;
  std::vector<EffectSite> effects;
  std::vector<MemberAccess> accesses;
};

// The lexical model of one file that rules run against.
struct SourceFile {
  std::string path;    // forward-slash path relative to the scan root
  std::string module;  // "storage" for src/storage/...; "" outside src/
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<Suppression> suppressions;
  // Statement model, filled by the analyzer after lexing (rules read it;
  // unit tests may call BuildFileModel directly).
  std::vector<FunctionLockModel> functions;
  std::vector<FieldGuard> guarded_fields;
  std::vector<MethodAnnotation> method_annotations;
};

// Lexes `text` into the model. `rel_path` must already be normalized to
// forward slashes and relative to the scan root. Backslash-newline
// splices are resolved first (a spliced identifier is one token and a
// line comment ending in `\` swallows its continuation, exactly like the
// preprocessor), and raw string literals — including the u8R/uR/UR/LR
// encoding-prefixed forms and d-char delimiters — collapse to a single
// `<raw-string>` token. NOLINT suppressions are captured from line
// comments before they are stripped.
SourceFile LexFile(std::string rel_path, std::string_view text);

// Builds the statement model over a lexed file in place: functions (with
// call sites, effects and member accesses), GUARDED_BY field annotations
// and method annotations.
void BuildFileModel(SourceFile* file);

// Legacy entry point: builds the function-scope statement model and
// returns it (unit tests use this; the analyzer calls BuildFileModel).
std::vector<FunctionLockModel> BuildLockModel(const SourceFile& file);

// True if `path` ends with the path suffix `suffix` on a component
// boundary (so "storage/buffer_pool.h" matches "src/storage/buffer_pool.h"
// but not "src/storage/other_buffer_pool.h").
bool PathEndsWith(std::string_view path, std::string_view suffix);

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_SOURCE_MODEL_H_
