#ifndef TKLUS_GEO_GEOHASH_H_
#define TKLUS_GEO_GEOHASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/point.h"

namespace tklus {

// Geohash encoding (§IV-B of the paper). A geohash is the quadtree-derived
// bit interleaving of longitude and latitude halvings (longitude bit first),
// re-encoded 5 bits per character in the Base32 alphabet
// "0123456789bcdefghjkmnpqrstuvwxyz" (digits plus a-z without a, i, l, o).
// The paper's Table IV example (-23.994140625, -46.23046875) encodes to
// "6gxp" at length 4, which this implementation reproduces.
namespace geohash {

inline constexpr int kMaxLength = 12;

// Encodes `p` into a geohash of `length` characters (1..kMaxLength).
std::string Encode(const GeoPoint& p, int length);

// Raw interleaved bits (lon bit first), most significant bit first,
// `bits` in 1..60.
uint64_t EncodeBits(const GeoPoint& p, int bits);

// Bounding box of the cell named by `hash`. Error on empty/invalid input.
Result<BoundingBox> DecodeBox(const std::string& hash);

// Center of the cell.
Result<GeoPoint> Decode(const std::string& hash);

// The 8 neighbouring cells (N, NE, E, SE, S, SW, W, NW) at the same
// length. Cells falling off the poles are omitted; longitude wraps.
std::vector<std::string> Neighbors(const std::string& hash);

// Cell extent in degrees for a given geohash length.
// Even bit counts split lon one more time than lat and vice versa.
void CellSpanDegrees(int length, double* lat_span, double* lon_span);

// Approximate cell diagonal in km at a given latitude (used to pick cover
// granularity and in tests).
double CellDiagonalKm(int length, double at_lat);

// True if `hash` uses only valid Base32 characters.
bool IsValid(const std::string& hash);

}  // namespace geohash
}  // namespace tklus

#endif  // TKLUS_GEO_GEOHASH_H_
