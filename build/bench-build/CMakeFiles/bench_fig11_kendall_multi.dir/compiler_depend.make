# Empty compiler generated dependencies file for bench_fig11_kendall_multi.
# This may be replaced when dependencies are built.
