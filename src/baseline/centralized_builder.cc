#include "baseline/centralized_builder.h"

#include <algorithm>
#include <map>
#include <vector>

#include "obs/stopwatch.h"
#include "geo/geohash.h"
#include "index/posting.h"

namespace tklus {

CentralizedBuildResult BuildCentralizedIndex(const Dataset& dataset,
                                             int geohash_length,
                                             const TokenizerOptions& options) {
  Stopwatch timer;
  const Tokenizer tokenizer(options);
  CentralizedBuildResult result;

  // One ordered map over composite keys — the memory-resident equivalent
  // of the sort-merge a centralized indexer performs.
  std::map<std::pair<std::string, std::string>, std::vector<Posting>> index;
  for (const Post& post : dataset.posts()) {
    const auto freqs = tokenizer.TermFrequencies(post.text);
    if (freqs.empty()) continue;
    const std::string cell = geohash::Encode(post.location, geohash_length);
    for (const auto& [term, tf] : freqs) {
      index[{cell, term}].push_back(
          Posting{post.sid, static_cast<uint32_t>(tf)});
    }
  }
  for (auto& [key, postings] : index) {
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) { return a.tid < b.tid; });
    const std::string encoded = EncodePostings(postings);
    result.encoded_bytes += encoded.size();
    result.postings_entries += postings.size();
    ++result.postings_lists;
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace tklus
