// Open-loop load harness for the request server (DESIGN.md §16): drives
// the loopback query server fronting a ShardedEngine at N=1 and N=4
// shards, measures closed-loop saturation QPS, then replays an open-loop
// Poisson arrival schedule at fractions of saturation — latency is
// completion minus *scheduled* arrival, so queueing delay under overload
// is charged to the server, not hidden by coordinated omission.
//
// Emits machine-readable BENCH_server.json (schema: EXPERIMENTS.md
// "BENCH_server.json") so CI can validate the scatter-gather scaling
// claim (N=4 saturation >= 2x N=1, gated on >= 4 hardware threads —
// a single-core box serializes the shards and proves nothing).
//
// Flags:
//   --smoke       small corpus + short passes (CI-friendly, <1 min)
//   --out <path>  JSON destination (default: BENCH_server.json in cwd)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/sharded_engine.h"
#include "datagen/query_workload.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using namespace tklus;
using Clock = std::chrono::steady_clock;

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct LoadResult {
  double offered_qps = 0.0;  // 0 => closed loop (no pacing)
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t requests = 0;
};

std::vector<std::string> EncodeWorkload(const datagen::GeneratedCorpus& corpus,
                                        size_t limit) {
  datagen::WorkloadOptions options;
  std::vector<TkLusQuery> queries =
      datagen::MakeQueryWorkload(corpus, options);
  if (queries.size() > limit) queries.resize(limit);
  std::vector<std::string> frames;
  frames.reserve(queries.size());
  for (const TkLusQuery& q : queries) {
    server::WireRequest request;
    request.query = q;
    frames.push_back(server::EncodeRequest(request));
  }
  return frames;
}

int DialOrDie(int port) {
  auto fd = server::Connect(port);
  if (!fd.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 fd.status().ToString().c_str());
    std::exit(1);
  }
  return *fd;
}

server::WireResponse CallOrDie(int fd, const std::string& frame) {
  if (const Status st = server::WriteFrame(fd, frame); !st.ok()) {
    std::fprintf(stderr, "request failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::string payload;
  bool eof = false;
  if (const Status st = server::ReadFrame(fd, 1 << 20, &payload, &eof);
      !st.ok() || eof) {
    std::fprintf(stderr, "response failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  server::WireResponse response;
  if (const Status st = server::DecodeResponse(payload, &response);
      !st.ok()) {
    std::fprintf(stderr, "decode failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  if (response.code != 0) {
    std::fprintf(stderr, "server error: %s\n", response.message.c_str());
    std::exit(1);
  }
  return response;
}

// Closed loop: `connections` senders issue back-to-back requests for
// `seconds`. The aggregate rate is the server's saturation throughput;
// latencies are per-request round trips at full load.
LoadResult RunClosedLoop(int port, const std::vector<std::string>& frames,
                         int connections, double seconds) {
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::atomic<uint64_t> total{0};
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  std::vector<std::thread> senders;
  for (int c = 0; c < connections; ++c) {
    senders.emplace_back([&, c] {
      const int fd = DialOrDie(port);
      size_t next = static_cast<size_t>(c);
      while (Clock::now() < deadline) {
        const Clock::time_point sent = Clock::now();
        CallOrDie(fd, frames[next % frames.size()]);
        latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count());
        next += static_cast<size_t>(connections);
        total.fetch_add(1, std::memory_order_relaxed);
      }
      ::close(fd);
    });
  }
  for (std::thread& t : senders) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadResult result;
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  result.requests = total.load();
  result.achieved_qps =
      elapsed > 0 ? static_cast<double>(result.requests) / elapsed : 0.0;
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  return result;
}

// Open loop: a Poisson arrival schedule at `offered_qps` is fixed up
// front; senders dispatch each request at its scheduled instant (or as
// soon as their connection frees up) and latency is measured from the
// *schedule*, so a server that falls behind accrues queueing delay.
LoadResult RunOpenLoop(int port, const std::vector<std::string>& frames,
                       int connections, double offered_qps, double seconds,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<double> arrivals;  // seconds from start
  double t = 0.0;
  while (t < seconds) {
    const double u = rng.NextDouble();
    t += -std::log(1.0 - u) / offered_qps;
    if (t < seconds) arrivals.push_back(t);
  }

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> senders;
  for (int c = 0; c < connections; ++c) {
    senders.emplace_back([&, c] {
      const int fd = DialOrDie(port);
      for (size_t i = static_cast<size_t>(c); i < arrivals.size();
           i += static_cast<size_t>(connections)) {
        const Clock::time_point scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrivals[i]));
        std::this_thread::sleep_until(scheduled);
        CallOrDie(fd, frames[i % frames.size()]);
        latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      scheduled)
                .count());
      }
      ::close(fd);
    });
  }
  for (std::thread& t2 : senders) t2.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadResult result;
  result.offered_qps = offered_qps;
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  result.requests = arrivals.size();
  result.achieved_qps =
      elapsed > 0 ? static_cast<double>(result.requests) / elapsed : 0.0;
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  return result;
}

struct ShardRun {
  int num_shards = 0;
  LoadResult saturation;
  std::vector<LoadResult> open_loop;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out path]\n", argv[0]);
      return 2;
    }
  }

  bench::Scale scale = bench::ScaleFromEnv();
  if (smoke && std::getenv("TKLUS_BENCH_TWEETS") == nullptr) {
    scale.tweets = 8000;
    scale.users = 400;
  }
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const int workers = static_cast<int>(std::max(4u, hardware_threads));
  const int connections = workers;
  const double pass_seconds = smoke ? 1.0 : 4.0;

  bench::Banner(
      "Query server — open-loop load vs shard count",
      "geohash-sharded scatter-gather parallelizes the per-shard fetch "
      "work across cores; with >= 4 hardware threads the 4-shard server "
      "saturates at >= 2x the single-shard QPS");
  std::printf(
      "corpus: %zu tweets, %zu users; workers/connections: %d; "
      "hardware threads: %u\n\n",
      scale.tweets, scale.users, workers, hardware_threads);

  const datagen::GeneratedCorpus corpus = bench::MakeCorpus(scale);
  const std::vector<std::string> frames =
      EncodeWorkload(corpus, smoke ? 30 : 90);
  if (frames.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  std::vector<ShardRun> runs;
  for (const int num_shards : {1, 4}) {
    ShardedEngine::Options options;
    options.num_shards = num_shards;
    options.shard.scoring.n_norm = bench::kBenchNNorm;
    options.shard.buffer_pool_pages = 256;
    auto engine = ShardedEngine::Build(corpus.dataset, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    server::RequestServer::Options server_options;
    server_options.num_workers = workers;
    auto srv = server::RequestServer::Start(engine->get(), server_options);
    if (!srv.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   srv.status().ToString().c_str());
      return 1;
    }
    const int port = (*srv)->port();

    // Warm the caches so saturation measures steady state.
    {
      const int fd = DialOrDie(port);
      for (size_t i = 0; i < std::min<size_t>(frames.size(), 20); ++i) {
        CallOrDie(fd, frames[i]);
      }
      ::close(fd);
    }

    ShardRun run;
    run.num_shards = num_shards;
    run.saturation = RunClosedLoop(port, frames, connections, pass_seconds);
    std::printf(
        "shards=%d  saturation: %.0f qps  p50 %.2f ms  p99 %.2f ms  "
        "(%llu requests)\n",
        num_shards, run.saturation.achieved_qps, run.saturation.p50_ms,
        run.saturation.p99_ms,
        static_cast<unsigned long long>(run.saturation.requests));
    for (const double fraction : {0.3, 0.6, 0.9}) {
      const double offered =
          std::max(1.0, fraction * run.saturation.achieved_qps);
      const LoadResult r = RunOpenLoop(port, frames, connections, offered,
                                       pass_seconds, /*seed=*/99);
      std::printf(
          "shards=%d  open-loop %.0f qps offered: %.0f achieved  "
          "p50 %.2f ms  p99 %.2f ms\n",
          num_shards, r.offered_qps, r.achieved_qps, r.p50_ms, r.p99_ms);
      run.open_loop.push_back(r);
    }
    std::printf("\n");
    (*srv)->Stop();
    runs.push_back(std::move(run));
  }

  const double qps_1 = runs[0].saturation.achieved_qps;
  const double qps_4 = runs[1].saturation.achieved_qps;
  const double speedup = qps_1 > 0 ? qps_4 / qps_1 : 0.0;
  std::printf("4-shard / 1-shard saturation QPS: %.2fx\n", speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"tklus-bench-server-v1\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"corpus\": {\"tweets\": %zu, \"users\": %zu},\n",
               scale.tweets, scale.users);
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hardware_threads);
  std::fprintf(out, "  \"workers\": %d,\n", workers);
  std::fprintf(out, "  \"connections\": %d,\n", connections);
  std::fprintf(out, "  \"shards\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const ShardRun& run = runs[i];
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"num_shards\": %d,\n", run.num_shards);
    std::fprintf(out,
                 "      \"saturation\": {\"qps\": %.2f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"requests\": %llu},\n",
                 run.saturation.achieved_qps, run.saturation.p50_ms,
                 run.saturation.p99_ms,
                 static_cast<unsigned long long>(run.saturation.requests));
    std::fprintf(out, "      \"open_loop\": [\n");
    for (size_t j = 0; j < run.open_loop.size(); ++j) {
      const LoadResult& r = run.open_loop[j];
      std::fprintf(out,
                   "        {\"offered_qps\": %.2f, \"achieved_qps\": %.2f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                   r.offered_qps, r.achieved_qps, r.p50_ms, r.p99_ms,
                   j + 1 < run.open_loop.size() ? "," : "");
    }
    std::fprintf(out, "      ]\n");
    std::fprintf(out, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"qps_speedup_4_vs_1\": %.3f\n", speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
