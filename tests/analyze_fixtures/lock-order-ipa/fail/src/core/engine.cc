// Fixture: each function is locally clean — Outer opens one guard,
// Inner opens one guard — but the call chain acquires a_mu_ while b_mu_
// is held, inverting the declared order (a_mu_ -> b_mu_). Only the
// interprocedural rule can see it; `lock-order` alone stays silent.
namespace tklus {

class Engine {
 public:
  void Inner() { MutexLock lock(&a_mu_); }

  void Outer() {
    MutexLock lock(&b_mu_);
    Inner();  // must fire: holding b_mu_, callee chain takes a_mu_
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
};

}  // namespace tklus
