#include "geo/circle_cover.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "geo/distance.h"
#include "geo/geohash.h"

namespace tklus {

std::vector<std::string> GeohashCircleCover(const GeoPoint& center,
                                            double radius_km, int length) {
  std::vector<std::string> out;
  if (radius_km < 0 || length < 1 || length > geohash::kMaxLength) return out;

  const std::string seed = geohash::Encode(center, length);
  std::unordered_set<std::string> visited{seed};
  std::deque<std::string> frontier{seed};
  out.push_back(seed);

  while (!frontier.empty()) {
    const std::string cell = frontier.front();
    frontier.pop_front();
    for (std::string& nb : geohash::Neighbors(cell)) {
      if (visited.count(nb)) continue;
      visited.insert(nb);
      Result<BoundingBox> box = geohash::DecodeBox(nb);
      if (!box.ok()) continue;
      if (MinDistanceKm(*box, center) <= radius_km) {
        out.push_back(nb);
        frontier.push_back(std::move(nb));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double CoverAreaRatio(const std::vector<std::string>& cells,
                      const GeoPoint& /*center*/, double radius_km) {
  if (radius_km <= 0) return 0.0;
  double cell_area = 0.0;
  for (const std::string& cell : cells) {
    Result<BoundingBox> box = geohash::DecodeBox(cell);
    if (!box.ok()) continue;
    const double mid_lat = (box->min_lat + box->max_lat) / 2;
    const double dy = box->LatSpan() * kKmPerDegreeLat;
    const double dx =
        box->LonSpan() * kKmPerDegreeLat * std::cos(mid_lat * kDegToRad);
    cell_area += dx * dy;
  }
  const double circle_area = M_PI * radius_km * radius_km;
  return cell_area / circle_area;
}

}  // namespace tklus
