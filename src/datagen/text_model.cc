#include "datagen/text_model.h"

namespace tklus {
namespace datagen {

const std::vector<std::string>& TopicWords() {
  static const std::vector<std::string>* kTopics = new std::vector<std::string>{
      // Table II, rank order 1..10.
      "restaurant", "game", "cafe", "shop", "hotel",
      "club", "coffee", "film", "pizza", "mall",
      // 20 further meaningful keywords (§VI-B1 selects 30 in total).
      "museum", "park", "beach", "concert", "festival",
      "gym", "sushi", "burger", "bakery", "theater",
      "library", "market", "spa", "salon", "brunch",
      "cocktail", "gallery", "stadium", "bar", "zoo",
  };
  return *kTopics;
}

const std::vector<std::string>& ModifierWords() {
  static const std::vector<std::string>* kModifiers =
      new std::vector<std::string>{
          "seafood", "mexican",  "italian", "chinese", "thai",
          "french",  "indian",   "vegan",   "korean",  "japanese",
          "jazz",    "indie",    "rock",    "horror",  "comedy",
          "luxury",  "budget",   "boutique", "rooftop", "vintage",
          "craft",   "organic",  "artisan", "gourmet", "spicy",
      };
  return *kModifiers;
}

const std::vector<std::string>& FillerWords() {
  static const std::vector<std::string>* kFillers =
      new std::vector<std::string>{
          "amazing",   "great",     "best",      "awesome",   "delicious",
          "fantastic", "lovely",    "nice",      "perfect",   "terrible",
          "crowded",   "cozy",      "cheap",     "fancy",     "famous",
          "favorite",  "local",     "night",     "weekend",   "dinner",
          "lunch",     "breakfast", "friends",   "family",    "birthday",
          "visit",     "trip",      "city",      "downtown",  "place",
          "love",      "enjoy",     "recommend", "tonight",   "morning",
          "evening",   "happy",     "music",     "food",      "drink",
          "view",      "service",   "staff",     "chill",     "vibes",
          "queue",     "line",      "ticket",    "deal",      "price",
          "open",      "closed",    "fresh",     "sweet",     "crispy",
          "tasty",     "huge",      "tiny",      "busy",      "quiet",
          "sunny",     "rainy",     "cold",      "warm",      "beautiful",
          "ugly",      "clean",     "dirty",     "friendly",  "rude",
          "fast",      "slow",      "classic",   "modern",    "historic",
          "touristy",  "hidden",    "gem",       "spot",      "corner",
          "street",    "avenue",    "square",    "district",  "neighborhood",
          "patio",     "terrace",   "garden",    "rooftops",  "basement",
          "live",      "show",      "event",     "party",     "crowd",
          "date",      "anniversary", "holiday", "vacation",  "staycation",
          "walk",      "run",       "bike",      "drive",     "driveway",
          "metro",     "bus",       "train",     "station",   "airport",
          "checkin",   "checkout",  "booking",   "reservation", "table",
          "menu",      "chef",      "waiter",    "barista",   "bartender",
          "espresso",  "latte",     "mocha",     "croissant", "bagel",
          "noodles",   "dumplings", "tacos",     "pasta",     "salad",
          "dessert",   "cake",      "icecream",  "smoothie",  "juice",
          "beer",      "wine",      "whiskey",   "soda",      "water",
          "photo",     "selfie",    "camera",    "video",     "story",
          "review",    "rating",    "stars",     "tips",      "guide",
      };
  return *kFillers;
}

std::vector<std::string> ModifiersForTopic(std::string_view topic) {
  // Food topics take cuisine modifiers; entertainment topics take genres;
  // everything else takes style modifiers.
  static const std::vector<std::string> kCuisine = {
      "seafood", "mexican", "italian", "chinese", "thai",
      "french",  "indian",  "vegan",   "korean",  "japanese",
      "spicy",   "gourmet", "organic", "artisan"};
  static const std::vector<std::string> kGenre = {
      "jazz", "indie", "rock", "horror", "comedy"};
  static const std::vector<std::string> kStyle = {
      "luxury", "budget", "boutique", "rooftop", "vintage", "craft"};
  if (topic == "restaurant" || topic == "cafe" || topic == "pizza" ||
      topic == "sushi" || topic == "burger" || topic == "bakery" ||
      topic == "brunch" || topic == "coffee" || topic == "market") {
    return kCuisine;
  }
  if (topic == "film" || topic == "concert" || topic == "club" ||
      topic == "festival" || topic == "theater" || topic == "bar" ||
      topic == "cocktail" || topic == "game") {
    return kGenre;
  }
  return kStyle;
}

}  // namespace datagen
}  // namespace tklus
