file(REMOVE_RECURSE
  "CMakeFiles/hotel_toronto.dir/hotel_toronto.cpp.o"
  "CMakeFiles/hotel_toronto.dir/hotel_toronto.cpp.o.d"
  "hotel_toronto"
  "hotel_toronto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_toronto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
