file(REMOVE_RECURSE
  "CMakeFiles/tweet_search_test.dir/tweet_search_test.cc.o"
  "CMakeFiles/tweet_search_test.dir/tweet_search_test.cc.o.d"
  "tweet_search_test"
  "tweet_search_test.pdb"
  "tweet_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tweet_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
