file(REMOVE_RECURSE
  "../bench/bench_fig12_hot_bounds"
  "../bench/bench_fig12_hot_bounds.pdb"
  "CMakeFiles/bench_fig12_hot_bounds.dir/bench_fig12_hot_bounds.cpp.o"
  "CMakeFiles/bench_fig12_hot_bounds.dir/bench_fig12_hot_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hot_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
