file(REMOVE_RECURSE
  "libtklus_geo.a"
)
