#ifndef TKLUS_STORAGE_BPLUS_TREE_H_
#define TKLUS_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace tklus {

// A disk-format B+-tree over int64 keys and uint64 values, stored in
// BufferPool pages. Duplicate keys are supported (required by the `rsid`
// index of the tweet metadata relation, where many tweets reply to the
// same parent). Leaves form a forward-linked chain so duplicate scans and
// range scans cross leaf boundaries.
//
// Page layouts (little-endian, within one 4 KiB page):
//   header: u16 page_type (1 internal, 2 leaf), u16 key_count,
//           i64 next (leaf sibling; unused in internal nodes)
//   leaf payload:     key_count x { i64 key, u64 value }
//   internal payload: i64 child0, then key_count x { i64 key, i64 child }
class BPlusTree {
 public:
  // Builds an empty tree (root = single empty leaf).
  static Result<BPlusTree> Create(BufferPool* pool);

  // Re-attaches to an existing tree rooted at `root`.
  static BPlusTree Open(BufferPool* pool, PageId root);

  // Inserts (duplicates allowed; equal keys keep insertion order).
  Status Insert(int64_t key, uint64_t value);

  // First value with exactly `key`, or nullopt.
  Result<std::optional<uint64_t>> Get(int64_t key);

  // Batched point lookup: Get(keys[i]) for every i, but with one
  // root-to-leaf descent amortized over each ascending run of keys — the
  // leaf chain is walked forward between consecutive keys instead of
  // re-descending from the root per key. Callers should pass keys sorted
  // ascending (the query path's candidates arrive tid-sorted); unsorted
  // keys stay correct but fall back to a fresh descent at each
  // order-violation.
  Result<std::vector<std::optional<uint64_t>>> GetBatch(
      const std::vector<int64_t>& keys);

  // All values with exactly `key`, in insertion order.
  Result<std::vector<uint64_t>> GetAll(int64_t key);

  // All (key, value) with lo <= key <= hi, ascending by key.
  Result<std::vector<std::pair<int64_t, uint64_t>>> Range(int64_t lo,
                                                          int64_t hi);

  // Removes at most one entry matching (key, value). Lazy: leaves may
  // underflow; no rebalancing (the TkLUS workload is append-only, deletion
  // exists for completeness and is exercised by tests).
  Result<bool> Remove(int64_t key, uint64_t value);

  PageId root() const { return root_; }
  Result<int> Height();
  Result<uint64_t> CountEntries();

 private:
  BPlusTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  struct SplitResult {
    int64_t separator;
    PageId right;
  };

  // Descends for reads: the leftmost leaf that may contain `key`.
  Result<PageId> FindLeaf(int64_t key);
  // Recursive insert; sets `split` if the child page split.
  Status InsertInto(PageId page_id, int64_t key, uint64_t value,
                    std::optional<SplitResult>* split);

  BufferPool* pool_;
  PageId root_;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_BPLUS_TREE_H_
