#include "core/federation.h"

#include <algorithm>

namespace tklus {

Result<FederatedResult> FederatedEngine::Query(
    const TkLusQuery& query) const {
  if (platforms_.empty()) {
    return Status::InvalidArgument("no platforms registered");
  }
  FederatedResult result;
  for (const Platform& platform : platforms_) {
    Result<QueryResult> partial = platform.engine->Query(query);
    if (!partial.ok()) return partial.status();
    result.platform_stats.push_back(partial->stats);
    for (const RankedUser& user : partial->users) {
      result.users.push_back(
          FederatedUser{platform.name, user.uid, user.score});
    }
  }
  std::sort(result.users.begin(), result.users.end(),
            [](const FederatedUser& a, const FederatedUser& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.platform != b.platform) return a.platform < b.platform;
              return a.uid < b.uid;
            });
  if (static_cast<int>(result.users.size()) > query.k) {
    result.users.resize(query.k);
  }
  return result;
}

}  // namespace tklus
