# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/social_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/scoring_param_test[1]_include.cmake")
include("/root/repo/build/tests/storage_stress_test[1]_include.cmake")
include("/root/repo/build/tests/engine_options_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/tweet_search_test[1]_include.cmake")
include("/root/repo/build/tests/batch_append_test[1]_include.cmake")
include("/root/repo/build/tests/federation_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/fault_tolerance_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_fuzz_test[1]_include.cmake")
add_test(cli_end_to_end "/usr/bin/cmake" "-DCLI=/root/repo/build/examples/tklus_cli" "-P" "/root/repo/tests/cli_test.cmake")
set_tests_properties(cli_end_to_end PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;46;add_test;/root/repo/tests/CMakeLists.txt;0;")
