#ifndef TKLUS_OBS_STOPWATCH_H_
#define TKLUS_OBS_STOPWATCH_H_

#include <cstdint>

#include "obs/clock.h"

namespace tklus {

// Wall-clock stopwatch used by benchmark harnesses and job statistics.
// Reads time through the obs Clock injection point (clock.h), so a
// FakeClock makes any stopwatch-driven duration deterministic in tests.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = DefaultClock())
      : clock_(clock), start_ns_(clock_->NowNanos()) {}

  void Restart() { start_ns_ = clock_->NowNanos(); }

  uint64_t ElapsedNanos() const { return clock_->NowNanos() - start_ns_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) * 1e-3;
  }

 private:
  const Clock* clock_;
  uint64_t start_ns_;
};

}  // namespace tklus

#endif  // TKLUS_OBS_STOPWATCH_H_
