#ifndef TKLUS_CORE_SHARDED_ENGINE_H_
#define TKLUS_CORE_SHARDED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/lock_ranks.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/shard_router.h"
#include "core/thread_tracker.h"
#include "model/dataset.h"
#include "obs/metrics.h"
#include "social/popularity_cache.h"
#include "text/vocabulary.h"

namespace tklus {

// Outcome of one shard's fetch during a scatter-gather query. Only shards
// the query cover actually touched appear in a result's outcome list.
struct ShardOutcome {
  int shard = 0;
  Status status = Status::Ok();
};

struct ShardedQueryResult {
  std::vector<RankedUser> users;  // descending score, at most k
  QueryStats stats;               // per-shard fetch stats summed + ranking
  // One entry per shard the cover touched, in shard order.
  std::vector<ShardOutcome> outcomes;
  // True when at least one touched shard failed and Options::strict was
  // off: `users` ranks only the surviving shards' candidates.
  bool degraded = false;
};

struct ShardedTweetQueryResult {
  std::vector<RankedTweet> tweets;
  QueryStats stats;
  std::vector<ShardOutcome> outcomes;
  bool degraded = false;
};

// N independent TkLusEngine shards behind one scatter-gather router —
// the horizontal scale-out step of the ROADMAP (DESIGN.md §16).
//
// Sharding model. The shard key is the geohash cell (§VI-B2, the paper's
// own spatial partition unit): every cell is owned by exactly one shard
// (ShardRouter, FNV-1a mod N), and a post lives in the shard owning its
// cell, so each shard is a complete, self-contained TkLusEngine over its
// slice — own metadata DB + buffer pool, own hybrid index + DFS, own
// WAL + delta index, own SidStore, popularity cache and SharedMutex.
// Appends route sub-batches to owning shards and ack only after every
// owning shard's WAL fsync; queries compute the circle's cover once (the
// same ComputeCover as the single engine), fan out only to shards owning
// cover cells, and merge the returned candidate streams.
//
// Exactness. The router does NOT merge per-shard top-k user lists — a
// user's score aggregates tweets that may span shards, so merging ranked
// lists is unsound in general. Instead the fan-out returns per-shard
// *candidate* streams (tid-sorted, disjoint because each post has one
// owning cell), the router merges them into the exact global candidate
// sequence, and the single engine's own ranking loop (QueryProcessor::
// RankUsers, with the Alg. 5 bound pruning driven by this router's global
// UpperBoundRegistry) runs over it at the router's "plane". The plane
// mirrors the global social state the ranking needs — reply children map,
// thread tracker (φ and exact bounds), user location profiles (Def. 9),
// vocabulary and sid watermark — maintained on every append exactly like
// a single engine's. Differential oracle + the golden corpus pin
// ShardedEngine(N) ≡ TkLusEngine byte-for-byte for N ∈ {1,2,4,8}.
//
// Append visibility: the whole absorb (plane, then every owning shard)
// holds plane_mu_ exclusively while queries hold it shared across their
// entire scatter-gather, so a batch becomes visible atomically — readers
// only ever observe complete batch prefixes, never a torn cross-shard
// state. Within the window the plane absorbs *before* any shard:
// bounds/tracker lead candidate visibility, so even a batch that fails
// partway (leaving the plane ahead of some shards) leaves upper bounds
// at least as large as every visible candidate's thread — Alg. 5 pruning
// stays admissible. Unlike the single engine, readers do not overlap the
// shard WAL fsyncs (atomic cross-shard visibility costs reader overlap).
// Cross-shard appends are not atomic under failure: if a shard's WAL
// append fails mid-batch, earlier shards keep their acked sub-batches,
// the call returns the error, and the batch as a whole is not acked.
//
// Durability. Shards run with Options::auto_checkpoint=false: their
// background folds never truncate their WALs on their own. Save()
// persists the plane (router.bin, watermark M) *first*, then checkpoints
// every shard — so any WAL record a shard truncates is ≤ M and inside the
// plane image. Open() restores router.bin, opens every shard (per-shard
// WAL replay, fully independent), and re-absorbs shard delta posts with
// sid > M into the plane in global sid order.
//
// Failure semantics (queries): per-shard fetch failures follow the
// FederatedEngine degraded-mode pattern. Default (strict=false): failed
// shards are skipped, the result carries degraded=true and per-shard
// outcomes, and `tklus_shard_failures_total` counts the failures; all
// touched shards failing yields kUnavailable. strict=true fails closed on
// the first shard error.
//
// Lock order: ingest_mu_ (rank 4) -> plane_mu_ (rank 6) -> per-shard
// engine locks (ranks 10..40); see core/lock_ranks.h.
class ShardedEngine {
 public:
  struct Options {
    int num_shards = 4;
    // Parent directory holding router.bin + one shard_<i>/ per shard.
    // Empty -> unique temp directory (removed on destruction).
    std::string working_dir;
    // Fail closed on any shard fetch failure instead of degrading.
    bool strict = false;
    // Template for every shard engine. working_dir is overridden per
    // shard; auto_checkpoint is forced off.
    TkLusEngine::Options shard;
    // Test hook: tweak one shard's options (e.g. wire a FaultInjector
    // into shard 2 only) after the template is applied.
    std::function<void(int shard, TkLusEngine::Options*)> shard_options_hook;
  };

  static Result<std::unique_ptr<ShardedEngine>> Build(const Dataset& dataset,
                                                      Options options);
  static Result<std::unique_ptr<ShardedEngine>> Open(const std::string& dir,
                                                     Options options);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Routes the batch to owning shards. Acks (returns OK) only once every
  // owning shard's WAL fsynced its sub-batch. Same batch contract as
  // TkLusEngine::AppendBatch: sids sorted, strictly above the watermark.
  Status AppendBatch(const Dataset& batch)
      TKLUS_EXCLUDES(ingest_mu_, plane_mu_);

  // Checkpoints the plane (router.bin) and then every shard into the
  // working directory, truncating the shards' WALs.
  Status Save() TKLUS_EXCLUDES(ingest_mu_, plane_mu_);

  // Folds every shard's delta into its base index (no checkpoints).
  // Deterministic merge point for tests and benchmarks.
  Status MergeAllNow() TKLUS_EXCLUDES(ingest_mu_, plane_mu_);

  Result<ShardedQueryResult> Query(const TkLusQuery& query)
      TKLUS_EXCLUDES(plane_mu_);
  Result<ShardedTweetQueryResult> QueryTweets(const TkLusQuery& query)
      TKLUS_EXCLUDES(plane_mu_);

  int num_shards() const { return options_.num_shards; }
  const Options& options() const { return options_; }
  // Component access for tests/benchmarks on a quiescent engine.
  TkLusEngine& shard(int i) { return *shards_[i]; }
  const ShardRouter& router() const { return router_; }
  // The plane's ranking processor — tests tweak scoring/pruning here the
  // same way they use TkLusEngine::processor() (shard-side fetch has no
  // scoring options to mirror).
  QueryProcessor& plane_processor() { return *processor_; }
  const UpperBoundRegistry& bounds() const TKLUS_NO_THREAD_SAFETY_ANALYSIS {
    return bounds_;
  }

 private:
  ShardedEngine() : router_(1) {}

  // Shared tail of Build/Open: plane processor + cache + metrics.
  void FinishConstruction() TKLUS_REQUIRES(plane_mu_);
  // Absorbs one post into every plane structure except bounds (the caller
  // recomputes bounds_ once per batch).
  void AbsorbPostLocked(const Post& post, const Tokenizer& tokenizer)
      TKLUS_REQUIRES(plane_mu_);
  // Reply-children lookup for plane thread descents. Runs inside
  // RankUsers/RankTweets while Query holds plane_mu_ shared — the
  // annotation can't follow the std::function indirection.
  void AppendPlaneChildren(TweetId sid, std::vector<TweetId>* out) const
      TKLUS_NO_THREAD_SAFETY_ANALYSIS;

  std::string ShardDir(int shard) const;
  Status SerializePlane(std::string* payload) const
      TKLUS_EXCLUDES(plane_mu_);

  Options options_;
  bool owns_working_dir_ = false;
  ShardRouter router_;
  std::vector<std::unique_ptr<TkLusEngine>> shards_;

  // Serializes appenders and Save against each other (rank below every
  // shard lock: held across the per-shard AppendBatch/Save fan-out).
  Mutex ingest_mu_{lockrank::kShardedIngestMu, "ingest_mu_"};
  // Reader-writer lock over the plane state below; queries hold it shared
  // across the whole scatter-gather + ranking, appends take it exclusive
  // for the in-memory absorb (before any shard sees the batch).
  mutable SharedMutex plane_mu_{lockrank::kShardedPlaneMu, "plane_mu_"};

  // Global social plane: what RankUsers needs beyond the candidates.
  std::unordered_map<TweetId, std::vector<TweetId>> children_
      TKLUS_GUARDED_BY(plane_mu_);
  ThreadTracker tracker_ TKLUS_GUARDED_BY(plane_mu_);
  UpperBoundRegistry bounds_ TKLUS_GUARDED_BY(plane_mu_);
  Vocabulary vocabulary_ TKLUS_GUARDED_BY(plane_mu_);
  std::unordered_map<UserId, std::vector<GeoPoint>> user_locations_
      TKLUS_GUARDED_BY(plane_mu_);
  int64_t max_sid_ TKLUS_GUARDED_BY(plane_mu_) = INT64_MIN;

  std::unique_ptr<PopularityCache> popularity_cache_;
  std::unique_ptr<QueryProcessor> processor_;

  // Cached metric handles (process-global families).
  Counter* sharded_queries_total_ = nullptr;
  Counter* shard_failures_total_ = nullptr;
};

}  // namespace tklus

#endif  // TKLUS_CORE_SHARDED_ENGINE_H_
