#ifndef TKLUS_BASELINE_CENTRALIZED_BUILDER_H_
#define TKLUS_BASELINE_CENTRALIZED_BUILDER_H_

#include <cstdint>
#include <string>

#include "model/dataset.h"
#include "text/tokenizer.h"

namespace tklus {

// A single-threaded, single-machine spatial-keyword inverted index
// builder: the same <geohash, term> -> postings output as the hybrid
// index, constructed without MapReduce. It stands in for the centralized
// comparators of Figure 5 (I-cubed [25] and the IR-tree family), whose
// published construction times the paper contrasts with its distributed
// builder; see DESIGN.md §2 for the substitution rationale.
struct CentralizedBuildResult {
  double seconds = 0;
  uint64_t postings_lists = 0;
  uint64_t postings_entries = 0;
  uint64_t encoded_bytes = 0;
};

CentralizedBuildResult BuildCentralizedIndex(const Dataset& dataset,
                                             int geohash_length,
                                             const TokenizerOptions& options);

}  // namespace tklus

#endif  // TKLUS_BASELINE_CENTRALIZED_BUILDER_H_
