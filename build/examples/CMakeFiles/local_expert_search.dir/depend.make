# Empty dependencies file for local_expert_search.
# This may be replaced when dependencies are built.
