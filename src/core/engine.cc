#include "core/engine.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/file_io.h"
#include "common/serde.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace tklus {

namespace {

// Process-wide query metrics, resolved once. Queries of both flavors feed
// one latency histogram; the per-flavor counters separate the mix.
struct QueryMetricFamilies {
  Counter* user_queries;
  Counter* tweet_queries;
  Counter* slow_queries;
  Histogram* latency_ms;

  static const QueryMetricFamilies& Get() {
    static const QueryMetricFamilies* families = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      auto* f = new QueryMetricFamilies();
      f->user_queries = reg.GetCounter(
          "tklus_queries_total", "TkLUS user queries answered successfully.");
      f->tweet_queries = reg.GetCounter(
          "tklus_tweet_queries_total",
          "Tweet-level queries answered successfully.");
      f->slow_queries = reg.GetCounter(
          "tklus_slow_queries_total",
          "Queries admitted to the slow-query log.");
      f->latency_ms = reg.GetHistogram(
          "tklus_query_latency_ms", "End-to-end query latency (ms).",
          {0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500});
      return f;
    }();
    return *families;
  }
};

std::string SummarizeQuery(const char* kind, const TkLusQuery& query) {
  char head[128];
  std::snprintf(head, sizeof(head),
                "%s(lat=%.4f lon=%.4f r=%.1fkm k=%d %s %s W=[", kind,
                query.location.lat, query.location.lon, query.radius_km,
                query.k, query.semantics == Semantics::kAnd ? "AND" : "OR",
                query.ranking == Ranking::kSum ? "Sum" : "Max");
  std::string out = head;
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    if (i > 0) out += ' ';
    out += query.keywords[i];
  }
  out += "])";
  return out;
}

std::string MakeTempWorkingDir() {
  static std::atomic<uint64_t> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tklus_engine_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir.string();
}

}  // namespace

Result<std::unique_ptr<TkLusEngine>> TkLusEngine::Build(
    const Dataset& dataset, Options options) {
  auto engine = std::unique_ptr<TkLusEngine>(new TkLusEngine());
  if (options.working_dir.empty()) {
    options.working_dir = MakeTempWorkingDir();
    engine->owns_working_dir_ = true;
  } else {
    std::filesystem::create_directories(options.working_dir);
  }
  engine->options_ = options;
  engine->slow_log_ = std::make_unique<SlowQueryLog>(SlowQueryLog::Options{
      options.slow_query_ms, options.slow_query_log_entries});

  // Centralized metadata DB (Figure 3): one row per tweet, B+-trees on sid
  // and rsid.
  MetadataDb::Options db_options;
  db_options.buffer_pool_pages = options.buffer_pool_pages;
  db_options.fault_injector = options.fault_injector;
  auto db = MetadataDb::Create(options.working_dir + "/meta.db", db_options);
  if (!db.ok()) return db.status();
  engine->db_ = std::move(*db);
  for (const Post& p : dataset.posts()) {
    TKLUS_RETURN_IF_ERROR(engine->db_->Insert(TweetMeta{
        p.sid, p.uid, p.location.lat, p.location.lon, p.ruid, p.rsid}));
  }

  // Hybrid index built with MapReduce into the simulated DFS.
  engine->dfs_ = std::make_unique<SimulatedDfs>(options.dfs);
  engine->dfs_->set_fault_injector(options.fault_injector);
  HybridIndex::Options index_options;
  index_options.geohash_length = options.geohash_length;
  index_options.mapreduce_workers = options.mapreduce_workers;
  index_options.reduce_tasks = options.reduce_tasks;
  index_options.tokenizer = options.tokenizer;
  index_options.retry = options.dfs_retry;
  index_options.max_task_attempts = options.max_task_attempts;
  index_options.fault_injector = options.fault_injector;
  auto index = HybridIndex::Build(dataset, engine->dfs_.get(), index_options);
  if (!index.ok()) return index.status();
  engine->index_ = std::move(*index);

  // Offline artifacts: social graph, corpus vocabulary, exact upper
  // bounds (maintained incrementally by the thread tracker so later
  // AppendBatch calls stay O(1) per post), per-user location profiles
  // (Def. 9). The engine is not yet published, but the fields are
  // lock-annotated, so initialize them under the (uncontended) lock.
  WriterMutexLock lock(&engine->mu_);
  const Tokenizer tokenizer(options.tokenizer);
  engine->graph_ = SocialGraph::Build(dataset);
  engine->vocabulary_ = dataset.BuildVocabulary(tokenizer);
  engine->tracker_ = ThreadTracker(ThreadTracker::Options{
      options.thread_depth, options.scoring.epsilon});
  std::vector<std::string> hot_stems;
  for (const auto& [term, freq] :
       engine->vocabulary_.TopTerms(options.num_hot_keywords)) {
    hot_stems.push_back(term);
  }
  engine->tracker_.SetHotTerms(hot_stems);
  // Track posts in timestamp order (parents precede replies).
  std::vector<const Post*> ordered;
  ordered.reserve(dataset.size());
  for (const Post& p : dataset.posts()) ordered.push_back(&p);
  std::sort(ordered.begin(), ordered.end(),
            [](const Post* a, const Post* b) { return a->sid < b->sid; });
  for (const Post* p : ordered) {
    engine->tracker_.AddPost(*p, tokenizer.Tokenize(p->text));
    engine->max_sid_ = std::max(engine->max_sid_, p->sid);
    // Untagged posts carry no usable location; they still count for the
    // social graph and thread popularity, but not for Def. 9.
    if (p->HasLocation()) {
      engine->user_locations_[p->uid].push_back(p->location);
    }
  }
  engine->bounds_ = UpperBoundRegistry::FromParts(
      engine->tracker_.global_bound(), engine->tracker_.HotBounds());

  QueryProcessor::Options proc_options;
  proc_options.scoring = options.scoring;
  proc_options.thread_depth = options.thread_depth;
  engine->processor_ = std::make_unique<QueryProcessor>(
      engine->index_.get(), engine->db_.get(), &engine->bounds_,
      &engine->user_locations_, tokenizer, proc_options);
  if (options.popularity_cache_entries > 0) {
    engine->popularity_cache_ = std::make_unique<PopularityCache>(
        PopularityCache::Options{options.popularity_cache_entries});
    engine->processor_->set_popularity_cache(engine->popularity_cache_.get());
  }
  return engine;
}

TkLusEngine::~TkLusEngine() {
  // Release the DB file handle before removing the directory.
  db_.reset();
  if (owns_working_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(options_.working_dir, ec);
    if (ec) {
      TKLUS_LOG(Warning) << "failed to remove working dir "
                         << options_.working_dir << ": " << ec.message();
    }
  }
}

namespace {
constexpr uint64_t kEngineMagic = 0x32656e69676e6554ULL;  // format v2
}  // namespace

Status TkLusEngine::AppendBatch(const Dataset& batch) {
  WriterMutexLock lock(&mu_);
  const Tokenizer tokenizer(options_.tokenizer);
  int64_t previous = max_sid_;
  for (const Post& p : batch.posts()) {
    if (p.sid <= previous) {
      return Status::InvalidArgument(
          "batch posts must be sorted with sids greater than all indexed "
          "posts (sid " + std::to_string(p.sid) + " after " +
          std::to_string(previous) + ")");
    }
    previous = p.sid;
  }
  // Bump the φ(p) memo generation before touching any state: memoized
  // popularities can span reply chains the batch extends, and a partial
  // failure below must not leave stale entries servable.
  if (popularity_cache_) popularity_cache_->Invalidate();
  for (const Post& p : batch.posts()) {
    TKLUS_RETURN_IF_ERROR(db_->Insert(TweetMeta{
        p.sid, p.uid, p.location.lat, p.location.lon, p.ruid, p.rsid}));
    graph_.AddPost(p);
    const std::vector<std::string> terms = tokenizer.Tokenize(p.text);
    tracker_.AddPost(p, terms);
    for (const std::string& term : terms) {
      vocabulary_.Add(term);
    }
    if (p.HasLocation()) {
      user_locations_[p.uid].push_back(p.location);
    }
    max_sid_ = std::max(max_sid_, p.sid);
  }
  TKLUS_RETURN_IF_ERROR(index_->AppendBatch(batch));
  bounds_ = UpperBoundRegistry::FromParts(tracker_.global_bound(),
                                          tracker_.HotBounds());
  return Status::Ok();
}

Status TkLusEngine::Save(const std::string& dir) {
  WriterMutexLock lock(&mu_);
  std::filesystem::create_directories(dir);
  // Metadata DB: header + dirty pages to its own file (plus the page-
  // checksum sidecar, written by FlushAll). When saving into a different
  // directory, copy both.
  TKLUS_RETURN_IF_ERROR(db_->FlushAll());
  const std::string db_src = options_.working_dir + "/meta.db";
  const std::string db_dst = dir + "/meta.db";
  if (std::filesystem::absolute(db_src) != std::filesystem::absolute(db_dst)) {
    std::error_code ec;
    std::filesystem::copy_file(db_src, db_dst,
                               std::filesystem::copy_options::overwrite_existing,
                               ec);
    if (ec) return Status::IoError("copying metadata DB: " + ec.message());
    std::filesystem::copy_file(db_src + ".crc", db_dst + ".crc",
                               std::filesystem::copy_options::overwrite_existing,
                               ec);
    if (ec) {
      return Status::IoError("copying metadata DB checksums: " + ec.message());
    }
  }
  // Remaining artifacts: serialize into memory, then write atomically
  // (temp + fsync + rename) with a CRC32 footer that Open verifies.
  {
    std::ostringstream out(std::ios::binary);
    TKLUS_RETURN_IF_ERROR(dfs_->Save(out));
    TKLUS_RETURN_IF_ERROR(fileio::WriteFileAtomic(dir + "/dfs.bin", out.str()));
  }
  {
    std::ostringstream out(std::ios::binary);
    TKLUS_RETURN_IF_ERROR(index_->Save(out));
    TKLUS_RETURN_IF_ERROR(
        fileio::WriteFileAtomic(dir + "/index.bin", out.str()));
  }
  std::ostringstream out(std::ios::binary);
  serde::WriteU64(out, kEngineMagic);
  serde::WriteDouble(out, options_.scoring.alpha);
  serde::WriteDouble(out, options_.scoring.n_norm);
  serde::WriteDouble(out, options_.scoring.epsilon);
  serde::WriteU64(out, static_cast<uint64_t>(options_.thread_depth));
  // Bounds.
  serde::WriteDouble(out, bounds_.global_bound());
  serde::WriteU64(out, bounds_.hot_bounds().size());
  for (const auto& [term, bound] : bounds_.hot_bounds()) {
    serde::WriteString(out, term);
    serde::WriteDouble(out, bound);
  }
  // User location profiles.
  serde::WriteU64(out, user_locations_.size());
  for (const auto& [uid, locations] : user_locations_) {
    serde::WriteI64(out, uid);
    serde::WriteU64(out, locations.size());
    for (const GeoPoint& p : locations) {
      serde::WriteDouble(out, p.lat);
      serde::WriteDouble(out, p.lon);
    }
  }
  // Vocabulary (term + frequency, in id order).
  serde::WriteU64(out, vocabulary_.size());
  for (Vocabulary::TermId id = 0; id < vocabulary_.size(); ++id) {
    serde::WriteString(out, vocabulary_.term(id));
    serde::WriteU64(out, vocabulary_.frequency(id));
  }
  // Thread tracker + append ordering watermark.
  serde::WriteI64(out, max_sid_);
  tracker_.Save(out);
  if (!out) return Status::IoError("short write saving engine.bin");
  return fileio::WriteFileAtomic(dir + "/engine.bin", out.str());
}

Result<std::unique_ptr<TkLusEngine>> TkLusEngine::Open(const std::string& dir,
                                                       Options options) {
  auto engine = std::unique_ptr<TkLusEngine>(new TkLusEngine());
  options.working_dir = dir;
  engine->options_ = options;
  engine->owns_working_dir_ = false;
  engine->slow_log_ = std::make_unique<SlowQueryLog>(SlowQueryLog::Options{
      options.slow_query_ms, options.slow_query_log_entries});

  MetadataDb::Options db_options;
  db_options.buffer_pool_pages = options.buffer_pool_pages;
  db_options.fault_injector = options.fault_injector;
  auto db = MetadataDb::Open(dir + "/meta.db", db_options);
  if (!db.ok()) return db.status();
  engine->db_ = std::move(*db);

  engine->dfs_ = std::make_unique<SimulatedDfs>(options.dfs);
  engine->dfs_->set_fault_injector(options.fault_injector);
  {
    Result<std::string> payload = fileio::ReadFileVerified(dir + "/dfs.bin");
    if (!payload.ok()) return payload.status();
    std::istringstream in(std::move(*payload), std::ios::binary);
    TKLUS_RETURN_IF_ERROR(engine->dfs_->Load(in));
  }
  {
    Result<std::string> payload = fileio::ReadFileVerified(dir + "/index.bin");
    if (!payload.ok()) return payload.status();
    std::istringstream in(std::move(*payload), std::ios::binary);
    HybridIndex::Options index_base;
    index_base.tokenizer = options.tokenizer;
    index_base.mapreduce_workers = options.mapreduce_workers;
    index_base.reduce_tasks = options.reduce_tasks;
    index_base.retry = options.dfs_retry;
    index_base.max_task_attempts = options.max_task_attempts;
    index_base.fault_injector = options.fault_injector;
    auto index = HybridIndex::Open(engine->dfs_.get(), in, index_base);
    if (!index.ok()) return index.status();
    engine->index_ = std::move(*index);
    engine->options_.geohash_length = engine->index_->geohash_length();
  }
  Result<std::string> payload = fileio::ReadFileVerified(dir + "/engine.bin");
  if (!payload.ok()) return payload.status();
  std::istringstream in(std::move(*payload), std::ios::binary);
  // As in Build: the engine is private to this function, but the fields
  // deserialized below are lock-annotated, so hold the (uncontended) lock.
  WriterMutexLock lock(&engine->mu_);
  uint64_t magic = 0;
  if (!serde::ReadU64(in, &magic) || magic != kEngineMagic) {
    return Status::Corruption("not an engine image");
  }
  uint64_t depth = 0;
  if (!serde::ReadDouble(in, &engine->options_.scoring.alpha) ||
      !serde::ReadDouble(in, &engine->options_.scoring.n_norm) ||
      !serde::ReadDouble(in, &engine->options_.scoring.epsilon) ||
      !serde::ReadU64(in, &depth)) {
    return Status::Corruption("truncated engine image header");
  }
  engine->options_.thread_depth = static_cast<int>(depth);
  double global_bound = 0;
  uint64_t hot_count = 0;
  if (!serde::ReadDouble(in, &global_bound) ||
      !serde::ReadU64(in, &hot_count)) {
    return Status::Corruption("truncated engine image bounds");
  }
  std::unordered_map<std::string, double> hot_bounds;
  for (uint64_t i = 0; i < hot_count; ++i) {
    std::string term;
    double bound = 0;
    if (!serde::ReadString(in, &term) || !serde::ReadDouble(in, &bound)) {
      return Status::Corruption("truncated engine image hot bound");
    }
    hot_bounds.emplace(std::move(term), bound);
  }
  engine->bounds_ =
      UpperBoundRegistry::FromParts(global_bound, std::move(hot_bounds));
  uint64_t user_count = 0;
  if (!serde::ReadU64(in, &user_count)) {
    return Status::Corruption("truncated engine image profiles");
  }
  for (uint64_t u = 0; u < user_count; ++u) {
    int64_t uid = 0;
    uint64_t n = 0;
    if (!serde::ReadI64(in, &uid) || !serde::ReadU64(in, &n)) {
      return Status::Corruption("truncated engine image profile");
    }
    auto& locations = engine->user_locations_[uid];
    locations.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!serde::ReadDouble(in, &locations[i].lat) ||
          !serde::ReadDouble(in, &locations[i].lon)) {
        return Status::Corruption("truncated engine image location");
      }
    }
  }
  uint64_t vocab_count = 0;
  if (!serde::ReadU64(in, &vocab_count)) {
    return Status::Corruption("truncated engine image vocabulary");
  }
  for (uint64_t i = 0; i < vocab_count; ++i) {
    std::string term;
    uint64_t freq = 0;
    if (!serde::ReadString(in, &term) || !serde::ReadU64(in, &freq)) {
      return Status::Corruption("truncated engine image vocabulary entry");
    }
    engine->vocabulary_.Add(term, freq);
  }
  if (!serde::ReadI64(in, &engine->max_sid_)) {
    return Status::Corruption("truncated engine image watermark");
  }
  TKLUS_RETURN_IF_ERROR(engine->tracker_.Load(in));

  QueryProcessor::Options proc_options;
  proc_options.scoring = engine->options_.scoring;
  proc_options.thread_depth = engine->options_.thread_depth;
  engine->processor_ = std::make_unique<QueryProcessor>(
      engine->index_.get(), engine->db_.get(), &engine->bounds_,
      &engine->user_locations_, Tokenizer(engine->options_.tokenizer),
      proc_options);
  if (options.popularity_cache_entries > 0) {
    engine->popularity_cache_ = std::make_unique<PopularityCache>(
        PopularityCache::Options{options.popularity_cache_entries});
    engine->processor_->set_popularity_cache(engine->popularity_cache_.get());
  }
  return engine;
}

Result<QueryResult> TkLusEngine::Query(const TkLusQuery& query) {
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    // Shared: the read path is re-entrant (internally latched buffer pool,
    // read-only page contents between appends) — see the class comment.
    ReaderMutexLock lock(&mu_);
    return processor_->Process(query);
  }();
  if (result.ok()) RecordQueryObservability("q", query, result->stats);
  return result;
}

Result<TweetQueryResult> TkLusEngine::QueryTweets(const TkLusQuery& query) {
  Result<TweetQueryResult> result = [&]() -> Result<TweetQueryResult> {
    ReaderMutexLock lock(&mu_);
    return processor_->ProcessTweets(query);
  }();
  if (result.ok()) RecordQueryObservability("qt", query, result->stats);
  return result;
}

void TkLusEngine::RecordQueryObservability(const char* kind,
                                           const TkLusQuery& query,
                                           const QueryStats& stats) const {
  const QueryMetricFamilies& metrics = QueryMetricFamilies::Get();
  (kind[1] == 't' ? metrics.tweet_queries : metrics.user_queries)->Increment();
  metrics.latency_ms->Observe(stats.elapsed_ms);
  if (slow_log_->ShouldRecord(stats.elapsed_ms)) {
    metrics.slow_queries->Increment();
    SlowQueryRecord record;
    record.summary = SummarizeQuery(kind, query);
    record.elapsed_ms = stats.elapsed_ms;
    record.db_page_reads = stats.db_page_reads;
    record.dfs_block_reads = stats.dfs_block_reads;
    record.candidates = stats.candidates;
    record.threads_built = stats.threads_built;
    record.popularity_cache_hits = stats.popularity_cache_hits;
    record.popularity_cache_misses = stats.popularity_cache_misses;
    slow_log_->Record(std::move(record));
  }
}

}  // namespace tklus
