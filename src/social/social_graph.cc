#include "social/social_graph.h"

#include <algorithm>

namespace tklus {

namespace {
const std::vector<TweetId> kEmpty;
}  // namespace

SocialGraph SocialGraph::Build(const Dataset& dataset) {
  SocialGraph g;
  for (const Post& p : dataset.posts()) {
    g.AddPost(p);
  }
  return g;
}

void SocialGraph::AddPost(const Post& post) {
  users_.insert(post.uid);
  if (!post.IsReplyOrForward()) return;
  const EdgeKey key{post.uid, post.ruid};
  if (post.is_forward) {
    forward_edges_[key].push_back(post.sid);
  } else {
    reply_edges_[key].push_back(post.sid);
  }
  // Children stay sorted: posts arrive in ascending sid order within and
  // across batches, so append preserves order; an out-of-order insert
  // (test corpora) falls back to a sorted insertion.
  auto& kids = children_[post.rsid];
  if (kids.empty() || kids.back() < post.sid) {
    kids.push_back(post.sid);
  } else {
    kids.insert(std::upper_bound(kids.begin(), kids.end(), post.sid),
                post.sid);
  }
}

const std::vector<TweetId>& SocialGraph::ReplyPosts(UserId from,
                                                    UserId to) const {
  const auto it = reply_edges_.find(EdgeKey{from, to});
  return it == reply_edges_.end() ? kEmpty : it->second;
}

const std::vector<TweetId>& SocialGraph::ForwardPosts(UserId from,
                                                      UserId to) const {
  const auto it = forward_edges_.find(EdgeKey{from, to});
  return it == forward_edges_.end() ? kEmpty : it->second;
}

bool SocialGraph::HasReplyEdge(UserId from, UserId to) const {
  return reply_edges_.count(EdgeKey{from, to}) > 0;
}

bool SocialGraph::HasForwardEdge(UserId from, UserId to) const {
  return forward_edges_.count(EdgeKey{from, to}) > 0;
}

std::vector<UserId> SocialGraph::ReplyNeighbors(UserId from) const {
  std::vector<UserId> out;
  for (const auto& [edge, posts] : reply_edges_) {
    if (edge.from == from) out.push_back(edge.to);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tklus
