# Empty compiler generated dependencies file for bench_fig12_hot_bounds.
# This may be replaced when dependencies are built.
