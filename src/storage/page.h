#ifndef TKLUS_STORAGE_PAGE_H_
#define TKLUS_STORAGE_PAGE_H_

#include <atomic>
#include <cstdint>
#include <cstring>

namespace tklus {

inline constexpr size_t kPageSize = 4096;
using PageId = int64_t;
inline constexpr PageId kInvalidPageId = -1;

// An in-memory frame for one on-disk page. Frames are owned by the
// BufferPool; callers pin/unpin them through it and never hold a Page
// across an eviction point without a pin.
//
// Concurrency: all frame metadata except the pin count is mutated only
// under the pool's latch. The pin count is atomic so lock-free observers
// (BufferPool::pinned_page_count()) can read it while readers pin and
// unpin concurrently; every pin-count *transition* still happens under the
// latch, which is what makes the eviction check (pin_count == 0, latched)
// race-free against concurrent FetchPage calls.
class Page {
 public:
  Page() { Reset(); }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  int pin_count() const { return pin_count_.load(std::memory_order_acquire); }
  bool is_dirty() const { return dirty_; }

  // Typed accessors at byte offset `off`.
  template <typename T>
  T ReadAt(size_t off) const {
    T v;
    std::memcpy(&v, data_ + off, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteAt(size_t off, const T& v) {
    std::memcpy(data_ + off, &v, sizeof(T));
  }

 private:
  friend class BufferPool;

  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPageId;
    pin_count_.store(0, std::memory_order_release);
    dirty_ = false;
  }

  char data_[kPageSize];
  PageId page_id_ = kInvalidPageId;
  std::atomic<int> pin_count_{0};
  bool dirty_ = false;
};

}  // namespace tklus

#endif  // TKLUS_STORAGE_PAGE_H_
