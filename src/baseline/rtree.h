#ifndef TKLUS_BASELINE_RTREE_H_
#define TKLUS_BASELINE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/point.h"

namespace tklus {

// A classic R-tree over points (Guttman, quadratic split), the spatial
// backbone of the IR-tree family the paper compares against (§VII-A).
class RTree {
 public:
  struct Entry {
    GeoPoint point;
    uint64_t id = 0;
  };

  struct NodeView {
    BoundingBox mbr;
    bool is_leaf = false;
    int level = 0;
  };

  explicit RTree(int max_entries = 32);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  void Insert(const GeoPoint& point, uint64_t id);

  // All entries within `radius_km` of `center` (equirectangular metric).
  std::vector<Entry> RangeQuery(const GeoPoint& center,
                                double radius_km) const;

  size_t size() const { return size_; }
  int height() const;
  size_t node_count() const;

  // Invariant check for tests: every child MBR is contained in its parent
  // MBR and every leaf is at the same depth.
  bool CheckInvariants() const;

 private:
  friend class IRTree;
  struct Node;

  Node* ChooseLeaf(Node* node, const GeoPoint& point) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);

  std::unique_ptr<Node> root_;
  int max_entries_;
  size_t size_ = 0;
};

}  // namespace tklus

#endif  // TKLUS_BASELINE_RTREE_H_
