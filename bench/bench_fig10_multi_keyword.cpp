// Figure 10: multi-keyword query efficiency — |W| in {1,2,3}, AND vs OR
// semantics, Sum vs Max ranking, radii 5/10/20/50 km. Paper: more keywords
// cost more under OR (bigger union) and less under AND (intersection
// filters harder); Max generally beats Sum, most visibly under OR at large
// radii.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 10 — multi-keyword query efficiency",
                "OR time grows with |W|, AND time shrinks; Max <= Sum, gap "
                "widest for OR at 20-50 km");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  auto engine = bench::MakeEngine(corpus.dataset);
  const auto workload = MakeQueryWorkload(corpus, datagen::WorkloadOptions{});

  for (const Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    std::printf("%s semantic:\n", sem == Semantics::kAnd ? "AND" : "OR");
    std::printf("%-6s %-10s %-12s %-12s %-14s\n", "|W|", "radius km",
                "sum ms", "max ms", "candidates");
    for (size_t kw = 1; kw <= 3; ++kw) {
      const auto group = datagen::FilterByKeywordCount(workload, kw);
      for (const double r : {5.0, 10.0, 20.0, 50.0}) {
        const auto sum_stats = bench::RunQueries(
            *engine, bench::With(group, r, 5, sem, Ranking::kSum));
        const auto max_stats = bench::RunQueries(
            *engine, bench::With(group, r, 5, sem, Ranking::kMax));
        std::printf("%-6zu %-10.0f %-12.2f %-12.2f %-14.1f\n", kw, r,
                    sum_stats.mean_ms, max_stats.mean_ms,
                    sum_stats.mean_candidates);
      }
    }
    std::printf("\n");
  }
  return 0;
}
