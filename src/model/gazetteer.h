#ifndef TKLUS_MODEL_GAZETTEER_H_
#define TKLUS_MODEL_GAZETTEER_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "geo/point.h"
#include "model/dataset.h"
#include "text/tokenizer.h"

namespace tklus {

// Place-name -> location dictionary for the §VIII implicit-location
// extension: "There are also tweets that lack longitude/latitude in the
// metadata but mention place name(s) in the short content. It is worth
// studying how to exploit the implicit spatial information in such
// tweets." Names are normalized with the same tokenizer the index uses,
// so a lookup of a tokenized tweet term hits the right entry (e.g.
// "Paris" and the indexed stem "pari" resolve identically).
class Gazetteer {
 public:
  explicit Gazetteer(TokenizerOptions tokenizer = TokenizerOptions{})
      : tokenizer_(tokenizer) {}

  // Registers a place. Multi-token names are keyed by their first
  // normalized token ("new york" -> "york" would be wrong, so prefer
  // single-token names like "newyork").
  void Add(std::string_view name, const GeoPoint& location);

  // Location of a *normalized* term, if it names a place.
  std::optional<GeoPoint> Lookup(std::string_view term) const;

  size_t size() const { return places_.size(); }
  const Tokenizer& tokenizer() const { return tokenizer_; }

 private:
  Tokenizer tokenizer_;
  std::unordered_map<std::string, GeoPoint> places_;
};

struct LocationInferenceStats {
  size_t untagged = 0;   // posts with GeoSource::kNone before the pass
  size_t inferred = 0;   // posts assigned an inferred location
};

// Scans `dataset` for posts without a geo-tag and assigns the location of
// the first gazetteer place mentioned in their text, marking them
// GeoSource::kInferred. Posts mentioning no known place stay kNone (and
// remain invisible to the spatial index).
LocationInferenceStats InferLocations(Dataset* dataset,
                                      const Gazetteer& gazetteer);

}  // namespace tklus

#endif  // TKLUS_MODEL_GAZETTEER_H_
