// Fixture: every malformed suppression shape — bare, reasonless, and
// naming an unknown rule. Each is its own finding; an unexplained or
// unaddressed suppression is how analyzer debt becomes invisible.
namespace tklus {

int Answer() {
  return 42;  // NOLINT
}

int Bare() {
  return 1;  // NOLINT(tklus-naked-mutex)
}

int Unknown() {
  return 2;  // NOLINT(tklus-no-such-rule): the rule name is wrong
}

}  // namespace tklus
