file(REMOVE_RECURSE
  "CMakeFiles/tklus_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/tklus_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/tklus_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/tklus_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/tklus_storage.dir/disk_manager.cc.o"
  "CMakeFiles/tklus_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/tklus_storage.dir/metadata_db.cc.o"
  "CMakeFiles/tklus_storage.dir/metadata_db.cc.o.d"
  "CMakeFiles/tklus_storage.dir/table_heap.cc.o"
  "CMakeFiles/tklus_storage.dir/table_heap.cc.o.d"
  "libtklus_storage.a"
  "libtklus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
