file(REMOVE_RECURSE
  "CMakeFiles/tklus_social.dir/social_graph.cc.o"
  "CMakeFiles/tklus_social.dir/social_graph.cc.o.d"
  "CMakeFiles/tklus_social.dir/thread_builder.cc.o"
  "CMakeFiles/tklus_social.dir/thread_builder.cc.o.d"
  "libtklus_social.a"
  "libtklus_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
