#ifndef TKLUS_BENCH_BENCH_UTIL_H_
#define TKLUS_BENCH_BENCH_UTIL_H_

// Shared harness for the per-figure/table benchmark binaries. Each binary
// regenerates one table or figure of the paper's §VI evaluation on a
// synthetic corpus (see DESIGN.md §2 for the dataset substitution) and
// prints the same rows/series the paper reports.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/query_workload.h"
#include "datagen/tweet_generator.h"

namespace tklus {
namespace bench {

// Benchmark corpus scale. Override with TKLUS_BENCH_TWEETS (and the other
// parameters scale proportionally) to run larger sweeps.
struct Scale {
  size_t tweets = 60000;
  size_t users = 1500;
  int cities = 8;
};

inline Scale ScaleFromEnv() {
  Scale scale;
  if (const char* env = std::getenv("TKLUS_BENCH_TWEETS")) {
    const long long n = std::atoll(env);
    if (n > 0) {
      scale.tweets = static_cast<size_t>(n);
      scale.users = std::max<size_t>(200, scale.tweets / 40);
    }
  }
  return scale;
}

inline datagen::TweetGenerator::Options CorpusOptions(const Scale& scale,
                                                      uint64_t seed = 42) {
  datagen::TweetGenerator::Options opts;
  opts.seed = seed;
  opts.num_tweets = scale.tweets;
  opts.num_users = scale.users;
  opts.num_cities = scale.cities;
  opts.experts_per_city = 10;
  return opts;
}

inline datagen::GeneratedCorpus MakeCorpus(const Scale& scale,
                                           uint64_t seed = 42) {
  return datagen::TweetGenerator::Generate(CorpusOptions(scale, seed));
}

// The paper sets N "empirically ... such that keyword relevance score is
// comparable to the distance score" for its corpus (§III-B). For the
// synthetic benchmark corpus the same calibration lands near 4 (typical
// hot-topic thread popularity ~3-25, tf 1-3, distance scores ~0.4-0.9).
inline constexpr double kBenchNNorm = 4.0;

inline std::unique_ptr<TkLusEngine> MakeEngine(
    const Dataset& dataset, TkLusEngine::Options options = {}) {
  if (options.scoring.n_norm == ScoringParams{}.n_norm) {
    options.scoring.n_norm = kBenchNNorm;
  }
  if (options.buffer_pool_pages == TkLusEngine::Options{}.buffer_pool_pages) {
    // Keep the pool well below the database size so thread construction
    // pays real page I/O, as in the paper's disk-resident setting.
    options.buffer_pool_pages = 256;
  }
  auto engine = TkLusEngine::Build(dataset, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*engine);
}

// Prints the figure banner with the paper's qualitative claim, so the
// output is self-describing when collected into bench_output.txt.
inline void Banner(const char* figure, const char* claim) {
  std::printf("\n==== %s ====\n", figure);
  std::printf("paper: %s\n\n", claim);
}

struct RunStats {
  double mean_ms = 0;
  double mean_threads_built = 0;
  double mean_threads_pruned = 0;
  double mean_db_reads = 0;
  double mean_candidates = 0;
};

// Runs every query and averages the execution statistics. Exits on error
// (benchmarks have no recovery path worth writing).
inline RunStats RunQueries(TkLusEngine& engine,
                           const std::vector<TkLusQuery>& queries) {
  RunStats stats;
  if (queries.empty()) return stats;
  for (const TkLusQuery& q : queries) {
    auto result = engine.Query(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    stats.mean_ms += result->stats.elapsed_ms;
    stats.mean_threads_built += static_cast<double>(
        result->stats.threads_built);
    stats.mean_threads_pruned += static_cast<double>(
        result->stats.threads_pruned);
    stats.mean_db_reads += static_cast<double>(result->stats.db_page_reads);
    stats.mean_candidates += static_cast<double>(result->stats.candidates);
  }
  const double n = static_cast<double>(queries.size());
  stats.mean_ms /= n;
  stats.mean_threads_built /= n;
  stats.mean_threads_pruned /= n;
  stats.mean_db_reads /= n;
  stats.mean_candidates /= n;
  return stats;
}

// Applies radius / k / semantics / ranking onto a copy of the workload.
inline std::vector<TkLusQuery> With(std::vector<TkLusQuery> queries,
                                    double radius_km, int k,
                                    Semantics semantics, Ranking ranking) {
  for (TkLusQuery& q : queries) {
    q.radius_km = radius_km;
    q.k = k;
    q.semantics = semantics;
    q.ranking = ranking;
  }
  return queries;
}

}  // namespace bench
}  // namespace tklus

#endif  // TKLUS_BENCH_BENCH_UTIL_H_
