// tklus_analyze — the project's domain-invariant static analyzer.
//
// Generic tooling (clang-tidy, thread-safety annotations) cannot see the
// project's own contracts: the buffer-pool pin protocol, the include-DAG
// between modules, the Status consumption discipline. This binary checks
// exactly those, over a lightweight lexical/include model of the tree.
//
// Usage:
//   tklus_analyze [--root DIR] [PATH...]   analyze (default paths: src)
//   tklus_analyze --selftest [DIR]         prove every rule fires on its
//                                          fail fixture and stays quiet on
//                                          its pass fixture
//   tklus_analyze --list-rules             print the rule catalog
//   --format=text|json|sarif               findings format (default text)
//   --output FILE                          write findings there instead of
//                                          stdout (text summary still
//                                          prints)
//   --jobs N                               scan worker threads (0 = auto)
//   --lockorder FILE                       explicit lockorder.conf
//   --hotpath FILE                         explicit hotpath.conf
//   --stats                                per-pass and per-rule wall time
//                                          as JSON on stderr
//
// Exit codes: 0 clean, 1 violations/selftest failure, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/output.h"

namespace tklus::analyze {
namespace {

namespace fs = std::filesystem;

void PrintDiagnostics(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    std::printf("%s:%d: [%s] %s\n", d.path.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
}

int ListRules() {
  for (const auto& rule : BuildRuleSet()) {
    std::printf("%-18s %s\n", std::string(rule->name()).c_str(),
                std::string(rule->description()).c_str());
  }
  return 0;
}

// Runs every rule against tests/analyze_fixtures/<rule>/{pass,fail}:
// the pass mini-tree must be completely clean (any rule firing there is
// a fixture bug), and the fail mini-tree must trip the rule under test.
// A rule without fixtures fails the selftest — an unproven rule may have
// silently stopped matching, which is worse than no rule at all.
int RunSelftest(const std::string& fixtures_dir) {
  int failures = 0;
  for (const auto& rule : BuildRuleSet()) {
    const std::string name(rule->name());
    const fs::path base = fs::path(fixtures_dir) / name;
    for (const char* kind : {"pass", "fail"}) {
      const fs::path dir = base / kind;
      if (!fs::is_directory(dir)) {
        std::printf("SELFTEST %-18s missing fixture dir %s\n", name.c_str(),
                    dir.string().c_str());
        ++failures;
        continue;
      }
      AnalyzerOptions opts;
      opts.root = dir.string();
      opts.paths = {"."};
      Result<std::vector<Diagnostic>> diags = RunAnalysis(opts);
      if (!diags.ok()) {
        std::printf("SELFTEST %-18s %s: %s\n", name.c_str(), kind,
                    diags.status().ToString().c_str());
        ++failures;
        continue;
      }
      if (std::strcmp(kind, "pass") == 0) {
        if (!diags->empty()) {
          std::printf("SELFTEST %-18s pass fixture is not clean:\n",
                      name.c_str());
          PrintDiagnostics(*diags);
          ++failures;
        }
        continue;
      }
      bool fired = false;
      for (const Diagnostic& d : *diags) {
        if (d.rule == name) fired = true;
      }
      if (!fired) {
        std::printf("SELFTEST %-18s did not fire on its fail fixture\n",
                    name.c_str());
        ++failures;
      }
    }
  }
  if (failures > 0) {
    std::printf("selftest: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("selftest OK (every rule fires on its fail fixture and is "
              "quiet on its pass fixture)\n");
  return 0;
}

// Findings in the requested format. SARIF wants the rule catalog even
// for rules that did not fire, so it is built from BuildRuleSet here.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diags,
                              const std::string& format) {
  if (format == "json") return DiagnosticsToJson(diags);
  std::vector<RuleInfo> catalog;
  for (const auto& rule : BuildRuleSet()) {
    catalog.push_back(
        RuleInfo{std::string(rule->name()), std::string(rule->description())});
  }
  return DiagnosticsToSarif(diags, catalog);
}

int Main(int argc, char** argv) {
  AnalyzerOptions opts;
  bool selftest = false;
  bool want_stats = false;
  std::string fixtures_dir;
  std::string format = "text";
  std::string output_file;
  const char* const usage =
      "usage: tklus_analyze [--root DIR] [--manifest FILE] "
      "[--lockorder FILE] [--hotpath FILE] [--format=text|json|sarif] "
      "[--output FILE] [--jobs N] [--stats] [--selftest [DIR]] "
      "[--list-rules] [PATH...]\n";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      opts.manifest = argv[++i];
    } else if (arg == "--lockorder" && i + 1 < argc) {
      opts.lockorder = argv[++i];
    } else if (arg == "--hotpath" && i + 1 < argc) {
      opts.hotpath = argv[++i];
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::strlen("--format="));
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "unknown format '%s'\n%s", format.c_str(), usage);
        return 2;
      }
    } else if (arg == "--output" && i + 1 < argc) {
      output_file = argv[++i];
    } else if (arg == "--selftest") {
      selftest = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') fixtures_dir = argv[++i];
    } else if (arg == "--list-rules") {
      return ListRules();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n%s", arg.c_str(), usage);
      return 2;
    } else {
      opts.paths.push_back(arg);
    }
  }

  if (selftest) {
    if (fixtures_dir.empty()) {
      fixtures_dir =
          (fs::path(opts.root) / "tests" / "analyze_fixtures").string();
    }
    return RunSelftest(fixtures_dir);
  }

  AnalyzerStats stats;
  Result<std::vector<Diagnostic>> diags =
      RunAnalysis(opts, want_stats ? &stats : nullptr);
  if (!diags.ok()) {
    std::fprintf(stderr, "tklus_analyze: %s\n",
                 diags.status().ToString().c_str());
    return 2;
  }
  if (want_stats) {
    // Stats go to stderr so the machine-readable finding formats on
    // stdout stay parseable with --stats on.
    std::fprintf(stderr, "%s\n", StatsToJson(stats).c_str());
  }

  if (format != "text" || !output_file.empty()) {
    const std::string rendered = format == "text"
                                     ? std::string()  // text never to file
                                     : FormatDiagnostics(*diags, format);
    if (!output_file.empty()) {
      if (format == "text") {
        std::fprintf(stderr,
                     "tklus_analyze: --output requires --format=json|sarif\n");
        return 2;
      }
      std::ofstream out(output_file, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "tklus_analyze: cannot write %s\n",
                     output_file.c_str());
        return 2;
      }
      out << rendered;
      if (!out.flush()) {
        std::fprintf(stderr, "tklus_analyze: short write to %s\n",
                     output_file.c_str());
        return 2;
      }
    } else {
      std::fputs(rendered.c_str(), stdout);
    }
  }

  if (!diags->empty()) {
    if (format == "text" || !output_file.empty()) {
      PrintDiagnostics(*diags);
    }
    std::fprintf(stderr, "tklus_analyze: %zu violation(s)\n", diags->size());
    return 1;
  }
  if (format == "text") std::printf("tklus_analyze OK\n");
  return 0;
}

}  // namespace
}  // namespace tklus::analyze

int main(int argc, char** argv) { return tklus::analyze::Main(argc, argv); }
