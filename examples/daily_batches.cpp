// The paper's batch architecture end-to-end (§IV-A: "we can periodically
// (e.g., one day) collect the spatial tweets and then build the index"):
// five "days" of tweets arrive as batches; day one builds the engine, each
// later day is appended incrementally (new index generation, metadata
// rows, bounds). The engine is saved and reopened between days, as a daily
// pipeline would.
#include <cstdio>

#include <filesystem>

#include "core/engine.h"
#include "datagen/tweet_generator.h"

using tklus::Dataset;
using tklus::GeoPoint;
using tklus::TkLusEngine;
using tklus::TkLusQuery;

int main() {
  tklus::datagen::TweetGenerator::Options gen;
  gen.num_tweets = 25000;
  gen.num_users = 800;
  gen.num_cities = 5;
  std::printf("generating %zu tweets (to be split into 5 daily batches)\n",
              gen.num_tweets);
  const auto corpus = tklus::datagen::TweetGenerator::Generate(gen);

  const size_t per_day = corpus.dataset.size() / 5;
  std::vector<Dataset> days(5);
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    days[std::min<size_t>(i / per_day, 4)].Add(corpus.dataset.posts()[i]);
  }

  const auto dir = std::filesystem::temp_directory_path() /
                   ("tklus_daily_" + std::to_string(::getpid()));
  TkLusQuery query;
  query.location = corpus.city_centers[0];
  query.radius_km = 12.0;
  query.keywords = {"restaurant"};
  query.k = 3;

  for (int day = 0; day < 5; ++day) {
    std::unique_ptr<TkLusEngine> engine;
    if (day == 0) {
      auto built = TkLusEngine::Build(days[0]);
      if (!built.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      engine = std::move(*built);
    } else {
      auto opened = TkLusEngine::Open(dir.string());
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      engine = std::move(*opened);
      const tklus::Status st = engine->AppendBatch(days[day]);
      if (!st.ok()) {
        std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }

    auto result = engine->Query(query);
    if (!result.ok()) return 1;
    std::printf(
        "day %d: %llu tweets indexed, global bound %.2f, top-3 for "
        "\"restaurant\" @ %s:",
        day + 1,
        static_cast<unsigned long long>(engine->metadata_db().row_count()),
        engine->bounds().global_bound(), corpus.city_names[0].c_str());
    for (const auto& user : result->users) {
      std::printf("  u%lld(%.3f)", static_cast<long long>(user.uid),
                  user.score);
    }
    std::printf("\n");

    const tklus::Status st = engine->Save(dir.string());
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\n(engine persisted and reopened between days; each append "
              "created a new index generation)\n");
  std::filesystem::remove_all(dir);
  return 0;
}
