// Fixture: a raw std::ofstream outside the whitelisted durability layer
// must trip `durability-discipline` — the bytes skip fsync, checksums
// and fault injection.
namespace tklus {

void DumpState(const std::string& path, const std::string& payload) {
  std::ofstream out(path);  // must fire
  out << payload;
}

}  // namespace tklus
