file(REMOVE_RECURSE
  "CMakeFiles/tklus_model.dir/dataset.cc.o"
  "CMakeFiles/tklus_model.dir/dataset.cc.o.d"
  "CMakeFiles/tklus_model.dir/gazetteer.cc.o"
  "CMakeFiles/tklus_model.dir/gazetteer.cc.o.d"
  "libtklus_model.a"
  "libtklus_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tklus_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
