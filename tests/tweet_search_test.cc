#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/tweet_generator.h"

namespace tklus {
namespace {

Post MakePost(TweetId sid, UserId uid, double lat, double lon,
              const std::string& text, TweetId rsid = kNoId,
              UserId ruid = kNoId) {
  Post p;
  p.sid = sid;
  p.uid = uid;
  p.location = GeoPoint{lat, lon};
  p.text = text;
  p.rsid = rsid;
  p.ruid = ruid;
  return p;
}

Dataset TweetSearchDataset() {
  Dataset ds;
  // Close + popular, close + unpopular, far + popular, out of range.
  ds.Add(MakePost(1, 1, 10.00, 10.00, "cozy cafe corner"));
  ds.Add(MakePost(2, 2, 10.01, 10.00, "cafe nearby"));
  ds.Add(MakePost(3, 3, 10.06, 10.00, "cafe further away"));
  ds.Add(MakePost(4, 4, 30.00, 30.00, "cafe on another continent"));
  for (TweetId sid = 100; sid < 110; ++sid) {
    ds.Add(MakePost(sid, 50 + sid, 10.0, 10.0, "so cozy!", 1, 1));
  }
  return ds;
}

TkLusQuery CafeQuery(int k = 10) {
  TkLusQuery q;
  q.location = GeoPoint{10.0, 10.0};
  q.radius_km = 10.0;
  q.keywords = {"cafe"};
  q.k = k;
  return q;
}

TEST(TweetSearchTest, RanksByCombinedScore) {
  auto engine = TkLusEngine::Build(TweetSearchDataset());
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->QueryTweets(CafeQuery());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tweets.size(), 3u);  // tweet 4 out of range
  // Tweet 1: at the query point AND a 10-reply thread -> clear winner.
  EXPECT_EQ(result->tweets[0].sid, 1);
  EXPECT_EQ(result->tweets[0].uid, 1);
  // Distance reported per tweet, ascending with rank here.
  EXPECT_LT(result->tweets[0].distance_km, result->tweets[1].distance_km);
  for (size_t i = 1; i < result->tweets.size(); ++i) {
    EXPECT_GE(result->tweets[i - 1].score, result->tweets[i].score);
  }
}

TEST(TweetSearchTest, KLimitsTweets) {
  auto engine = TkLusEngine::Build(TweetSearchDataset());
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->QueryTweets(CafeQuery(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tweets.size(), 2u);
}

TEST(TweetSearchTest, AndSemanticsApplies) {
  Dataset ds = TweetSearchDataset();
  ds.Add(MakePost(50, 9, 10.0, 10.0, "cafe with great espresso"));
  auto engine = TkLusEngine::Build(ds);
  ASSERT_TRUE(engine.ok());
  TkLusQuery q = CafeQuery();
  q.keywords = {"cafe", "espresso"};
  q.semantics = Semantics::kAnd;
  auto result = (*engine)->QueryTweets(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tweets.size(), 1u);
  EXPECT_EQ(result->tweets[0].sid, 50);
}

TEST(TweetSearchTest, TemporalWindowApplies) {
  auto engine = TkLusEngine::Build(TweetSearchDataset());
  ASSERT_TRUE(engine.ok());
  TkLusQuery q = CafeQuery();
  q.temporal.begin = 2;
  q.temporal.end = 3;
  auto result = (*engine)->QueryTweets(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tweets.size(), 2u);
  EXPECT_EQ(result->tweets[0].sid, 2);  // closer of the two
}

TEST(TweetSearchTest, InvalidQueryRejected) {
  auto engine = TkLusEngine::Build(TweetSearchDataset());
  ASSERT_TRUE(engine.ok());
  TkLusQuery q = CafeQuery(0);
  EXPECT_FALSE((*engine)->QueryTweets(q).ok());
}

TEST(TweetSearchTest, IntroMotivation) {
  // The paper's intro: tweet search "can return too many original tweets";
  // user search condenses them. With many tweets from few users, the
  // tweet-level result is larger than the distinct-user result.
  datagen::TweetGenerator::Options gen;
  gen.num_users = 100;
  gen.num_tweets = 4000;
  gen.num_cities = 2;
  const auto corpus = datagen::TweetGenerator::Generate(gen);
  auto engine = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(engine.ok());
  TkLusQuery q;
  q.location = corpus.city_centers[0];
  q.radius_km = 15.0;
  q.keywords = {"restaurant"};
  q.k = 50;
  auto tweets = (*engine)->QueryTweets(q);
  auto users = (*engine)->Query(q);
  ASSERT_TRUE(tweets.ok());
  ASSERT_TRUE(users.ok());
  // Distinct users <= matching tweets.
  EXPECT_LE(users->users.size(), tweets->tweets.size());
  // Every top tweet's author appears among candidates the user query saw.
  EXPECT_GT(tweets->tweets.size(), 0u);
}

}  // namespace
}  // namespace tklus
