#ifndef TKLUS_TOOLS_ANALYZE_OUTPUT_H_
#define TKLUS_TOOLS_ANALYZE_OUTPUT_H_

#include <string>
#include <vector>

#include "analyze/rules.h"

namespace tklus::analyze {

// Rule catalog entry for machine-readable output. SARIF wants the full
// catalog (so viewers can show descriptions even for rules that did not
// fire), not just the rules present in the findings.
struct RuleInfo {
  std::string name;
  std::string description;
};

// JSON-escapes `s` (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

// Findings as a JSON array of {rule, path, line, message} objects —
// stable field order, trailing newline, deterministic given sorted input.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags);

// Findings as a minimal SARIF 2.1.0 log: one run, the full rule catalog
// under tool.driver.rules, one result per diagnostic with a physical
// location. Paths are emitted as given (relative to the scan root).
std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diags,
                               const std::vector<RuleInfo>& rules);

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_OUTPUT_H_
