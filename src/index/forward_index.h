#ifndef TKLUS_INDEX_FORWARD_INDEX_H_
#define TKLUS_INDEX_FORWARD_INDEX_H_

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "common/status.h"

namespace tklus {

// Where one postings list lives inside the DFS-resident inverted index.
struct PostingsLocation {
  std::string file;      // DFS part file, e.g. "index/part-00003"
  uint64_t offset = 0;   // byte offset of the encoded list
  uint64_t length = 0;   // encoded byte length
  uint32_t doc_count = 0;
};

// The in-memory forward index of Figure 4: <geohash, keyword> -> postings
// position in HDFS. "The forward index ... is kept in the main memory"
// (§IV-B.1); the paper reports it under 12 MB for 4-length geohashes.
// A key maps to one location per *batch generation*: the paper's
// architecture indexes geo-tagged tweets periodically (e.g. daily), so a
// pair accumulates one postings list per batch, in batch (= time) order.
class ForwardIndex {
 public:
  using Key = std::pair<std::string, std::string>;  // (geohash, term)

  void Add(std::string geohash, std::string term, PostingsLocation loc) {
    entries_[Key{std::move(geohash), std::move(term)}].push_back(
        std::move(loc));
  }

  // nullptr when the pair is absent (cell has no tweet with that term);
  // otherwise the locations of every generation's postings list.
  const std::vector<PostingsLocation>* Lookup(
      const std::string& geohash, const std::string& term) const {
    const auto it = entries_.find(Key{geohash, term});
    return it == entries_.end() ? nullptr : &it->second;
  }

  size_t size() const { return entries_.size(); }

  // Approximate resident bytes (key strings + locations), the quantity the
  // paper bounds by 12 MB.
  uint64_t ApproxBytes() const {
    uint64_t bytes = 0;
    for (const auto& [key, locations] : entries_) {
      bytes += key.first.size() + key.second.size() + 32;
      for (const PostingsLocation& loc : locations) {
        bytes += loc.file.size() + sizeof(PostingsLocation);
      }
    }
    return bytes;
  }

  const std::map<Key, std::vector<PostingsLocation>>& entries() const {
    return entries_;
  }

  // Persistence: the forward index is tiny (paper: <12 MB), so a plain
  // binary dump suffices.
  void Save(std::ostream& out) const;
  Status Load(std::istream& in);

 private:
  // Ordered map: entries sorted by (geohash, term), mirroring the sorted
  // composite key order MapReduce produces.
  std::map<Key, std::vector<PostingsLocation>> entries_;
};

// Implementation details only below here.

inline void ForwardIndex::Save(std::ostream& out) const {
  serde::WriteU64(out, entries_.size());
  for (const auto& [key, locations] : entries_) {
    serde::WriteString(out, key.first);
    serde::WriteString(out, key.second);
    serde::WriteU64(out, locations.size());
    for (const PostingsLocation& loc : locations) {
      serde::WriteString(out, loc.file);
      serde::WriteU64(out, loc.offset);
      serde::WriteU64(out, loc.length);
      serde::WriteU32(out, loc.doc_count);
    }
  }
}

inline Status ForwardIndex::Load(std::istream& in) {
  uint64_t count = 0;
  if (!serde::ReadU64(in, &count)) {
    return Status::Corruption("truncated forward index");
  }
  entries_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::string geohash, term;
    uint64_t generations = 0;
    if (!serde::ReadString(in, &geohash) || !serde::ReadString(in, &term) ||
        !serde::ReadU64(in, &generations)) {
      return Status::Corruption("truncated forward index entry");
    }
    auto& locations = entries_[Key{std::move(geohash), std::move(term)}];
    locations.resize(generations);
    for (PostingsLocation& loc : locations) {
      if (!serde::ReadString(in, &loc.file) ||
          !serde::ReadU64(in, &loc.offset) ||
          !serde::ReadU64(in, &loc.length) ||
          !serde::ReadU32(in, &loc.doc_count)) {
        return Status::Corruption("truncated forward index location");
      }
    }
  }
  return Status::Ok();
}

}  // namespace tklus

#endif  // TKLUS_INDEX_FORWARD_INDEX_H_
