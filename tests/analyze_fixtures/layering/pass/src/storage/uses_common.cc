// Fixture: a declared downward edge (storage -> common) is allowed.
#include "common/status.h"
#include "storage/page.h"

namespace tklus {

int LayerOk() { return 1; }

}  // namespace tklus
