file(REMOVE_RECURSE
  "CMakeFiles/daily_batches.dir/daily_batches.cpp.o"
  "CMakeFiles/daily_batches.dir/daily_batches.cpp.o.d"
  "daily_batches"
  "daily_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
