// Fixture: RAII-guarded pinning is the sanctioned pattern; no rule may
// fire here. The comment below also proves comment immunity: FetchPage.
#include "storage/page_guard.h"

namespace tklus {

Status TouchPage(BufferPool* pool, PageId id) {
  Result<PageGuard> page = PageGuard::Fetch(pool, id);
  if (!page.ok()) return page.status();
  page->MarkDirty();
  return Status::Ok();
}

}  // namespace tklus
