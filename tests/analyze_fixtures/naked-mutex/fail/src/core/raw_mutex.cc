// Fixture: a std::mutex outside common/mutex.h must trip `naked-mutex`.
#include <mutex>

namespace tklus {

std::mutex g_unchecked_lock;  // must fire

}  // namespace tklus
