#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace tklus {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// Serializes the fprintf below so interleaved messages from concurrent
// threads never shear mid-line. Nothing else is guarded: the sink is
// stderr itself.
Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), file_(file), line_(line), fatal_(fatal) {}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= g_level.load()) {
    MutexLock lock(&g_log_mutex);
    // Strip directories from __FILE__ for readability.
    const char* base = file_;
    for (const char* p = file_; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), base, line_,
                 stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace tklus
