// Lint fixture: a raw std::mutex and a std::lock_guard, invisible to the
// thread-safety analysis. The real tree must use tklus::Mutex/MutexLock.
#include <mutex>

namespace fixture {

class Counter {
 public:
  void Increment() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  long count_ = 0;
};

}  // namespace fixture
