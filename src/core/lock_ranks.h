#ifndef TKLUS_CORE_LOCK_RANKS_H_
#define TKLUS_CORE_LOCK_RANKS_H_

// Lock ranks for the engine's runtime deadlock witness
// (common/mutex.h, built with -DTKLUS_DEADLOCK_DEBUG=ON). Ranks must
// strictly increase along every permitted acquisition chain; the witness
// aborts any thread that acquires a rank <= one it already holds.
//
// This is the same DAG the static analyzer checks lexically — declared in
// tools/analyze/lockorder.conf — so keep the two in sync:
//
//   order ingest_mu_ plane_mu_ ...     (4 -> 6, ShardedEngine)
//   order append_mu_ merge_mu_ mu_     (10 -> 20 -> 30)
//   order append_mu_ merge_wake_mu_    (10 -> 40)
//
// The ShardedEngine's locks rank *below* every per-shard engine lock: a
// sharded append or save holds its router locks while calling into shard
// engines (which then take append_mu_/merge_mu_/mu_), and a sharded query
// holds plane_mu_ shared across the per-shard fetch fan-out (mu_ shared).
//
// Gaps between ranks leave room to slot a new lock into the middle of a
// chain without renumbering.

namespace tklus::lockrank {

inline constexpr int kServerQueueMu = 2;    // RequestServer::queue_mu_
inline constexpr int kShardedIngestMu = 4;  // ShardedEngine::ingest_mu_
inline constexpr int kShardedPlaneMu = 6;   // ShardedEngine::plane_mu_
inline constexpr int kAppendMu = 10;     // Engine::append_mu_
inline constexpr int kMergeMu = 20;      // Engine::merge_mu_
inline constexpr int kEngineMu = 30;     // Engine::mu_ (innermost)
inline constexpr int kMergeWakeMu = 40;  // Engine::merge_wake_mu_

}  // namespace tklus::lockrank

#endif  // TKLUS_CORE_LOCK_RANKS_H_
