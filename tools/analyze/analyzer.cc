#include "analyze/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tklus::analyze {
namespace fs = std::filesystem;

namespace {

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Forward-slash path of `file` relative to `root`.
std::string RelPath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::proximate(file, root, ec);
  return (ec ? file : rel).generic_string();
}

}  // namespace

Result<AnalyzerContext> LoadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open manifest " + path);
  AnalyzerContext ctx;
  ctx.has_manifest = true;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'module: deps...'");
    }
    const std::string module = Trim(line.substr(0, colon));
    if (module.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": empty module name");
    }
    std::set<std::string>& deps = ctx.allowed_deps[module];
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.insert(dep);
  }
  return ctx;
}

Result<std::vector<Diagnostic>> RunAnalysis(const AnalyzerOptions& options) {
  const fs::path root(options.root);
  if (!fs::exists(root)) {
    return Status::InvalidArgument("root does not exist: " + options.root);
  }

  AnalyzerContext ctx;
  std::string manifest = options.manifest;
  if (manifest.empty()) {
    for (const fs::path& candidate :
         {root / "layers.conf", root / "tools" / "analyze" / "layers.conf"}) {
      if (fs::exists(candidate)) {
        manifest = candidate.string();
        break;
      }
    }
  }
  if (!manifest.empty()) {
    Result<AnalyzerContext> loaded = LoadManifest(manifest);
    if (!loaded.ok()) return loaded.status();
    ctx = std::move(*loaded);
  }

  std::vector<std::string> paths = options.paths;
  if (paths.empty()) paths.push_back("src");

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_regular_file(full)) {
      files.push_back(full);
      continue;
    }
    if (!fs::is_directory(full)) {
      return Status::InvalidArgument("scan path not found: " + full.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(full)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  const std::vector<std::unique_ptr<Rule>> rules = BuildRuleSet();
  std::vector<Diagnostic> diagnostics;
  for (const fs::path& file : files) {
    Result<std::string> text = ReadFile(file);
    if (!text.ok()) return text.status();
    const SourceFile model = LexFile(RelPath(file, root), *text);
    for (const auto& rule : rules) {
      rule->Check(model, ctx, &diagnostics);
    }
  }
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return diagnostics;
}

}  // namespace tklus::analyze
