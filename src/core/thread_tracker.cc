#include "core/thread_tracker.h"

#include <algorithm>

#include "common/serde.h"

namespace tklus {

void ThreadTracker::SetHotTerms(const std::vector<std::string>& stems) {
  hot_terms_.clear();
  hot_index_.clear();
  for (const std::string& stem : stems) {
    if (hot_index_.count(stem) || hot_terms_.size() >= 16) continue;
    hot_index_.emplace(stem, static_cast<int>(hot_terms_.size()));
    hot_terms_.push_back(stem);
  }
  hot_bounds_.assign(hot_terms_.size(), 0.0);
}

void ThreadTracker::AddPost(const Post& post,
                            const std::vector<std::string>& terms) {
  Entry entry;
  for (const std::string& term : terms) {
    const auto it = hot_index_.find(term);
    if (it != hot_index_.end()) {
      entry.hot_mask |= static_cast<uint16_t>(1u << it->second);
    }
  }
  if (post.IsReplyOrForward() && entries_.count(post.rsid)) {
    entry.parent = post.rsid;
  }
  const auto [self_it, inserted] = entries_.emplace(post.sid, entry);
  if (!inserted) return;  // duplicate sid: ignore
  BumpBounds(self_it->second);  // singleton epsilon may set initial bounds

  // The new post sits at level d+1 of the subtree of its ancestor at hop
  // distance d; it contributes 1/(d+1) while d+1 <= max_depth.
  TweetId ancestor = entry.parent;
  for (int dist = 1; ancestor != kNoId && dist + 1 <= options_.max_depth;
       ++dist) {
    const auto it = entries_.find(ancestor);
    if (it == entries_.end()) break;
    it->second.reply_score += 1.0 / (dist + 1);
    ++it->second.replies;
    BumpBounds(it->second);
    ancestor = it->second.parent;
  }
}

double ThreadTracker::Popularity(TweetId sid) const {
  const auto it = entries_.find(sid);
  if (it == entries_.end() || it->second.replies == 0) {
    return options_.epsilon;
  }
  return it->second.reply_score;
}

void ThreadTracker::BumpBounds(const Entry& entry) {
  const double popularity =
      entry.replies == 0 ? options_.epsilon : entry.reply_score;
  global_bound_ = std::max(global_bound_, popularity);
  if (entry.hot_mask == 0) return;
  for (size_t bit = 0; bit < hot_terms_.size(); ++bit) {
    if (entry.hot_mask & (1u << bit)) {
      hot_bounds_[bit] = std::max(hot_bounds_[bit], popularity);
    }
  }
}

std::unordered_map<std::string, double> ThreadTracker::HotBounds() const {
  std::unordered_map<std::string, double> out;
  for (size_t bit = 0; bit < hot_terms_.size(); ++bit) {
    out.emplace(hot_terms_[bit], hot_bounds_[bit]);
  }
  return out;
}

void ThreadTracker::Save(std::ostream& out) const {
  serde::WriteU64(out, static_cast<uint64_t>(options_.max_depth));
  serde::WriteDouble(out, options_.epsilon);
  serde::WriteDouble(out, global_bound_);
  serde::WriteU64(out, hot_terms_.size());
  for (size_t i = 0; i < hot_terms_.size(); ++i) {
    serde::WriteString(out, hot_terms_[i]);
    serde::WriteDouble(out, hot_bounds_[i]);
  }
  serde::WriteU64(out, entries_.size());
  for (const auto& [sid, entry] : entries_) {
    serde::WriteI64(out, sid);
    serde::WriteI64(out, entry.parent);
    serde::WriteU32(out, entry.hot_mask);
    serde::WriteU32(out, entry.replies);
    serde::WriteDouble(out, entry.reply_score);
  }
}

Status ThreadTracker::Load(std::istream& in) {
  uint64_t depth = 0, hot_count = 0, entry_count = 0;
  if (!serde::ReadU64(in, &depth) ||
      !serde::ReadDouble(in, &options_.epsilon) ||
      !serde::ReadDouble(in, &global_bound_) ||
      !serde::ReadU64(in, &hot_count)) {
    return Status::Corruption("truncated thread tracker header");
  }
  options_.max_depth = static_cast<int>(depth);
  hot_terms_.clear();
  hot_index_.clear();
  hot_bounds_.clear();
  for (uint64_t i = 0; i < hot_count; ++i) {
    std::string stem;
    double bound = 0;
    if (!serde::ReadString(in, &stem) || !serde::ReadDouble(in, &bound)) {
      return Status::Corruption("truncated thread tracker hot term");
    }
    hot_index_.emplace(stem, static_cast<int>(hot_terms_.size()));
    hot_terms_.push_back(std::move(stem));
    hot_bounds_.push_back(bound);
  }
  if (!serde::ReadU64(in, &entry_count)) {
    return Status::Corruption("truncated thread tracker entries");
  }
  entries_.clear();
  entries_.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    int64_t sid = 0;
    Entry entry;
    int64_t parent = 0;
    uint32_t mask = 0;
    if (!serde::ReadI64(in, &sid) || !serde::ReadI64(in, &parent) ||
        !serde::ReadU32(in, &mask) || !serde::ReadU32(in, &entry.replies) ||
        !serde::ReadDouble(in, &entry.reply_score)) {
      return Status::Corruption("truncated thread tracker entry");
    }
    entry.parent = parent;
    entry.hot_mask = static_cast<uint16_t>(mask);
    entries_.emplace(sid, entry);
  }
  return Status::Ok();
}

}  // namespace tklus
