#ifndef TKLUS_TEXT_PORTER_STEMMER_H_
#define TKLUS_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace tklus {

// The classic Porter (1980) stemming algorithm, used by the index builder
// (Alg. 2: "each term is stemmed"). Input must be lowercase ASCII letters;
// other characters pass through untouched by Stem()'s early exit.
//
// Reference behaviour: "caresses"->"caress", "ponies"->"poni",
// "relational"->"relat", "hopping"->"hop", "restaurants"->"restaur".
class PorterStemmer {
 public:
  // Returns the stem of `word`. Words shorter than 3 characters are
  // returned unchanged, as in Porter's reference implementation.
  std::string Stem(std::string_view word) const;
};

}  // namespace tklus

#endif  // TKLUS_TEXT_PORTER_STEMMER_H_
