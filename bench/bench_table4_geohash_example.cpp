// Table IV: geohash encoding length example for the coordinate
// (-23.994140625, -46.23046875) — the paper's own worked example, which
// must produce "6", "6g", "6gx", "6gxp" at lengths 1..4.
#include <cstdio>

#include "bench_util.h"
#include "geo/geohash.h"

int main() {
  using namespace tklus;
  bench::Banner("Table IV — geohash encoding length example",
                "(-23.994140625, -46.23046875) encodes to 6 / 6g / 6gx / "
                "6gxp at lengths 1-4");
  const GeoPoint p{-23.994140625, -46.23046875};
  std::printf("%-8s %-10s %-14s %s\n", "length", "geohash", "cell diag km",
              "cell box");
  for (int length = 1; length <= 6; ++length) {
    const std::string hash = geohash::Encode(p, length);
    auto box = geohash::DecodeBox(hash);
    std::printf("%-8d %-10s %-14.2f [%.4f,%.4f]x[%.4f,%.4f]\n", length,
                hash.c_str(), geohash::CellDiagonalKm(length, p.lat),
                box->min_lat, box->max_lat, box->min_lon, box->max_lon);
  }
  return 0;
}
