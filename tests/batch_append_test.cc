#include <gtest/gtest.h>

#include <filesystem>

#include "core/engine.h"
#include "core/thread_tracker.h"
#include "datagen/tweet_generator.h"
#include "geo/geohash.h"
#include "index/hybrid_index.h"
#include "social/social_graph.h"

namespace tklus {
namespace {

using datagen::GeneratedCorpus;
using datagen::TweetGenerator;

GeneratedCorpus MakeCorpus(size_t tweets = 6000) {
  TweetGenerator::Options opts;
  opts.num_users = 250;
  opts.num_tweets = tweets;
  opts.num_cities = 3;
  return TweetGenerator::Generate(opts);
}

// Split a dataset into [0, cut) and [cut, n) by position (sids ascend).
std::pair<Dataset, Dataset> Split(const Dataset& all, size_t cut) {
  Dataset first, second;
  for (size_t i = 0; i < all.size(); ++i) {
    (i < cut ? first : second).Add(all.posts()[i]);
  }
  return {std::move(first), std::move(second)};
}

// ------------------------------------------------------ thread tracker

TEST(ThreadTrackerTest, MatchesOfflineRegistry) {
  const GeneratedCorpus corpus = MakeCorpus();
  const Tokenizer tokenizer;
  const SocialGraph graph = SocialGraph::Build(corpus.dataset);
  UpperBoundRegistry::Options reg_opts;
  reg_opts.num_hot_keywords = 10;
  const UpperBoundRegistry registry =
      UpperBoundRegistry::Build(corpus.dataset, graph, tokenizer, reg_opts);

  ThreadTracker tracker(ThreadTracker::Options{6, 0.1});
  const Vocabulary vocab = corpus.dataset.BuildVocabulary(tokenizer);
  std::vector<std::string> hot;
  for (const auto& [term, freq] : vocab.TopTerms(10)) hot.push_back(term);
  tracker.SetHotTerms(hot);
  for (const Post& p : corpus.dataset.posts()) {
    tracker.AddPost(p, tokenizer.Tokenize(p.text));
  }
  EXPECT_NEAR(tracker.global_bound(), registry.global_bound(), 1e-9);
  const auto tracker_hot = tracker.HotBounds();
  ASSERT_EQ(tracker_hot.size(), registry.hot_bounds().size());
  for (const auto& [term, bound] : registry.hot_bounds()) {
    ASSERT_TRUE(tracker_hot.count(term)) << term;
    EXPECT_NEAR(tracker_hot.at(term), bound, 1e-9) << term;
  }
}

TEST(ThreadTrackerTest, PopularityMatchesInMemoryShapes) {
  const GeneratedCorpus corpus = MakeCorpus(3000);
  const Tokenizer tokenizer;
  const SocialGraph graph = SocialGraph::Build(corpus.dataset);
  ThreadTracker tracker(ThreadTracker::Options{6, 0.1});
  for (const Post& p : corpus.dataset.posts()) {
    tracker.AddPost(p, {});
  }
  for (size_t i = 0; i < corpus.dataset.size(); i += 37) {
    const TweetId sid = corpus.dataset.posts()[i].sid;
    const double expected = ThreadPopularity(
        BuildShapeInMemory(graph.children(), sid, 6), 0.1);
    EXPECT_NEAR(tracker.Popularity(sid), expected, 1e-9) << "sid " << sid;
  }
}

TEST(ThreadTrackerTest, IncrementalEqualsBulk) {
  const GeneratedCorpus corpus = MakeCorpus(4000);
  const Tokenizer tokenizer;
  ThreadTracker bulk(ThreadTracker::Options{6, 0.1});
  ThreadTracker incremental(ThreadTracker::Options{6, 0.1});
  bulk.SetHotTerms({"restaur", "cafe"});
  incremental.SetHotTerms({"restaur", "cafe"});
  for (const Post& p : corpus.dataset.posts()) {
    bulk.AddPost(p, tokenizer.Tokenize(p.text));
  }
  // Feed the same posts in two chunks.
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    const Post& p = corpus.dataset.posts()[i];
    incremental.AddPost(p, tokenizer.Tokenize(p.text));
    if (i == corpus.dataset.size() / 2) {
      // Bounds are already meaningful mid-way and only grow.
      EXPECT_LE(incremental.global_bound(), bulk.global_bound() + 1e-12);
    }
  }
  EXPECT_NEAR(incremental.global_bound(), bulk.global_bound(), 1e-12);
}

TEST(ThreadTrackerTest, SaveLoadRoundTrip) {
  const GeneratedCorpus corpus = MakeCorpus(2000);
  const Tokenizer tokenizer;
  ThreadTracker tracker(ThreadTracker::Options{6, 0.1});
  tracker.SetHotTerms({"hotel", "cafe"});
  for (const Post& p : corpus.dataset.posts()) {
    tracker.AddPost(p, tokenizer.Tokenize(p.text));
  }
  std::stringstream buffer;
  tracker.Save(buffer);
  ThreadTracker restored;
  ASSERT_TRUE(restored.Load(buffer).ok());
  EXPECT_EQ(restored.tracked_posts(), tracker.tracked_posts());
  EXPECT_DOUBLE_EQ(restored.global_bound(), tracker.global_bound());
  EXPECT_EQ(restored.HotBounds(), tracker.HotBounds());
  for (size_t i = 0; i < corpus.dataset.size(); i += 101) {
    const TweetId sid = corpus.dataset.posts()[i].sid;
    EXPECT_DOUBLE_EQ(restored.Popularity(sid), tracker.Popularity(sid));
  }
}

// --------------------------------------------------- index generations

TEST(IndexAppendTest, TwoGenerationsMergeOnFetch) {
  Dataset first, second;
  Post p;
  p.uid = 1;
  p.location = GeoPoint{10.0, 10.0};
  p.text = "hotel alpha";
  p.sid = 1;
  first.Add(p);
  p.sid = 2;
  first.Add(p);
  p.sid = 10;
  p.text = "hotel beta";
  second.Add(p);
  p.sid = 11;
  second.Add(p);

  SimulatedDfs dfs;
  auto index = HybridIndex::Build(first, &dfs, HybridIndex::Options{});
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->AppendBatch(second).ok());
  const std::string cell = geohash::Encode(GeoPoint{10.0, 10.0}, 4);
  auto postings = (*index)->FetchPostings(cell, "hotel");
  ASSERT_TRUE(postings.ok());
  ASSERT_EQ(postings->size(), 4u);
  for (size_t i = 1; i < postings->size(); ++i) {
    EXPECT_LT((*postings)[i - 1].tid, (*postings)[i].tid);
  }
  // Two part-file generations exist in the DFS.
  EXPECT_FALSE(dfs.List("index/gen-0000/").empty());
  EXPECT_FALSE(dfs.List("index/gen-0001/").empty());
}

// ----------------------------------------------------- engine batches

TEST(EngineAppendTest, BuildPlusAppendEqualsFullBuild) {
  const GeneratedCorpus corpus = MakeCorpus(6000);
  auto [first, second] = Split(corpus.dataset, corpus.dataset.size() / 2);

  auto full = TkLusEngine::Build(corpus.dataset);
  ASSERT_TRUE(full.ok());
  auto staged = TkLusEngine::Build(first);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE((*staged)->AppendBatch(second).ok());

  // Bounds identical (hot sets may differ slightly since the hot terms
  // were frozen on the first half; global must match exactly only if the
  // top term set coincides — compare the global bound, which is term-free).
  EXPECT_NEAR((*staged)->bounds().global_bound(),
              (*full)->bounds().global_bound(), 1e-9);

  for (const char* kw : {"hotel", "restaurant", "cafe"}) {
    for (const Ranking ranking : {Ranking::kSum, Ranking::kMax}) {
      TkLusQuery q;
      q.location = corpus.city_centers[0];
      q.radius_km = 15.0;
      q.keywords = {kw};
      q.k = 10;
      q.ranking = ranking;
      // Disable pruning so rankings are exactly comparable even where the
      // frozen hot-term set differs between the two engines.
      (*full)->processor().mutable_options().enable_pruning = false;
      (*staged)->processor().mutable_options().enable_pruning = false;
      auto want = (*full)->Query(q);
      auto got = (*staged)->Query(q);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->users.size(), want->users.size());
      for (size_t i = 0; i < want->users.size(); ++i) {
        EXPECT_EQ(got->users[i].uid, want->users[i].uid)
            << kw << " rank " << i;
        EXPECT_NEAR(got->users[i].score, want->users[i].score, 1e-9);
      }
    }
  }
}

TEST(EngineAppendTest, RejectsOutOfOrderBatch) {
  const GeneratedCorpus corpus = MakeCorpus(2000);
  auto [first, second] = Split(corpus.dataset, 1500);
  auto engine = TkLusEngine::Build(corpus.dataset);  // already has all sids
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->AppendBatch(second).ok());  // sids not fresh
}

TEST(EngineAppendTest, AppendAfterReopen) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tklus_append_reopen_" + std::to_string(::getpid()));
  const GeneratedCorpus corpus = MakeCorpus(4000);
  auto [first, second] = Split(corpus.dataset, 3000);
  {
    auto engine = TkLusEngine::Build(first);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Save(dir.string()).ok());
  }
  auto reopened = TkLusEngine::Open(dir.string());
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->AppendBatch(second).ok());
  // Appended tweets are queryable.
  TkLusQuery q;
  q.location = corpus.city_centers[0];
  q.radius_km = 15.0;
  q.keywords = {"restaurant"};
  q.k = 10;
  q.temporal.begin = second.posts().front().sid;  // only the new batch
  auto result = (*reopened)->Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.candidates, 0u);
  std::filesystem::remove_all(dir);
}

TEST(EngineAppendTest, BoundsGrowWithViralAppend) {
  // Appending a huge thread onto an existing root must raise the global
  // bound (stale bounds would make pruning unsound).
  Dataset first;
  Post p;
  p.uid = 1;
  p.location = GeoPoint{10, 10};
  p.sid = 1;
  p.text = "quiet cafe";
  first.Add(p);
  auto engine = TkLusEngine::Build(first);
  ASSERT_TRUE(engine.ok());
  const double before = (*engine)->bounds().global_bound();

  Dataset second;
  for (TweetId sid = 100; sid < 140; ++sid) {
    Post r;
    r.uid = 50 + sid;
    r.location = GeoPoint{10, 10};
    r.sid = sid;
    r.text = "wow";
    r.rsid = 1;
    r.ruid = 1;
    second.Add(r);
  }
  ASSERT_TRUE((*engine)->AppendBatch(second).ok());
  EXPECT_NEAR((*engine)->bounds().global_bound(), 40.0 / 2.0, 1e-9);
  EXPECT_GT((*engine)->bounds().global_bound(), before);
}

}  // namespace
}  // namespace tklus
