# Empty dependencies file for tklus_text.
# This may be replaced when dependencies are built.
