file(REMOVE_RECURSE
  "libtklus_core.a"
)
