#include "baseline/naive_scan.h"

#include <algorithm>

#include "obs/stopwatch.h"
#include "geo/distance.h"
#include "social/thread_builder.h"

namespace tklus {

NaiveScanner::NaiveScanner(const Dataset* dataset, Options options)
    : dataset_(dataset),
      options_(options),
      tokenizer_(options.tokenizer),
      graph_(SocialGraph::Build(*dataset)) {
  post_terms_.reserve(dataset_->size());
  for (const Post& p : dataset_->posts()) {
    post_terms_.push_back(tokenizer_.TermFrequencies(p.text));
    if (p.HasLocation()) {
      user_locations_[p.uid].push_back(p.location);
    }
  }
}

QueryResult NaiveScanner::Process(const TkLusQuery& query) const {
  // Keyword-match pass over every post (condition 1 of the problem
  // definition: p.W ∩ q.W != ∅ / all keywords for AND).
  std::vector<std::string> terms;
  for (const std::string& keyword : query.keywords) {
    for (std::string& term : tokenizer_.Tokenize(keyword)) {
      if (std::find(terms.begin(), terms.end(), term) == terms.end()) {
        terms.push_back(std::move(term));
      }
    }
  }
  std::vector<size_t> candidates;
  if (!terms.empty()) {
    for (size_t i = 0; i < dataset_->size(); ++i) {
      const auto& bag = post_terms_[i];
      size_t matched_terms = 0;
      for (const std::string& term : terms) {
        if (bag.count(term)) ++matched_terms;
      }
      const bool match = query.semantics == Semantics::kAnd
                             ? matched_terms == terms.size()
                             : matched_terms > 0;
      if (match) candidates.push_back(i);
    }
  }
  return RankCandidates(query, candidates);
}

QueryResult NaiveScanner::RankCandidates(
    const TkLusQuery& query, const std::vector<size_t>& post_indices) const {
  Stopwatch timer;
  QueryResult result;
  result.stats.candidates = post_indices.size();

  std::vector<std::string> terms;
  for (const std::string& keyword : query.keywords) {
    for (std::string& term : tokenizer_.Tokenize(keyword)) {
      if (std::find(terms.begin(), terms.end(), term) == terms.end()) {
        terms.push_back(std::move(term));
      }
    }
  }

  struct UserState {
    double rho_sum = 0.0;
    double rho_max = 0.0;
    size_t matched = 0;
    TweetId best_tweet = 0;
  };
  std::unordered_map<UserId, UserState> users;
  const auto& children = graph_.children();

  for (const size_t i : post_indices) {
    const Post& post = dataset_->posts()[i];
    if (!post.HasLocation()) continue;
    if (!query.temporal.InWindow(post.sid)) continue;
    const double dist = EuclideanKm(post.location, query.location);
    if (dist > query.radius_km) continue;
    ++result.stats.within_radius;
    UserState& state = users[post.uid];
    ++state.matched;

    uint32_t matched = 0;
    const auto& bag = post_terms_[i];
    for (const std::string& term : terms) {
      const auto it = bag.find(term);
      if (it != bag.end()) matched += static_cast<uint32_t>(it->second);
    }
    if (matched == 0) continue;
    const ThreadShape shape =
        BuildShapeInMemory(children, post.sid, options_.thread_depth);
    ++result.stats.threads_built;
    const double popularity =
        ThreadPopularity(shape, options_.scoring.epsilon);
    double rho = KeywordRelevance(matched, popularity, options_.scoring);
    if (query.temporal.half_life.has_value() &&
        query.temporal.reference.has_value()) {
      rho *= RecencyWeight(post.sid, *query.temporal.reference,
                           *query.temporal.half_life);
    }
    state.rho_sum += rho;
    if (rho > state.rho_max) {
      state.rho_max = rho;
      state.best_tweet = post.sid;
    }
  }

  std::vector<RankedUser> ranked;
  ranked.reserve(users.size());
  for (const auto& [uid, state] : users) {
    // Def. 9: average distance score over every post of the user.
    double delta_user = 0.0;
    const auto it = user_locations_.find(uid);
    if (it != user_locations_.end() && !it->second.empty()) {
      for (const GeoPoint& location : it->second) {
        delta_user +=
            DistanceScore(location, query.location, query.radius_km);
      }
      delta_user /= static_cast<double>(it->second.size());
    }
    const double rho =
        query.ranking == Ranking::kSum ? state.rho_sum : state.rho_max;
    RankedUser user;
    user.uid = uid;
    user.score = UserScore(rho, delta_user, options_.scoring);
    if (query.explain) {
      user.why = UserScoreBreakdown{rho, delta_user, state.matched,
                                    state.best_tweet, state.rho_max};
    }
    ranked.push_back(std::move(user));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedUser& a, const RankedUser& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.uid < b.uid;
            });
  if (static_cast<int>(ranked.size()) > query.k) ranked.resize(query.k);
  result.users = std::move(ranked);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace tklus
