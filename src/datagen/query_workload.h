#ifndef TKLUS_DATAGEN_QUERY_WORKLOAD_H_
#define TKLUS_DATAGEN_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "datagen/tweet_generator.h"

namespace tklus {
namespace datagen {

// Builds the §VI-B1 90-query workload: `queries_per_group` queries with
// one keyword (drawn from the 30 meaningful keywords), with two keywords
// (AOL-style "topic + modifier" phrases anchored on Table-II hot terms,
// e.g. "restaurant seafood"), and with three keywords (modifier + topic +
// city, e.g. "mexican restaurant houston"). Each query's location is
// sampled from the corpus's own spatial distribution ("randomly associated
// with a location that is sampled according to the spatial distribution in
// our data set").
struct WorkloadOptions {
  uint64_t seed = 7;
  int queries_per_group = 30;
  double radius_km = 10.0;
  int k = 10;
  Semantics semantics = Semantics::kOr;
  Ranking ranking = Ranking::kSum;
};

std::vector<TkLusQuery> MakeQueryWorkload(const GeneratedCorpus& corpus,
                                          const WorkloadOptions& options);

// The subset with exactly `num_keywords` keywords (1, 2 or 3).
std::vector<TkLusQuery> FilterByKeywordCount(
    const std::vector<TkLusQuery>& workload, size_t num_keywords);

}  // namespace datagen
}  // namespace tklus

#endif  // TKLUS_DATAGEN_QUERY_WORKLOAD_H_
