#ifndef TKLUS_TOOLS_ANALYZE_SUMMARIES_H_
#define TKLUS_TOOLS_ANALYZE_SUMMARIES_H_

#include <set>
#include <string>
#include <vector>

#include "analyze/source_model.h"

namespace tklus::analyze {

struct ProgramModel;

// One lock a function acquires either directly or through some chain of
// calls, with the acquisition site and a witness call path (display
// names, summarized function first, acquiring function last) so the
// diagnostic can show *how* the lock gets taken. Summaries dedup by
// (lock, site_path): two acquisitions of the same lock in the same file
// collapse to the first-seen witness, which both bounds the fixpoint and
// keeps per-function state small.
struct TransitiveAcquire {
  std::string lock;       // the guarded member, e.g. "append_mu_"
  std::string site_path;  // file containing the acquisition statement
  int site_line;
  bool exclusive;
  std::vector<std::string> path;  // witness call chain (capped)
};

// The interprocedural effect summary of one function. `AddAcquire`
// returns false when an equivalent acquire (same lock + site file) is
// already present — the monotone-growth check the fixpoint terminates
// on.
struct FunctionSummary {
  std::vector<TransitiveAcquire> acquires;

  bool AddAcquire(TransitiveAcquire acquire) {
    for (const TransitiveAcquire& have : acquires) {
      if (have.lock == acquire.lock && have.site_path == acquire.site_path) {
        return false;
      }
    }
    acquires.push_back(std::move(acquire));
    return true;
  }
};

// Hot-path configuration (tools/analyze/hotpath.conf): declared roots
// (the scoring/postings inner loops), call names banned anywhere
// reachable from a root, and audited leaf functions the reachability
// walk neither flags nor traverses through.
struct HotPathConfig {
  bool loaded = false;
  std::vector<std::string> roots;  // plain or Class::Method spellings
  std::set<std::string> banned;    // blocking call names
  std::set<std::string> allowed;   // audited leaves (skipped entirely)

  bool IsAllowed(const std::string& qualified,
                 const std::string& last) const {
    return allowed.count(qualified) > 0 || allowed.count(last) > 0;
  }
};

// Bottom-up summary propagation over the call graph: seeds every
// function's summary with its own RAII acquisitions, then folds callee
// summaries into callers in SCC order (iterating cyclic components to a
// fixed point), and finally runs the entry-held propagation
// guard-discipline reads (greatest fixpoint over same-class caller
// edges, so a lock every same-class caller demonstrably holds counts as
// held on entry). Fills ProgramFunction::summary / entry_held /
// entry_held_universal.
void ComputeSummaries(ProgramModel* program);

// Marks every function reachable from a configured root (stopping at
// `allow`ed functions) hot, recording a witness path from the root.
// Must run after ProgramModel::Build; independent of ComputeSummaries.
void ComputeHotPaths(const HotPathConfig& config, ProgramModel* program);

}  // namespace tklus::analyze

#endif  // TKLUS_TOOLS_ANALYZE_SUMMARIES_H_
