// Figure 6: hybrid index size versus geohash encoding length (1..4). The
// paper reports a near-constant size (~3.5 GB for 514M tweets); here the
// inverted-index bytes in the simulated DFS and the in-memory forward
// index footprint (paper: <12 MB at length 4) are both reported.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "dfs/dfs.h"
#include "index/hybrid_index.h"

int main() {
  using namespace tklus;
  bench::Banner("Figure 6 — index size vs geohash length",
                "index size is nearly constant across geohash lengths; the "
                "forward index stays small enough for main memory");
  const auto corpus = bench::MakeCorpus(bench::ScaleFromEnv());
  std::printf("corpus: %zu tweets\n\n", corpus.dataset.size());
  std::printf("%-8s %-16s %-16s %-12s %-14s\n", "length", "inverted bytes",
              "forward bytes", "lists", "postings");
  for (int length = 1; length <= 4; ++length) {
    SimulatedDfs dfs;
    HybridIndex::Options opts;
    opts.geohash_length = length;
    auto index = HybridIndex::Build(corpus.dataset, &dfs, opts);
    if (!index.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    const IndexBuildStats& stats = (*index)->build_stats();
    std::printf("%-8d %-16s %-16s %-12llu %-14llu\n", length,
                HumanBytes(stats.inverted_bytes).c_str(),
                HumanBytes(stats.forward_bytes).c_str(),
                static_cast<unsigned long long>(stats.postings_lists),
                static_cast<unsigned long long>(stats.postings_entries));
  }
  return 0;
}
