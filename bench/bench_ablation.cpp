// Ablations for the design choices DESIGN.md §5 calls out:
//  * alpha (Def. 10 mix) — how the ranking shifts between keyword-driven
//    and distance-driven;
//  * N (Def. 6 normalizer) — keyword-vs-distance comparability;
//  * thread depth cap d (Alg. 1) — popularity fidelity vs I/O cost;
//  * buffer pool size — thread construction is the I/O bottleneck;
//  * Def. 11's formula vs the exact offline bound — tightness.
#include <cstdio>

#include "bench_util.h"
#include "core/kendall.h"
#include "core/scoring.h"
#include "social/thread_builder.h"

int main() {
  using namespace tklus;
  bench::Banner("Ablations — alpha, N, thread depth, buffer pool, bounds",
                "design-choice sensitivity (not a paper figure)");
  const auto scale = bench::ScaleFromEnv();
  const auto corpus = bench::MakeCorpus(scale);
  const auto workload = datagen::FilterByKeywordCount(
      MakeQueryWorkload(corpus, datagen::WorkloadOptions{}), 1);
  const auto queries =
      bench::With(workload, 15.0, 10, Semantics::kOr, Ranking::kSum);

  // ---- alpha sweep: compare each ranking against alpha = 0.5.
  std::printf("alpha sweep (tau vs alpha=0.5 ranking, radius 15 km):\n");
  std::printf("%-8s %-12s\n", "alpha", "mean tau");
  {
    auto reference = bench::MakeEngine(corpus.dataset);
    std::vector<std::vector<UserId>> ref_results;
    for (const TkLusQuery& q : queries) {
      auto r = reference->Query(q);
      if (!r.ok()) return 1;
      ref_results.push_back(r->UserIds());
    }
    for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      TkLusEngine::Options opts;
      opts.scoring.alpha = alpha;
      auto engine = bench::MakeEngine(corpus.dataset, opts);
      double tau = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = engine->Query(queries[i]);
        if (!r.ok()) return 1;
        tau += KendallTauVariant(r->UserIds(), ref_results[i]);
      }
      std::printf("%-8.2f %-12.3f\n", alpha, tau / queries.size());
    }
  }

  // ---- thread depth cap d: popularity fidelity and I/O.
  std::printf("\nthread depth cap d (Alg. 1) — fidelity vs full depth 10:\n");
  std::printf("%-6s %-16s %-16s\n", "d", "mean |phi-phi10|", "query ms");
  {
    const SocialGraph graph = SocialGraph::Build(corpus.dataset);
    // Reference popularity at depth 10 over a sample of roots.
    std::vector<TweetId> roots;
    for (size_t i = 0; i < corpus.dataset.size(); i += 101) {
      roots.push_back(corpus.dataset.posts()[i].sid);
    }
    std::vector<double> ref;
    ref.reserve(roots.size());
    for (const TweetId sid : roots) {
      ref.push_back(
          ThreadPopularity(BuildShapeInMemory(graph.children(), sid, 10),
                           0.1));
    }
    for (const int d : {2, 3, 4, 6, 8}) {
      double err = 0;
      for (size_t i = 0; i < roots.size(); ++i) {
        const double phi = ThreadPopularity(
            BuildShapeInMemory(graph.children(), roots[i], d), 0.1);
        err += std::abs(phi - ref[i]);
      }
      TkLusEngine::Options opts;
      opts.thread_depth = d;
      auto engine = bench::MakeEngine(corpus.dataset, opts);
      const auto stats = bench::RunQueries(*engine, queries);
      std::printf("%-6d %-16.4f %-16.2f\n", d, err / roots.size(),
                  stats.mean_ms);
    }
  }

  // ---- buffer pool size: thread construction I/O.
  std::printf("\nbuffer pool size vs metadata-DB physical reads "
              "(radius 15 km):\n");
  std::printf("%-12s %-16s %-12s\n", "pool pages", "mean page reads",
              "query ms");
  for (const size_t pages : {64, 256, 1024, 8192}) {
    TkLusEngine::Options opts;
    opts.buffer_pool_pages = pages;
    auto engine = bench::MakeEngine(corpus.dataset, opts);
    // Warm-up pass, then measure steady-state.
    (void)bench::RunQueries(*engine, queries);
    const auto stats = bench::RunQueries(*engine, queries);
    std::printf("%-12zu %-16.1f %-12.2f\n", pages, stats.mean_db_reads,
                stats.mean_ms);
  }

  // ---- Def. 11 formula vs exact offline bound.
  std::printf("\nupper-bound tightness (global):\n");
  {
    auto engine = bench::MakeEngine(corpus.dataset);
    auto fanout = engine->metadata_db().MaxReplyFanout();
    if (!fanout.ok()) return 1;
    const double paper_bound = PaperGlobalBoundPopularity(*fanout, 6);
    std::printf("  exact max thread popularity: %.3f\n",
                engine->bounds().global_bound());
    std::printf("  Def. 11 formula (t_m=%lld, d=6): %.3f  (%.1fx looser%s)\n",
                static_cast<long long>(*fanout), paper_bound,
                paper_bound / engine->bounds().global_bound(),
                paper_bound < engine->bounds().global_bound()
                    ? ", UNSOUND for this corpus"
                    : "");
    std::printf("  hot-keyword bounds:\n");
    for (const auto& [term, bound] : engine->bounds().hot_bounds()) {
      std::printf("    %-12s %.3f\n", term.c_str(), bound);
    }
  }
  return 0;
}
