file(REMOVE_RECURSE
  "libtklus_index.a"
)
