#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/metadata_db.h"
#include "storage/table_heap.h"

namespace tklus {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tklus_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------- disk manager

class DiskManagerTest : public TempDir {};

TEST_F(DiskManagerTest, WriteReadRoundTrip) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  const PageId pid = dm->AllocatePage();
  char out[kPageSize], in[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) in[i] = static_cast<char>(i * 7);
  ASSERT_TRUE(dm->WritePage(pid, in).ok());
  ASSERT_TRUE(dm->ReadPage(pid, out).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST_F(DiskManagerTest, UnwrittenAllocatedPageReadsZero) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  const PageId pid = dm->AllocatePage();
  char out[kPageSize];
  std::memset(out, 0xAB, kPageSize);
  ASSERT_TRUE(dm->ReadPage(pid, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(out[i], 0) << i;
}

TEST_F(DiskManagerTest, OutOfRangeRejected) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  char buf[kPageSize] = {};
  EXPECT_EQ(dm->ReadPage(5, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dm->WritePage(-1, buf).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskManagerTest, StatsCountIos) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  char buf[kPageSize] = {};
  const PageId a = dm->AllocatePage();
  const PageId b = dm->AllocatePage();
  ASSERT_TRUE(dm->WritePage(a, buf).ok());
  ASSERT_TRUE(dm->WritePage(b, buf).ok());
  ASSERT_TRUE(dm->ReadPage(a, buf).ok());
  EXPECT_EQ(dm->stats().page_writes, 2u);
  EXPECT_EQ(dm->stats().page_reads, 1u);
}

TEST_F(DiskManagerTest, BadPathFails) {
  Result<DiskManager> dm = DiskManager::Open("/nonexistent/dir/db");
  EXPECT_FALSE(dm.ok());
}

TEST_F(DiskManagerTest, InjectedFaultsSurfaceWithTheirCodes) {
  FaultInjector injector(/*seed=*/21);
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  dm->set_fault_injector(&injector);
  const PageId pid = dm->AllocatePage();
  char buf[kPageSize] = {};
  ASSERT_TRUE(dm->WritePage(pid, buf).ok());

  injector.FailNext(faults::kDiskRead, FaultKind::kTransient, 1);
  EXPECT_EQ(dm->ReadPage(pid, buf).code(), StatusCode::kUnavailable);
  injector.FailNext(faults::kDiskRead, FaultKind::kPermanent, 1);
  EXPECT_EQ(dm->ReadPage(pid, buf).code(), StatusCode::kIoError);
  injector.FailNext(faults::kDiskWrite, FaultKind::kPermanent, 1);
  EXPECT_EQ(dm->WritePage(pid, buf).code(), StatusCode::kIoError);
  EXPECT_TRUE(dm->ReadPage(pid, buf).ok());
}

TEST_F(DiskManagerTest, TornWriteIsCaughtByTheNextRead) {
  // The injected torn write "succeeds" but stores damaged bytes; the page
  // checksum describes the intended bytes, so the next read detects it.
  FaultInjector injector(/*seed=*/22);
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  dm->set_fault_injector(&injector);
  const PageId pid = dm->AllocatePage();
  char in[kPageSize], out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) in[i] = static_cast<char>(i * 31);

  injector.FailNext(faults::kDiskWrite, FaultKind::kCorruption, 1);
  ASSERT_TRUE(dm->WritePage(pid, in).ok());
  EXPECT_EQ(dm->ReadPage(pid, out).code(), StatusCode::kCorruption);
  EXPECT_EQ(dm->stats().checksum_failures, 1u);

  // Rewriting the page heals it.
  ASSERT_TRUE(dm->WritePage(pid, in).ok());
  ASSERT_TRUE(dm->ReadPage(pid, out).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST_F(DiskManagerTest, OnDiskBitRotDetectedAfterReopen) {
  const std::string path = Path("db");
  {
    Result<DiskManager> dm = DiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    char in[kPageSize];
    for (size_t i = 0; i < kPageSize; ++i) in[i] = static_cast<char>(i);
    const PageId pid = dm->AllocatePage();
    ASSERT_TRUE(dm->WritePage(pid, in).ok());
    ASSERT_TRUE(dm->Sync().ok());
  }
  // Flip one byte in the closed database file.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(1000);
    f.put('\x7f');
  }
  Result<DiskManager> dm = DiskManager::Open(path, /*truncate=*/false);
  ASSERT_TRUE(dm.ok()) << dm.status().ToString();
  ASSERT_TRUE(dm->verifies_checksums());
  char out[kPageSize];
  EXPECT_EQ(dm->ReadPage(0, out).code(), StatusCode::kCorruption);
}

TEST_F(DiskManagerTest, MissingSidecarDisablesVerification) {
  // Database files from before checksumming existed stay readable.
  const std::string path = Path("db");
  {
    Result<DiskManager> dm = DiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    char in[kPageSize] = {1, 2, 3};
    const PageId pid = dm->AllocatePage();
    ASSERT_TRUE(dm->WritePage(pid, in).ok());
    ASSERT_TRUE(dm->Sync().ok());
  }
  std::filesystem::remove(path + ".crc");
  Result<DiskManager> dm = DiskManager::Open(path, /*truncate=*/false);
  ASSERT_TRUE(dm.ok());
  EXPECT_FALSE(dm->verifies_checksums());
  char out[kPageSize];
  EXPECT_TRUE(dm->ReadPage(0, out).ok());
  EXPECT_EQ(out[1], 2);
}

// ----------------------------------------------------------- buffer pool

class BufferPoolTest : public TempDir {};

TEST_F(BufferPoolTest, HitOnSecondFetch) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 8);
  Result<Page*> p = pool.NewPage();
  ASSERT_TRUE(p.ok());
  const PageId pid = (*p)->page_id();
  ASSERT_TRUE(pool.UnpinPage(pid, true).ok());
  ASSERT_TRUE(pool.FetchPage(pid).ok());
  ASSERT_TRUE(pool.UnpinPage(pid, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPage) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 2);
  // Write page 0 with a marker, unpin dirty.
  Result<Page*> p0 = pool.NewPage();
  ASSERT_TRUE(p0.ok());
  const PageId pid0 = (*p0)->page_id();
  (*p0)->WriteAt<uint64_t>(0, 0xDEADBEEFull);
  ASSERT_TRUE(pool.UnpinPage(pid0, true).ok());
  // Fill pool to evict page 0.
  for (int i = 0; i < 3; ++i) {
    Result<Page*> p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(pool.UnpinPage((*p)->page_id(), false).ok());
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  // Re-fetch page 0: contents must have survived via disk.
  Result<Page*> again = pool.FetchPage(pid0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->ReadAt<uint64_t>(0), 0xDEADBEEFull);
  ASSERT_TRUE(pool.UnpinPage(pid0, false).ok());
}

TEST_F(BufferPoolTest, AllPinnedExhausts) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 2);
  Result<Page*> a = pool.NewPage();
  Result<Page*> b = pool.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<Page*> c = pool.NewPage();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BufferPoolTest, UnpinErrors) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 2);
  EXPECT_EQ(pool.UnpinPage(99, false).code(), StatusCode::kNotFound);
  Result<Page*> p = pool.NewPage();
  ASSERT_TRUE(p.ok());
  const PageId pid = (*p)->page_id();
  ASSERT_TRUE(pool.UnpinPage(pid, false).ok());
  EXPECT_EQ(pool.UnpinPage(pid, false).code(), StatusCode::kInternal);
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 2);
  Result<Page*> a = pool.NewPage();
  Result<Page*> b = pool.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const PageId pa = (*a)->page_id(), pb = (*b)->page_id();
  ASSERT_TRUE(pool.UnpinPage(pa, true).ok());
  ASSERT_TRUE(pool.UnpinPage(pb, true).ok());
  // Touch a so b becomes LRU.
  ASSERT_TRUE(pool.FetchPage(pa).ok());
  ASSERT_TRUE(pool.UnpinPage(pa, false).ok());
  // New page evicts b, not a.
  Result<Page*> c = pool.NewPage();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(pool.UnpinPage((*c)->page_id(), false).ok());
  pool.ResetStats();
  ASSERT_TRUE(pool.FetchPage(pa).ok());
  ASSERT_TRUE(pool.UnpinPage(pa, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);  // a still resident
}

// ------------------------------------------------------------ B+-tree

class BPlusTreeTest : public TempDir {
 protected:
  void Init(size_t pool_pages = 64) {
    Result<DiskManager> dm = DiskManager::Open(Path("db"));
    ASSERT_TRUE(dm.ok());
    disk_ = std::make_unique<DiskManager>(std::move(*dm));
    pool_ = std::make_unique<BufferPool>(disk_.get(), pool_pages);
    Result<BPlusTree> tree = BPlusTree::Create(pool_.get());
    ASSERT_TRUE(tree.ok());
    tree_ = std::make_unique<BPlusTree>(std::move(*tree));
  }

  // Every tree operation pins pages through PageGuard; by the time a
  // test finishes, every guard must have unpinned. A nonzero count here
  // is a pin leak on some code path the test exercised.
  void TearDown() override {
    if (pool_) {
      EXPECT_EQ(pool_->pinned_page_count(), 0u);
    }
    TempDir::TearDown();
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_F(BPlusTreeTest, EmptyTreeLookups) {
  Init();
  Result<std::optional<uint64_t>> r = tree_->Get(42);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
  Result<std::vector<uint64_t>> all = tree_->GetAll(42);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
}

TEST_F(BPlusTreeTest, InsertAndGetSmall) {
  Init();
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k * 10)).ok());
  }
  for (int64_t k = 0; k < 100; ++k) {
    Result<std::optional<uint64_t>> r = tree_->Get(k);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(r->value(), static_cast<uint64_t>(k * 10));
  }
  Result<uint64_t> count = tree_->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 100u);
}

TEST_F(BPlusTreeTest, LargeRandomInsertMatchesStdMap) {
  Init(256);
  Rng rng(17);
  std::multimap<int64_t, uint64_t> expected;
  for (int i = 0; i < 20000; ++i) {
    const int64_t key = rng.UniformInt(int64_t{0}, int64_t{5000});
    const uint64_t val = rng.Next();
    ASSERT_TRUE(tree_->Insert(key, val).ok());
    expected.emplace(key, val);
  }
  Result<int> height = tree_->Height();
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 2);
  // Spot-check 300 random keys incl. duplicates.
  for (int i = 0; i < 300; ++i) {
    const int64_t key = rng.UniformInt(int64_t{0}, int64_t{5000});
    Result<std::vector<uint64_t>> got = tree_->GetAll(key);
    ASSERT_TRUE(got.ok());
    auto [lo, hi] = expected.equal_range(key);
    std::multiset<uint64_t> want;
    for (auto it = lo; it != hi; ++it) want.insert(it->second);
    EXPECT_EQ(std::multiset<uint64_t>(got->begin(), got->end()), want)
        << "key " << key;
  }
  Result<uint64_t> count = tree_->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, expected.size());
}

TEST_F(BPlusTreeTest, SequentialInsertSplitsCorrectly) {
  Init(256);
  const int n = 10000;
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k)).ok());
  }
  Result<std::vector<std::pair<int64_t, uint64_t>>> all = tree_->Range(0, n);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    EXPECT_EQ((*all)[k].first, k);
    EXPECT_EQ((*all)[k].second, static_cast<uint64_t>(k));
  }
}

TEST_F(BPlusTreeTest, ReverseInsertOrder) {
  Init(256);
  for (int64_t k = 5000; k >= 0; --k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k + 1)).ok());
  }
  for (int64_t k : {0, 1, 2500, 4999, 5000}) {
    Result<std::optional<uint64_t>> r = tree_->Get(k);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(r->value(), static_cast<uint64_t>(k + 1));
  }
}

TEST_F(BPlusTreeTest, HeavyDuplicatesSpanLeaves) {
  Init(256);
  // 2000 entries under one key forces duplicates across many leaves —
  // exactly the rsid-index shape for a viral tweet.
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_->Insert(77, i).ok());
  }
  ASSERT_TRUE(tree_->Insert(76, 111).ok());
  ASSERT_TRUE(tree_->Insert(78, 222).ok());
  Result<std::vector<uint64_t>> got = tree_->GetAll(77);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2000u);
  // Insertion order preserved.
  for (uint64_t i = 0; i < 2000; ++i) EXPECT_EQ((*got)[i], i);
}

TEST_F(BPlusTreeTest, RangeQuery) {
  Init();
  for (int64_t k = 0; k < 1000; k += 2) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k)).ok());
  }
  Result<std::vector<std::pair<int64_t, uint64_t>>> r = tree_->Range(10, 20);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 6u);  // 10,12,14,16,18,20
  EXPECT_EQ(r->front().first, 10);
  EXPECT_EQ(r->back().first, 20);
  // Empty and inverted ranges.
  EXPECT_TRUE(tree_->Range(1001, 2000)->empty());
  EXPECT_TRUE(tree_->Range(20, 10)->empty());
}

TEST_F(BPlusTreeTest, RemoveLazy) {
  Init();
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k)).ok());
  }
  Result<bool> removed = tree_->Remove(50, 50);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(*removed);
  Result<std::optional<uint64_t>> r = tree_->Get(50);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
  // Removing again: no match.
  removed = tree_->Remove(50, 50);
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(*removed);
  // Value mismatch: no removal.
  removed = tree_->Remove(51, 999);
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(*removed);
}

TEST_F(BPlusTreeTest, NegativeKeys) {
  Init();
  for (int64_t k = -500; k <= 500; k += 5) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k + 1000)).ok());
  }
  Result<std::optional<uint64_t>> r = tree_->Get(-500);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(r->value(), 500u);
}

TEST_F(BPlusTreeTest, GetBatchMatchesPerKeyGet) {
  Init(256);
  Rng rng(23);
  for (int i = 0; i < 15000; ++i) {
    ASSERT_TRUE(
        tree_->Insert(rng.UniformInt(int64_t{0}, int64_t{4000}), rng.Next())
            .ok());
  }
  // Mixed present/absent keys, unsorted, with repeats: the batch answer
  // must be positionally identical to issuing each Get alone.
  std::vector<int64_t> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(rng.UniformInt(int64_t{-10}, int64_t{4100}));
  }
  keys.push_back(keys.front());  // repeated key
  Result<std::vector<std::optional<uint64_t>>> batch = tree_->GetBatch(keys);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    Result<std::optional<uint64_t>> single = tree_->Get(keys[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i], *single) << "key " << keys[i] << " at " << i;
  }
}

TEST_F(BPlusTreeTest, GetBatchSortedRunWalksLeafChain) {
  Init(64);
  const int64_t n = 8000;  // many leaves at 64 pool pages
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k * 7)).ok());
  }
  // An ascending run across the whole keyspace: one descent amortized
  // over sibling-chain hops instead of one descent per key.
  std::vector<int64_t> keys;
  for (int64_t k = 0; k < n; k += 3) keys.push_back(k);
  keys.push_back(n + 5);  // past the last leaf: absent
  Result<std::vector<std::optional<uint64_t>>> batch = tree_->GetBatch(keys);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    ASSERT_TRUE((*batch)[i].has_value()) << keys[i];
    EXPECT_EQ(*(*batch)[i], static_cast<uint64_t>(keys[i] * 7));
  }
  EXPECT_FALSE(batch->back().has_value());
}

TEST_F(BPlusTreeTest, GetBatchDescendingInputRedescends) {
  Init(64);
  for (int64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k + 1)).ok());
  }
  // Strictly descending keys defeat the leaf-chain walk; every key must
  // still resolve via per-key re-descent.
  std::vector<int64_t> keys;
  for (int64_t k = 4999; k >= 0; k -= 101) keys.push_back(k);
  Result<std::vector<std::optional<uint64_t>>> batch = tree_->GetBatch(keys);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE((*batch)[i].has_value()) << keys[i];
    EXPECT_EQ(*(*batch)[i], static_cast<uint64_t>(keys[i] + 1));
  }
}

TEST_F(BPlusTreeTest, GetBatchEmptyAndEmptyTree) {
  Init();
  EXPECT_TRUE(tree_->GetBatch({})->empty());
  Result<std::vector<std::optional<uint64_t>>> batch =
      tree_->GetBatch({1, 2, 3});
  ASSERT_TRUE(batch.ok());
  for (const std::optional<uint64_t>& v : *batch) EXPECT_FALSE(v.has_value());
}

TEST_F(BPlusTreeTest, PersistsAcrossReopen) {
  Init(64);
  for (int64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k * 3)).ok());
  }
  const PageId root = tree_->root();
  ASSERT_TRUE(pool_->FlushAll().ok());
  // Reopen through fresh disk manager + pool.
  Result<DiskManager> dm2 = DiskManager::Open(Path("db"), /*truncate=*/false);
  ASSERT_TRUE(dm2.ok());
  BufferPool pool2(&*dm2, 64);
  BPlusTree tree2 = BPlusTree::Open(&pool2, root);
  for (int64_t k : {0, 1500, 2999}) {
    Result<std::optional<uint64_t>> r = tree2.Get(k);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(r->value(), static_cast<uint64_t>(k * 3));
  }
}

// ------------------------------------------------------------ table heap

class TableHeapTest : public TempDir {};

TEST_F(TableHeapTest, InsertGetScan) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 32);
  Result<TableHeap> heap = TableHeap::Create(&pool, 48);
  ASSERT_TRUE(heap.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 1000; ++i) {
    char rec[48];
    std::memset(rec, i % 251, sizeof(rec));
    Result<Rid> rid = heap->Insert(rec);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_EQ(heap->record_count(), 1000u);
  char buf[48];
  ASSERT_TRUE(heap->Get(rids[123], buf).ok());
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 123 % 251);
  int scanned = 0;
  ASSERT_TRUE(heap->Scan([&](Rid, const char*) { ++scanned; }).ok());
  EXPECT_EQ(scanned, 1000);
  EXPECT_EQ(pool.pinned_page_count(), 0u);
}

TEST_F(TableHeapTest, RecordTooLargeRejected) {
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 8);
  EXPECT_FALSE(TableHeap::Create(&pool, kPageSize).ok());
  EXPECT_FALSE(TableHeap::Create(&pool, 0).ok());
  // Rejected creates must not leak pins either.
  EXPECT_EQ(pool.pinned_page_count(), 0u);
}

TEST_F(TableHeapTest, RidPackUnpackRoundTrip) {
  const Rid rid{123456, 789};
  EXPECT_EQ(Rid::Unpack(rid.Pack()), rid);
}

TEST_F(TableHeapTest, InterleavedWithBTreePages) {
  // A heap and a B+-tree sharing one pool must not corrupt each other.
  Result<DiskManager> dm = DiskManager::Open(Path("db"));
  ASSERT_TRUE(dm.ok());
  BufferPool pool(&*dm, 64);
  Result<TableHeap> heap = TableHeap::Create(&pool, 48);
  ASSERT_TRUE(heap.ok());
  Result<BPlusTree> tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 2000; ++i) {
    char rec[48];
    std::memcpy(rec, &i, sizeof(i));
    Result<Rid> rid = heap->Insert(rec);
    ASSERT_TRUE(rid.ok());
    ASSERT_TRUE(tree->Insert(i, rid->Pack()).ok());
  }
  // Every key resolves through the tree to the right heap record.
  for (int i = 0; i < 2000; i += 37) {
    Result<std::optional<uint64_t>> v = tree->Get(i);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v->has_value());
    char buf[48];
    ASSERT_TRUE(heap->Get(Rid::Unpack(v->value()), buf).ok());
    int stored;
    std::memcpy(&stored, buf, sizeof(stored));
    EXPECT_EQ(stored, i);
  }
  // Scan sees exactly the heap records.
  int scanned = 0;
  ASSERT_TRUE(heap->Scan([&](Rid, const char*) { ++scanned; }).ok());
  EXPECT_EQ(scanned, 2000);
  EXPECT_EQ(pool.pinned_page_count(), 0u);
}

// ----------------------------------------------------------- metadata db

class MetadataDbTest : public TempDir {};

TEST_F(MetadataDbTest, InsertAndSelectBySid) {
  Result<std::unique_ptr<MetadataDb>> db = MetadataDb::Create(Path("meta"));
  ASSERT_TRUE(db.ok());
  TweetMeta row{.sid = 1001, .uid = 7, .lat = 43.68, .lon = -79.37,
                .ruid = TweetMeta::kNone, .rsid = TweetMeta::kNone};
  ASSERT_TRUE((*db)->Insert(row).ok());
  Result<std::optional<TweetMeta>> got = (*db)->SelectBySid(1001);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(got->value().uid, 7);
  EXPECT_DOUBLE_EQ(got->value().lat, 43.68);
  Result<std::optional<TweetMeta>> missing = (*db)->SelectBySid(9999);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
  EXPECT_EQ((*db)->buffer_pool().pinned_page_count(), 0u);
}

TEST_F(MetadataDbTest, SelectByRsidFindsAllReplies) {
  Result<std::unique_ptr<MetadataDb>> db = MetadataDb::Create(Path("meta"));
  ASSERT_TRUE(db.ok());
  // Root tweet 100 by user 1; replies 101..110 by users 2..11.
  ASSERT_TRUE((*db)
                  ->Insert(TweetMeta{100, 1, 43.0, -79.0, TweetMeta::kNone,
                                     TweetMeta::kNone})
                  .ok());
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(
        (*db)->Insert(TweetMeta{100 + i, 1 + i, 43.0, -79.0, 1, 100}).ok());
  }
  Result<std::vector<TweetMeta>> replies = (*db)->SelectByRsid(100);
  ASSERT_TRUE(replies.ok());
  EXPECT_EQ(replies->size(), 10u);
  Result<std::vector<TweetMeta>> none = (*db)->SelectByRsid(101);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_EQ((*db)->buffer_pool().pinned_page_count(), 0u);
}

TEST_F(MetadataDbTest, MaxReplyFanout) {
  Result<std::unique_ptr<MetadataDb>> db = MetadataDb::Create(Path("meta"));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->Insert(TweetMeta{1, 1, 0, 0, TweetMeta::kNone,
                                     TweetMeta::kNone})
                  .ok());
  Result<int64_t> empty_fanout = (*db)->MaxReplyFanout();
  ASSERT_TRUE(empty_fanout.ok());
  EXPECT_EQ(*empty_fanout, 0);
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE((*db)->Insert(TweetMeta{10 + i, 2, 0, 0, 1, 1}).ok());
  }
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE((*db)->Insert(TweetMeta{20 + i, 3, 0, 0, 2, 10}).ok());
  }
  Result<int64_t> fanout = (*db)->MaxReplyFanout();
  ASSERT_TRUE(fanout.ok());
  EXPECT_EQ(*fanout, 5);
}

TEST_F(MetadataDbTest, ScaleTenThousandRows) {
  MetadataDb::Options opts;
  opts.buffer_pool_pages = 128;  // small pool to exercise eviction
  Result<std::unique_ptr<MetadataDb>> db =
      MetadataDb::Create(Path("meta"), opts);
  ASSERT_TRUE(db.ok());
  Rng rng(21);
  for (int64_t sid = 1; sid <= 10000; ++sid) {
    const int64_t rsid =
        sid > 100 && rng.Bernoulli(0.4) ? rng.UniformInt(int64_t{1}, sid - 1)
                                        : TweetMeta::kNone;
    ASSERT_TRUE((*db)
                    ->Insert(TweetMeta{sid, rng.UniformInt(int64_t{1},
                                                           int64_t{500}),
                                       rng.Uniform(-80, 80),
                                       rng.Uniform(-170, 170),
                                       rsid == TweetMeta::kNone
                                           ? TweetMeta::kNone
                                           : int64_t{1},
                                       rsid})
                    .ok());
  }
  EXPECT_EQ((*db)->row_count(), 10000u);
  // Random point lookups across the keyspace must fault evicted pages in.
  for (int64_t sid = 100; sid <= 10000; sid += 100) {
    Result<std::optional<TweetMeta>> got = (*db)->SelectBySid(sid);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->has_value()) << sid;
    EXPECT_EQ(got->value().sid, sid);
  }
  // I/O happened: the pool is smaller than the data.
  EXPECT_GT((*db)->buffer_pool().stats().evictions, 0u);
  EXPECT_GT((*db)->disk().stats().page_reads, 0u);
}

TEST_F(MetadataDbTest, SelectBySidBatchMatchesSingleLookups) {
  MetadataDb::Options opts;
  opts.buffer_pool_pages = 64;
  Result<std::unique_ptr<MetadataDb>> db =
      MetadataDb::Create(Path("meta"), opts);
  ASSERT_TRUE(db.ok());
  for (int64_t sid = 1; sid <= 4000; ++sid) {
    ASSERT_TRUE((*db)
                    ->Insert(TweetMeta{sid, sid % 97, 1.0 * (sid % 50),
                                       -1.0 * (sid % 70), TweetMeta::kNone,
                                       TweetMeta::kNone})
                    .ok());
  }
  // Ascending run (the query-processor shape: candidates sorted by tid),
  // plus gaps and misses at both ends.
  std::vector<int64_t> sids{-5, 0};
  for (int64_t sid = 1; sid <= 4000; sid += 7) sids.push_back(sid);
  sids.push_back(4001);
  sids.push_back(9999);
  Result<std::vector<std::optional<TweetMeta>>> batch =
      (*db)->SelectBySidBatch(sids);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), sids.size());
  for (size_t i = 0; i < sids.size(); ++i) {
    Result<std::optional<TweetMeta>> single = (*db)->SelectBySid(sids[i]);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[i].has_value(), single->has_value()) << sids[i];
    if ((*batch)[i].has_value()) {
      EXPECT_EQ((*batch)[i]->sid, single->value().sid);
      EXPECT_EQ((*batch)[i]->uid, single->value().uid);
      EXPECT_DOUBLE_EQ((*batch)[i]->lat, single->value().lat);
      EXPECT_DOUBLE_EQ((*batch)[i]->lon, single->value().lon);
    }
  }
  EXPECT_EQ((*db)->buffer_pool().pinned_page_count(), 0u);
}

}  // namespace
}  // namespace tklus
